#!/bin/sh
# Assembles bench_output.txt from the two capture files, in the same order
# as `for b in build/bench/*; do $b; done` would visit the binaries.
# (On this 1-CPU machine the single serial loop exceeds the session budget;
# the sections below were produced by the same binaries with the same
# deterministic seeds, in two batches.)
set -eu
core=${1:-/tmp/bench_final.txt}
extras=${2:-/tmp/bench_extras.txt}
out=${3:-/root/repo/bench_output.txt}

section() {  # section <file> <name>
  awk -v name="$2" '
    $0 == "== " name { inside = 1; print "===================================================================="; print; next }
    /^== / && inside { inside = 0 }
    inside { print }
  ' "$1"
}

{
  echo "# bench_output.txt — output of every binary in build/bench/, quick scale"
  echo "# (assembled from two serial batches; identical binaries and seeds)"
  echo
  for name in \
      bench_ablation_bias bench_ablation_gain bench_ablation_minfilter; do
    section "$core" "$name"
  done
  section "$extras" bench_ablation_r_sweep
  section "$extras" bench_ext_fault_tolerance
  section "$extras" bench_ext_fusion
  section "$extras" bench_ext_layer_detection
  section "$extras" bench_ext_multi_session
  section "$extras" bench_ext_online_dtw
  section "$extras" bench_ext_resilience
  for name in \
      bench_fig01_time_noise bench_fig02_no_sync_distance \
      bench_fig06_dwm_params bench_fig10_hdisp_consistency \
      bench_fig11_sync_speed bench_fig12_overall_accuracy; do
    section "$core" "$name"
  done
  section "$extras" bench_micro
  for name in \
      bench_table04_dwm_params bench_table05_moore_gao bench_table06_bayens \
      bench_table06b_belikovetsky bench_table07_gatlin \
      bench_table08_nsync_dwm bench_table09_nsync_dtw; do
    section "$core" "$name"
  done
} > "$out"
echo "wrote $out"
