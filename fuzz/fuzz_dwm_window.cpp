// libFuzzer target: the DWM synchronizer -> DetectionCore chain on
// arbitrary sample data.
//
// The fuzzer bytes are reinterpreted as IEEE doubles, so NaN, +/-Inf,
// denormals and wild magnitudes all occur naturally.  The pipeline's
// contract under the fault-tolerance work: degenerate windows are masked,
// never scored, and no non-finite value ever reaches the feature arrays —
// violations abort so the fuzzer catches them as crashes.
//
// Build: cmake -DNSYNC_BUILD_FUZZERS=ON (requires Clang; see
// fuzz/CMakeLists.txt).  Run: ./fuzz/fuzz_dwm_window -max_total_time=60
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/detection_core.hpp"
#include "core/dwm.hpp"
#include "signal/signal.hpp"

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "contract violated: %s\n", what);
    std::abort();
  }
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // First byte selects the window geometry; the rest become samples for
  // the observed signal (the reference is a deterministic chirp so the
  // aligner always has something to lock onto).
  if (size < 1) return 0;
  const std::uint8_t geometry = data[0];
  ++data;
  --size;

  nsync::core::DwmParams params;
  params.n_win = 16 + 8 * (geometry & 0x3);         // 16..40
  params.n_hop = params.n_win / 2;
  params.n_ext = 4 + 2 * ((geometry >> 2) & 0x3);   // 4..10
  params.n_sigma = 4.0 + ((geometry >> 4) & 0x3);   // 4..7
  params.eta = 0.25;

  const std::size_t frames = size / sizeof(double);
  if (frames < 2 * params.n_win || frames > 4096) return 0;

  nsync::signal::Signal observed(frames, 1, 100.0);
  std::memcpy(observed.data(), data, frames * sizeof(double));

  nsync::signal::Signal reference(frames, 1, 100.0);
  for (std::size_t n = 0; n < frames; ++n) {
    const double t = static_cast<double>(n) / 100.0;
    reference(n, 0) = std::sin(2.0 * 3.14159265358979 * (1.0 + 0.2 * t) * t);
  }

  const nsync::core::DwmResult r =
      nsync::core::DwmSynchronizer::align(observed, reference, params);
  require(r.valid.size() == r.h_disp.size(), "valid mask sized to windows");
  require(all_finite(r.h_disp), "h_disp finite");
  require(all_finite(r.h_disp_low), "h_disp_low finite");

  nsync::core::DetectionCore core(
      params, nsync::core::DistanceMetric::kCorrelation, 3);
  const nsync::signal::SignalView a(observed);
  for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
    const std::size_t a_start = i * params.n_hop;
    if (a_start + params.n_win > a.frames()) break;
    core.step(r.h_disp[i], r.valid[i] != 0,
              a.slice(a_start, a_start + params.n_win), reference);
  }
  require(all_finite(core.v_dist()), "v_dist finite");
  const nsync::core::DetectionFeatures& f = core.features();
  require(all_finite(f.c_disp), "c_disp finite");
  require(all_finite(f.h_dist_f), "h_dist_f finite");
  require(all_finite(f.v_dist_f), "v_dist_f finite");
  require(core.valid().size() == core.windows(), "mask sized to windows");
  return 0;
}
