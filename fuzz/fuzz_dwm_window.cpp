// libFuzzer target: the DWM -> comparator -> discriminator chain on
// arbitrary sample data.
//
// The fuzzer bytes are reinterpreted as IEEE doubles, so NaN, +/-Inf,
// denormals and wild magnitudes all occur naturally.  The pipeline's
// contract under the fault-tolerance work: degenerate windows are masked,
// never scored, and no non-finite value ever reaches the feature arrays —
// violations abort so the fuzzer catches them as crashes.
//
// Build: cmake -DNSYNC_BUILD_FUZZERS=ON (requires Clang; see
// fuzz/CMakeLists.txt).  Run: ./fuzz/fuzz_dwm_window -max_total_time=60
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/comparator.hpp"
#include "core/discriminator.hpp"
#include "core/dwm.hpp"
#include "signal/signal.hpp"

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "contract violated: %s\n", what);
    std::abort();
  }
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // First byte selects the window geometry; the rest become samples for
  // the observed signal (the reference is a deterministic chirp so the
  // aligner always has something to lock onto).
  if (size < 1) return 0;
  const std::uint8_t geometry = data[0];
  ++data;
  --size;

  nsync::core::DwmParams params;
  params.n_win = 16 + 8 * (geometry & 0x3);         // 16..40
  params.n_hop = params.n_win / 2;
  params.n_ext = 4 + 2 * ((geometry >> 2) & 0x3);   // 4..10
  params.n_sigma = 4.0 + ((geometry >> 4) & 0x3);   // 4..7
  params.eta = 0.25;

  const std::size_t frames = size / sizeof(double);
  if (frames < 2 * params.n_win || frames > 4096) return 0;

  nsync::signal::Signal observed(frames, 1, 100.0);
  std::memcpy(observed.data(), data, frames * sizeof(double));

  nsync::signal::Signal reference(frames, 1, 100.0);
  for (std::size_t n = 0; n < frames; ++n) {
    const double t = static_cast<double>(n) / 100.0;
    reference(n, 0) = std::sin(2.0 * 3.14159265358979 * (1.0 + 0.2 * t) * t);
  }

  const nsync::core::DwmResult r =
      nsync::core::DwmSynchronizer::align(observed, reference, params);
  require(r.valid.size() == r.h_disp.size(), "valid mask sized to windows");
  require(all_finite(r.h_disp), "h_disp finite");
  require(all_finite(r.h_disp_low), "h_disp_low finite");

  const nsync::core::MaskedDistances md =
      nsync::core::vertical_distances_dwm_masked(observed, reference,
                                                 r.h_disp, r.valid, params);
  require(all_finite(md.v_dist), "v_dist finite");

  std::vector<std::uint8_t> valid = md.valid;
  for (std::size_t i = valid.size(); i < r.valid.size(); ++i) {
    valid.push_back(r.valid[i]);
  }
  const nsync::core::DetectionFeatures f =
      nsync::core::compute_features_masked(r.h_disp, md.v_dist, valid);
  require(all_finite(f.c_disp), "c_disp finite");
  require(all_finite(f.h_dist_f), "h_dist_f finite");
  require(all_finite(f.v_dist_f), "v_dist_f finite");
  return 0;
}
