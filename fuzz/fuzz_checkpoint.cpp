// libFuzzer target: the checkpoint container and the fleet restore path.
//
// A checkpoint file is read at the most security-sensitive moment the
// monitor has — recovery after a crash, exactly when an attacker would
// like to feed it forged state.  Both layers must reject arbitrary bytes
// with CheckpointError (the one exception the API documents) and nothing
// else: no crashes, no OOM from length-field-driven allocations, no
// partial restores.
//
// The input is fuzzed through two entry points:
//   1. unframe_checkpoint — the container framing (magic/version/CRC).
//   2. MonitorEngine::restore_from_bytes — the structural parser,
//      deliberately bypassing the CRC gate so the deep session/channel
//      decoding gets fuzzed rather than just the checksum.
//
// Build: cmake -DNSYNC_BUILD_FUZZERS=ON (requires Clang; see
// fuzz/CMakeLists.txt).  Run: ./fuzz/fuzz_checkpoint -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <span>

#include "engine/monitor_engine.hpp"
#include "signal/checkpoint.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  try {
    (void)nsync::signal::unframe_checkpoint(bytes);
  } catch (const nsync::signal::CheckpointError&) {
    // Expected for malformed input.
  }

  try {
    nsync::engine::MonitorEngine engine =
        nsync::engine::MonitorEngine::restore_from_bytes(bytes);
    // Round-trip: any state we accepted must serialize and restore again.
    const auto payload = engine.serialize();
    (void)engine.snapshots();
    (void)nsync::engine::MonitorEngine::restore_from_bytes(payload);
  } catch (const nsync::signal::CheckpointError&) {
    // Expected for malformed input.
  }
  return 0;
}
