// libFuzzer target: the NSFP frame-ingest wire protocol decoder.
//
// The decoder sits directly on the daemon's network boundary — every byte
// it sees comes from an untrusted socket peer.  Arbitrary input must
// resolve to one of the typed DecodeStatus outcomes (kNeedMore, kFrame,
// or a framing/payload error) and nothing else: no crashes, no OOM from
// length-prefix-driven allocations, no reads past the buffered bytes.
//
// The raw input doubles as a chunking schedule: the first byte selects a
// feed granularity so the same corpus exercises both bulk and
// byte-at-a-time reassembly, where resynchronization bugs live.  The
// second byte optionally splices a well-formed v4 keepalive or overload
// frame (PING, PONG, or a BUSY error with a retry-after hint) ahead of
// the raw remainder, so those frames are always reassembled through the
// same hostile chunking — and the raw tail gets to corrupt the stream
// right at a real frame boundary.  Decoded frames are re-encoded and
// decoded again to pin the codec round-trip.
//
// Build: cmake -DNSYNC_BUILD_FUZZERS=ON (requires Clang; see
// fuzz/CMakeLists.txt).  Run: ./fuzz/fuzz_frame_protocol -max_total_time=60
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/wire_protocol.hpp"

namespace wire = nsync::engine::wire;

namespace {

void drain(wire::FrameDecoder& decoder) {
  wire::Message msg;
  std::string detail;
  for (;;) {
    const wire::DecodeStatus status = decoder.next(msg, &detail);
    switch (status) {
      case wire::DecodeStatus::kFrame: {
        // Anything the decoder accepts must survive an encode/decode
        // round-trip bit-exactly at the message level.
        wire::FrameDecoder verify;
        verify.feed(wire::encode(msg));
        wire::Message again;
        if (verify.next(again) != wire::DecodeStatus::kFrame ||
            wire::message_type(again) != wire::message_type(msg)) {
          __builtin_trap();
        }
        continue;  // there may be more frames buffered
      }
      case wire::DecodeStatus::kBadType:
      case wire::DecodeStatus::kMalformed:
        continue;  // frame-local: decoder must have consumed the frame
      case wire::DecodeStatus::kNeedMore:
        return;
      case wire::DecodeStatus::kBadMagic:
      case wire::DecodeStatus::kBadVersion:
      case wire::DecodeStatus::kOversized:
      case wire::DecodeStatus::kBadCrc:
        // Poisoned: every subsequent call must repeat the same status.
        if (!decoder.poisoned()) {
          __builtin_trap();
        }
        return;
    }
  }
}

}  // namespace

// A valid keepalive/overload frame to splice ahead of the fuzz bytes.
// The nonce is derived from the selector byte so the corpus can vary it.
std::vector<std::uint8_t> prelude(std::uint8_t selector) {
  switch (selector & 0x3) {
    case 1:
      return wire::encode(
          wire::Ping{0x9E3779B97F4A7C15ull ^ (std::uint64_t{selector} << 32)});
    case 2:
      return wire::encode(
          wire::Pong{0xC2B2AE3D27D4EB4Full ^ (std::uint64_t{selector} << 24)});
    case 3: {
      wire::Error busy;
      busy.code = wire::ErrorCode::kBusy;
      busy.message = "connection limit reached";
      busy.retry_after_ms = static_cast<std::uint32_t>(selector) * 37u;
      return wire::encode(busy);
    }
    default:
      return {};
  }
}

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) {
    return 0;
  }
  // First byte picks the chunk size (1..256); the second selects an
  // optional PING/PONG/BUSY prelude; the rest is the stream.
  const std::size_t chunk = static_cast<std::size_t>(data[0]) + 1;
  std::vector<std::uint8_t> stream = prelude(data[1]);
  const std::size_t prelude_len = stream.size();
  stream.insert(stream.end(), data + 2, data + size);

  wire::FrameDecoder decoder;
  std::size_t fed = 0;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    const std::size_t n = std::min(chunk, stream.size() - off);
    decoder.feed(std::span<const std::uint8_t>(stream).subspan(off, n));
    fed += n;
    drain(decoder);
    if (decoder.poisoned()) {
      // A well-formed prelude can never poison the stream on its own.
      if (fed <= prelude_len) {
        __builtin_trap();
      }
      break;
    }
  }
  return 0;
}
