// libFuzzer target: the NSIG binary signal loader.
//
// Reference signals are long-lived on-disk artifacts loaded at monitor
// startup, so the loader faces whatever is actually in the file — a
// truncated copy, a corrupted sector, a forged header with absurd
// dimensions.  It must reject all of it with std::runtime_error (the one
// exception the API documents) and nothing else: no crashes, no OOM from
// header-driven allocations, no other exception types escaping.
//
// Build: cmake -DNSYNC_BUILD_FUZZERS=ON (requires Clang; see
// fuzz/CMakeLists.txt).  Run: ./fuzz/fuzz_signal_io -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "signal/io.hpp"
#include "signal/signal.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const nsync::signal::Signal s = nsync::signal::read_signal(in);
    // Round-trip: anything we accepted must serialize and re-load.
    std::ostringstream out;
    nsync::signal::write_signal(out, nsync::signal::SignalView(s));
    std::istringstream back(out.str());
    (void)nsync::signal::read_signal(back);
  } catch (const std::runtime_error&) {
    // Expected for malformed input.
  }
  return 0;
}
