// libFuzzer target: the G-code text parser.
//
// The parser consumes attacker-controlled files (a sabotaged print job IS
// the threat model), so it must reject malformed input with
// std::invalid_argument — the one exception the API documents — and
// nothing else: no crashes, no sanitizer findings, no other exception
// types escaping.
//
// Build: cmake -DNSYNC_BUILD_FUZZERS=ON (requires Clang; see
// fuzz/CMakeLists.txt).  Run: ./fuzz/fuzz_gcode_parser -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "gcode/parser.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view source(reinterpret_cast<const char*>(data), size);
  try {
    const nsync::gcode::Program program = nsync::gcode::parse_program(source);
    // Round-trip: anything we accepted must serialize and re-parse.
    const std::string text = nsync::gcode::to_gcode(program);
    (void)nsync::gcode::parse_program(text);
  } catch (const std::invalid_argument&) {
    // Expected for malformed input.
  }
  return 0;
}
