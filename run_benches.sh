#!/bin/sh
# Runs every experiment binary at its default (quick) scale and captures
# the output; used to produce bench_output.txt for EXPERIMENTS.md.
#
# NSYNC_THREADS passthrough: when set in the environment, it is forwarded
# to every binary both as the environment variable (honored by the
# runtime's automatic sizing) and explicitly as --threads, so the pool
# size used for the committed outputs is visible in the invocation.
#
# NSYNC_SIMD passthrough: the dispatch layer honors it directly
# ("scalar"/"avx2"/"neon"); echoing it here makes the backend used for a
# committed capture visible at the top of the output.  bench_micro also
# records the resolved backend in its JSON context (`simd_isa`), which is
# how BENCH_micro_scalar.json and BENCH_micro.json are told apart.
set -u
THREAD_FLAGS=""
if [ -n "${NSYNC_THREADS:-}" ]; then
  THREAD_FLAGS="--threads ${NSYNC_THREADS}"
  echo "## NSYNC_THREADS=${NSYNC_THREADS}"
fi
if [ -n "${NSYNC_SIMD:-}" ]; then
  echo "## NSYNC_SIMD=${NSYNC_SIMD}"
fi
for b in "$@"; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  # bench_micro additionally writes machine-readable results; the path can
  # be overridden with NSYNC_BENCH_JSON.
  EXTRA_FLAGS=""
  if [ "$b" = "bench_micro" ]; then
    EXTRA_FLAGS="--json ${NSYNC_BENCH_JSON:-BENCH_micro.json}"
  fi
  if [ "$b" = "bench_ext_multi_session" ]; then
    EXTRA_FLAGS="--json ${NSYNC_BENCH_JSON:-BENCH_fleet.json}"
  fi
  if [ "$b" = "bench_ext_checkpoint" ]; then
    EXTRA_FLAGS="--json ${NSYNC_BENCH_JSON:-BENCH_checkpoint.json}"
  fi
  if [ "$b" = "bench_ext_drift" ]; then
    EXTRA_FLAGS="--json ${NSYNC_BENCH_JSON:-BENCH_drift.json}"
  fi
  if [ "$b" = "bench_ext_fusion" ]; then
    EXTRA_FLAGS="--json ${NSYNC_BENCH_JSON:-BENCH_fusion.json}"
  fi
  if [ "$b" = "bench_ext_resilience" ]; then
    EXTRA_FLAGS="--json ${NSYNC_BENCH_JSON:-BENCH_resilience.json}"
  fi
  # shellcheck disable=SC2086  # THREAD_FLAGS/EXTRA_FLAGS intentionally split
  NSYNC_THREADS="${NSYNC_THREADS:-}" ./build/bench/"$b" $THREAD_FLAGS \
    $EXTRA_FLAGS 2>&1
  echo
done
