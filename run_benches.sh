#!/bin/sh
# Runs every experiment binary at its default (quick) scale and captures
# the output; used to produce bench_output.txt for EXPERIMENTS.md.
#
# NSYNC_THREADS passthrough: when set in the environment, it is forwarded
# to every binary both as the environment variable (honored by the
# runtime's automatic sizing) and explicitly as --threads, so the pool
# size used for the committed outputs is visible in the invocation.
set -u
THREAD_FLAGS=""
if [ -n "${NSYNC_THREADS:-}" ]; then
  THREAD_FLAGS="--threads ${NSYNC_THREADS}"
  echo "## NSYNC_THREADS=${NSYNC_THREADS}"
fi
for b in "$@"; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  # shellcheck disable=SC2086  # THREAD_FLAGS intentionally word-splits
  NSYNC_THREADS="${NSYNC_THREADS:-}" ./build/bench/"$b" $THREAD_FLAGS 2>&1
  echo
done
