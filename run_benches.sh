#!/bin/sh
# Runs every experiment binary at its default (quick) scale and captures
# the output; used to produce bench_output.txt for EXPERIMENTS.md.
set -u
for b in "$@"; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  ./build/bench/"$b" 2>&1
  echo
done
