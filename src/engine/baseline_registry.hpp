// Per-device baseline registry with drift-adaptive OCC thresholds.
//
// The paper learns one set of OCC thresholds from benign training prints
// (Section VII-C, Eq. 26-28) and holds them fixed.  A production fleet
// drifts: mechanical wear, ambient temperature and firmware updates shift
// the benign feature distribution per device, so a global fixed threshold
// bleeds FPR or TPR over time.  This module is the fleet's calibration
// memory:
//
//   * Baselines are keyed by printer-model x sensor-profile (the channel
//     name): one ACC baseline for every "mk3" printer, a separate one for
//     its AUD channel, a separate pair for "mk4".
//   * resolve() serves the current adapted thresholds at session
//     admission; the first contact for a key seeds both the *anchor*
//     (factory calibration, immutable) and the current thresholds from
//     the caller's trained values.
//   * fold() ingests one finished print's benign feature maxima and
//     incrementally re-learns the thresholds (Eq. 26-28 over a sliding
//     ring of recent benign prints).
//
// Anti-poisoning is structural, not best-effort:
//
//   1. Eligibility gate — the caller folds with eligible=false whenever
//      the session's fused verdict was non-benign or any channel ended
//      non-healthy; ineligible folds only bump a `frozen` counter and
//      never touch statistics.  (Upstream, RealtimeMonitor additionally
//      accumulates its benign maxima only over valid windows on a healthy
//      channel with no latched intrusion.)
//   2. Minimum dwell — thresholds do not move at all until `min_prints`
//      eligible prints have been folded for the key.
//   3. Bounded step — one fold moves each threshold component at most
//      `max_step` (relative) toward the re-learned target.
//   4. Drift envelope — the adapted thresholds are clamped to
//      [anchor, anchor*(1+max_drift)] above the immutable anchor; they
//      never adapt *below* the factory calibration (the features are
//      nonnegative magnitudes drift can only inflate, so loosening is the
//      only legitimate direction).  An adversary feeding slowly-escalating
//      "benign" prints can drag the threshold to the envelope edge but
//      never past it, so a slow-drift attack eventually crosses the
//      (bounded) threshold — the adversarial test in
//      tests/test_baseline_registry.cpp pins this.
//
// Persistence: the registry serializes through the PR-5 ByteWriter /
// ByteReader codec into its own "NBRG" section with an independent format
// version, embeds into fleet checkpoints (crash consistency), and
// round-trips standalone `.nbrg` files via the atomic NCKP container
// (write_checkpoint_file) for operator-visible per-device state.
#ifndef NSYNC_ENGINE_BASELINE_REGISTRY_HPP
#define NSYNC_ENGINE_BASELINE_REGISTRY_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/discriminator.hpp"

namespace nsync::signal {
class ByteWriter;
class ByteReader;
}  // namespace nsync::signal

namespace nsync::engine {

/// Knobs of the incremental re-learning loop.
struct AdaptationPolicy {
  /// Sliding ring of recent eligible prints the thresholds are re-learned
  /// from (Eq. 26-28 over this window).
  std::size_t history = 8;
  /// Minimum eligible prints folded before thresholds move at all (dwell).
  std::size_t min_prints = 3;
  /// Per-fold bound on each threshold component's relative movement
  /// toward the re-learned target.
  double max_step = 0.10;
  /// Total drift envelope: current stays within
  /// [anchor, anchor*(1+max_drift)].  One-sided because the features are
  /// nonnegative magnitudes drift can only inflate — the baseline never
  /// adapts below the factory calibration.
  double max_drift = 0.5;
  /// OCC margin used when re-learning (Eq. 28's r).
  double r = 0.3;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

/// One printer-model x sensor-profile baseline.
struct DeviceBaseline {
  core::Thresholds anchor;   ///< factory calibration; never moves
  core::Thresholds current;  ///< served thresholds (adapted)
  /// Recent eligible prints' benign feature maxima, oldest first.
  std::vector<core::FeatureMaxima> recent;
  std::uint64_t prints = 0;  ///< eligible folds accepted, ever
  std::uint64_t frozen = 0;  ///< ineligible folds rejected, ever
};

class BaselineRegistry {
 public:
  explicit BaselineRegistry(AdaptationPolicy policy = {});

  BaselineRegistry(const BaselineRegistry& other);
  BaselineRegistry& operator=(const BaselineRegistry& other);

  /// Returns the thresholds to arm for (model, profile).  First contact
  /// seeds the baseline: `trained` becomes both the immutable anchor and
  /// the initial current thresholds.  Later calls ignore `trained` and
  /// serve the adapted state.
  core::Thresholds resolve(const std::string& model,
                           const std::string& profile,
                           const core::Thresholds& trained);

  /// Folds one finished print's benign feature maxima into (model,
  /// profile).  `eligible` is the session-level anti-poisoning gate: pass
  /// true only when the fused verdict stayed benign AND every channel
  /// ended healthy.  Returns true when the fold was accepted (eligible
  /// and the key exists); ineligible folds bump `frozen` and change
  /// nothing else.  Throws std::out_of_range for a key never resolved.
  bool fold(const std::string& model, const std::string& profile,
            const core::FeatureMaxima& maxima, bool eligible);

  [[nodiscard]] bool contains(const std::string& model,
                              const std::string& profile) const;
  /// Throws std::out_of_range for an unknown key.
  [[nodiscard]] DeviceBaseline baseline(const std::string& model,
                                        const std::string& profile) const;
  /// All (model, profile) keys, sorted (deterministic enumeration).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> keys() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const AdaptationPolicy& policy() const { return policy_; }

  /// Serializes the registry as an "NBRG" section (id, length, payload
  /// with its own format version) through the checkpoint codec.
  void save_state(nsync::signal::ByteWriter& w) const;
  /// Restores state written by save_state.  Throws CheckpointError:
  /// kBadVersion on a format bump, kMismatch when the serialized policy
  /// differs from this registry's, kCorrupt/kTruncated on malformed
  /// payloads.  On throw this registry is unchanged.
  void restore_state(nsync::signal::ByteReader& r);

  /// Atomically writes the registry to `path` inside the NCKP container.
  void save(const std::string& path) const;
  /// Loads a registry written by save().  Throws CheckpointError.
  [[nodiscard]] static BaselineRegistry load(const std::string& path,
                                             AdaptationPolicy policy = {});

 private:
  using Key = std::pair<std::string, std::string>;

  static void fold_locked(DeviceBaseline& b, const AdaptationPolicy& policy,
                          const core::FeatureMaxima& maxima);

  AdaptationPolicy policy_;
  mutable std::mutex mu_;
  // std::map: sorted iteration makes serialization byte-stable across
  // insertion orders, which the bitwise crash-replay tests rely on.
  std::map<Key, DeviceBaseline> baselines_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_BASELINE_REGISTRY_HPP
