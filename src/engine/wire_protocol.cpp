#include "engine/wire_protocol.hpp"

#include <cstring>
#include <utility>

#include "engine/session_codec.hpp"
#include "signal/checkpoint.hpp"

namespace nsync::engine::wire {

namespace {

using nsync::signal::ByteReader;
using nsync::signal::ByteWriter;
using nsync::signal::CheckpointError;

void save_payload(ByteWriter& w, const Hello& m) {
  w.pod<std::uint32_t>(m.version);
  w.str(m.client);
}

Hello load_hello(ByteReader& r) {
  Hello m;
  m.version = r.pod<std::uint32_t>();
  m.client = r.str();
  return m;
}

void save_payload(ByteWriter& w, const HelloOk& m) {
  w.pod<std::uint32_t>(m.version);
  w.pod<std::uint64_t>(m.shards);
  w.pod<std::uint64_t>(m.sessions);
}

HelloOk load_hello_ok(ByteReader& r) {
  HelloOk m;
  m.version = r.pod<std::uint32_t>();
  m.shards = r.pod<std::uint64_t>();
  m.sessions = r.pod<std::uint64_t>();
  return m;
}

void save_payload(ByteWriter& w, const AddSession& m) {
  save_session_spec(w, m.spec);
}

AddSession load_add_session(ByteReader& r) {
  AddSession m;
  m.spec = load_session_spec(r);
  return m;
}

void save_payload(ByteWriter& w, const AddSessionOk& m) {
  w.pod<std::uint64_t>(m.session);
  w.pod<std::uint64_t>(m.shard);
}

AddSessionOk load_add_session_ok(ByteReader& r) {
  AddSessionOk m;
  m.session = r.pod<std::uint64_t>();
  m.shard = r.pod<std::uint64_t>();
  return m;
}

void save_payload(ByteWriter& w, const Feed& m) {
  w.pod<std::uint64_t>(m.session);
  w.str(m.channel);
  w.signal(nsync::signal::SignalView(m.frames));
}

Feed load_feed(ByteReader& r) {
  Feed m;
  m.session = r.pod<std::uint64_t>();
  m.channel = r.str();
  m.frames = r.signal();
  return m;
}

void save_payload(ByteWriter& w, const FeedOk& m) {
  w.pod<std::uint64_t>(m.accepted_frames);
  w.pod<std::uint64_t>(m.shed_frames);
  w.pod<std::uint64_t>(m.queued_frames);
}

FeedOk load_feed_ok(ByteReader& r) {
  FeedOk m;
  m.accepted_frames = r.pod<std::uint64_t>();
  m.shed_frames = r.pod<std::uint64_t>();
  m.queued_frames = r.pod<std::uint64_t>();
  return m;
}

void save_payload(ByteWriter& w, const PollStats& m) {
  w.pod<std::uint8_t>(m.include_sessions);
}

PollStats load_poll_stats(ByteReader& r) {
  PollStats m;
  m.include_sessions = r.pod<std::uint8_t>();
  if (m.include_sessions > 1) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "POLL_STATS include_sessions flag out of range");
  }
  return m;
}

void save_payload(ByteWriter& w, const StatsShard& s) {
  w.pod<std::uint64_t>(s.shard);
  w.pod<std::uint64_t>(s.sessions);
  w.pod<std::uint64_t>(s.queued_frames);
  w.pod<std::uint64_t>(s.peak_queued_frames);
  w.pod<std::uint64_t>(s.enqueued_frames);
  w.pod<std::uint64_t>(s.shed_frames);
  w.pod<std::uint64_t>(s.rejected_frames);
  w.pod<std::uint64_t>(s.batches);
  w.pod<std::uint64_t>(s.polls);
  w.pod<std::uint64_t>(s.windows);
  w.pod<std::uint64_t>(s.feed_errors);
  w.pod<std::uint8_t>(s.failed);
  w.pod<std::uint64_t>(s.restarts);
  w.pod<std::uint64_t>(s.discarded_frames);
  w.pod<std::uint64_t>(s.checkpoints_written);
  w.pod<std::uint64_t>(s.latency_samples);
  w.pod<double>(s.p50_feed_to_verdict_us);
  w.pod<double>(s.p99_feed_to_verdict_us);
  w.pod<std::uint8_t>(s.in_flight);
}

StatsShard load_stats_shard(ByteReader& r) {
  StatsShard s;
  s.shard = r.pod<std::uint64_t>();
  s.sessions = r.pod<std::uint64_t>();
  s.queued_frames = r.pod<std::uint64_t>();
  s.peak_queued_frames = r.pod<std::uint64_t>();
  s.enqueued_frames = r.pod<std::uint64_t>();
  s.shed_frames = r.pod<std::uint64_t>();
  s.rejected_frames = r.pod<std::uint64_t>();
  s.batches = r.pod<std::uint64_t>();
  s.polls = r.pod<std::uint64_t>();
  s.windows = r.pod<std::uint64_t>();
  s.feed_errors = r.pod<std::uint64_t>();
  s.failed = r.pod<std::uint8_t>();
  if (s.failed > 1) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "STATS shard failed flag out of range");
  }
  s.restarts = r.pod<std::uint64_t>();
  s.discarded_frames = r.pod<std::uint64_t>();
  s.checkpoints_written = r.pod<std::uint64_t>();
  s.latency_samples = r.pod<std::uint64_t>();
  s.p50_feed_to_verdict_us = r.pod<double>();
  s.p99_feed_to_verdict_us = r.pod<double>();
  s.in_flight = r.pod<std::uint8_t>();
  return s;
}

void save_payload(ByteWriter& w, const StatsChannel& c) {
  w.str(c.name);
  w.pod<std::uint8_t>(c.alarm);
  w.pod<std::uint8_t>(c.health);
  w.pod<double>(c.score);
  w.pod<double>(c.weight);
  w.pod<std::uint64_t>(c.windows);
  w.pod<std::uint64_t>(c.frames_fed);
}

StatsChannel load_stats_channel(ByteReader& r) {
  StatsChannel c;
  c.name = r.str();
  c.alarm = r.pod<std::uint8_t>();
  c.health = r.pod<std::uint8_t>();
  c.score = r.pod<double>();
  c.weight = r.pod<double>();
  c.windows = r.pod<std::uint64_t>();
  c.frames_fed = r.pod<std::uint64_t>();
  return c;
}

void save_payload(ByteWriter& w, const StatsBaseline& b) {
  w.pod<std::uint64_t>(b.shard);
  w.str(b.model);
  w.str(b.profile);
  w.pod<std::uint64_t>(b.prints);
  w.pod<std::uint64_t>(b.frozen);
}

StatsBaseline load_stats_baseline(ByteReader& r) {
  StatsBaseline b;
  b.shard = r.pod<std::uint64_t>();
  b.model = r.str();
  b.profile = r.str();
  b.prints = r.pod<std::uint64_t>();
  b.frozen = r.pod<std::uint64_t>();
  return b;
}

void save_payload(ByteWriter& w, const StatsSession& s) {
  w.str(s.name);
  w.pod<std::uint8_t>(s.evicted);
  w.pod<std::uint8_t>(s.intrusion);
  w.pod<std::int64_t>(s.first_alarm_window);
  w.str(s.policy);
  w.pod<double>(s.fused_score);
  w.pod<std::uint64_t>(s.windows);
  w.pod<std::uint64_t>(s.frames_fed);
  w.pod<std::uint64_t>(static_cast<std::uint64_t>(s.channels.size()));
  for (const StatsChannel& c : s.channels) save_payload(w, c);
}

StatsSession load_stats_session(ByteReader& r) {
  StatsSession s;
  s.name = r.str();
  s.evicted = r.pod<std::uint8_t>();
  s.intrusion = r.pod<std::uint8_t>();
  s.first_alarm_window = r.pod<std::int64_t>();
  s.policy = r.str();
  s.fused_score = r.pod<double>();
  s.windows = r.pod<std::uint64_t>();
  s.frames_fed = r.pod<std::uint64_t>();
  const auto n = r.pod<std::uint64_t>();
  if (n > r.remaining()) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "STATS session channel count exceeds payload");
  }
  s.channels.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    s.channels.push_back(load_stats_channel(r));
  }
  return s;
}

void save_payload(ByteWriter& w, const Stats& m) {
  w.pod<std::uint64_t>(m.shards);
  w.pod<std::uint64_t>(m.sessions);
  w.pod<std::uint64_t>(m.evicted);
  w.pod<std::uint64_t>(m.windows);
  w.pod<std::uint64_t>(m.shed_frames);
  w.pod<std::uint64_t>(m.rejected_frames);
  w.pod<std::uint64_t>(m.queued_frames);
  w.pod<std::uint8_t>(m.busy);
  w.pod<std::uint64_t>(m.failed_shards);
  w.pod<std::uint64_t>(static_cast<std::uint64_t>(m.per_shard.size()));
  for (const StatsShard& s : m.per_shard) save_payload(w, s);
  w.pod<std::uint64_t>(static_cast<std::uint64_t>(m.baselines.size()));
  for (const StatsBaseline& b : m.baselines) save_payload(w, b);
  w.pod<std::uint64_t>(static_cast<std::uint64_t>(m.sessions_detail.size()));
  for (const StatsSession& s : m.sessions_detail) save_payload(w, s);
}

Stats load_stats(ByteReader& r) {
  Stats m;
  m.shards = r.pod<std::uint64_t>();
  m.sessions = r.pod<std::uint64_t>();
  m.evicted = r.pod<std::uint64_t>();
  m.windows = r.pod<std::uint64_t>();
  m.shed_frames = r.pod<std::uint64_t>();
  m.rejected_frames = r.pod<std::uint64_t>();
  m.queued_frames = r.pod<std::uint64_t>();
  m.busy = r.pod<std::uint8_t>();
  m.failed_shards = r.pod<std::uint64_t>();
  const auto n_shards = r.pod<std::uint64_t>();
  if (n_shards > r.remaining()) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "STATS shard count exceeds payload");
  }
  m.per_shard.reserve(static_cast<std::size_t>(n_shards));
  for (std::uint64_t i = 0; i < n_shards; ++i) {
    m.per_shard.push_back(load_stats_shard(r));
  }
  const auto n_baselines = r.pod<std::uint64_t>();
  if (n_baselines > r.remaining()) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "STATS baseline count exceeds payload");
  }
  m.baselines.reserve(static_cast<std::size_t>(n_baselines));
  for (std::uint64_t i = 0; i < n_baselines; ++i) {
    m.baselines.push_back(load_stats_baseline(r));
  }
  const auto n_sessions = r.pod<std::uint64_t>();
  if (n_sessions > r.remaining()) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "STATS session count exceeds payload");
  }
  m.sessions_detail.reserve(static_cast<std::size_t>(n_sessions));
  for (std::uint64_t i = 0; i < n_sessions; ++i) {
    m.sessions_detail.push_back(load_stats_session(r));
  }
  return m;
}

void save_payload(ByteWriter& w, const Evict& m) {
  w.pod<std::uint64_t>(m.session);
}

Evict load_evict(ByteReader& r) {
  Evict m;
  m.session = r.pod<std::uint64_t>();
  return m;
}

void save_payload(ByteWriter&, const EvictOk&) {}

void save_payload(ByteWriter& w, const Ping& m) {
  w.pod<std::uint64_t>(m.nonce);
}

Ping load_ping(ByteReader& r) {
  Ping m;
  m.nonce = r.pod<std::uint64_t>();
  return m;
}

void save_payload(ByteWriter& w, const Pong& m) {
  w.pod<std::uint64_t>(m.nonce);
}

Pong load_pong(ByteReader& r) {
  Pong m;
  m.nonce = r.pod<std::uint64_t>();
  return m;
}

void save_payload(ByteWriter& w, const Error& m) {
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(m.code));
  w.str(m.message);
  w.pod<std::uint32_t>(m.retry_after_ms);
}

Error load_error(ByteReader& r) {
  const auto raw = r.pod<std::uint32_t>();
  if (raw < static_cast<std::uint32_t>(ErrorCode::kBadFrame) ||
      raw > static_cast<std::uint32_t>(ErrorCode::kShardFailed)) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "ERROR code out of range");
  }
  Error m;
  m.code = static_cast<ErrorCode>(raw);
  m.message = r.str();
  m.retry_after_ms = r.pod<std::uint32_t>();
  return m;
}

/// Parses one payload of a known type; throws CheckpointError on any
/// malformed content (including trailing bytes).
Message load_payload(MsgType type, std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  Message m;
  switch (type) {
    case MsgType::kHello:
      m = load_hello(r);
      break;
    case MsgType::kHelloOk:
      m = load_hello_ok(r);
      break;
    case MsgType::kAddSession:
      m = load_add_session(r);
      break;
    case MsgType::kAddSessionOk:
      m = load_add_session_ok(r);
      break;
    case MsgType::kFeed:
      m = load_feed(r);
      break;
    case MsgType::kFeedOk:
      m = load_feed_ok(r);
      break;
    case MsgType::kPollStats:
      m = load_poll_stats(r);
      break;
    case MsgType::kStats:
      m = load_stats(r);
      break;
    case MsgType::kEvict:
      m = load_evict(r);
      break;
    case MsgType::kEvictOk:
      m = EvictOk{};
      break;
    case MsgType::kPing:
      m = load_ping(r);
      break;
    case MsgType::kPong:
      m = load_pong(r);
      break;
    case MsgType::kError:
      m = load_error(r);
      break;
  }
  r.finish();
  return m;
}

bool known_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kHello:
    case MsgType::kAddSession:
    case MsgType::kFeed:
    case MsgType::kPollStats:
    case MsgType::kEvict:
    case MsgType::kPing:
    case MsgType::kHelloOk:
    case MsgType::kAddSessionOk:
    case MsgType::kFeedOk:
    case MsgType::kStats:
    case MsgType::kEvictOk:
    case MsgType::kPong:
    case MsgType::kError:
      return true;
  }
  return false;
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::string error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kBadFrame:
      return "bad-frame";
    case ErrorCode::kBadVersion:
      return "bad-version";
    case ErrorCode::kBadType:
      return "bad-type";
    case ErrorCode::kMalformed:
      return "malformed";
    case ErrorCode::kUnknownSession:
      return "unknown-session";
    case ErrorCode::kUnknownChannel:
      return "unknown-channel";
    case ErrorCode::kChannelMismatch:
      return "channel-mismatch";
    case ErrorCode::kEvicted:
      return "evicted";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kInternal:
      return "internal";
    case ErrorCode::kBusy:
      return "busy";
    case ErrorCode::kShardFailed:
      return "shard-failed";
  }
  return "unknown";
}

std::string decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kNeedMore:
      return "need-more";
    case DecodeStatus::kFrame:
      return "frame";
    case DecodeStatus::kBadMagic:
      return "bad-magic";
    case DecodeStatus::kBadVersion:
      return "bad-version";
    case DecodeStatus::kOversized:
      return "oversized";
    case DecodeStatus::kBadCrc:
      return "bad-crc";
    case DecodeStatus::kBadType:
      return "bad-type";
    case DecodeStatus::kMalformed:
      return "malformed";
  }
  return "unknown";
}

MsgType message_type(const Message& m) {
  struct Visitor {
    MsgType operator()(const Hello&) const { return MsgType::kHello; }
    MsgType operator()(const HelloOk&) const { return MsgType::kHelloOk; }
    MsgType operator()(const AddSession&) const { return MsgType::kAddSession; }
    MsgType operator()(const AddSessionOk&) const {
      return MsgType::kAddSessionOk;
    }
    MsgType operator()(const Feed&) const { return MsgType::kFeed; }
    MsgType operator()(const FeedOk&) const { return MsgType::kFeedOk; }
    MsgType operator()(const PollStats&) const { return MsgType::kPollStats; }
    MsgType operator()(const Stats&) const { return MsgType::kStats; }
    MsgType operator()(const Evict&) const { return MsgType::kEvict; }
    MsgType operator()(const EvictOk&) const { return MsgType::kEvictOk; }
    MsgType operator()(const Ping&) const { return MsgType::kPing; }
    MsgType operator()(const Pong&) const { return MsgType::kPong; }
    MsgType operator()(const Error&) const { return MsgType::kError; }
  };
  return std::visit(Visitor{}, m);
}

std::vector<std::uint8_t> encode(const Message& m) {
  ByteWriter pw;
  std::visit([&pw](const auto& payload) { save_payload(pw, payload); }, m);
  const std::vector<std::uint8_t> payload = pw.take();
  if (payload.size() > kMaxPayloadBytes) {
    throw CheckpointError(nsync::signal::CheckpointErrorKind::kCorrupt,
                          "wire payload exceeds kMaxPayloadBytes");
  }

  ByteWriter fw;
  fw.pod<std::uint32_t>(kMagic);
  fw.pod<std::uint8_t>(kProtocolVersion);
  fw.pod<std::uint8_t>(static_cast<std::uint8_t>(message_type(m)));
  fw.pod<std::uint16_t>(0);  // reserved
  fw.pod<std::uint32_t>(static_cast<std::uint32_t>(payload.size()));
  fw.bytes(payload.data(), payload.size());
  fw.pod<std::uint32_t>(nsync::signal::crc32(payload.data(), payload.size()));
  return fw.take();
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return;  // the stream is dead; don't accumulate memory
  // Compact once the consumed prefix dominates, keeping feed() amortized
  // O(n) without reallocating on every frame.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

DecodeStatus FrameDecoder::next(Message& out, std::string* detail) {
  if (poisoned_) return poison_status_;

  const auto poison = [this, detail](DecodeStatus s, const char* why) {
    poisoned_ = true;
    poison_status_ = s;
    buf_.clear();
    pos_ = 0;
    if (detail != nullptr) *detail = why;
    return s;
  };

  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return DecodeStatus::kNeedMore;

  const std::uint8_t* h = buf_.data() + pos_;
  if (read_u32le(h) != kMagic) {
    return poison(DecodeStatus::kBadMagic, "bad magic");
  }
  if (h[4] != kProtocolVersion) {
    return poison(DecodeStatus::kBadVersion, "unsupported protocol version");
  }
  const std::uint8_t type = h[5];
  const std::uint32_t payload_len = read_u32le(h + 8);
  if (payload_len > kMaxPayloadBytes) {
    return poison(DecodeStatus::kOversized, "payload length exceeds cap");
  }

  const std::size_t frame_bytes = kHeaderBytes + payload_len + kTrailerBytes;
  if (avail < frame_bytes) return DecodeStatus::kNeedMore;

  const std::uint8_t* payload = h + kHeaderBytes;
  const std::uint32_t want_crc = read_u32le(payload + payload_len);
  if (nsync::signal::crc32(payload, payload_len) != want_crc) {
    return poison(DecodeStatus::kBadCrc, "payload CRC mismatch");
  }

  // The frame boundary is sound from here on: type/payload errors consume
  // this frame and leave the stream usable.
  pos_ += frame_bytes;

  if (!known_type(type)) {
    if (detail != nullptr) *detail = "unknown message type";
    return DecodeStatus::kBadType;
  }
  try {
    out = load_payload(static_cast<MsgType>(type),
                       std::span<const std::uint8_t>(payload, payload_len));
  } catch (const CheckpointError& e) {
    if (detail != nullptr) *detail = e.what();
    return DecodeStatus::kMalformed;
  }
  return DecodeStatus::kFrame;
}

}  // namespace nsync::engine::wire
