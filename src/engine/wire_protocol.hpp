// Binary frame-ingest wire protocol ("NSFP") for the fleet daemon.
//
// Many cheap sensor streams funnel into one always-on detection service —
// the NIDS shape.  A client (printer-side acquisition host) speaks this
// protocol to a fleet_daemon over a Unix-domain or TCP socket:
//
//   frame  := magic u32 "NSFP" | version u8 | type u8 | reserved u16
//           | payload_len u32 | payload | crc32(payload) u32
//
// All integers little-endian; payloads are encoded with the
// signal/checkpoint ByteWriter/ByteReader codec, so a SessionSpec on the
// wire is byte-identical to the spec section of a checkpoint file.  The
// payload length is capped (kMaxPayloadBytes) so a hostile length prefix
// can never drive an allocation, and the CRC rejects corruption before
// any payload parsing happens.
//
// Message types (requests 0x0#, replies 0x8#, error 0xFF):
//
//   HELLO        -> HELLO_OK        version/name handshake, fleet summary
//   ADD_SESSION  -> ADD_SESSION_OK  admit a session (full spec on the wire)
//   FEED         -> FEED_OK         stage frames for one channel
//   POLL_STATS   -> STATS           fleet/shard stats (+ session snapshots)
//   EVICT        -> EVICT_OK        evict a session
//   PING         -> PONG            keepalive / liveness probe (echoes nonce)
//   (any)        -> ERROR           typed failure (ErrorCode + message)
//
// Framing errors are split into two classes: *stream-poisoning* ones (bad
// magic, bad version, oversized length, bad CRC) after which the byte
// stream cannot be trusted to resynchronize — the server replies ERROR
// and closes — and *frame-local* ones (unknown type, malformed payload)
// where the frame boundary is still sound and the connection continues.
// fuzz/fuzz_frame_protocol drives arbitrary bytes and chunkings through
// the decoder; it must only ever produce these typed outcomes.
#ifndef NSYNC_ENGINE_WIRE_PROTOCOL_HPP
#define NSYNC_ENGINE_WIRE_PROTOCOL_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "engine/monitor_engine.hpp"
#include "engine/sharded_fleet.hpp"
#include "signal/signal.hpp"

namespace nsync::engine::wire {

inline constexpr std::uint32_t kMagic = 0x5046534Eu;  // "NSFP" little-endian
/// v2: ADD_SESSION session specs carry the device model key used by the
/// per-device baseline registry (empty string = opted out of adaptation).
/// v3: specs may carry a fusion policy section in the legacy rule slot
/// (weighted fusion); STATS grows fused score + per-channel score/weight
/// telemetry and per-device baseline adaptation counters.
/// v4: PING/PONG keepalive pair; ERROR carries a retry-after-ms hint
/// (kBusy admission rejections); new kBusy/kShardFailed error codes;
/// STATS shard rows carry supervision state (failed/restarts/discarded).
inline constexpr std::uint8_t kProtocolVersion = 4;
inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::size_t kTrailerBytes = 4;  // crc32
/// Hard cap on a frame's payload.  Large enough for a multi-minute
/// reference signal (64 MiB ~ 4M stereo frames), small enough that a
/// forged length prefix cannot OOM the daemon.
inline constexpr std::size_t kMaxPayloadBytes = 64u << 20;

enum class MsgType : std::uint8_t {
  kHello = 0x01,
  kAddSession = 0x02,
  kFeed = 0x03,
  kPollStats = 0x04,
  kEvict = 0x05,
  kPing = 0x06,
  kHelloOk = 0x81,
  kAddSessionOk = 0x82,
  kFeedOk = 0x83,
  kStats = 0x84,
  kEvictOk = 0x85,
  kPong = 0x86,
  kError = 0xFF,
};

enum class ErrorCode : std::uint32_t {
  kBadFrame = 1,     ///< framing violation; the server closes after this
  kBadVersion = 2,   ///< protocol version mismatch (also closes)
  kBadType = 3,      ///< unknown message type (frame skipped)
  kMalformed = 4,    ///< payload did not parse / failed validation
  kUnknownSession = 5,
  kUnknownChannel = 6,
  kChannelMismatch = 7,  ///< frame width differs from the channel's
  kEvicted = 8,
  kOverloaded = 9,   ///< backpressure: queue full under kReject policy
  kInternal = 10,
  kBusy = 11,         ///< admission cap hit; honor Error::retry_after_ms
  kShardFailed = 12,  ///< the session's shard worker failed (supervision)
};

[[nodiscard]] std::string error_code_name(ErrorCode c);

// --- Message payload structs ----------------------------------------------

struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string client;
};

struct HelloOk {
  std::uint32_t version = kProtocolVersion;
  std::uint64_t shards = 0;
  std::uint64_t sessions = 0;
};

struct AddSession {
  SessionSpec spec;
};

struct AddSessionOk {
  std::uint64_t session = 0;
  std::uint64_t shard = 0;
};

struct Feed {
  std::uint64_t session = 0;
  std::string channel;
  nsync::signal::Signal frames;
};

struct FeedOk {
  std::uint64_t accepted_frames = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t queued_frames = 0;
};

struct PollStats {
  std::uint8_t include_sessions = 0;  ///< 1: append per-session snapshots
};

struct StatsChannel {
  std::string name;
  std::uint8_t alarm = 0;
  std::uint8_t health = 0;  ///< core::ChannelHealth
  double score = 0.0;       ///< normalized OCC margin (1.0 = at threshold)
  double weight = 0.0;      ///< normalized fusion weight (0 when offline)
  std::uint64_t windows = 0;
  std::uint64_t frames_fed = 0;
};

struct StatsSession {
  std::string name;
  std::uint8_t evicted = 0;
  std::uint8_t intrusion = 0;
  std::int64_t first_alarm_window = -1;
  std::string policy;        ///< fusion policy name ("any", "weighted", ...)
  double fused_score = 0.0;  ///< live fused anomaly score
  std::uint64_t windows = 0;
  std::uint64_t frames_fed = 0;
  std::vector<StatsChannel> channels;
};

struct StatsShard {
  std::uint64_t shard = 0;
  std::uint64_t sessions = 0;
  std::uint64_t queued_frames = 0;
  std::uint64_t peak_queued_frames = 0;
  std::uint64_t enqueued_frames = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t rejected_frames = 0;
  std::uint64_t batches = 0;
  std::uint64_t polls = 0;
  std::uint64_t windows = 0;
  std::uint64_t feed_errors = 0;
  std::uint8_t failed = 0;  ///< worker loop died (supervision)
  std::uint64_t restarts = 0;
  std::uint64_t discarded_frames = 0;  ///< backlog dropped at failure
  std::uint64_t checkpoints_written = 0;
  std::uint64_t latency_samples = 0;
  double p50_feed_to_verdict_us = 0.0;
  double p99_feed_to_verdict_us = 0.0;
  std::uint8_t in_flight = 0;
};

/// Per-device baseline adaptation telemetry: how often each (model,
/// sensor-profile) baseline has folded an eligible print vs frozen an
/// ineligible one — operators watch this to spot channels that stopped
/// adapting (every print alarming or unhealthy).
struct StatsBaseline {
  std::uint64_t shard = 0;
  std::string model;
  std::string profile;      ///< channel name (sensor profile)
  std::uint64_t prints = 0; ///< eligible folds accepted, ever
  std::uint64_t frozen = 0; ///< ineligible folds rejected, ever
};

struct Stats {
  std::uint64_t shards = 0;
  std::uint64_t sessions = 0;
  std::uint64_t evicted = 0;
  std::uint64_t windows = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t rejected_frames = 0;
  std::uint64_t queued_frames = 0;
  std::uint8_t busy = 0;
  std::uint64_t failed_shards = 0;
  std::vector<StatsShard> per_shard;
  std::vector<StatsBaseline> baselines;       ///< adaptation counters
  std::vector<StatsSession> sessions_detail;  ///< when requested
};

struct Evict {
  std::uint64_t session = 0;
};

struct EvictOk {};

/// Keepalive / liveness probe.  The server echoes the nonce back in PONG,
/// so a reconnecting client can distinguish "new connection is live" from
/// "stale bytes of an old reply still in flight".
struct Ping {
  std::uint64_t nonce = 0;
};

struct Pong {
  std::uint64_t nonce = 0;
};

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  /// Back-off hint in milliseconds (kBusy admission rejections); 0 = none.
  std::uint32_t retry_after_ms = 0;
};

using Message =
    std::variant<Hello, HelloOk, AddSession, AddSessionOk, Feed, FeedOk,
                 PollStats, Stats, Evict, EvictOk, Ping, Pong, Error>;

[[nodiscard]] MsgType message_type(const Message& m);

/// Encodes a message into one complete wire frame (header+payload+CRC).
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& m);

// --- Incremental decoder ---------------------------------------------------

enum class DecodeStatus : std::uint8_t {
  kNeedMore,   ///< no complete frame buffered yet
  kFrame,      ///< a message was decoded into `out`
  kBadMagic,   ///< stream poisoned
  kBadVersion, ///< stream poisoned
  kOversized,  ///< length prefix exceeds kMaxPayloadBytes; poisoned
  kBadCrc,     ///< stream poisoned
  kBadType,    ///< unknown type; frame skipped, stream continues
  kMalformed,  ///< payload parse/validation failure; frame skipped
};

[[nodiscard]] std::string decode_status_name(DecodeStatus s);

/// Reassembles frames from an arbitrary chunking of the byte stream.
class FrameDecoder {
 public:
  /// Appends raw bytes from the transport.
  void feed(std::span<const std::uint8_t> bytes);

  /// Tries to decode the next frame.  kNeedMore: call feed() with more
  /// bytes.  kFrame: `out` holds the message.  Poisoning statuses are
  /// sticky — every later call returns the same status and the caller
  /// must drop the connection.  kBadType/kMalformed consume exactly one
  /// frame; decoding continues with the next.
  DecodeStatus next(Message& out, std::string* detail = nullptr);

  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// Bytes buffered but not yet consumed (diagnostics/fuzzing).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool poisoned_ = false;
  DecodeStatus poison_status_ = DecodeStatus::kNeedMore;
};

}  // namespace nsync::engine::wire

#endif  // NSYNC_ENGINE_WIRE_PROTOCOL_HPP
