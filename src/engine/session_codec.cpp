#include "engine/session_codec.hpp"

#include <cstdint>
#include <string>

#include "signal/checkpoint.hpp"

namespace nsync::engine {

using nsync::signal::ByteReader;
using nsync::signal::ByteWriter;
using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;
using nsync::signal::SignalView;

void save_nsync_config(ByteWriter& w, const core::NsyncConfig& cfg) {
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(cfg.sync));
  w.pod<std::uint64_t>(cfg.dwm.n_win);
  w.pod<std::uint64_t>(cfg.dwm.n_hop);
  w.pod<std::uint64_t>(cfg.dwm.n_ext);
  w.pod<double>(cfg.dwm.n_sigma);
  w.pod<double>(cfg.dwm.eta);
  w.pod<std::uint8_t>(cfg.dwm.tde.use_fft ? 1 : 0);
  w.pod<std::uint64_t>(cfg.dtw_radius);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(cfg.metric));
  w.pod<std::uint64_t>(cfg.filter_window);
  w.pod<double>(cfg.r);
  w.pod<std::uint64_t>(cfg.health.history);
  w.pod<double>(cfg.health.degraded_fraction);
  w.pod<std::uint64_t>(cfg.health.offline_consecutive);
  w.pod<std::uint64_t>(cfg.health.recovery_consecutive);
}

core::NsyncConfig load_nsync_config(ByteReader& r) {
  core::NsyncConfig cfg;
  const auto sync = r.pod<std::uint32_t>();
  if (sync > static_cast<std::uint32_t>(core::SyncMethod::kDtw)) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: unknown sync method " +
                              std::to_string(sync));
  }
  cfg.sync = static_cast<core::SyncMethod>(sync);
  cfg.dwm.n_win = r.pod<std::uint64_t>();
  cfg.dwm.n_hop = r.pod<std::uint64_t>();
  cfg.dwm.n_ext = r.pod<std::uint64_t>();
  cfg.dwm.n_sigma = r.pod<double>();
  cfg.dwm.eta = r.pod<double>();
  cfg.dwm.tde.use_fft = r.pod<std::uint8_t>() != 0;
  cfg.dtw_radius = r.pod<std::uint64_t>();
  const auto metric = r.pod<std::uint32_t>();
  if (metric > static_cast<std::uint32_t>(core::DistanceMetric::kCorrelation)) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: unknown distance metric " +
                              std::to_string(metric));
  }
  cfg.metric = static_cast<core::DistanceMetric>(metric);
  cfg.filter_window = r.pod<std::uint64_t>();
  cfg.r = r.pod<double>();
  cfg.health.history = r.pod<std::uint64_t>();
  cfg.health.degraded_fraction = r.pod<double>();
  cfg.health.offline_consecutive = r.pod<std::uint64_t>();
  cfg.health.recovery_consecutive = r.pod<std::uint64_t>();
  return cfg;
}

void save_thresholds(ByteWriter& w, const core::Thresholds& t) {
  w.pod<double>(t.c_c);
  w.pod<double>(t.h_c);
  w.pod<double>(t.v_c);
}

core::Thresholds load_thresholds(ByteReader& r) {
  core::Thresholds t;
  t.c_c = r.pod<double>();
  t.h_c = r.pod<double>();
  t.v_c = r.pod<double>();
  return t;
}

void save_channel_spec(ByteWriter& w, const std::string& name,
                       const SignalView& reference,
                       const core::NsyncConfig& config,
                       const core::Thresholds& thresholds) {
  w.str(name);
  w.signal(reference);
  save_nsync_config(w, config);
  save_thresholds(w, thresholds);
}

void save_channel_spec(ByteWriter& w, const ChannelSpec& spec) {
  save_channel_spec(w, spec.name, SignalView(spec.reference), spec.config,
                    spec.thresholds);
}

ChannelSpec load_channel_spec(ByteReader& r) {
  ChannelSpec spec;
  spec.name = r.str();
  spec.reference = r.signal();
  spec.config = load_nsync_config(r);
  spec.thresholds = load_thresholds(r);
  return spec;
}

void save_session_spec(ByteWriter& w, const SessionSpec& spec) {
  w.str(spec.name);
  w.str(spec.model);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(spec.rule));
  w.pod<std::uint64_t>(spec.channels.size());
  for (const auto& c : spec.channels) save_channel_spec(w, c);
}

SessionSpec load_session_spec(ByteReader& r) {
  SessionSpec spec;
  spec.name = r.str();
  spec.model = r.str();
  const auto rule = r.pod<std::uint32_t>();
  if (rule > static_cast<std::uint32_t>(core::FusionRule::kAll)) {
    throw CheckpointError(
        CheckpointErrorKind::kCorrupt,
        "session codec: unknown fusion rule " + std::to_string(rule));
  }
  spec.rule = static_cast<core::FusionRule>(rule);
  const auto n_channels = r.pod<std::uint64_t>();
  if (n_channels == 0 || n_channels > r.remaining()) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: implausible channel count in "
                          "session '" +
                              spec.name + "'");
  }
  spec.channels.reserve(n_channels);
  for (std::uint64_t i = 0; i < n_channels; ++i) {
    spec.channels.push_back(load_channel_spec(r));
  }
  return spec;
}

}  // namespace nsync::engine
