#include "engine/session_codec.hpp"

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "signal/checkpoint.hpp"

namespace nsync::engine {

using nsync::signal::ByteReader;
using nsync::signal::ByteWriter;
using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;
using nsync::signal::SignalView;

void save_nsync_config(ByteWriter& w, const core::NsyncConfig& cfg) {
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(cfg.sync));
  w.pod<std::uint64_t>(cfg.dwm.n_win);
  w.pod<std::uint64_t>(cfg.dwm.n_hop);
  w.pod<std::uint64_t>(cfg.dwm.n_ext);
  w.pod<double>(cfg.dwm.n_sigma);
  w.pod<double>(cfg.dwm.eta);
  w.pod<std::uint8_t>(cfg.dwm.tde.use_fft ? 1 : 0);
  w.pod<std::uint64_t>(cfg.dtw_radius);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(cfg.metric));
  w.pod<std::uint64_t>(cfg.filter_window);
  w.pod<double>(cfg.r);
  w.pod<std::uint64_t>(cfg.health.history);
  w.pod<double>(cfg.health.degraded_fraction);
  w.pod<std::uint64_t>(cfg.health.offline_consecutive);
  w.pod<std::uint64_t>(cfg.health.recovery_consecutive);
}

core::NsyncConfig load_nsync_config(ByteReader& r) {
  core::NsyncConfig cfg;
  const auto sync = r.pod<std::uint32_t>();
  if (sync > static_cast<std::uint32_t>(core::SyncMethod::kDtw)) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: unknown sync method " +
                              std::to_string(sync));
  }
  cfg.sync = static_cast<core::SyncMethod>(sync);
  cfg.dwm.n_win = r.pod<std::uint64_t>();
  cfg.dwm.n_hop = r.pod<std::uint64_t>();
  cfg.dwm.n_ext = r.pod<std::uint64_t>();
  cfg.dwm.n_sigma = r.pod<double>();
  cfg.dwm.eta = r.pod<double>();
  cfg.dwm.tde.use_fft = r.pod<std::uint8_t>() != 0;
  cfg.dtw_radius = r.pod<std::uint64_t>();
  const auto metric = r.pod<std::uint32_t>();
  if (metric > static_cast<std::uint32_t>(core::DistanceMetric::kCorrelation)) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: unknown distance metric " +
                              std::to_string(metric));
  }
  cfg.metric = static_cast<core::DistanceMetric>(metric);
  cfg.filter_window = r.pod<std::uint64_t>();
  cfg.r = r.pod<double>();
  cfg.health.history = r.pod<std::uint64_t>();
  cfg.health.degraded_fraction = r.pod<double>();
  cfg.health.offline_consecutive = r.pod<std::uint64_t>();
  cfg.health.recovery_consecutive = r.pod<std::uint64_t>();
  return cfg;
}

void save_thresholds(ByteWriter& w, const core::Thresholds& t) {
  w.pod<double>(t.c_c);
  w.pod<double>(t.h_c);
  w.pod<double>(t.v_c);
}

core::Thresholds load_thresholds(ByteReader& r) {
  core::Thresholds t;
  t.c_c = r.pod<double>();
  t.h_c = r.pod<double>();
  t.v_c = r.pod<double>();
  return t;
}

void save_channel_spec(ByteWriter& w, const std::string& name,
                       const SignalView& reference,
                       const core::NsyncConfig& config,
                       const core::Thresholds& thresholds) {
  w.str(name);
  w.signal(reference);
  save_nsync_config(w, config);
  save_thresholds(w, thresholds);
}

void save_channel_spec(ByteWriter& w, const ChannelSpec& spec) {
  save_channel_spec(w, spec.name, SignalView(spec.reference), spec.config,
                    spec.thresholds);
}

ChannelSpec load_channel_spec(ByteReader& r) {
  ChannelSpec spec;
  spec.name = r.str();
  spec.reference = r.signal();
  spec.config = load_nsync_config(r);
  spec.thresholds = load_thresholds(r);
  return spec;
}

void save_fusion_policy(ByteWriter& w, const core::FusionPolicy& policy) {
  if (policy.kind() == core::FusionPolicyKind::kVoting) {
    const auto& voting = static_cast<const core::VotingPolicy&>(policy);
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(voting.rule()));
    return;
  }
  if (policy.kind() != core::FusionPolicyKind::kWeighted) {
    throw std::invalid_argument("save_fusion_policy: unserializable policy '" +
                                policy.name() + "'");
  }
  const auto& weighted = static_cast<const core::WeightedPolicy&>(policy);
  w.pod<std::uint32_t>(kFusionPolicyMarker);
  w.pod<std::uint8_t>(kFusionPolicyVersion);
  w.pod<std::uint8_t>(static_cast<std::uint8_t>(policy.kind()));
  w.pod<double>(weighted.config().threshold);
  w.pod<double>(weighted.config().degraded_weight);
  w.pod<double>(weighted.config().score_cap);
  w.pod<double>(weighted.config().spread_floor);
  w.pod<std::uint8_t>(weighted.trained() ? 1 : 0);
  w.pod<std::uint64_t>(weighted.weights().size());
  for (const auto& [name, weight] : weighted.weights()) {
    w.str(name);
    w.pod<double>(weight);
  }
}

std::shared_ptr<const core::FusionPolicy> load_fusion_policy(ByteReader& r) {
  const auto tag = r.pod<std::uint32_t>();
  if (tag != kFusionPolicyMarker) {
    // Legacy form: the bare rule u32, still fully supported.
    if (tag > static_cast<std::uint32_t>(core::FusionRule::kAll)) {
      throw CheckpointError(
          CheckpointErrorKind::kCorrupt,
          "session codec: unknown fusion rule " + std::to_string(tag));
    }
    return std::make_shared<core::VotingPolicy>(
        static_cast<core::FusionRule>(tag));
  }
  const auto version = r.pod<std::uint8_t>();
  if (version != kFusionPolicyVersion) {
    throw CheckpointError(
        CheckpointErrorKind::kBadVersion,
        "session codec: fusion policy sub-version " + std::to_string(version) +
            " not supported (this build reads version " +
            std::to_string(kFusionPolicyVersion) + ")");
  }
  const auto kind = r.pod<std::uint8_t>();
  if (kind == static_cast<std::uint8_t>(core::FusionPolicyKind::kVoting)) {
    // Explicit voting form: accepted for symmetry, never emitted.
    const auto rule = r.pod<std::uint32_t>();
    if (rule > static_cast<std::uint32_t>(core::FusionRule::kAll)) {
      throw CheckpointError(
          CheckpointErrorKind::kCorrupt,
          "session codec: unknown fusion rule " + std::to_string(rule));
    }
    return std::make_shared<core::VotingPolicy>(
        static_cast<core::FusionRule>(rule));
  }
  if (kind != static_cast<std::uint8_t>(core::FusionPolicyKind::kWeighted)) {
    throw CheckpointError(
        CheckpointErrorKind::kCorrupt,
        "session codec: unknown fusion policy kind " + std::to_string(kind));
  }
  core::WeightedPolicyConfig cfg;
  cfg.threshold = r.pod<double>();
  cfg.degraded_weight = r.pod<double>();
  cfg.score_cap = r.pod<double>();
  cfg.spread_floor = r.pod<double>();
  const auto trained = r.pod<std::uint8_t>();
  if (trained > 1) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: bad weighted-policy trained flag");
  }
  const auto n_weights = r.pod<std::uint64_t>();
  if (n_weights > r.remaining() || (trained == 1 && n_weights == 0) ||
      (trained == 0 && n_weights != 0)) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: implausible weighted-policy weight "
                          "count " +
                              std::to_string(n_weights));
  }
  std::vector<std::pair<std::string, double>> weights;
  weights.reserve(n_weights);
  for (std::uint64_t i = 0; i < n_weights; ++i) {
    std::string name = r.str();
    const double weight = r.pod<double>();
    weights.emplace_back(std::move(name), weight);
  }
  try {
    if (trained == 0) {
      return std::make_shared<core::WeightedPolicy>(cfg);
    }
    return std::make_shared<core::WeightedPolicy>(cfg, std::move(weights));
  } catch (const std::invalid_argument& e) {
    // Config/weight validation failures on hostile bytes surface as the
    // typed corruption error every loader promises.
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          std::string("session codec: ") + e.what());
  }
}

void save_session_spec(ByteWriter& w, const SessionSpec& spec) {
  w.str(spec.name);
  w.str(spec.model);
  if (spec.policy) {
    save_fusion_policy(w, *spec.policy);
  } else {
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(spec.rule));
  }
  w.pod<std::uint64_t>(spec.channels.size());
  for (const auto& c : spec.channels) save_channel_spec(w, c);
}

SessionSpec load_session_spec(ByteReader& r) {
  SessionSpec spec;
  spec.name = r.str();
  spec.model = r.str();
  spec.policy = load_fusion_policy(r);
  if (const auto* voting =
          dynamic_cast<const core::VotingPolicy*>(spec.policy.get())) {
    spec.rule = voting->rule();
  } else {
    spec.rule = core::FusionRule::kAny;
  }
  const auto n_channels = r.pod<std::uint64_t>();
  if (n_channels == 0 || n_channels > r.remaining()) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "session codec: implausible channel count in "
                          "session '" +
                              spec.name + "'");
  }
  spec.channels.reserve(n_channels);
  for (std::uint64_t i = 0; i < n_channels; ++i) {
    spec.channels.push_back(load_channel_spec(r));
  }
  return spec;
}

}  // namespace nsync::engine
