// ChaosProxy — seeded fault-injecting relay for resilience tests.
//
// Sits between an NSFP client and the fleet daemon on Unix-domain
// sockets and forwards bytes while injecting the transport faults the
// resilience layer must survive: partial writes (bytes trickle through in
// small chunks, exercising hostile re-chunking on both decoders), delayed
// reads, and seeded mid-frame disconnects (a chunk is cut at a random
// byte and both sides are severed — the client sees a half-written frame
// vanish).  kill_active() severs every live link on demand for
// deterministic "daemon connection lost" moments in benches.
//
// All randomness derives from (options.seed, connection index), so a
// chaos soak is reproducible run-to-run.  This is test/bench
// infrastructure: it lives in the engine library only so the soak tests
// and bench_ext_resilience can share it.
#ifndef NSYNC_ENGINE_CHAOS_PROXY_HPP
#define NSYNC_ENGINE_CHAOS_PROXY_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace nsync::engine {

struct ChaosProxyOptions {
  std::string listen_uds;   ///< where clients connect
  std::string backend_uds;  ///< the real daemon socket
  std::uint64_t seed = 1;
  /// Per-forwarded-chunk probability of a mid-frame disconnect: a random
  /// prefix of the chunk is delivered, then both sides are severed.
  double drop_prob = 0.0;
  /// Per-chunk probability of sleeping before forwarding (delayed reads).
  double delay_prob = 0.0;
  std::uint32_t max_delay_ms = 5;
  /// Forward at most this many bytes per read — partial writes / hostile
  /// chunking.  Must be >= 1.
  std::size_t max_chunk = 512;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds listen_uds and starts relaying.  Throws on socket failure.
  void start();
  /// Severs all links, stops accepting and joins all threads.  Idempotent.
  void stop();

  /// Severs every live client↔backend link now (both directions);
  /// returns how many links were cut.  The proxy keeps accepting new
  /// connections, so reconnecting clients get a fresh link.
  std::size_t kill_active();

  [[nodiscard]] std::uint64_t connections() const { return connections_.load(); }
  /// Mid-frame disconnects injected by drop_prob (kill_active not counted).
  [[nodiscard]] std::uint64_t chaos_drops() const { return chaos_drops_.load(); }

 private:
  struct Link {
    int client_fd = -1;
    int backend_fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void pump(Link& link, std::uint64_t conn_index);
  void reap_finished_locked();

  ChaosProxyOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> chaos_drops_{0};
  std::thread accept_thread_;
  std::mutex links_mu_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_CHAOS_PROXY_HPP
