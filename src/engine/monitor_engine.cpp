#include "engine/monitor_engine.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <utility>

#include "engine/session_codec.hpp"
#include "runtime/thread_pool.hpp"
#include "signal/checkpoint.hpp"

namespace nsync::engine {

using nsync::signal::SignalView;

MonitorEngine::Channel::Channel(std::string channel_name,
                                const ChannelSpec& spec)
    : name(std::move(channel_name)),
      monitor(spec.reference, spec.config, spec.thresholds),
      staging(spec.reference.channels(), spec.reference.sample_rate()) {
  // Size everything for the full print up front: the reference bounds how
  // many windows DWM can ever produce, so the steady-state feed/poll loop
  // allocates nothing.
  const auto& dwm = spec.config.dwm;
  if (spec.reference.frames() >= dwm.n_win) {
    monitor.reserve_windows((spec.reference.frames() - dwm.n_win) / dwm.n_hop +
                            1);
  }
}

MonitorEngine::MonitorEngine(MonitorEngineOptions options)
    : options_(std::move(options)) {
  if (options_.baseline.adaptive) {
    options_.baseline.policy.validate();
    const std::string path = baseline_path();
    if (!path.empty() && std::filesystem::exists(path)) {
      // Bootstrap from the exported registry of a previous run.  A restore
      // from a fleet checkpoint overrides this with the crash-consistent
      // copy embedded in the payload.
      registry_ = std::make_unique<BaselineRegistry>(
          BaselineRegistry::load(path, options_.baseline.policy));
    } else {
      registry_ = std::make_unique<BaselineRegistry>(options_.baseline.policy);
    }
  }
}

std::size_t MonitorEngine::add_session(SessionSpec spec) {
  if (spec.channels.empty()) {
    throw std::invalid_argument("MonitorEngine::add_session: no channels");
  }
  // Adaptive admission: a session carrying a model identity arms the
  // registry's current thresholds for each (model, channel) baseline —
  // first contact seeds the baseline from the trained thresholds instead.
  // Skipped during checkpoint restore, which must arm the serialized
  // thresholds verbatim for bitwise replay.
  if (registry_ && resolve_on_admission_ && !spec.model.empty()) {
    for (auto& c : spec.channels) {
      c.thresholds = registry_->resolve(spec.model, c.name, c.thresholds);
    }
  }
  auto s = std::make_unique<Session>();
  s->name = std::move(spec.name);
  s->model = std::move(spec.model);
  s->policy = spec.policy
                  ? std::move(spec.policy)
                  : std::make_shared<const core::VotingPolicy>(spec.rule);
  s->channels.reserve(spec.channels.size());
  for (auto& c : spec.channels) {
    for (const auto& existing : s->channels) {
      if (existing.name == c.name) {
        throw std::invalid_argument(
            "MonitorEngine::add_session: duplicate channel '" + c.name + "'");
      }
    }
    s->channels.emplace_back(c.name, c);
  }
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

MonitorEngine::Session& MonitorEngine::session_at(std::size_t id) {
  if (id >= sessions_.size()) {
    throw std::out_of_range("MonitorEngine: no session " + std::to_string(id) +
                            " (" + std::to_string(sessions_.size()) +
                            " sessions registered)");
  }
  return *sessions_[id];
}

const MonitorEngine::Session& MonitorEngine::session_at(std::size_t id) const {
  if (id >= sessions_.size()) {
    throw std::out_of_range("MonitorEngine: no session " + std::to_string(id) +
                            " (" + std::to_string(sessions_.size()) +
                            " sessions registered)");
  }
  return *sessions_[id];
}

std::size_t MonitorEngine::feed(std::size_t session,
                                const std::string& channel,
                                const SignalView& frames) {
  Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  Channel* target = nullptr;
  for (auto& c : s.channels) {
    if (c.name == channel) {
      target = &c;
      break;
    }
  }
  if (s.evicted) {
    throw std::invalid_argument("MonitorEngine::feed: session '" + s.name +
                                "' (id " + std::to_string(session) +
                                ") has been evicted");
  }
  if (target == nullptr) {
    throw std::invalid_argument("MonitorEngine::feed: unknown channel '" +
                                channel + "' in session '" + s.name + "' (id " +
                                std::to_string(session) + ")");
  }
  target->staging.append(frames);
  s.frames_fed += frames.frames();
  if (options_.max_pending_frames > 0 &&
      target->staging.retained_frames() >= options_.max_pending_frames) {
    return drain_locked(s);
  }
  return 0;
}

std::size_t MonitorEngine::drain_locked(Session& s) {
  std::size_t windows = 0;
  for (auto& c : s.channels) {
    const std::size_t begin = c.staging.start();
    const std::size_t end = c.staging.end();
    if (end > begin) {
      windows += c.monitor.push(c.staging.view(begin, end));
      c.staging.drop_before(end);
    }
  }
  if (windows > 0 && !s.intrusion) {
    // Refresh the fused verdict through the session's policy — the same
    // health-aware fusion as the batch FusionIds: offline channels neither
    // alarm nor count toward the denominator (nor the weighted mean).  The
    // verdict and its alarm window latch.
    const core::FusedVerdict v = s.policy->evaluate(channel_scores_locked(s));
    if (v.intrusion) {
      s.intrusion = true;
      s.first_alarm_window = v.first_alarm_window;
    }
  }
  return windows;
}

std::vector<core::ChannelScore> MonitorEngine::channel_scores_locked(
    const Session& s) {
  std::vector<core::ChannelScore> scores;
  scores.reserve(s.channels.size());
  for (const auto& c : s.channels) {
    scores.push_back(
        {c.name,
         core::channel_score(c.monitor.features(), c.monitor.thresholds()),
         c.monitor.intrusion(), c.monitor.detection().first_alarm_window,
         c.monitor.health()});
  }
  return scores;
}

std::size_t MonitorEngine::poll() {
  std::atomic<std::size_t> total{0};
  nsync::runtime::parallel_for(0, sessions_.size(), [&](std::size_t i) {
    Session& s = *sessions_[i];
    const std::scoped_lock lock(s.mu);
    total.fetch_add(drain_locked(s), std::memory_order_relaxed);
  });
  const std::size_t windows = total.load(std::memory_order_relaxed);
  maybe_checkpoint(windows);
  return windows;
}

void MonitorEngine::maybe_checkpoint(std::size_t windows) {
  if (options_.checkpoint_dir.empty()) return;
  // poll() may be called from several threads at once (the class contract
  // only promises per-session serialization), so the policy counters and
  // the write are guarded by the engine-level checkpoint mutex.
  const std::scoped_lock lock(checkpoint_mu_);
  ++polls_since_checkpoint_;
  windows_since_checkpoint_ += windows;
  const bool poll_trigger = options_.checkpoint_every_polls > 0 &&
                            polls_since_checkpoint_ >=
                                options_.checkpoint_every_polls;
  const bool window_trigger = options_.checkpoint_every_windows > 0 &&
                              windows_since_checkpoint_ >=
                                  options_.checkpoint_every_windows;
  if (!poll_trigger && !window_trigger) return;
  checkpoint(checkpoint_path());
  polls_since_checkpoint_ = 0;
  windows_since_checkpoint_ = 0;
  ++checkpoints_written_;
}

std::size_t MonitorEngine::poll_inline() {
  std::size_t windows = 0;
  for (auto& sp : sessions_) {
    Session& s = *sp;
    const std::scoped_lock lock(s.mu);
    windows += drain_locked(s);
  }
  maybe_checkpoint(windows);
  return windows;
}

std::size_t MonitorEngine::poll_session(std::size_t session) {
  Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  return drain_locked(s);
}

void MonitorEngine::evict_session(std::size_t session) {
  Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  if (s.evicted) return;
  // Drain whatever is still staged so the end-of-print fold below sees
  // the whole fed stream.  This makes the folded maxima a pure function
  // of the frames fed before the eviction, independent of batch/drain
  // timing — required for deterministic crash replay of adapted state.
  drain_locked(s);
  // End-of-print baseline fold, gated on the session-level anti-poisoning
  // rule: only a benign fused verdict with every channel healthy may
  // update the device baseline.  Ineligible prints are counted as frozen.
  if (registry_ && !s.model.empty() && !s.channels.empty()) {
    bool eligible = !s.intrusion;
    for (const auto& c : s.channels) {
      if (c.monitor.health() != core::ChannelHealth::kHealthy) {
        eligible = false;
      }
    }
    for (const auto& c : s.channels) {
      registry_->fold(s.model, c.name, c.monitor.benign_feature_maxima(),
                      eligible && c.monitor.benign_windows() > 0);
    }
  }
  s.channels.clear();
  s.channels.shrink_to_fit();
  // The dynamic state is discarded with the monitors, so the latched
  // verdict goes too — a restore from a checkpoint holding the tombstone
  // must see the same (empty) state as this process does.
  s.frames_fed = 0;
  s.intrusion = false;
  s.first_alarm_window = -1;
  s.policy.reset();
  s.evicted = true;
}

SessionSnapshot MonitorEngine::snapshot_locked(const Session& s) {
  SessionSnapshot out;
  out.name = s.name;
  out.evicted = s.evicted;
  out.intrusion = s.intrusion;
  out.first_alarm_window = s.first_alarm_window;
  out.frames_fed = s.frames_fed;
  out.windows = std::numeric_limits<std::size_t>::max();
  // Live fused telemetry: evaluate the policy over the current scores so
  // operators see the fused score and per-channel weights even before (or
  // without) the verdict latching.
  core::FusedVerdict v;
  if (s.policy) {
    out.policy = s.policy->name();
    v = s.policy->evaluate(channel_scores_locked(s));
    out.fused_score = v.score;
    out.alarming_channels = v.alarming_channels;
    out.online_channels = v.online_channels;
  }
  out.channels.reserve(s.channels.size());
  for (std::size_t i = 0; i < s.channels.size(); ++i) {
    const Channel& c = s.channels[i];
    ChannelSnapshot cs;
    cs.name = c.name;
    cs.detection = c.monitor.detection();
    cs.health = c.monitor.health();
    cs.thresholds = c.monitor.thresholds();
    if (i < v.channels.size()) {
      cs.score = v.channels[i].score;
      cs.weight = v.channels[i].weight;
    }
    cs.width = c.staging.channels();
    cs.sample_rate = c.staging.sample_rate();
    cs.windows = c.monitor.windows();
    cs.pending_frames = c.staging.retained_frames();
    cs.frames_fed = c.staging.end();
    out.windows = std::min(out.windows, cs.windows);
    out.channels.push_back(std::move(cs));
  }
  if (s.channels.empty()) out.windows = 0;
  return out;
}

SessionSnapshot MonitorEngine::snapshot(std::size_t session) const {
  const Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  return snapshot_locked(s);
}

std::vector<SessionSnapshot> MonitorEngine::snapshots() const {
  std::vector<SessionSnapshot> out;
  out.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    out.push_back(snapshot(i));
  }
  return out;
}

namespace {

// Checkpoint section ids (outer structure of the fleet payload).
constexpr std::uint32_t kSecFleet = 0x544C4601;    // "\x01FLT"
constexpr std::uint32_t kSecSession = 0x53455301;  // "\x01SES"
constexpr std::uint32_t kSecChannel = 0x43484E01;  // "\x01CHN"

}  // namespace

void MonitorEngine::save_session(nsync::signal::ByteWriter& w,
                                 const Session& s) {
  const std::size_t tok = w.begin_section(kSecSession);
  w.str(s.name);
  w.pod<std::uint8_t>(s.evicted ? 1 : 0);
  if (s.evicted) {
    // Tombstone: the name keeps the id slot occupied, nothing else
    // survives eviction.
    w.end_section(tok);
    return;
  }
  w.str(s.model);
  // The policy slot keeps the legacy encoding (bare rule u32) for voting
  // sessions, so pre-policy checkpoints and their byte-parity tests are
  // untouched; weighted sessions write the versioned policy section, which
  // is how learned weights replay bitwise after a crash.
  save_fusion_policy(w, *s.policy);
  w.pod<std::uint64_t>(s.frames_fed);
  w.pod<std::uint8_t>(s.intrusion ? 1 : 0);
  w.pod<std::int64_t>(s.first_alarm_window);
  w.pod<std::uint64_t>(s.channels.size());
  for (const auto& c : s.channels) {
    const std::size_t ctok = w.begin_section(kSecChannel);
    // Full spec first, so restore() can rebuild the channel from the file
    // alone before applying the dynamic state.
    save_channel_spec(w, c.name, SignalView(c.monitor.reference()),
                      c.monitor.config(), c.monitor.thresholds());
    c.monitor.save_state(w);
    c.staging.save_state(w);
    w.end_section(ctok);
  }
  w.end_section(tok);
}

std::vector<std::uint8_t> MonitorEngine::serialize() const {
  nsync::signal::ByteWriter w;
  const std::size_t tok = w.begin_section(kSecFleet);
  w.pod<std::uint64_t>(sessions_.size());
  for (const auto& s : sessions_) {
    const std::scoped_lock lock(s->mu);
    save_session(w, *s);
  }
  // The adapted baseline state rides inside the same payload as the
  // session state: one atomic file, so a crash can never split "session
  // evicted" from "its print folded into the baseline".
  w.pod<std::uint8_t>(registry_ ? 1 : 0);
  if (registry_) registry_->save_state(w);
  w.end_section(tok);
  return w.take();
}

void MonitorEngine::checkpoint(const std::string& path) const {
  const std::vector<std::uint8_t> payload = serialize();
  nsync::signal::write_checkpoint_file(path, payload);
  // Operator-visible export of the adapted per-device state.  Written
  // after the fleet checkpoint on purpose: the .nbrg is a convenience
  // copy — the authoritative state is inside the .nckp above.
  const std::string bpath = baseline_path();
  if (registry_ && !bpath.empty()) registry_->save(bpath);
}

std::string MonitorEngine::checkpoint_path() const {
  if (options_.checkpoint_dir.empty()) return {};
  return options_.checkpoint_dir + "/" + options_.checkpoint_filename;
}

std::string MonitorEngine::baseline_path() const {
  if (!options_.baseline.adaptive || options_.baseline.dir.empty()) return {};
  return options_.baseline.dir + "/" + options_.baseline.filename;
}

MonitorEngine MonitorEngine::restore_from_bytes(
    std::span<const std::uint8_t> payload, MonitorEngineOptions options) {
  using nsync::signal::ByteReader;
  using nsync::signal::CheckpointError;
  using nsync::signal::CheckpointErrorKind;
  MonitorEngine engine(std::move(options));
  // Restored sessions arm their serialized thresholds verbatim; resolving
  // them against the registry would change the replayed verdicts.
  engine.resolve_on_admission_ = false;
  try {
    ByteReader top(payload);
    ByteReader fleet = top.section(kSecFleet);
    top.finish();
    const auto n_sessions = fleet.pod<std::uint64_t>();
    if (n_sessions > fleet.remaining()) {
      throw CheckpointError(CheckpointErrorKind::kCorrupt,
                            "MonitorEngine checkpoint: implausible session "
                            "count " +
                                std::to_string(n_sessions));
    }
    for (std::uint64_t i = 0; i < n_sessions; ++i) {
      ByteReader sr = fleet.section(kSecSession);
      SessionSpec spec;
      spec.name = sr.str();
      const auto evicted = sr.pod<std::uint8_t>();
      if (evicted > 1) {
        throw CheckpointError(CheckpointErrorKind::kCorrupt,
                              "MonitorEngine checkpoint: bad eviction flag "
                              "in session '" +
                                  spec.name + "'");
      }
      if (evicted == 1) {
        sr.finish();
        auto tomb = std::make_unique<Session>();
        tomb->name = std::move(spec.name);
        tomb->evicted = true;
        engine.sessions_.push_back(std::move(tomb));
        continue;
      }
      spec.model = sr.str();
      spec.policy = load_fusion_policy(sr);
      if (const auto* voting =
              dynamic_cast<const core::VotingPolicy*>(spec.policy.get())) {
        spec.rule = voting->rule();
      }
      const auto frames_fed = sr.pod<std::uint64_t>();
      const auto intrusion = sr.pod<std::uint8_t>();
      const auto first_alarm = sr.pod<std::int64_t>();
      if (intrusion > 1 || first_alarm < -1 ||
          (intrusion == 0 && first_alarm != -1)) {
        throw CheckpointError(CheckpointErrorKind::kCorrupt,
                              "MonitorEngine checkpoint: inconsistent fused "
                              "verdict in session '" +
                                  spec.name + "'");
      }
      const auto n_channels = sr.pod<std::uint64_t>();
      if (n_channels == 0 || n_channels > sr.remaining()) {
        throw CheckpointError(CheckpointErrorKind::kCorrupt,
                              "MonitorEngine checkpoint: implausible channel "
                              "count in session '" +
                                  spec.name + "'");
      }
      // Two passes over the channel sections: the spec fields rebuild the
      // monitors (add_session), after which the saved sub-readers replay
      // the dynamic state into them.
      std::vector<ByteReader> state_readers;
      state_readers.reserve(n_channels);
      spec.channels.reserve(n_channels);
      for (std::uint64_t j = 0; j < n_channels; ++j) {
        ByteReader cr = sr.section(kSecChannel);
        spec.channels.push_back(load_channel_spec(cr));
        state_readers.push_back(cr);  // positioned at the dynamic state
      }
      sr.finish();
      const std::size_t id = engine.add_session(std::move(spec));
      Session& s = *engine.sessions_[id];
      s.frames_fed = frames_fed;
      s.intrusion = intrusion != 0;
      s.first_alarm_window = first_alarm;
      for (std::uint64_t j = 0; j < n_channels; ++j) {
        Channel& c = s.channels[j];
        ByteReader& cr = state_readers[j];
        c.monitor.restore_state(cr);
        c.staging.restore_state(cr);
        cr.finish();
      }
    }
    const auto has_registry = fleet.pod<std::uint8_t>();
    if (has_registry > 1) {
      throw CheckpointError(CheckpointErrorKind::kCorrupt,
                            "MonitorEngine checkpoint: bad registry flag");
    }
    if (has_registry == 1) {
      if (engine.registry_ == nullptr) {
        throw CheckpointError(
            CheckpointErrorKind::kMismatch,
            "MonitorEngine checkpoint: payload carries a baseline registry "
            "but the engine is not configured adaptive");
      }
      // The embedded copy is crash-consistent with the session state and
      // overrides any .nbrg file the constructor bootstrapped from.
      engine.registry_->restore_state(fleet);
    }
    fleet.finish();
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // Constructor/validation failures on hostile spec bytes (e.g.
    // DwmParams::validate) surface as the one typed error restore promises.
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          std::string("MonitorEngine checkpoint: ") + e.what());
  }
  engine.resolve_on_admission_ = true;
  return engine;
}

MonitorEngine MonitorEngine::restore(const std::string& path,
                                     MonitorEngineOptions options) {
  const std::vector<std::uint8_t> payload =
      nsync::signal::read_checkpoint_file(path);
  return restore_from_bytes(payload, std::move(options));
}

}  // namespace nsync::engine
