#include "engine/monitor_engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace nsync::engine {

using nsync::signal::SignalView;

MonitorEngine::Channel::Channel(std::string channel_name,
                                const ChannelSpec& spec)
    : name(std::move(channel_name)),
      monitor(spec.reference, spec.config, spec.thresholds),
      staging(spec.reference.channels(), spec.reference.sample_rate()) {
  // Size everything for the full print up front: the reference bounds how
  // many windows DWM can ever produce, so the steady-state feed/poll loop
  // allocates nothing.
  const auto& dwm = spec.config.dwm;
  if (spec.reference.frames() >= dwm.n_win) {
    monitor.reserve_windows((spec.reference.frames() - dwm.n_win) / dwm.n_hop +
                            1);
  }
}

MonitorEngine::MonitorEngine(MonitorEngineOptions options)
    : options_(options) {}

std::size_t MonitorEngine::add_session(SessionSpec spec) {
  if (spec.channels.empty()) {
    throw std::invalid_argument("MonitorEngine::add_session: no channels");
  }
  auto s = std::make_unique<Session>();
  s->name = std::move(spec.name);
  s->rule = spec.rule;
  s->channels.reserve(spec.channels.size());
  for (auto& c : spec.channels) {
    for (const auto& existing : s->channels) {
      if (existing.name == c.name) {
        throw std::invalid_argument(
            "MonitorEngine::add_session: duplicate channel '" + c.name + "'");
      }
    }
    s->channels.emplace_back(c.name, c);
  }
  sessions_.push_back(std::move(s));
  return sessions_.size() - 1;
}

MonitorEngine::Session& MonitorEngine::session_at(std::size_t id) {
  if (id >= sessions_.size()) {
    throw std::out_of_range("MonitorEngine: no session " + std::to_string(id));
  }
  return *sessions_[id];
}

const MonitorEngine::Session& MonitorEngine::session_at(std::size_t id) const {
  if (id >= sessions_.size()) {
    throw std::out_of_range("MonitorEngine: no session " + std::to_string(id));
  }
  return *sessions_[id];
}

std::size_t MonitorEngine::feed(std::size_t session,
                                const std::string& channel,
                                const SignalView& frames) {
  Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  Channel* target = nullptr;
  for (auto& c : s.channels) {
    if (c.name == channel) {
      target = &c;
      break;
    }
  }
  if (target == nullptr) {
    throw std::invalid_argument("MonitorEngine::feed: unknown channel '" +
                                channel + "'");
  }
  target->staging.append(frames);
  s.frames_fed += frames.frames();
  if (options_.max_pending_frames > 0 &&
      target->staging.retained_frames() >= options_.max_pending_frames) {
    return drain_locked(s);
  }
  return 0;
}

std::size_t MonitorEngine::drain_locked(Session& s) {
  std::size_t windows = 0;
  for (auto& c : s.channels) {
    const std::size_t begin = c.staging.start();
    const std::size_t end = c.staging.end();
    if (end > begin) {
      windows += c.monitor.push(c.staging.view(begin, end));
      c.staging.drop_before(end);
    }
  }
  if (windows > 0 && !s.intrusion) {
    // Refresh the fused verdict with the same health-aware vote as the
    // batch FusionIds: offline channels neither alarm nor count toward
    // the denominator.  The verdict and its alarm window latch.
    std::size_t alarming = 0;
    std::size_t online = 0;
    std::ptrdiff_t first = -1;
    for (const auto& c : s.channels) {
      if (c.monitor.health() == core::ChannelHealth::kOffline) continue;
      ++online;
      if (c.monitor.intrusion()) {
        ++alarming;
        const std::ptrdiff_t w = c.monitor.detection().first_alarm_window;
        if (first < 0 || (w >= 0 && w < first)) first = w;
      }
    }
    if (core::fused_intrusion(s.rule, alarming, online)) {
      s.intrusion = true;
      s.first_alarm_window = first;
    }
  }
  return windows;
}

std::size_t MonitorEngine::poll() {
  std::atomic<std::size_t> total{0};
  nsync::runtime::parallel_for(0, sessions_.size(), [&](std::size_t i) {
    Session& s = *sessions_[i];
    const std::scoped_lock lock(s.mu);
    total.fetch_add(drain_locked(s), std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

std::size_t MonitorEngine::poll_session(std::size_t session) {
  Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  return drain_locked(s);
}

SessionSnapshot MonitorEngine::snapshot_locked(const Session& s) {
  SessionSnapshot out;
  out.name = s.name;
  out.intrusion = s.intrusion;
  out.first_alarm_window = s.first_alarm_window;
  out.frames_fed = s.frames_fed;
  out.windows = std::numeric_limits<std::size_t>::max();
  out.channels.reserve(s.channels.size());
  for (const auto& c : s.channels) {
    ChannelSnapshot cs;
    cs.name = c.name;
    cs.detection = c.monitor.detection();
    cs.health = c.monitor.health();
    cs.windows = c.monitor.windows();
    cs.pending_frames = c.staging.retained_frames();
    out.windows = std::min(out.windows, cs.windows);
    if (cs.health != core::ChannelHealth::kOffline) {
      ++out.online_channels;
      if (cs.detection.intrusion) ++out.alarming_channels;
    }
    out.channels.push_back(std::move(cs));
  }
  if (s.channels.empty()) out.windows = 0;
  return out;
}

SessionSnapshot MonitorEngine::snapshot(std::size_t session) const {
  const Session& s = session_at(session);
  const std::scoped_lock lock(s.mu);
  return snapshot_locked(s);
}

std::vector<SessionSnapshot> MonitorEngine::snapshots() const {
  std::vector<SessionSnapshot> out;
  out.reserve(sessions_.size());
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    out.push_back(snapshot(i));
  }
  return out;
}

}  // namespace nsync::engine
