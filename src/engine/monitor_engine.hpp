// Multi-session monitoring engine — the fleet layer on top of the
// streaming detection stack.
//
// One MonitorEngine serves N concurrent print-monitoring sessions.  A
// session is one print job: per-channel reference signals + NSYNC configs
// + learned thresholds, one RealtimeMonitor per side channel, and a
// health-aware fusion rule over the per-channel verdicts (the same vote as
// the batch FusionIds, via core::fused_intrusion).
//
// Frames arrive via feed(), which only appends to a per-channel staging
// ring buffer — cheap enough to call from an acquisition callback.  The
// actual window processing happens in poll(), which drains every session's
// staged frames through its monitors, scheduling sessions on the shared
// nsync_runtime thread pool (one task per session; each session is
// internally sequential, so per-session results are bitwise identical at
// any worker count).  Memory stays bounded: the monitors' synchronizer
// buffers are rings, and a session whose staging exceeds
// Options::max_pending_frames is drained inline by feed() itself instead
// of growing without limit.
#ifndef NSYNC_ENGINE_MONITOR_ENGINE_HPP
#define NSYNC_ENGINE_MONITOR_ENGINE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/fusion.hpp"
#include "core/health.hpp"
#include "core/nsync.hpp"
#include "engine/baseline_registry.hpp"
#include "signal/ring_buffer.hpp"
#include "signal/signal.hpp"

namespace nsync::signal {
class ByteWriter;
class ByteReader;
}  // namespace nsync::signal

namespace nsync::engine {

/// One side channel of a session: its reference signal, NSYNC config and
/// learned OCC thresholds (train offline with NsyncIds::fit, or reuse a
/// fleet-wide calibration).  `config.sync` must be kDwm.
struct ChannelSpec {
  std::string name;
  nsync::signal::Signal reference;
  core::NsyncConfig config;
  core::Thresholds thresholds;
};

/// One monitored print job.
struct SessionSpec {
  std::string name;
  /// Printer model this session's device belongs to.  Together with each
  /// channel's name (the sensor profile) it keys the baseline registry:
  /// when the engine runs adaptive, admission re-resolves each channel's
  /// thresholds from the per-device baseline and eviction folds the
  /// print's benign feature maxima back in.  Empty opts the session out
  /// of adaptation (its trained thresholds are used verbatim).
  std::string model;
  std::vector<ChannelSpec> channels;
  /// Voting rule used when `policy` is null (the historical field).
  core::FusionRule rule = core::FusionRule::kAny;
  /// Fusion policy for the session's fused verdict.  Null synthesizes
  /// VotingPolicy(rule) at admission, preserving the rule-era behavior
  /// (and its serialized bytes) exactly.
  std::shared_ptr<const core::FusionPolicy> policy;
};

/// Point-in-time view of one channel of a session.
struct ChannelSnapshot {
  std::string name;
  core::Detection detection;
  core::ChannelHealth health = core::ChannelHealth::kHealthy;
  /// The OCC thresholds this channel's monitor is armed with (after any
  /// registry resolution at admission) — lets operators and the
  /// crash-recovery diff observe adapted calibration per session.
  core::Thresholds thresholds;
  /// Normalized OCC margin (core::channel_score) over the windows
  /// processed so far: 1.0 = at the learned threshold.
  double score = 0.0;
  /// This channel's normalized share of the fused verdict under the
  /// session's policy (0 for offline channels).
  double weight = 0.0;
  std::size_t width = 0;           ///< samples per frame (signal channels)
  double sample_rate = 0.0;        ///< frames per second
  std::size_t windows = 0;         ///< windows processed so far
  std::size_t pending_frames = 0;  ///< staged frames awaiting poll()
  /// Total frames ever fed to this channel (processed + pending).  After a
  /// restore this tells the feeder where to resume its stream.
  std::size_t frames_fed = 0;
};

/// Point-in-time view of one session: the fused verdict plus per-channel
/// breakdown and progress counters.
struct SessionSnapshot {
  std::string name;
  /// True once the session has been evicted: its monitors and buffers are
  /// released, only the name and this flag remain (ids are never reused).
  bool evicted = false;
  bool intrusion = false;  ///< latched fused verdict
  /// Earliest first_alarm_window among the channels alarming when the
  /// fused verdict latched; -1 while benign.
  std::ptrdiff_t first_alarm_window = -1;
  /// The session's fusion policy name ("any", "weighted", ...); empty on
  /// an evicted tombstone.
  std::string policy;
  /// Current fused anomaly score under the session's policy (see
  /// core::FusedVerdict::score) — live telemetry, not latched.
  double fused_score = 0.0;
  std::size_t alarming_channels = 0;  ///< alarming among online channels
  std::size_t online_channels = 0;    ///< channels not classified offline
  std::size_t frames_fed = 0;         ///< total frames accepted via feed()
  std::size_t windows = 0;            ///< min windows across channels
  std::vector<ChannelSnapshot> channels;
};

/// Per-device baseline adaptation knobs (see engine/baseline_registry.hpp
/// for the state machine and anti-poisoning guarantees).
struct BaselineOptions {
  /// Enables the registry: add_session resolves each channel's thresholds
  /// from the (model, channel-name) baseline, evict_session folds the
  /// finished print's benign feature maxima back in (gated on a benign
  /// fused verdict and all-healthy channels).
  bool adaptive = false;
  /// When non-empty: construction bootstraps the registry from
  /// `<dir>/<filename>` if that file exists, and every checkpoint() also
  /// exports the registry there (atomic NCKP container).  The
  /// authoritative crash-consistent copy always lives inside the fleet
  /// checkpoint payload itself.
  std::string dir;
  std::string filename = "baselines.nbrg";
  AdaptationPolicy policy;
};

/// Engine tuning knobs.
struct MonitorEngineOptions {
  /// A channel whose staging buffer reaches this many frames is drained
  /// inline by feed() (that session only), bounding per-session memory
  /// even when the caller never polls.  0 disables the backstop.
  std::size_t max_pending_frames = 65536;

  /// When non-empty, poll() periodically writes an atomic checkpoint of
  /// the whole fleet to `<checkpoint_dir>/fleet.nckp` (see
  /// checkpoint_path()).  The directory must already exist.
  std::string checkpoint_dir;
  /// Checkpoint after this many poll() calls (counting from the previous
  /// checkpoint).  0 disables the poll-count trigger.
  std::size_t checkpoint_every_polls = 1;
  /// Additionally checkpoint once this many windows have been processed
  /// since the previous checkpoint (fires at the first poll() that crosses
  /// the total).  0 disables the window-count trigger.
  std::size_t checkpoint_every_windows = 0;
  /// File name the periodic policy writes inside checkpoint_dir.  The
  /// sharded fleet gives each shard's engine its own name
  /// ("fleet.<shard>.nckp") so N shards checkpoint into one directory
  /// without clobbering each other.
  std::string checkpoint_filename = "fleet.nckp";

  /// Per-device baseline adaptation (off by default).
  BaselineOptions baseline;
};

/// N concurrent streaming sessions over the shared thread pool.
///
/// Thread safety: add_session must not run concurrently with feed/poll/
/// snapshot (register the fleet first).  After that, feed() calls for
/// *different* sessions may run concurrently; feed() for one session,
/// poll() and snapshot() serialize internally on per-session mutexes.
class MonitorEngine {
 public:
  explicit MonitorEngine(MonitorEngineOptions options = {});

  // Movable (restore() builds the fleet into a local and returns it); the
  // checkpoint mutex is not moved — the destination gets a fresh one, and
  // moving an engine with concurrent users is a caller error regardless.
  MonitorEngine(MonitorEngine&& other) noexcept
      : options_(std::move(other.options_)),
        sessions_(std::move(other.sessions_)),
        registry_(std::move(other.registry_)),
        resolve_on_admission_(other.resolve_on_admission_),
        polls_since_checkpoint_(other.polls_since_checkpoint_),
        windows_since_checkpoint_(other.windows_since_checkpoint_),
        checkpoints_written_(other.checkpoints_written_) {}
  MonitorEngine& operator=(MonitorEngine&& other) noexcept {
    options_ = std::move(other.options_);
    sessions_ = std::move(other.sessions_);
    registry_ = std::move(other.registry_);
    resolve_on_admission_ = other.resolve_on_admission_;
    polls_since_checkpoint_ = other.polls_since_checkpoint_;
    windows_since_checkpoint_ = other.windows_since_checkpoint_;
    checkpoints_written_ = other.checkpoints_written_;
    return *this;
  }

  /// Registers a session and returns its id (dense, starting at 0).
  /// Throws std::invalid_argument on an empty or invalid spec.
  std::size_t add_session(SessionSpec spec);

  [[nodiscard]] std::size_t sessions() const { return sessions_.size(); }

  /// Stages observed frames for one channel of one session.  Returns the
  /// number of windows processed inline (0 unless the max_pending_frames
  /// backstop tripped).
  std::size_t feed(std::size_t session, const std::string& channel,
                   const nsync::signal::SignalView& frames);

  /// Drains every session's staged frames through its monitors, running
  /// sessions in parallel on the global thread pool.  Returns the total
  /// number of windows processed across the fleet.
  std::size_t poll();

  /// poll(), but every session is drained sequentially on the calling
  /// thread — no global-pool tasks are enqueued.  This is what each
  /// ShardedFleet worker uses: with one engine per shard worker, routing
  /// the drains through the shared pool would serialize the shards on the
  /// pool's queue instead of running them on their own cores.  Fires the
  /// same periodic checkpoint policy as poll().
  std::size_t poll_inline();

  /// Drains one session only (inline, on the calling thread).
  std::size_t poll_session(std::size_t session);

  /// Releases a session's monitors, staging buffers and reference signals,
  /// leaving a named tombstone so session ids stay stable (they are never
  /// reused).  Evicted sessions are skipped by poll() and serialized as
  /// stubs; feeding one throws std::invalid_argument.  Idempotent.
  void evict_session(std::size_t session);

  [[nodiscard]] SessionSnapshot snapshot(std::size_t session) const;
  [[nodiscard]] std::vector<SessionSnapshot> snapshots() const;

  // --- Crash-safe checkpointing -------------------------------------------
  //
  // A checkpoint is self-contained: it stores every session's full spec
  // (names, reference signals, configs, thresholds) plus all streaming
  // state (synchronizer rings, detection cores, health machines, staging
  // buffers, fused verdicts), so restore() rebuilds the entire fleet from
  // the file alone.  The bitwise-recovery property (tests/
  // test_checkpoint.cpp): kill the process at any point, restore the last
  // checkpoint, replay the frames fed since, and every detection, health
  // state, fused verdict and first_alarm_window is identical to a run
  // that never stopped.

  /// Serializes the whole fleet into a checkpoint payload (unframed).
  /// Takes each session's lock in turn; may run concurrently with feed().
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// serialize() + container framing + atomic file replacement.  A crash
  /// mid-write leaves the previous checkpoint at `path` intact.  Throws
  /// CheckpointError(kIo) on filesystem failure.
  void checkpoint(const std::string& path) const;

  /// Rebuilds a fleet from a checkpoint payload.  Throws CheckpointError
  /// (kTruncated/kCorrupt/kMismatch) on malformed input; never applies a
  /// partial restore (the engine is built fresh or not at all).
  [[nodiscard]] static MonitorEngine restore_from_bytes(
      std::span<const std::uint8_t> payload, MonitorEngineOptions options = {});

  /// Reads, validates and restores a checkpoint file written by
  /// checkpoint().  Adds kIo/kBadMagic/kBadVersion to the error set.
  [[nodiscard]] static MonitorEngine restore(const std::string& path,
                                             MonitorEngineOptions options = {});

  /// Where the periodic policy writes its checkpoint
  /// (`<checkpoint_dir>/fleet.nckp`); empty when the policy is disabled.
  [[nodiscard]] std::string checkpoint_path() const;

  /// Where checkpoint() exports the registry
  /// (`<baseline.dir>/<baseline.filename>`); empty when adaptation is off
  /// or no baseline dir is configured.
  [[nodiscard]] std::string baseline_path() const;

  /// Checkpoints written by the periodic policy so far.
  [[nodiscard]] std::size_t checkpoints_written() const {
    const std::scoped_lock lock(checkpoint_mu_);
    return checkpoints_written_;
  }

  /// The per-device baseline registry, or nullptr when the engine runs
  /// with fixed thresholds (options.baseline.adaptive == false).
  [[nodiscard]] const BaselineRegistry* baseline_registry() const {
    return registry_.get();
  }

 private:
  struct Channel {
    std::string name;
    core::RealtimeMonitor monitor;
    nsync::signal::FrameRingBuffer staging;

    Channel(std::string channel_name, const ChannelSpec& spec);
  };

  struct Session {
    std::string name;
    std::string model;  ///< registry key prefix; empty = not adaptive
    /// Fusion policy driving the fused verdict; set at admission (a null
    /// spec policy becomes VotingPolicy(spec.rule)), cleared on eviction
    /// with the rest of the dynamic state.
    std::shared_ptr<const core::FusionPolicy> policy;
    mutable std::mutex mu;
    std::vector<Channel> channels;
    std::size_t frames_fed = 0;
    bool intrusion = false;
    std::ptrdiff_t first_alarm_window = -1;
    bool evicted = false;
  };

  Session& session_at(std::size_t id);
  [[nodiscard]] const Session& session_at(std::size_t id) const;
  /// Per-channel score vector for the session's policy (latched alarm
  /// bits + live normalized OCC margins).  Caller must hold s.mu.
  [[nodiscard]] static std::vector<core::ChannelScore> channel_scores_locked(
      const Session& s);
  /// Pushes all staged frames of `s` through its monitors and refreshes
  /// the fused verdict.  Caller must hold s.mu.
  std::size_t drain_locked(Session& s);
  static SessionSnapshot snapshot_locked(const Session& s);
  static void save_session(nsync::signal::ByteWriter& w, const Session& s);
  /// Fires the periodic checkpoint policy after a poll that processed
  /// `windows` windows.
  void maybe_checkpoint(std::size_t windows);

  MonitorEngineOptions options_;
  // unique_ptr keeps Session addresses (and their mutexes) stable while
  // the vector grows.
  std::vector<std::unique_ptr<Session>> sessions_;
  // Present iff options_.baseline.adaptive; BaselineRegistry locks
  // internally, so resolve/fold/serialize may run under session mutexes.
  std::unique_ptr<BaselineRegistry> registry_;
  // restore_from_bytes() admits sessions with their *serialized* (already
  // resolved) thresholds; re-resolving them against the restored registry
  // would arm newer thresholds than the original run and break bitwise
  // verdict replay.  Cleared for the duration of the restore loop.
  bool resolve_on_admission_ = true;
  // Serializes the periodic checkpoint policy: concurrent poll() calls
  // are allowed, so the trigger counters and the checkpoint write itself
  // need their own lock (per-session mutexes don't cover them).
  mutable std::mutex checkpoint_mu_;
  std::size_t polls_since_checkpoint_ = 0;
  std::size_t windows_since_checkpoint_ = 0;
  std::size_t checkpoints_written_ = 0;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_MONITOR_ENGINE_HPP
