// Binary codec for session/channel specifications, shared by the two
// places a SessionSpec crosses a byte boundary:
//
//   * checkpoints — MonitorEngine::serialize() stores every channel's full
//     spec so restore() can rebuild the fleet from the file alone, and
//   * the frame-ingest wire protocol — ADD_SESSION carries the same spec
//     from a client to the fleet daemon.
//
// Both sides reuse the signal/checkpoint ByteWriter/ByteReader primitives,
// so a spec encoded for the wire is byte-identical to the spec section of
// a checkpoint and every validation rule (enum ranges, bounds-checked
// counts) is written exactly once.  All loaders throw
// signal::CheckpointError (kCorrupt/kTruncated) on malformed input and
// never partially construct a spec.
#ifndef NSYNC_ENGINE_SESSION_CODEC_HPP
#define NSYNC_ENGINE_SESSION_CODEC_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "core/fusion.hpp"
#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "signal/signal.hpp"

namespace nsync::signal {
class ByteWriter;
class ByteReader;
}  // namespace nsync::signal

namespace nsync::engine {

/// NsyncConfig as a fixed field sequence (enums range-checked on load).
void save_nsync_config(nsync::signal::ByteWriter& w,
                       const core::NsyncConfig& cfg);
[[nodiscard]] core::NsyncConfig load_nsync_config(nsync::signal::ByteReader& r);

/// OCC thresholds (three raw-bit doubles).
void save_thresholds(nsync::signal::ByteWriter& w, const core::Thresholds& t);
[[nodiscard]] core::Thresholds load_thresholds(nsync::signal::ByteReader& r);

/// One channel's full spec: name | reference signal | config | thresholds.
/// The field overload lets MonitorEngine serialize from its live monitor
/// without materializing a ChannelSpec copy.
void save_channel_spec(nsync::signal::ByteWriter& w, const std::string& name,
                       const nsync::signal::SignalView& reference,
                       const core::NsyncConfig& config,
                       const core::Thresholds& thresholds);
void save_channel_spec(nsync::signal::ByteWriter& w, const ChannelSpec& spec);
[[nodiscard]] ChannelSpec load_channel_spec(nsync::signal::ByteReader& r);

/// Value in the legacy fusion-rule u32 slot announcing that a versioned
/// policy section follows.  No FusionRule can ever encode to it, so old
/// decoders reject it cleanly and new decoders accept both forms.
inline constexpr std::uint32_t kFusionPolicyMarker = 0xFFFFFFFFu;
/// Current sub-version of the policy section that follows the marker.
inline constexpr std::uint8_t kFusionPolicyVersion = 1;

/// Fusion policy, in the slot that historically held the bare rule u32.
/// Voting policies keep the legacy encoding byte-for-byte (the rule u32
/// alone), so pre-policy decoders, existing checkpoints and the bitwise
/// parity tests are untouched; any other policy writes kFusionPolicyMarker
/// followed by `sub-version u8 | kind u8 | kind payload`.
void save_fusion_policy(nsync::signal::ByteWriter& w,
                        const core::FusionPolicy& policy);
/// Decodes either form into a policy (a legacy rule u32 becomes a
/// VotingPolicy).  Throws CheckpointError: kCorrupt on an unknown rule,
/// policy kind or malformed weights; kBadVersion on an unknown policy
/// sub-version (the forward-compat signal — newer emitters must not be
/// silently misread).
[[nodiscard]] std::shared_ptr<const core::FusionPolicy> load_fusion_policy(
    nsync::signal::ByteReader& r);

/// A whole SessionSpec: name | fusion policy | channel count | channels.
/// load_session_spec bounds-checks the channel count against the
/// remaining bytes and rejects zero channels.
void save_session_spec(nsync::signal::ByteWriter& w, const SessionSpec& spec);
[[nodiscard]] SessionSpec load_session_spec(nsync::signal::ByteReader& r);

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_SESSION_CODEC_HPP
