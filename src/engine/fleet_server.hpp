// FleetServer — serves the NSFP frame-ingest protocol over a socket.
//
// One server fronts one ShardedFleet.  It listens on a Unix-domain socket
// (the default deployment: acquisition host and daemon on the same
// machine) or a localhost TCP port, accepts any number of client
// connections, and dispatches decoded requests straight into the fleet.
// The socket threads are pure ingest: all detection work still happens on
// the fleet's shard workers, so a slow client never stalls a shard and a
// saturated shard pushes back through the queue policy (FEED replies carry
// shed/queued counts; kReject surfaces as an OVERLOADED error reply).
//
// Error discipline mirrors FrameDecoder: frame-local failures (unknown
// type, malformed payload, unknown session/channel, overload) get a typed
// ERROR reply and the connection continues; stream-poisoning failures (bad
// magic/version/CRC/length) get a final ERROR reply and the connection is
// closed, because the byte stream can no longer be trusted.
//
// Resilience (deadline I/O): per-connection reads and writes run through
// poll() with configurable deadlines.  A connection that stays silent past
// idle_timeout_ms is reaped (half-open clients no longer leak a thread and
// an fd forever), a reply write that cannot complete within
// write_timeout_ms closes the slow consumer instead of wedging its thread,
// and an admission cap (max_connections) answers excess connects with a
// typed kBusy error carrying a retry-after-ms hint.  All of it is
// accounted in FleetServerStats.
#ifndef NSYNC_ENGINE_FLEET_SERVER_HPP
#define NSYNC_ENGINE_FLEET_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_fleet.hpp"
#include "engine/wire_protocol.hpp"

namespace nsync::engine {

struct FleetServerOptions {
  /// Unix-domain socket path.  Takes precedence over tcp_port; an
  /// existing socket file at this path is unlinked before binding.
  std::string uds_path;
  /// When uds_path is empty and this is non-zero, listen on
  /// 127.0.0.1:tcp_port instead.
  std::uint16_t tcp_port = 0;
  int backlog = 16;
  /// Idle-read deadline per connection in milliseconds: a client that
  /// sends nothing for this long (dead peer, half-open TCP, stalled
  /// byte-at-a-time writer) is reaped.  0 disables the deadline.
  std::uint32_t idle_timeout_ms = 0;
  /// Bounded write deadline per reply in milliseconds: a consumer that
  /// cannot drain a reply within this long is closed instead of wedging
  /// the connection thread forever.  0 waits indefinitely.
  std::uint32_t write_timeout_ms = 0;
  /// Admission cap: when non-zero, a connect beyond this many live
  /// connections is answered with a typed kBusy error (carrying
  /// busy_retry_after_ms) and closed.  0 = unlimited.
  std::size_t max_connections = 0;
  /// Retry-after hint attached to kBusy admission rejections.
  std::uint32_t busy_retry_after_ms = 250;
  /// Backoff slept after a persistent accept() error (e.g. EMFILE) so the
  /// accept loop cannot hot-spin while the condition lasts.
  std::uint32_t accept_error_backoff_ms = 20;
};

/// Monotonic transport-level counters (detection work is accounted in
/// FleetStats; these cover the socket layer the fleet sits behind).
struct FleetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_busy_rejected = 0;  ///< admission-cap refusals
  std::uint64_t accept_errors = 0;              ///< accept() failures
  std::uint64_t idle_reaped = 0;     ///< connections closed by idle deadline
  std::uint64_t write_timeouts = 0;  ///< slow consumers closed mid-write
  std::size_t open_connections = 0;  ///< live connection threads right now
};

/// Accepts NSFP connections and applies their requests to a ShardedFleet.
class FleetServer {
 public:
  /// The fleet must outlive the server.
  FleetServer(ShardedFleet& fleet, FleetServerOptions options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Binds, listens and starts the accept thread.  Throws
  /// std::runtime_error on socket/bind/listen failure.
  void start();

  /// Stops accepting, closes every connection and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Bound TCP port (useful with tcp_port = 0 → kernel-assigned).
  [[nodiscard]] std::uint16_t bound_tcp_port() const { return bound_port_; }

  /// Connections accepted so far.
  [[nodiscard]] std::size_t connections_accepted() const {
    return connections_accepted_.load();
  }

  /// Snapshot of the transport-level counters.
  [[nodiscard]] FleetServerStats stats() const;

  /// Maps one decoded request onto the fleet and returns the reply
  /// message.  Pure dispatch — no socket involved — so tests can exercise
  /// the full request surface without a transport.
  [[nodiscard]] static wire::Message handle(ShardedFleet& fleet,
                                            const wire::Message& request);

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();
  /// Deadline-bounded full-buffer write; counts a write timeout and
  /// returns false when the consumer cannot drain in time.
  bool write_reply(int fd, const std::vector<std::uint8_t>& bytes);

  ShardedFleet& fleet_;
  FleetServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connections_accepted_{0};
  std::atomic<std::uint64_t> busy_rejected_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> write_timeouts_{0};
  std::thread accept_thread_;
  mutable std::mutex conns_mu_;
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> conns_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_FLEET_SERVER_HPP
