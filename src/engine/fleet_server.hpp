// FleetServer — serves the NSFP frame-ingest protocol over a socket.
//
// One server fronts one ShardedFleet.  It listens on a Unix-domain socket
// (the default deployment: acquisition host and daemon on the same
// machine) or a localhost TCP port, accepts any number of client
// connections, and dispatches decoded requests straight into the fleet.
// The socket threads are pure ingest: all detection work still happens on
// the fleet's shard workers, so a slow client never stalls a shard and a
// saturated shard pushes back through the queue policy (FEED replies carry
// shed/queued counts; kReject surfaces as an OVERLOADED error reply).
//
// Error discipline mirrors FrameDecoder: frame-local failures (unknown
// type, malformed payload, unknown session/channel, overload) get a typed
// ERROR reply and the connection continues; stream-poisoning failures (bad
// magic/version/CRC/length) get a final ERROR reply and the connection is
// closed, because the byte stream can no longer be trusted.
#ifndef NSYNC_ENGINE_FLEET_SERVER_HPP
#define NSYNC_ENGINE_FLEET_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_fleet.hpp"
#include "engine/wire_protocol.hpp"

namespace nsync::engine {

struct FleetServerOptions {
  /// Unix-domain socket path.  Takes precedence over tcp_port; an
  /// existing socket file at this path is unlinked before binding.
  std::string uds_path;
  /// When uds_path is empty and this is non-zero, listen on
  /// 127.0.0.1:tcp_port instead.
  std::uint16_t tcp_port = 0;
  int backlog = 16;
};

/// Accepts NSFP connections and applies their requests to a ShardedFleet.
class FleetServer {
 public:
  /// The fleet must outlive the server.
  FleetServer(ShardedFleet& fleet, FleetServerOptions options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Binds, listens and starts the accept thread.  Throws
  /// std::runtime_error on socket/bind/listen failure.
  void start();

  /// Stops accepting, closes every connection and joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Bound TCP port (useful with tcp_port = 0 → kernel-assigned).
  [[nodiscard]] std::uint16_t bound_tcp_port() const { return bound_port_; }

  /// Connections accepted so far.
  [[nodiscard]] std::size_t connections_accepted() const {
    return connections_accepted_.load();
  }

  /// Maps one decoded request onto the fleet and returns the reply
  /// message.  Pure dispatch — no socket involved — so tests can exercise
  /// the full request surface without a transport.
  [[nodiscard]] static wire::Message handle(ShardedFleet& fleet,
                                            const wire::Message& request);

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();

  ShardedFleet& fleet_;
  FleetServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connections_accepted_{0};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> conns_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_FLEET_SERVER_HPP
