#include "engine/chaos_proxy.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>

namespace nsync::engine {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int connect_uds_fd(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("ChaosProxy: UDS path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("ChaosProxy: socket()");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("ChaosProxy: connect(" + path + ")");
  }
  return fd;
}

/// Blocking full write of [data, data+n); false when the peer is gone.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
#else
    const ssize_t w = ::write(fd, data, n);
#endif
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) return false;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void sever(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)) {
  if (options_.max_chunk == 0) options_.max_chunk = 1;
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (listen_fd_ >= 0) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.listen_uds.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("ChaosProxy: UDS path too long: " +
                             options_.listen_uds);
  }
  std::strncpy(addr.sun_path, options_.listen_uds.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.listen_uds.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("ChaosProxy: socket()");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("ChaosProxy: bind(" + options_.listen_uds + ")");
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw_errno("ChaosProxy: listen()");
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  kill_active();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Link>> links;
  {
    const std::lock_guard<std::mutex> lock(links_mu_);
    links.swap(links_);
  }
  for (auto& l : links) {
    if (l->thread.joinable()) l->thread.join();
    if (l->client_fd >= 0) ::close(l->client_fd);
    if (l->backend_fd >= 0) ::close(l->backend_fd);
  }
  ::unlink(options_.listen_uds.c_str());
}

std::size_t ChaosProxy::kill_active() {
  const std::lock_guard<std::mutex> lock(links_mu_);
  std::size_t cut = 0;
  for (auto& l : links_) {
    if (l->done->load()) continue;
    sever(l->client_fd);
    sever(l->backend_fd);
    ++cut;
  }
  return cut;
}

void ChaosProxy::reap_finished_locked() {
  for (auto it = links_.begin(); it != links_.end();) {
    if ((*it)->done->load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      // fds are closed only here, after the pump thread has joined, so
      // kill_active() can never shutdown() a recycled descriptor.
      if ((*it)->client_fd >= 0) ::close((*it)->client_fd);
      if ((*it)->backend_fd >= 0) ::close((*it)->backend_fd);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void ChaosProxy::accept_loop() {
  while (!stopping_.load()) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;
    }
    int backend_fd = -1;
    try {
      backend_fd = connect_uds_fd(options_.backend_uds);
    } catch (const std::exception&) {
      // Backend down: the client simply sees its connection drop, which
      // is exactly the fault the resilience layer handles.
      ::close(client_fd);
      continue;
    }
    const std::uint64_t index = connections_.fetch_add(1);
    const std::lock_guard<std::mutex> lock(links_mu_);
    reap_finished_locked();
    auto link = std::make_unique<Link>();
    link->client_fd = client_fd;
    link->backend_fd = backend_fd;
    link->done = std::make_shared<std::atomic<bool>>(false);
    Link* raw = link.get();
    link->thread = std::thread([this, raw, index] { pump(*raw, index); });
    links_.push_back(std::move(link));
  }
}

void ChaosProxy::pump(Link& link, std::uint64_t conn_index) {
  // Deterministic per-connection fault schedule.
  std::mt19937_64 rng(options_.seed * 0x9E3779B97F4A7C15ull + conn_index);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<std::uint8_t> buf(options_.max_chunk);

  bool alive = true;
  while (alive && !stopping_.load()) {
    pollfd pfds[2];
    pfds[0] = {link.client_fd, POLLIN, 0};
    pfds[1] = {link.backend_fd, POLLIN, 0};
    const int ready = ::poll(pfds, 2, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    for (int i = 0; i < 2 && alive; ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int src = (i == 0) ? link.client_fd : link.backend_fd;
      const int dst = (i == 0) ? link.backend_fd : link.client_fd;
      const ssize_t n = ::read(src, buf.data(), buf.size());
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (n <= 0) {
        alive = false;
        break;
      }
      std::size_t deliver = static_cast<std::size_t>(n);
      bool kill_after = false;
      if (options_.drop_prob > 0.0 && coin(rng) < options_.drop_prob) {
        // Mid-frame disconnect: deliver a random prefix, then sever.
        deliver = rng() % (deliver + 1);
        kill_after = true;
        chaos_drops_.fetch_add(1);
      }
      if (options_.delay_prob > 0.0 && options_.max_delay_ms > 0 &&
          coin(rng) < options_.delay_prob) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng() % (options_.max_delay_ms + 1)));
      }
      if (deliver > 0 && !write_all(dst, buf.data(), deliver)) {
        alive = false;
        break;
      }
      if (kill_after) alive = false;
    }
  }
  sever(link.client_fd);
  sever(link.backend_fd);
  link.done->store(true);
}

}  // namespace nsync::engine
