#include "engine/fleet_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "signal/checkpoint.hpp"

namespace nsync::engine {

namespace {

using wire::ErrorCode;
using wire::Message;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

enum class WriteOutcome : std::uint8_t { kOk, kTimeout, kPeerGone };

/// Writes the whole buffer on a non-blocking fd, parking in poll(POLLOUT)
/// when the socket buffer is full.  `timeout_ms == 0` waits indefinitely;
/// otherwise the whole buffer must drain within the deadline or the call
/// gives up — the slow-consumer guard.
WriteOutcome write_all_deadline(int fd, const std::uint8_t* data,
                                std::size_t n, std::uint32_t timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (n > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
#else
    const ssize_t w = ::write(fd, data, n);
#endif
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int wait_ms = -1;
      if (timeout_ms > 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (left.count() <= 0) return WriteOutcome::kTimeout;
        wait_ms = static_cast<int>(left.count());
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0 && errno != EINTR) return WriteOutcome::kPeerGone;
      if (ready == 0 && timeout_ms > 0) return WriteOutcome::kTimeout;
      continue;
    }
    return WriteOutcome::kPeerGone;
  }
  return WriteOutcome::kOk;
}

wire::Error make_error(ErrorCode code, std::string message,
                       std::uint32_t retry_after_ms = 0) {
  wire::Error e;
  e.code = code;
  e.message = std::move(message);
  e.retry_after_ms = retry_after_ms;
  return e;
}

wire::StatsSession to_stats_session(const SessionSnapshot& snap) {
  wire::StatsSession s;
  s.name = snap.name;
  s.evicted = snap.evicted ? 1 : 0;
  s.intrusion = snap.intrusion ? 1 : 0;
  s.first_alarm_window = static_cast<std::int64_t>(snap.first_alarm_window);
  s.policy = snap.policy;
  s.fused_score = snap.fused_score;
  s.windows = snap.windows;
  s.frames_fed = snap.frames_fed;
  s.channels.reserve(snap.channels.size());
  for (const ChannelSnapshot& c : snap.channels) {
    wire::StatsChannel sc;
    sc.name = c.name;
    sc.alarm = c.detection.intrusion ? 1 : 0;
    sc.health = static_cast<std::uint8_t>(c.health);
    sc.score = c.score;
    sc.weight = c.weight;
    sc.windows = c.windows;
    sc.frames_fed = c.frames_fed;
    s.channels.push_back(std::move(sc));
  }
  return s;
}

wire::Stats to_stats(const FleetStats& fs) {
  wire::Stats m;
  m.shards = fs.shards;
  m.sessions = fs.sessions;
  m.evicted = fs.evicted;
  m.windows = fs.windows;
  m.shed_frames = fs.shed_frames;
  m.rejected_frames = fs.rejected_frames;
  m.queued_frames = fs.queued_frames;
  m.busy = fs.busy ? 1 : 0;
  m.failed_shards = fs.failed_shards;
  m.per_shard.reserve(fs.per_shard.size());
  for (const ShardStats& s : fs.per_shard) {
    wire::StatsShard ws;
    ws.shard = s.shard;
    ws.sessions = s.sessions;
    ws.queued_frames = s.queue.queued_frames;
    ws.peak_queued_frames = s.queue.peak_queued_frames;
    ws.enqueued_frames = s.queue.enqueued_frames;
    ws.shed_frames = s.queue.shed_frames;
    ws.rejected_frames = s.queue.rejected_frames;
    ws.batches = s.batches;
    ws.polls = s.polls;
    ws.windows = s.windows;
    ws.feed_errors = s.feed_errors;
    ws.failed = s.failed ? 1 : 0;
    ws.restarts = s.restarts;
    ws.discarded_frames = s.discarded_frames;
    ws.checkpoints_written = s.checkpoints_written;
    ws.latency_samples = s.latency_samples;
    ws.p50_feed_to_verdict_us = s.p50_feed_to_verdict_us;
    ws.p99_feed_to_verdict_us = s.p99_feed_to_verdict_us;
    ws.in_flight = s.queue.in_flight ? 1 : 0;
    m.per_shard.push_back(ws);
  }
  return m;
}

struct RequestVisitor {
  ShardedFleet& fleet;

  Message operator()(const wire::Hello& h) const {
    if (h.version != wire::kProtocolVersion) {
      return make_error(ErrorCode::kBadVersion,
                        "client protocol version unsupported");
    }
    wire::HelloOk ok;
    ok.shards = fleet.shards();
    ok.sessions = fleet.sessions();
    return ok;
  }

  Message operator()(const wire::AddSession& a) const {
    try {
      // Idempotent re-attach: a reconnecting client re-issues its specs
      // after a resync; a live session with the same name answers with
      // the existing id instead of admitting a duplicate.  The stored
      // session state (spec, offsets, verdicts) wins over the re-sent
      // spec — that is exactly what makes the resync exactly-once.
      if (const auto existing = fleet.find_live_session(a.spec.name)) {
        wire::AddSessionOk ok;
        ok.session = *existing;
        ok.shard = fleet.shard_of(*existing);
        return ok;
      }
      // The decoder validated structure; add_session validates semantics
      // (empty specs, non-DWM configs, ...).
      SessionSpec spec = a.spec;
      const std::size_t id = fleet.add_session(std::move(spec));
      wire::AddSessionOk ok;
      ok.session = id;
      ok.shard = fleet.shard_of(id);
      return ok;
    } catch (const std::invalid_argument& e) {
      return make_error(ErrorCode::kMalformed, e.what());
    } catch (const nsync::signal::CheckpointError& e) {
      return make_error(ErrorCode::kInternal, e.what());
    }
  }

  Message operator()(const wire::Feed& f) const {
    const FeedResult r = fleet.feed(
        static_cast<std::size_t>(f.session), f.channel,
        nsync::signal::SignalView(f.frames));
    switch (r.status) {
      case FeedStatus::kOk:
      case FeedStatus::kShed: {
        wire::FeedOk ok;
        ok.accepted_frames = r.accepted_frames;
        ok.shed_frames = r.shed_frames;
        ok.queued_frames = r.queued_frames;
        return ok;
      }
      case FeedStatus::kRejected:
        return make_error(ErrorCode::kOverloaded,
                          "shard queue past high-water mark");
      case FeedStatus::kUnknownSession:
        return make_error(ErrorCode::kUnknownSession, "no such session");
      case FeedStatus::kUnknownChannel:
        return make_error(ErrorCode::kUnknownChannel, "no such channel");
      case FeedStatus::kChannelMismatch:
        return make_error(ErrorCode::kChannelMismatch,
                          "frame width does not match channel");
      case FeedStatus::kEvicted:
        return make_error(ErrorCode::kEvicted, "session was evicted");
      case FeedStatus::kShardFailed:
        return make_error(ErrorCode::kShardFailed,
                          "the session's shard worker failed");
    }
    return make_error(ErrorCode::kInternal, "unhandled feed status");
  }

  Message operator()(const wire::PollStats& p) const {
    wire::Stats m = to_stats(fleet.stats());
    // Per-device adaptation-rate telemetry: fold/frozen counters for every
    // (model, sensor-profile) baseline, so operators can see which
    // channels are adapting vs frozen.  Empty unless shards run adaptive.
    for (const ShardBaselines& sb : fleet.baselines()) {
      for (const ShardBaselineEntry& e : sb.entries) {
        wire::StatsBaseline b;
        b.shard = sb.shard;
        b.model = e.model;
        b.profile = e.profile;
        b.prints = e.baseline.prints;
        b.frozen = e.baseline.frozen;
        m.baselines.push_back(std::move(b));
      }
    }
    if (p.include_sessions != 0) {
      const std::vector<SessionSnapshot> snaps = fleet.snapshots();
      m.sessions_detail.reserve(snaps.size());
      for (const SessionSnapshot& s : snaps) {
        m.sessions_detail.push_back(to_stats_session(s));
      }
    }
    return m;
  }

  Message operator()(const wire::Evict& e) const {
    try {
      if (!fleet.evict_session(static_cast<std::size_t>(e.session))) {
        // Double-EVICT is a frame-local typed error, not success: the
        // caller's view of the session lifecycle is out of sync and it
        // should know.  (A reconnecting client treats this as done.)
        return make_error(ErrorCode::kEvicted, "session already evicted");
      }
      return wire::EvictOk{};
    } catch (const std::out_of_range&) {
      return make_error(ErrorCode::kUnknownSession, "no such session");
    } catch (const nsync::signal::CheckpointError& err) {
      return make_error(ErrorCode::kInternal, err.what());
    }
  }

  Message operator()(const wire::Ping& p) const {
    wire::Pong pong;
    pong.nonce = p.nonce;
    return pong;
  }

  // Reply types arriving as requests are protocol misuse, not framing
  // corruption: answer with a typed error and keep the connection.
  Message operator()(const wire::HelloOk&) const { return misuse(); }
  Message operator()(const wire::AddSessionOk&) const { return misuse(); }
  Message operator()(const wire::FeedOk&) const { return misuse(); }
  Message operator()(const wire::Stats&) const { return misuse(); }
  Message operator()(const wire::EvictOk&) const { return misuse(); }
  Message operator()(const wire::Pong&) const { return misuse(); }
  Message operator()(const wire::Error&) const { return misuse(); }

  static Message misuse() {
    return make_error(ErrorCode::kBadType, "reply type sent as request");
  }
};

}  // namespace

FleetServer::FleetServer(ShardedFleet& fleet, FleetServerOptions options)
    : fleet_(fleet), options_(std::move(options)) {}

FleetServer::~FleetServer() { stop(); }

wire::Message FleetServer::handle(ShardedFleet& fleet,
                                  const wire::Message& request) {
  return std::visit(RequestVisitor{fleet}, request);
}

void FleetServer::start() {
  if (listen_fd_ >= 0) throw std::runtime_error("FleetServer already started");
  stopping_.store(false);

  if (!options_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("FleetServer: UDS path too long");
    }
    std::strncpy(addr.sun_path, options_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("FleetServer: socket() failed");
    }
    ::unlink(options_.uds_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("FleetServer: bind(" + options_.uds_path +
                               ") failed: " + std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      throw std::runtime_error("FleetServer: socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("FleetServer: bind(127.0.0.1) failed: " +
                               std::string(std::strerror(errno)));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }

  if (::listen(listen_fd_, options_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("FleetServer: listen() failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void FleetServer::stop() {
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
  std::vector<Connection> conns;
  {
    const std::scoped_lock lock(conns_mu_);
    conns.swap(conns_);
  }
  for (Connection& c : conns) {
    // Shutdown wakes the connection thread out of read(); it closes the
    // fd itself on exit.
    ::shutdown(c.fd, SHUT_RDWR);
    if (c.thread.joinable()) c.thread.join();
  }
  bound_port_ = 0;
}

void FleetServer::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void FleetServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR — recheck stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Persistent accept() failures (EMFILE/ENFILE fd exhaustion, ...)
      // leave the listen socket readable, so a bare retry hot-spins at
      // 100 % CPU for as long as the condition lasts.  Count and back off.
      accept_errors_.fetch_add(1);
      if (options_.accept_error_backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.accept_error_backoff_ms));
      }
      continue;
    }
    set_nonblocking(fd);
    const std::scoped_lock lock(conns_mu_);
    reap_finished_locked();
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      // Admission cap: answer with a typed busy error (so a well-behaved
      // client backs off for retry_after_ms) and close.  The reply write
      // is bounded too — an attacker filling the cap cannot also wedge
      // the accept loop.
      busy_rejected_.fetch_add(1);
      const std::vector<std::uint8_t> bytes = wire::encode(
          make_error(ErrorCode::kBusy, "connection limit reached",
                     options_.busy_retry_after_ms));
      const std::uint32_t budget =
          std::max<std::uint32_t>(options_.write_timeout_ms, 100);
      write_all_deadline(fd, bytes.data(), bytes.size(), budget);
      // Half-close and drain: if the client's first request is already
      // sitting unread in our receive buffer, a bare close() turns into a
      // reset that can destroy the busy reply in flight.  Shut down the
      // write side so the client sees EOF after the reply, then read until
      // the peer closes (bounded, so a flood cannot wedge the accept loop).
      ::shutdown(fd, SHUT_WR);
      const auto drain_deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(budget);
      char scratch[256];
      for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= drain_deadline) break;
        pollfd pfd{fd, POLLIN, 0};
        const int left = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                drain_deadline - now)
                .count());
        if (::poll(&pfd, 1, std::max(left, 1)) <= 0) break;
        if (::read(fd, scratch, sizeof scratch) <= 0) break;
      }
      ::close(fd);
      continue;
    }
    connections_accepted_.fetch_add(1);
    Connection conn;
    conn.fd = fd;
    conn.done = std::make_shared<std::atomic<bool>>(false);
    auto done = conn.done;
    conn.thread = std::thread([this, fd, done] {
      serve_connection(fd);
      done->store(true);
    });
    conns_.push_back(std::move(conn));
  }
}

bool FleetServer::write_reply(int fd, const std::vector<std::uint8_t>& bytes) {
  switch (write_all_deadline(fd, bytes.data(), bytes.size(),
                             options_.write_timeout_ms)) {
    case WriteOutcome::kOk:
      return true;
    case WriteOutcome::kTimeout:
      write_timeouts_.fetch_add(1);
      return false;
    case WriteOutcome::kPeerGone:
      return false;
  }
  return false;
}

void FleetServer::serve_connection(int fd) {
  using Clock = std::chrono::steady_clock;
  wire::FrameDecoder decoder;
  std::vector<std::uint8_t> rx(64 * 1024);
  bool open = true;
  Clock::time_point last_activity = Clock::now();
  while (open && !stopping_.load()) {
    // Poll in short ticks so stop() and the idle deadline are both
    // honored; any byte from the peer resets the idle clock.
    int tick_ms = 100;
    if (options_.idle_timeout_ms > 0) {
      const auto idle_left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              last_activity +
              std::chrono::milliseconds(options_.idle_timeout_ms) -
              Clock::now());
      if (idle_left.count() <= 0) {
        idle_reaped_.fetch_add(1);
        break;
      }
      tick_ms = static_cast<int>(
          std::min<std::int64_t>(tick_ms, idle_left.count()));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, tick_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // tick: recheck stopping_ / idle deadline
    const ssize_t n = ::read(fd, rx.data(), rx.size());
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) break;  // peer closed or error
    last_activity = Clock::now();
    decoder.feed(std::span<const std::uint8_t>(
        rx.data(), static_cast<std::size_t>(n)));

    while (open) {
      Message request;
      std::string detail;
      const wire::DecodeStatus st = decoder.next(request, &detail);
      if (st == wire::DecodeStatus::kNeedMore) break;

      Message reply;
      bool close_after = false;
      switch (st) {
        case wire::DecodeStatus::kFrame:
          reply = handle(fleet_, request);
          break;
        case wire::DecodeStatus::kBadType:
          reply = make_error(ErrorCode::kBadType, detail);
          break;
        case wire::DecodeStatus::kMalformed:
          reply = make_error(ErrorCode::kMalformed, detail);
          break;
        case wire::DecodeStatus::kBadVersion:
          reply = make_error(ErrorCode::kBadVersion, detail);
          close_after = true;
          break;
        case wire::DecodeStatus::kBadMagic:
        case wire::DecodeStatus::kOversized:
        case wire::DecodeStatus::kBadCrc:
        default:
          reply = make_error(ErrorCode::kBadFrame, detail);
          close_after = true;
          break;
      }
      const std::vector<std::uint8_t> bytes = wire::encode(reply);
      if (!write_reply(fd, bytes)) close_after = true;
      if (close_after) open = false;
    }
  }
  ::close(fd);
}

FleetServerStats FleetServer::stats() const {
  FleetServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_busy_rejected = busy_rejected_.load();
  s.accept_errors = accept_errors_.load();
  s.idle_reaped = idle_reaped_.load();
  s.write_timeouts = write_timeouts_.load();
  {
    const std::scoped_lock lock(conns_mu_);
    for (const Connection& c : conns_) {
      if (!c.done->load()) ++s.open_connections;
    }
  }
  return s;
}

}  // namespace nsync::engine
