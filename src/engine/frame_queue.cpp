#include "engine/frame_queue.hpp"

#include <algorithm>
#include <utility>

namespace nsync::engine {

std::string overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kDropOldest: return "drop-oldest";
    case OverflowPolicy::kReject: return "reject";
  }
  return "?";
}

FrameQueue::FrameQueue(std::size_t capacity_frames, OverflowPolicy policy)
    : capacity_frames_(capacity_frames), policy_(policy) {}

FrameQueue::PushResult FrameQueue::push(FrameBatch batch) {
  const std::size_t frames =
      batch.kind == FrameBatch::Kind::kFeed ? batch.frames.frames() : 0;
  std::unique_lock lock(mu_);
  PushResult result;
  auto would_overflow = [&] {
    return capacity_frames_ > 0 && !items_.empty() &&
           queued_frames_ + frames > capacity_frames_;
  };
  if (closed_) {
    stats_.closed_frames += frames;
    ++stats_.closed_batches;
    result.queued_frames = queued_frames_;
    return result;
  }
  if (would_overflow()) {
    switch (policy_) {
      case OverflowPolicy::kBlock:
        cv_space_.wait(lock, [&] { return closed_ || !would_overflow(); });
        if (closed_) {
          stats_.closed_frames += frames;
          ++stats_.closed_batches;
          result.queued_frames = queued_frames_;
          return result;
        }
        break;
      case OverflowPolicy::kDropOldest:
        // Shed the oldest *feed* batches until the newcomer fits; evict
        // commands are control flow and survive (they are 0 frames, so
        // they never contribute to the overflow anyway).
        for (auto it = items_.begin();
             it != items_.end() && would_overflow();) {
          if (it->kind != FrameBatch::Kind::kFeed) {
            ++it;
            continue;
          }
          const std::size_t dead = it->frames.frames();
          queued_frames_ -= dead;
          result.shed_frames += dead;
          stats_.shed_frames += dead;
          ++stats_.shed_batches;
          it = items_.erase(it);
        }
        break;
      case OverflowPolicy::kReject:
        stats_.rejected_frames += frames;
        ++stats_.rejected_batches;
        result.queued_frames = queued_frames_;
        return result;
    }
  }
  queued_frames_ += frames;
  stats_.enqueued_frames += frames;
  ++stats_.enqueued_batches;
  stats_.peak_queued_frames =
      std::max(stats_.peak_queued_frames, queued_frames_);
  items_.push_back(std::move(batch));
  result.accepted = true;
  result.queued_frames = queued_frames_;
  lock.unlock();
  cv_items_.notify_one();
  return result;
}

bool FrameQueue::pop_all(std::vector<FrameBatch>& out) {
  out.clear();
  std::unique_lock lock(mu_);
  cv_items_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  out.reserve(items_.size());
  for (auto& b : items_) out.push_back(std::move(b));
  items_.clear();
  queued_frames_ = 0;
  in_flight_ = true;
  lock.unlock();
  // All blocked producers may now fit.
  cv_space_.notify_all();
  return true;
}

void FrameQueue::mark_processed() {
  {
    const std::scoped_lock lock(mu_);
    in_flight_ = false;
  }
  cv_idle_.notify_all();
}

void FrameQueue::close() {
  {
    const std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_items_.notify_all();
  cv_space_.notify_all();
  cv_idle_.notify_all();
}

std::size_t FrameQueue::discard_pending() {
  std::size_t dropped = 0;
  {
    const std::scoped_lock lock(mu_);
    for (const FrameBatch& b : items_) {
      if (b.kind == FrameBatch::Kind::kFeed) dropped += b.frames.frames();
    }
    items_.clear();
    queued_frames_ = 0;
  }
  cv_space_.notify_all();
  cv_idle_.notify_all();
  return dropped;
}

void FrameQueue::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [&] {
    return (items_.empty() && !in_flight_) || closed_;
  });
}

FrameQueueStats FrameQueue::stats() const {
  const std::scoped_lock lock(mu_);
  FrameQueueStats s = stats_;
  s.queued_frames = queued_frames_;
  s.queued_batches = items_.size();
  s.in_flight = in_flight_;
  return s;
}

}  // namespace nsync::engine
