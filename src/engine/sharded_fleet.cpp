#include "engine/sharded_fleet.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "signal/checkpoint.hpp"

namespace nsync::engine {

using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;
using nsync::signal::Signal;
using nsync::signal::SignalView;

// ---------------------------------------------------------------------------
// LatencyHistogram

void LatencyHistogram::record(std::chrono::nanoseconds latency) {
  const auto us = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, latency.count() / 1000));
  std::size_t bucket = 0;
  while (bucket + 1 < buckets_.size() && (1ull << (bucket + 1)) <= us) {
    ++bucket;
  }
  ++buckets_[bucket];
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

double LatencyHistogram::quantile_us(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      return static_cast<double>(1ull << (i + 1));  // bucket upper bound
    }
  }
  return static_cast<double>(1ull << buckets_.size());
}

std::string feed_status_name(FeedStatus s) {
  switch (s) {
    case FeedStatus::kOk: return "ok";
    case FeedStatus::kShed: return "shed";
    case FeedStatus::kRejected: return "rejected";
    case FeedStatus::kUnknownSession: return "unknown-session";
    case FeedStatus::kUnknownChannel: return "unknown-channel";
    case FeedStatus::kChannelMismatch: return "channel-mismatch";
    case FeedStatus::kEvicted: return "evicted";
    case FeedStatus::kShardFailed: return "shard-failed";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Construction / teardown

MonitorEngineOptions ShardedFleet::engine_options(std::size_t shard) const {
  MonitorEngineOptions opts;
  opts.max_pending_frames = options_.max_pending_frames;
  opts.checkpoint_dir = options_.checkpoint_dir;
  opts.checkpoint_every_polls = options_.checkpoint_every_polls;
  opts.checkpoint_every_windows = options_.checkpoint_every_windows;
  opts.checkpoint_filename = shard_checkpoint_filename(shard);
  opts.baseline = options_.baseline;
  if (opts.baseline.adaptive) {
    opts.baseline.filename =
        "baselines." + std::to_string(shard) + ".nbrg";
  }
  return opts;
}

ShardedFleet::ShardedFleet(ShardedFleetOptions options)
    : options_(std::move(options)) {
  const std::size_t n = effective_shards();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<MonitorEngine>(engine_options(i));
    shards_.push_back(std::move(shard));
  }
  start_workers();
}

void ShardedFleet::start_workers() {
  if (options_.shards == 0) return;  // inline mode: no queues, no threads
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* s = shards_[i].get();
    s->queue = std::make_unique<FrameQueue>(options_.queue_capacity_frames,
                                            options_.overflow);
    s->worker = std::thread([this, i, s] { worker_loop(i, *s); });
  }
}

ShardedFleet::~ShardedFleet() {
  for (auto& shard : shards_) {
    if (shard->queue) shard->queue->close();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

// ---------------------------------------------------------------------------
// Worker

void ShardedFleet::worker_loop(std::size_t index, Shard& shard) {
  std::vector<FrameBatch> batches;
  while (shard.queue->pop_all(batches)) {
    try {
      process_batches(index, shard, batches);
    } catch (const std::exception& e) {
      shard.queue->mark_processed();
      if (supervise_failure(index, shard, e.what())) continue;
      return;  // permanent failure: queue closed and drained
    } catch (...) {
      shard.queue->mark_processed();
      if (supervise_failure(index, shard, "non-standard exception")) continue;
      return;
    }
    shard.queue->mark_processed();
  }
}

void ShardedFleet::process_batches(std::size_t index, Shard& shard,
                                   const std::vector<FrameBatch>& batches) {
  bool evicted_any = false;
  const std::scoped_lock lock(shard.mu);
  for (const auto& b : batches) {
    if (options_.worker_fault_hook) options_.worker_fault_hook(index, b);
    if (b.kind == FrameBatch::Kind::kEvict) {
      shard.engine->evict_session(b.session);
      evicted_any = true;
      continue;
    }
    try {
      shard.engine->feed(b.session, b.channel, b.frames.view());
    } catch (const std::exception&) {
      // feed() validated at ingest; an engine-side failure here is a
      // race with eviction (frames queued before the evict command of
      // a re-used... never: ids are not reused) or a bug.  Either
      // way: count it, keep the shard alive.
      ++shard.feed_errors;
    }
  }
  shard.windows += shard.engine->poll_inline();
  ++shard.polls;
  shard.batches += batches.size();
  // Make eviction durable on the spot instead of waiting for the
  // next periodic trigger: a restore must not resurrect a session
  // the caller was told is gone.
  if (evicted_any && !options_.checkpoint_dir.empty()) {
    shard.engine->checkpoint(shard.engine->checkpoint_path());
  }
  const auto now = std::chrono::steady_clock::now();
  for (const auto& b : batches) {
    if (b.kind == FrameBatch::Kind::kFeed) {
      shard.latency.record(now - b.enqueued_at);
    }
  }
}

bool ShardedFleet::supervise_failure(std::size_t index, Shard& shard,
                                     const std::string& what) {
  {
    const std::scoped_lock lock(shard.mu);
    shard.failure_reason = what;
  }
  shard.failed.store(true, std::memory_order_release);
  // The backlog queued behind the failure is contiguous with the *failed*
  // engine state, not with the checkpoint a restart would restore — drop
  // and account it either way; feeders resync from frames_fed offsets.
  shard.discarded_frames.fetch_add(shard.queue->discard_pending(),
                                   std::memory_order_relaxed);
  const bool want_restart = options_.supervision.restart_from_checkpoint &&
                            !options_.checkpoint_dir.empty() &&
                            shard.restarts.load(std::memory_order_relaxed) <
                                options_.supervision.max_restarts;
  if (want_restart) {
    try {
      MonitorEngine restored = MonitorEngine::restore(
          options_.checkpoint_dir + "/" + shard_checkpoint_filename(index),
          engine_options(index));
      const std::scoped_lock lock(shard.mu);
      *shard.engine = std::move(restored);
      shard.restarts.fetch_add(1, std::memory_order_relaxed);
      shard.failed.store(false, std::memory_order_release);
      return true;
    } catch (const std::exception&) {
      // No usable checkpoint: fall through to permanent failure.
    }
  }
  // Permanent failure: close the queue so blocked producers unblock and
  // drop whatever raced in, leaving the queue empty and idle — flush()
  // and the destructor can never hang on a dead worker.
  shard.queue->close();
  shard.discarded_frames.fetch_add(shard.queue->discard_pending(),
                                   std::memory_order_relaxed);
  return false;
}

// ---------------------------------------------------------------------------
// Admission / eviction

std::size_t ShardedFleet::add_session(SessionSpec spec) {
  if (options_.fusion_override) {
    spec.policy = options_.fusion_override;
  }
  SessionInfo info;
  info.name = spec.name;
  info.channels.reserve(spec.channels.size());
  for (const auto& c : spec.channels) {
    info.channels.push_back({c.name, c.reference.channels()});
  }
  const std::unique_lock registry_lock(registry_mu_);
  const std::size_t id = registry_.size();
  const std::size_t S = effective_shards();
  info.shard = id % S;
  info.local = id / S;
  Shard& shard = *shards_[info.shard];
  {
    const std::scoped_lock lock(shard.mu);
    const std::size_t local = shard.engine->add_session(std::move(spec));
    if (local != info.local) {
      // Round-robin admission is the registry's invariant; a divergence
      // here would silently corrupt the id mapping.
      throw std::logic_error("ShardedFleet: shard-local id drifted");
    }
    // Durable admission: the session must survive a crash that happens
    // right after the caller learns its id.
    if (!options_.checkpoint_dir.empty()) {
      shard.engine->checkpoint(shard.engine->checkpoint_path());
    }
  }
  registry_.push_back(std::move(info));
  return id;
}

bool ShardedFleet::evict_session(std::size_t session) {
  const std::unique_lock registry_lock(registry_mu_);
  if (session >= registry_.size()) {
    throw std::out_of_range("ShardedFleet: no session " +
                            std::to_string(session));
  }
  SessionInfo& info = registry_[session];
  if (info.evicted) return false;
  info.evicted = true;
  Shard& shard = *shards_[info.shard];
  if (options_.shards == 0) {
    const std::scoped_lock lock(shard.mu);
    shard.engine->evict_session(info.local);
    if (!options_.checkpoint_dir.empty()) {
      shard.engine->checkpoint(shard.engine->checkpoint_path());
    }
    return true;
  }
  FrameBatch evict;
  evict.kind = FrameBatch::Kind::kEvict;
  evict.session = info.local;
  evict.enqueued_at = std::chrono::steady_clock::now();
  shard.queue->push(std::move(evict));
  return true;
}

std::optional<std::size_t> ShardedFleet::find_live_session(
    const std::string& name) const {
  const std::shared_lock lock(registry_mu_);
  for (std::size_t i = registry_.size(); i > 0; --i) {
    const SessionInfo& info = registry_[i - 1];
    if (!info.evicted && info.name == name) return i - 1;
  }
  return std::nullopt;
}

std::size_t ShardedFleet::sessions() const {
  const std::shared_lock lock(registry_mu_);
  return registry_.size();
}

std::size_t ShardedFleet::shard_of(std::size_t session) const {
  const std::shared_lock lock(registry_mu_);
  if (session >= registry_.size()) {
    throw std::out_of_range("ShardedFleet: no session " +
                            std::to_string(session));
  }
  return registry_[session].shard;
}

// ---------------------------------------------------------------------------
// Data plane

FeedResult ShardedFleet::feed(std::size_t session, const std::string& channel,
                              const SignalView& frames) {
  FeedResult result;
  std::size_t shard_idx = 0;
  std::size_t local = 0;
  {
    const std::shared_lock lock(registry_mu_);
    if (session >= registry_.size()) {
      result.status = FeedStatus::kUnknownSession;
      return result;
    }
    const SessionInfo& info = registry_[session];
    if (info.evicted) {
      result.status = FeedStatus::kEvicted;
      return result;
    }
    const ChannelInfo* ch = nullptr;
    for (const auto& c : info.channels) {
      if (c.name == channel) {
        ch = &c;
        break;
      }
    }
    if (ch == nullptr) {
      result.status = FeedStatus::kUnknownChannel;
      return result;
    }
    if (frames.channels() != ch->width) {
      result.status = FeedStatus::kChannelMismatch;
      return result;
    }
    shard_idx = info.shard;
    local = info.local;
  }
  Shard& shard = *shards_[shard_idx];
  if (shard.failed.load(std::memory_order_acquire)) {
    result.status = FeedStatus::kShardFailed;
    return result;
  }

  if (options_.shards == 0) {
    const std::scoped_lock lock(shard.mu);
    shard.engine->feed(local, channel, frames);
    result.accepted_frames = frames.frames();
    return result;
  }

  FrameBatch batch;
  batch.session = local;
  batch.channel = channel;
  batch.frames = Signal(frames.frames(), frames.channels(),
                        frames.sample_rate());
  std::memcpy(batch.frames.data(), frames.data(),
              frames.frames() * frames.channels() * sizeof(double));
  batch.enqueued_at = std::chrono::steady_clock::now();
  const FrameQueue::PushResult push = shard.queue->push(std::move(batch));
  result.queued_frames = push.queued_frames;
  if (!push.accepted) {
    // A push can also fail because supervision closed the queue between
    // the failed-flag check above and here; surface that as the typed
    // shard failure rather than phantom overload.
    result.status = shard.failed.load(std::memory_order_acquire)
                        ? FeedStatus::kShardFailed
                        : FeedStatus::kRejected;
    return result;
  }
  result.accepted_frames = frames.frames();
  result.shed_frames = push.shed_frames;
  if (push.shed_frames > 0) result.status = FeedStatus::kShed;
  return result;
}

void ShardedFleet::flush() {
  for (auto& shard : shards_) {
    if (shard->queue) {
      shard->queue->wait_idle();
    } else {
      const std::scoped_lock lock(shard->mu);
      shard->windows += shard->engine->poll_inline();
      ++shard->polls;
    }
  }
}

// ---------------------------------------------------------------------------
// Observation

SessionSnapshot ShardedFleet::snapshot(std::size_t session) const {
  std::size_t shard_idx = 0;
  std::size_t local = 0;
  {
    const std::shared_lock lock(registry_mu_);
    if (session >= registry_.size()) {
      throw std::out_of_range("ShardedFleet: no session " +
                              std::to_string(session));
    }
    const SessionInfo& info = registry_[session];
    if (info.evicted) {
      SessionSnapshot stub;
      stub.name = info.name;
      stub.evicted = true;
      return stub;
    }
    shard_idx = info.shard;
    local = info.local;
  }
  const Shard& shard = *shards_[shard_idx];
  const std::scoped_lock lock(shard.mu);
  return shard.engine->snapshot(local);
}

std::vector<SessionSnapshot> ShardedFleet::snapshots() const {
  std::vector<SessionSnapshot> out;
  const std::size_t n = sessions();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(snapshot(i));
  return out;
}

FleetStats ShardedFleet::stats() const {
  FleetStats out;
  out.shards = options_.shards;
  {
    const std::shared_lock lock(registry_mu_);
    out.sessions = registry_.size();
    for (const auto& info : registry_) {
      if (info.evicted) ++out.evicted;
    }
  }
  LatencyHistogram merged;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    ShardStats s;
    s.shard = i;
    if (shard.queue) s.queue = shard.queue->stats();
    s.failed = shard.failed.load(std::memory_order_acquire);
    s.restarts = shard.restarts.load(std::memory_order_relaxed);
    s.discarded_frames = shard.discarded_frames.load(std::memory_order_relaxed);
    if (s.failed) ++out.failed_shards;
    {
      const std::scoped_lock lock(shard.mu);
      s.failure_reason = shard.failure_reason;
      s.batches = shard.batches;
      s.polls = shard.polls;
      s.windows = shard.windows;
      s.feed_errors = shard.feed_errors;
      s.checkpoints_written = shard.engine->checkpoints_written();
      s.latency_samples = shard.latency.count();
      s.p50_feed_to_verdict_us = shard.latency.quantile_us(0.50);
      s.p99_feed_to_verdict_us = shard.latency.quantile_us(0.99);
      merged.merge(shard.latency);
    }
    out.windows += s.windows;
    out.shed_frames += s.queue.shed_frames;
    out.rejected_frames += s.queue.rejected_frames;
    out.closed_frames += s.queue.closed_frames;
    out.queued_frames += s.queue.queued_frames;
    if (s.queue.queued_batches > 0 || s.queue.in_flight) out.busy = true;
    out.per_shard.push_back(s);
  }
  out.p50_feed_to_verdict_us = merged.quantile_us(0.50);
  out.p99_feed_to_verdict_us = merged.quantile_us(0.99);
  // Per-shard live session counts come from the registry, not the engine,
  // so they are consistent with the eviction flags above.
  {
    const std::shared_lock lock(registry_mu_);
    for (const auto& info : registry_) {
      if (!info.evicted) ++out.per_shard[info.shard].sessions;
    }
  }
  return out;
}

std::vector<ShardBaselines> ShardedFleet::baselines() const {
  std::vector<ShardBaselines> out;
  if (!options_.baseline.adaptive) return out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    ShardBaselines sb;
    sb.shard = i;
    const std::scoped_lock lock(shard.mu);
    const BaselineRegistry* reg = shard.engine->baseline_registry();
    if (reg != nullptr) {
      for (const auto& [model, profile] : reg->keys()) {
        sb.entries.push_back({model, profile, reg->baseline(model, profile)});
      }
    }
    out.push_back(std::move(sb));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checkpointing

std::string ShardedFleet::shard_checkpoint_filename(std::size_t shard) {
  return "fleet." + std::to_string(shard) + ".nckp";
}

void ShardedFleet::checkpoint_all() const {
  if (options_.checkpoint_dir.empty()) {
    throw std::logic_error(
        "ShardedFleet::checkpoint_all: no checkpoint_dir configured");
  }
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mu);
    shard->engine->checkpoint(shard->engine->checkpoint_path());
  }
}

std::unique_ptr<ShardedFleet> ShardedFleet::restore(
    const std::string& dir, ShardedFleetOptions options) {
  // Build the fleet *without* live queues first: restore each shard's
  // engine, then derive the registry, then start the workers.
  auto fleet = std::unique_ptr<ShardedFleet>(new ShardedFleet(
      std::move(options), /*restore_from=*/dir));
  return fleet;
}

ShardedFleet::ShardedFleet(ShardedFleetOptions options,
                           const std::string& restore_dir)
    : options_(std::move(options)) {
  const std::size_t S = effective_shards();
  shards_.reserve(S);
  for (std::size_t i = 0; i < S; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<MonitorEngine>(MonitorEngine::restore(
        restore_dir + "/" + shard_checkpoint_filename(i), engine_options(i)));
    shards_.push_back(std::move(shard));
  }
  // Rebuild the global registry from the round-robin invariant: session g
  // lives on shard g % S at local index g / S.  Any set of shard files no
  // id sequence could have produced is rejected.
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->engine->sessions();
  registry_.reserve(total);
  for (std::size_t g = 0; g < total; ++g) {
    const std::size_t si = g % S;
    const std::size_t local = g / S;
    Shard& shard = *shards_[si];
    if (local >= shard.engine->sessions()) {
      throw CheckpointError(
          CheckpointErrorKind::kMismatch,
          "ShardedFleet::restore: shard " + std::to_string(si) +
              " holds " + std::to_string(shard.engine->sessions()) +
              " sessions, inconsistent with a fleet of " +
              std::to_string(total));
    }
    const SessionSnapshot snap = shard.engine->snapshot(local);
    SessionInfo info;
    info.shard = si;
    info.local = local;
    info.name = snap.name;
    info.evicted = snap.evicted;
    info.channels.reserve(snap.channels.size());
    for (const auto& c : snap.channels) {
      info.channels.push_back({c.name, c.width});
    }
    registry_.push_back(std::move(info));
  }
  start_workers();
}

}  // namespace nsync::engine
