// Bounded MPSC frame queue between ingest threads and a shard worker.
//
// Producers (socket readers, the in-process feed() API) enqueue owned
// frame batches; one shard worker drains them.  The consumer side is a
// single swap of the whole pending deque under the lock, so the critical
// section is O(1) regardless of backlog and producers contend only with
// each other's appends — "lock-free-ish" in effect if not in mechanism,
// and trivially order-preserving, which is what keeps shard verdicts
// bitwise identical to an unsharded engine (frames of one session are
// processed in exactly the feed order).
//
// Backpressure is explicit and accounted: the queue has a high-water mark
// in *frames* (batches vary in size) and one of three overflow policies:
//
//   kBlock      — producers wait for space; nothing is ever lost.  The
//                 default, and the only policy under which shard-count
//                 invariance of verdicts is guaranteed.
//   kDropOldest — load-shedding: the oldest queued feed batches are
//                 dropped until the new one fits (control batches such as
//                 evictions are never shed).  Keeps ingest latency flat
//                 past saturation at the cost of holes in the stream.
//   kReject     — the push fails and the caller gets the error (the wire
//                 protocol surfaces it as an OVERLOADED reply).
//
// Every outcome lands in FrameQueueStats, so the daemon's POLL_STATS can
// report exactly how much was queued, shed and rejected per shard.
#ifndef NSYNC_ENGINE_FRAME_QUEUE_HPP
#define NSYNC_ENGINE_FRAME_QUEUE_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::engine {

/// What happens when a push would exceed the queue's frame capacity.
enum class OverflowPolicy : std::uint8_t {
  kBlock = 0,
  kDropOldest = 1,
  kReject = 2,
};

[[nodiscard]] std::string overflow_policy_name(OverflowPolicy p);

/// One enqueued unit of work for a shard worker: a batch of frames for
/// one channel of one (shard-local) session, or an eviction command that
/// must stay ordered relative to the feeds around it.
struct FrameBatch {
  enum class Kind : std::uint8_t { kFeed, kEvict };
  Kind kind = Kind::kFeed;
  std::size_t session = 0;  ///< shard-local session id
  std::string channel;
  nsync::signal::Signal frames;  ///< owned copy (kFeed only)
  std::chrono::steady_clock::time_point enqueued_at;
};

struct FrameQueueStats {
  std::size_t queued_frames = 0;   ///< frames currently waiting
  std::size_t queued_batches = 0;  ///< batches currently waiting
  std::size_t peak_queued_frames = 0;
  std::uint64_t enqueued_frames = 0;  ///< accepted into the queue, ever
  std::uint64_t enqueued_batches = 0;
  std::uint64_t shed_frames = 0;  ///< dropped by kDropOldest, ever
  std::uint64_t shed_batches = 0;
  std::uint64_t rejected_frames = 0;  ///< refused by kReject overflow, ever
  std::uint64_t rejected_batches = 0;
  /// Refused because the queue was already closed (shutdown drain), ever.
  /// Tracked apart from rejected_* so POLL_STATS reject counters mean
  /// genuine overload, not phantom overload at every graceful drain.
  std::uint64_t closed_frames = 0;
  std::uint64_t closed_batches = 0;
  bool in_flight = false;  ///< consumer is processing a popped batch
};

class FrameQueue {
 public:
  /// `capacity_frames` is the high-water mark; 0 means unbounded.
  FrameQueue(std::size_t capacity_frames, OverflowPolicy policy);

  struct PushResult {
    bool accepted = false;
    std::size_t shed_frames = 0;    ///< older frames dropped to make room
    std::size_t queued_frames = 0;  ///< backlog after the push
  };

  /// Enqueues a batch according to the overflow policy.  A batch larger
  /// than the whole capacity is still accepted once the queue is empty
  /// (kBlock waits for that; the other policies apply their rule), so no
  /// single batch can wedge the queue.  Returns accepted=false only for
  /// kReject overflow or a closed queue.
  PushResult push(FrameBatch batch);

  /// Blocks until at least one batch is available or the queue is closed;
  /// moves the entire backlog into `out` (cleared first) and marks the
  /// queue in-flight.  Returns false when the queue is closed and empty —
  /// the consumer's signal to exit.  The consumer must call
  /// mark_processed() after handling the popped batches.
  bool pop_all(std::vector<FrameBatch>& out);

  /// Consumer acknowledgment that the batches from the last pop_all have
  /// been fully processed (clears in_flight, wakes wait_idle callers).
  void mark_processed();

  /// Wakes all waiters; subsequent pushes are rejected, pop_all drains
  /// what is left and then returns false.
  void close();

  /// Blocks until the queue is empty, nothing is in flight, and every
  /// accepted batch has been acknowledged — the flush barrier.
  void wait_idle();

  /// Drops every queued batch without processing it and wakes blocked
  /// producers.  Supervision path: when a shard worker dies, the backlog
  /// behind the failure no longer aligns with the engine state it will be
  /// restored to, so it is discarded (and accounted by the caller) rather
  /// than replayed.  Returns the number of feed frames dropped.
  std::size_t discard_pending();

  [[nodiscard]] FrameQueueStats stats() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_items_;  ///< consumer waits for work
  std::condition_variable cv_space_;  ///< kBlock producers wait for room
  std::condition_variable cv_idle_;   ///< wait_idle waits for quiescence
  std::deque<FrameBatch> items_;
  std::size_t capacity_frames_;
  OverflowPolicy policy_;
  std::size_t queued_frames_ = 0;
  FrameQueueStats stats_{};
  bool in_flight_ = false;
  bool closed_ = false;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_FRAME_QUEUE_HPP
