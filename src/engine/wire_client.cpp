#include "engine/wire_client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nsync::engine {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
#else
    const ssize_t w = ::write(fd, data, n);
#endif
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

WireClient WireClient::connect_uds(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("WireClient: UDS path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("WireClient: socket()");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("WireClient: connect(" + path + ")");
  }
  return WireClient(fd);
}

WireClient WireClient::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("WireClient: socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw_errno("WireClient: connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return WireClient(fd);
}

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_)) {}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

wire::Message WireClient::request(const wire::Message& req) {
  if (fd_ < 0) throw std::runtime_error("WireClient: not connected");
  const std::vector<std::uint8_t> bytes = wire::encode(req);
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    close();
    throw std::runtime_error("WireClient: send failed (peer gone)");
  }

  std::uint8_t rx[64 * 1024];
  for (;;) {
    wire::Message reply;
    std::string detail;
    const wire::DecodeStatus st = decoder_.next(reply, &detail);
    if (st == wire::DecodeStatus::kFrame) return reply;
    if (st != wire::DecodeStatus::kNeedMore) {
      close();
      throw std::runtime_error("WireClient: protocol violation from server: " +
                               wire::decode_status_name(st) +
                               (detail.empty() ? "" : " (" + detail + ")"));
    }
    const ssize_t n = ::read(fd_, rx, sizeof(rx));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close();
      throw std::runtime_error("WireClient: connection closed by server");
    }
    decoder_.feed(
        std::span<const std::uint8_t>(rx, static_cast<std::size_t>(n)));
  }
}

namespace {

/// Unwraps the expected reply type; ERROR replies become WireError and
/// anything else (a server bug) a runtime_error.
template <typename Ok>
Ok expect(wire::Message&& reply) {
  if (auto* ok = std::get_if<Ok>(&reply)) return std::move(*ok);
  if (const auto* err = std::get_if<wire::Error>(&reply)) {
    throw WireError(err->code, err->message);
  }
  throw std::runtime_error("WireClient: unexpected reply type");
}

}  // namespace

wire::HelloOk WireClient::hello(const std::string& client_name) {
  wire::Hello h;
  h.client = client_name;
  return expect<wire::HelloOk>(request(h));
}

wire::AddSessionOk WireClient::add_session(const SessionSpec& spec) {
  wire::AddSession m;
  m.spec = spec;
  return expect<wire::AddSessionOk>(request(m));
}

wire::FeedOk WireClient::feed(std::uint64_t session, const std::string& channel,
                              const nsync::signal::SignalView& frames) {
  wire::Feed m;
  m.session = session;
  m.channel = channel;
  m.frames = frames.to_signal();
  return expect<wire::FeedOk>(request(m));
}

wire::Stats WireClient::poll_stats(bool include_sessions) {
  wire::PollStats m;
  m.include_sessions = include_sessions ? 1 : 0;
  return expect<wire::Stats>(request(m));
}

void WireClient::evict(std::uint64_t session) {
  wire::Evict m;
  m.session = session;
  expect<wire::EvictOk>(request(m));
}

}  // namespace nsync::engine
