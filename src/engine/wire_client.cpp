#include "engine/wire_client.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace nsync::engine {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Remaining milliseconds until `deadline`, or -1 (poll forever) when no
/// deadline is set.  Throws WireTimeout once the deadline has passed.
int wait_budget_ms(bool has_deadline, Clock::time_point deadline,
                   const char* what) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) throw WireTimeout(std::string("WireClient: ") + what);
  return static_cast<int>(left.count());
}

/// Connects `fd` to `addr`, bounded by connect_timeout_ms when non-zero
/// (non-blocking connect + poll + SO_ERROR).  The fd is left non-blocking
/// either way; request() does its own poll-based waiting.
void connect_with_deadline(int fd, const sockaddr* addr, socklen_t addr_len,
                           std::uint32_t timeout_ms, const std::string& where) {
  set_nonblocking(fd);
  if (::connect(fd, addr, addr_len) == 0) return;
  if (errno != EINPROGRESS && errno != EAGAIN) {
    throw_errno("WireClient: connect(" + where + ")");
  }
  const bool has_deadline = timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready = ::poll(
        &pfd, 1, wait_budget_ms(has_deadline, deadline, "connect timed out"));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("WireClient: poll(connect " + where + ")");
    }
    if (ready == 0) {
      throw WireTimeout("WireClient: connect(" + where + ") timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("WireClient: getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno("WireClient: connect(" + where + ")");
    }
    return;
  }
}

}  // namespace

WireClient WireClient::connect_uds(const std::string& path,
                                   WireClientOptions options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("WireClient: UDS path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("WireClient: socket()");
  try {
    connect_with_deadline(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr), options.connect_timeout_ms, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return WireClient(fd, options);
}

WireClient WireClient::connect_tcp(std::uint16_t port,
                                   WireClientOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("WireClient: socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  try {
    connect_with_deadline(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr), options.connect_timeout_ms,
                          "127.0.0.1:" + std::to_string(port));
  } catch (...) {
    ::close(fd);
    throw;
  }
  return WireClient(fd, options);
}

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      decoder_(std::move(other.decoder_)) {}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

wire::Message WireClient::request(const wire::Message& req) {
  if (fd_ < 0) throw std::runtime_error("WireClient: not connected");
  const bool has_deadline = options_.io_timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  const auto timed_out = [this](const char* what) -> std::runtime_error {
    close();
    return WireTimeout(std::string("WireClient: ") + what);
  };

  const std::vector<std::uint8_t> bytes = wire::encode(req);
  const std::uint8_t* data = bytes.data();
  std::size_t n_left = bytes.size();
  while (n_left > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t w = ::send(fd_, data, n_left, MSG_NOSIGNAL);
#else
    const ssize_t w = ::write(fd_, data, n_left);
#endif
    if (w > 0) {
      data += w;
      n_left -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      int budget = -1;
      try {
        budget = wait_budget_ms(has_deadline, deadline, "request timed out");
      } catch (const WireTimeout&) {
        throw timed_out("request timed out (send)");
      }
      const int ready = ::poll(&pfd, 1, budget);
      if (ready < 0 && errno != EINTR) {
        close();
        throw std::runtime_error("WireClient: poll(send) failed");
      }
      if (ready == 0 && has_deadline) {
        throw timed_out("request timed out (send)");
      }
      continue;
    }
    close();
    throw std::runtime_error("WireClient: send failed (peer gone)");
  }

  std::uint8_t rx[64 * 1024];
  for (;;) {
    wire::Message reply;
    std::string detail;
    const wire::DecodeStatus st = decoder_.next(reply, &detail);
    if (st == wire::DecodeStatus::kFrame) return reply;
    if (st != wire::DecodeStatus::kNeedMore) {
      close();
      throw std::runtime_error("WireClient: protocol violation from server: " +
                               wire::decode_status_name(st) +
                               (detail.empty() ? "" : " (" + detail + ")"));
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int budget = -1;
    try {
      budget = wait_budget_ms(has_deadline, deadline, "request timed out");
    } catch (const WireTimeout&) {
      throw timed_out("request timed out (reply)");
    }
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0) {
      if (errno == EINTR) continue;
      close();
      throw std::runtime_error("WireClient: poll(recv) failed");
    }
    if (ready == 0) {
      if (has_deadline) throw timed_out("request timed out (reply)");
      continue;
    }
    const ssize_t n = ::read(fd_, rx, sizeof(rx));
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) {
      close();
      throw std::runtime_error("WireClient: connection closed by server");
    }
    decoder_.feed(
        std::span<const std::uint8_t>(rx, static_cast<std::size_t>(n)));
  }
}

namespace {

/// Unwraps the expected reply type; ERROR replies become WireError and
/// anything else (a server bug) a runtime_error.
template <typename Ok>
Ok expect(wire::Message&& reply) {
  if (auto* ok = std::get_if<Ok>(&reply)) return std::move(*ok);
  if (const auto* err = std::get_if<wire::Error>(&reply)) {
    throw WireError(err->code, err->message, err->retry_after_ms);
  }
  throw std::runtime_error("WireClient: unexpected reply type");
}

}  // namespace

wire::HelloOk WireClient::hello(const std::string& client_name) {
  wire::Hello h;
  h.client = client_name;
  return expect<wire::HelloOk>(request(h));
}

wire::AddSessionOk WireClient::add_session(const SessionSpec& spec) {
  wire::AddSession m;
  m.spec = spec;
  return expect<wire::AddSessionOk>(request(m));
}

wire::FeedOk WireClient::feed(std::uint64_t session, const std::string& channel,
                              const nsync::signal::SignalView& frames) {
  wire::Feed m;
  m.session = session;
  m.channel = channel;
  m.frames = frames.to_signal();
  return expect<wire::FeedOk>(request(m));
}

wire::Stats WireClient::poll_stats(bool include_sessions) {
  wire::PollStats m;
  m.include_sessions = include_sessions ? 1 : 0;
  return expect<wire::Stats>(request(m));
}

void WireClient::evict(std::uint64_t session) {
  wire::Evict m;
  m.session = session;
  expect<wire::EvictOk>(request(m));
}

wire::Pong WireClient::ping(std::uint64_t nonce) {
  wire::Ping m;
  m.nonce = nonce;
  wire::Pong pong = expect<wire::Pong>(request(m));
  if (pong.nonce != nonce) {
    close();
    throw std::runtime_error("WireClient: PONG nonce mismatch");
  }
  return pong;
}

}  // namespace nsync::engine
