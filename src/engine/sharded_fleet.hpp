// ShardedFleet — the multi-core fleet layer.
//
// MonitorEngine::poll() drains every session on one thread pool, which in
// practice pins the whole fleet's window processing near one core's
// throughput once feed() itself becomes cheap (bench_ext_multi_session was
// flat at ~29k windows/s from 1 to 64 sessions).  ShardedFleet partitions
// the fleet across N shards; each shard owns a *private* MonitorEngine and
// a dedicated worker thread, fed through a bounded MPSC FrameQueue:
//
//   ingest threads ──► FrameQueue[shard 0] ──► worker 0 ──► MonitorEngine 0
//          (feed)  ──► FrameQueue[shard 1] ──► worker 1 ──► MonitorEngine 1
//                       ...                                 ...
//
// Sessions are assigned round-robin by global id: session g lives on shard
// g % N at local id g / N.  The mapping is stable for the life of the id
// (ids are never reused; eviction leaves a tombstone), which is also what
// lets restore() rebuild the global registry from the per-shard checkpoint
// files alone — no separate metadata file.
//
// Determinism: one session's frames are processed by exactly one worker in
// feed order (the queue is FIFO and a session never migrates), and window
// processing per session is the same sequential DetectionCore pipeline the
// unsharded engine runs.  With the kBlock overflow policy (no shedding),
// per-session verdicts are therefore bitwise identical at any shard count,
// including against a plain MonitorEngine — pinned by
// tests/test_sharded_fleet.cpp.
//
// Backpressure: each queue has a frame high-water mark and an explicit
// OverflowPolicy (block / drop-oldest / reject); every shed or rejected
// frame is accounted in per-shard stats.  Past saturation the fleet
// degrades by policy, never by unbounded memory growth.
//
// Crash safety: each shard's engine periodically checkpoints its own
// sessions to `<dir>/fleet.<shard>.nckp` (the PR-5 atomic container), and
// add_session() checkpoints the target shard synchronously so admission is
// durable.  restore() reloads all N files and replays bitwise-identical
// verdicts once the feeder resumes each channel at its recorded
// frames_fed offset.
#ifndef NSYNC_ENGINE_SHARDED_FLEET_HPP
#define NSYNC_ENGINE_SHARDED_FLEET_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/frame_queue.hpp"
#include "engine/monitor_engine.hpp"

namespace nsync::engine {

/// Log2-bucketed latency histogram (microseconds).  Cheap enough to
/// update per batch on the worker; quantiles are bucket upper bounds, so
/// p99 is conservative within a factor of 2.
class LatencyHistogram {
 public:
  void record(std::chrono::nanoseconds latency);
  void merge(const LatencyHistogram& other);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Approximate quantile in microseconds (q in [0,1]); 0 when empty.
  [[nodiscard]] double quantile_us(double q) const;

 private:
  std::array<std::uint64_t, 40> buckets_{};
  std::uint64_t count_ = 0;
};

/// Outcome of one ShardedFleet::feed call.
enum class FeedStatus : std::uint8_t {
  kOk = 0,
  kShed,             ///< accepted, but older queued frames were dropped
  kRejected,         ///< refused (kReject policy past the high-water mark)
  kUnknownSession,   ///< no such session id
  kUnknownChannel,   ///< session has no channel of that name
  kChannelMismatch,  ///< frame width does not match the channel's
  kEvicted,          ///< session was evicted
  kShardFailed,      ///< the session's shard worker died (supervision)
};

[[nodiscard]] std::string feed_status_name(FeedStatus s);

struct FeedResult {
  FeedStatus status = FeedStatus::kOk;
  std::size_t accepted_frames = 0;
  std::size_t shed_frames = 0;   ///< older frames load-shed to make room
  std::size_t queued_frames = 0; ///< shard backlog after this feed
};

struct ShardStats {
  std::size_t shard = 0;
  std::size_t sessions = 0;  ///< live (non-evicted) sessions on the shard
  FrameQueueStats queue;
  std::uint64_t batches = 0;  ///< feed/evict batches processed
  std::uint64_t polls = 0;    ///< drain rounds run by the worker
  std::uint64_t windows = 0;  ///< windows processed by this shard
  std::uint64_t feed_errors = 0;  ///< engine-side feed failures (bug guard)
  bool failed = false;            ///< worker died and was not restarted
  std::uint64_t restarts = 0;     ///< restart-from-checkpoint recoveries
  std::uint64_t discarded_frames = 0;  ///< backlog dropped at failure
  std::string failure_reason;     ///< what() of the escaped exception
  std::uint64_t checkpoints_written = 0;
  std::uint64_t latency_samples = 0;
  double p50_feed_to_verdict_us = 0.0;
  double p99_feed_to_verdict_us = 0.0;
};

struct FleetStats {
  std::size_t shards = 0;
  std::size_t sessions = 0;  ///< ids ever issued (incl. evicted)
  std::size_t evicted = 0;
  std::uint64_t windows = 0;
  std::uint64_t shed_frames = 0;
  std::uint64_t rejected_frames = 0;  ///< kReject overload refusals only
  std::uint64_t closed_frames = 0;    ///< shutdown-drain refusals
  std::size_t queued_frames = 0;
  std::size_t failed_shards = 0;  ///< shards currently failed (supervision)
  bool busy = false;  ///< any shard queue non-empty or in flight
  double p50_feed_to_verdict_us = 0.0;  ///< merged across shards
  double p99_feed_to_verdict_us = 0.0;
  std::vector<ShardStats> per_shard;
};

struct ShardedFleetOptions {
  /// Worker shards.  0 selects the inline A/B path: one engine, no
  /// threads, no queues; feed() applies directly and flush() drains.
  std::size_t shards = 1;
  /// Per-shard queue high-water mark in frames (0 = unbounded).
  std::size_t queue_capacity_frames = 1u << 20;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Forwarded to each shard engine (inline-drain backstop).
  std::size_t max_pending_frames = 65536;
  /// When non-empty, shard i periodically checkpoints to
  /// `<checkpoint_dir>/fleet.<i>.nckp`, and add_session/evict become
  /// durable (synchronous checkpoint of the affected shard).
  std::string checkpoint_dir;
  std::size_t checkpoint_every_polls = 1;
  std::size_t checkpoint_every_windows = 0;
  /// Per-device baseline adaptation, forwarded to every shard engine.
  /// Each shard owns a private registry (sessions never migrate, so a
  /// device's baseline evolves deterministically within its shard) and
  /// exports to its own file, `<baseline.dir>/baselines.<shard>.nbrg`.
  BaselineOptions baseline;
  /// When set, every admitted session fuses with this policy, overriding
  /// whatever the spec (e.g. a wire client) carried — the daemon-side
  /// `--fusion` knob.  Restored sessions keep their serialized policy.
  std::shared_ptr<const core::FusionPolicy> fusion_override;
  /// Shard-worker supervision.  An exception escaping a worker loop marks
  /// the shard failed: its sessions answer kShardFailed while every other
  /// shard keeps serving.  With restart_from_checkpoint (and a
  /// checkpoint_dir) the shard instead restores its engine from the last
  /// `fleet.<i>.nckp`, discards the misaligned queue backlog (counted in
  /// ShardStats::discarded_frames) and resumes — feeders must resync
  /// their cursors from the snapshot frames_fed offsets, exactly like a
  /// daemon restart.
  struct Supervision {
    bool restart_from_checkpoint = false;
    std::size_t max_restarts = 3;  ///< per shard; beyond this it stays failed
  };
  Supervision supervision;
  /// Test/chaos hook: invoked on the worker thread before each batch is
  /// applied.  Throwing from it simulates a worker-loop failure.
  std::function<void(std::size_t shard, const FrameBatch&)> worker_fault_hook;
};

/// One shard's per-device baselines (see ShardedFleet::baselines()).
struct ShardBaselineEntry {
  std::string model;
  std::string profile;
  DeviceBaseline baseline;
};
struct ShardBaselines {
  std::size_t shard = 0;
  std::vector<ShardBaselineEntry> entries;
};

class ShardedFleet {
 public:
  explicit ShardedFleet(ShardedFleetOptions options = {});
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  /// Admits a session and returns its fleet-global id.  Ids are dense and
  /// never reused; the shard is id % shards (id 0 on shard 0, …).  When
  /// checkpointing is enabled the target shard is checkpointed before
  /// this returns, so an admission can never be lost to a crash.  Throws
  /// std::invalid_argument on an invalid spec.
  std::size_t add_session(SessionSpec spec);

  /// Marks the session evicted (new feeds fail immediately) and enqueues
  /// the eviction so it lands *in order* with the frames already queued.
  /// The engine-side state is released when the shard worker processes
  /// it.  Throws std::out_of_range on an unknown id; idempotent once
  /// admitted.  Returns true when this call performed the eviction, false
  /// when the session was already evicted — the wire layer surfaces the
  /// latter as a typed kEvicted error instead of silently succeeding.
  bool evict_session(std::size_t session);

  /// Most recently admitted live (non-evicted) session with this name, if
  /// any.  The wire layer uses it to make ADD_SESSION idempotent: a
  /// reconnecting client re-issuing its specs re-attaches to the existing
  /// sessions instead of admitting duplicates.
  [[nodiscard]] std::optional<std::size_t> find_live_session(
      const std::string& name) const;

  /// Ids ever issued (including evicted sessions).
  [[nodiscard]] std::size_t sessions() const;

  /// Configured shard count (0 = inline mode).
  [[nodiscard]] std::size_t shards() const { return options_.shards; }

  /// Shard a session id maps to.
  [[nodiscard]] std::size_t shard_of(std::size_t session) const;

  /// Validates and stages frames for one channel of one session.  Never
  /// throws on data-plane errors — the outcome is in the result, ready to
  /// be surfaced as a typed wire reply.
  FeedResult feed(std::size_t session, const std::string& channel,
                  const nsync::signal::SignalView& frames);

  /// Blocks until every accepted frame has been processed (all queues
  /// empty and all workers idle).  In inline mode this runs the drain.
  void flush();

  [[nodiscard]] SessionSnapshot snapshot(std::size_t session) const;
  [[nodiscard]] std::vector<SessionSnapshot> snapshots() const;

  [[nodiscard]] FleetStats stats() const;

  /// Adapted per-device baselines of every shard, sorted by key within a
  /// shard (deterministic).  Empty unless options.baseline.adaptive.
  [[nodiscard]] std::vector<ShardBaselines> baselines() const;

  /// Synchronously checkpoints every shard (requires checkpoint_dir).
  void checkpoint_all() const;

  /// Path of shard i's checkpoint file within checkpoint_dir.
  [[nodiscard]] static std::string shard_checkpoint_filename(
      std::size_t shard);

  /// Rebuilds a fleet from `<dir>/fleet.<i>.nckp` for every shard of
  /// `options.shards` (all files must exist — a missing shard file means
  /// the checkpoint set is incomplete).  The global session registry is
  /// derived from the round-robin id mapping; inconsistent shard files
  /// (counts that no id sequence produces) throw
  /// CheckpointError(kMismatch).
  [[nodiscard]] static std::unique_ptr<ShardedFleet> restore(
      const std::string& dir, ShardedFleetOptions options);

 private:
  struct Shard {
    std::unique_ptr<MonitorEngine> engine;  // engine ops serialize on mu
    mutable std::mutex mu;
    std::unique_ptr<FrameQueue> queue;  // null in inline mode
    std::thread worker;
    // Worker-side counters, guarded by mu.
    std::uint64_t batches = 0;
    std::uint64_t polls = 0;
    std::uint64_t windows = 0;
    std::uint64_t feed_errors = 0;
    LatencyHistogram latency;
    // Supervision state.  `failed` is atomic so the feed hot path can
    // check it without taking mu; failure_reason is guarded by mu.
    std::atomic<bool> failed{false};
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<std::uint64_t> discarded_frames{0};
    std::string failure_reason;
  };

  struct ChannelInfo {
    std::string name;
    std::size_t width = 0;  ///< samples per frame
  };

  struct SessionInfo {
    std::size_t shard = 0;
    std::size_t local = 0;  ///< id within the shard's engine
    std::string name;
    std::vector<ChannelInfo> channels;
    bool evicted = false;
  };

  /// restore() path: rebuilds every shard engine from
  /// `<restore_dir>/fleet.<i>.nckp`, re-derives the registry, then starts
  /// the workers.
  ShardedFleet(ShardedFleetOptions options, const std::string& restore_dir);

  [[nodiscard]] MonitorEngineOptions engine_options(std::size_t shard) const;
  void start_workers();
  void worker_loop(std::size_t index, Shard& shard);
  void process_batches(std::size_t index, Shard& shard,
                       const std::vector<FrameBatch>& batches);
  /// Handles an exception that escaped batch processing.  Returns true
  /// when the shard was restarted from its checkpoint and the worker loop
  /// should continue; false when the failure is permanent (queue closed
  /// and drained so flush() can never hang on the dead worker).
  bool supervise_failure(std::size_t index, Shard& shard,
                         const std::string& what);
  [[nodiscard]] std::size_t effective_shards() const {
    return options_.shards == 0 ? 1 : options_.shards;
  }

  ShardedFleetOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::shared_mutex registry_mu_;
  std::vector<SessionInfo> registry_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_SHARDED_FLEET_HPP
