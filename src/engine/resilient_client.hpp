// ResilientWireClient — reconnecting NSFP client with idempotent resync.
//
// WireClient is one socket: any transport failure kills it and the caller
// starts over.  This wrapper owns the *endpoint* instead and survives the
// failures a factory network actually produces — daemon restarts, dropped
// connections, admission-cap busy rejections, stalled links — while
// keeping the stream's detection results bitwise identical to an
// uninterrupted run:
//
//   * Per-call deadlines (WireClientOptions) bound every connect, send
//     and reply wait, so a dead peer costs a timeout, not a hung thread.
//   * Bounded exponential backoff with deterministic seeded jitter
//     between reconnect attempts; kBusy rejections honor the server's
//     retry-after-ms hint.
//   * Automatic reconnect with *idempotent resync*: on a new connection
//     the client re-issues ADD_SESSION for every registered spec (the
//     server re-attaches by name instead of duplicating), then reads the
//     per-channel frames_fed offsets from POLL_STATS and fast-forwards
//     its cursors.  feed() takes the absolute stream offset of its view,
//     so a retried feed sends exactly the suffix the server has not seen:
//     no frame is ever double-counted, no frame is silently skipped.
//
// The exactly-once invariant requires a lossless queue policy on the
// server (kBlock, the default) and a single feeder per (session, channel)
// stream — both are the deployment the daemon documents.  When the server
// *lost* frames (restart restored an older checkpoint), feed() reports
// `rewound` with the authoritative cursor and the caller re-feeds from
// there, which is the same contract fleet_monitor already implements for
// `--resume`.
//
// One client drives one logical stream set from one thread; the class is
// not thread-safe.
#ifndef NSYNC_ENGINE_RESILIENT_CLIENT_HPP
#define NSYNC_ENGINE_RESILIENT_CLIENT_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "engine/wire_client.hpp"

namespace nsync::engine {

/// Where the daemon lives: a UDS path (when non-empty) or a loopback TCP
/// port.
struct WireEndpoint {
  std::string uds_path;
  std::uint16_t tcp_port = 0;
};

struct ResilientClientOptions {
  /// Per-connection deadlines, forwarded to every underlying WireClient.
  WireClientOptions io{/*connect_timeout_ms=*/2000, /*io_timeout_ms=*/10000};
  /// Reconnect/retry attempts per call before the failure propagates.
  std::size_t max_attempts = 8;
  /// Exponential backoff between attempts: delay k is drawn uniformly
  /// from [d/2, d] with d = min(cap, base << k) — "equal jitter", so
  /// reconnect storms decorrelate but the delay stays bounded.
  std::uint32_t backoff_base_ms = 10;
  std::uint32_t backoff_cap_ms = 1000;
  /// Seed of the jitter stream; equal seeds reproduce equal schedules
  /// (deterministic tests and benches).
  std::uint64_t jitter_seed = 1;
  std::string client_name = "resilient-client";
};

class ResilientWireClient {
 public:
  ResilientWireClient(WireEndpoint endpoint,
                      ResilientClientOptions options = {});

  ResilientWireClient(const ResilientWireClient&) = delete;
  ResilientWireClient& operator=(const ResilientWireClient&) = delete;
  ResilientWireClient(ResilientWireClient&&) = default;
  ResilientWireClient& operator=(ResilientWireClient&&) = default;

  /// Forces a (re)connect + handshake now and returns the server's HELLO
  /// reply (fleet summary).  Normally lazy: every call connects on
  /// demand.
  wire::HelloOk connect_now();

  /// Registers a session spec and returns its stable handle.  The handle
  /// is the server id at first registration and stays valid across
  /// reconnects even if the server assigns a different id on re-attach.
  /// Re-attaching to a resumed daemon picks up the existing session and
  /// its frames_fed cursors (see acked()).
  std::uint64_t add_session(const SessionSpec& spec);

  struct FeedOutcome {
    wire::FeedOk ok{};       ///< reply of the final send (zero if skipped)
    std::size_t cursor = 0;  ///< authoritative next-frame offset after this
    /// The server holds *fewer* frames than `offset` (it restarted from an
    /// older checkpoint): nothing was sent; re-feed from `cursor`.
    bool rewound = false;
  };

  /// Feeds `frames`, whose first frame sits at absolute stream offset
  /// `offset` of this (session, channel).  Retries through reconnects;
  /// the resynced cursor decides how much of the view is actually sent
  /// (possibly nothing — already applied — or a suffix).  Throws
  /// WireError for typed server errors and std::runtime_error once
  /// max_attempts transport failures are exhausted.
  FeedOutcome feed(std::uint64_t session, const std::string& channel,
                   const nsync::signal::SignalView& frames,
                   std::size_t offset);

  /// Frames of this channel the server has acknowledged — the caller's
  /// feed cursor.  Updated by every successful feed and every resync.
  [[nodiscard]] std::size_t acked(std::uint64_t session,
                                  const std::string& channel) const;

  /// Re-reads every registered session's frames_fed offsets from the
  /// server (POLL_STATS) without waiting for a reconnect — used after
  /// attaching to a resumed daemon.
  void refresh_offsets();

  /// Evicts the session; a typed kEvicted reply (someone got there first,
  /// or a retried evict whose first reply was lost) counts as success.
  void evict(std::uint64_t session);

  wire::Stats poll_stats(bool include_sessions = false);
  wire::Pong ping(std::uint64_t nonce);

  struct Telemetry {
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;         ///< connects beyond the first
    std::uint64_t transport_errors = 0;   ///< failures that forced a retry
    std::uint64_t busy_backoffs = 0;      ///< kBusy admission rejections
    std::uint64_t fast_forwarded_frames = 0;  ///< frames skipped on resync
    std::uint64_t rewinds = 0;            ///< server-lost-frames outcomes
  };
  [[nodiscard]] const Telemetry& telemetry() const { return telemetry_; }

  /// Jitter schedule entry for attempt k (consumes one RNG draw) —
  /// exposed so tests can pin determinism and bounds.
  [[nodiscard]] std::uint32_t backoff_delay_ms(std::size_t attempt);

 private:
  struct SessionState {
    std::uint64_t handle = 0;     ///< public id (server id at registration)
    std::uint64_t server_id = 0;  ///< current server-side id
    SessionSpec spec;
    bool evicted = false;
    std::map<std::string, std::size_t> acked;  ///< channel → frames acked
  };

  /// Connects (with backoff) and resyncs if not already connected.
  void ensure_connected();
  /// Re-registers every live session and refreshes acked offsets.
  /// Requires a live conn_.
  void resync();
  void sync_offsets();
  void handle_transport_error(std::size_t& attempt, const char* what);
  SessionState& state(std::uint64_t handle);
  const SessionState& state(std::uint64_t handle) const;

  WireEndpoint endpoint_;
  ResilientClientOptions options_;
  std::optional<WireClient> conn_;
  wire::HelloOk last_hello_;
  std::vector<SessionState> sessions_;
  std::mt19937_64 rng_;
  Telemetry telemetry_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_RESILIENT_CLIENT_HPP
