#include "engine/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace nsync::engine {

namespace {

void sleep_ms(std::uint32_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

ResilientWireClient::ResilientWireClient(WireEndpoint endpoint,
                                         ResilientClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      rng_(options_.jitter_seed) {}

std::uint32_t ResilientWireClient::backoff_delay_ms(std::size_t attempt) {
  const std::uint64_t shift = std::min<std::size_t>(attempt, 20);
  const std::uint64_t d =
      std::min<std::uint64_t>(options_.backoff_cap_ms,
                              std::uint64_t{options_.backoff_base_ms} << shift);
  if (d == 0) return 0;
  // Equal jitter: uniform in [d/2, d].  rng_ is seeded, so the schedule is
  // reproducible; modulo bias over this range is irrelevant for pacing.
  const std::uint64_t half = d / 2;
  return static_cast<std::uint32_t>(half + rng_() % (d - half + 1));
}

void ResilientWireClient::handle_transport_error(std::size_t& attempt,
                                                 const char* what) {
  ++telemetry_.transport_errors;
  conn_.reset();
  if (++attempt >= options_.max_attempts) {
    throw std::runtime_error(std::string("ResilientWireClient: ") + what +
                             " failed after " +
                             std::to_string(options_.max_attempts) +
                             " attempts");
  }
  sleep_ms(backoff_delay_ms(attempt - 1));
}

void ResilientWireClient::ensure_connected() {
  if (conn_ && conn_->connected()) return;
  conn_.reset();
  std::size_t attempt = 0;
  for (;;) {
    try {
      WireClient c = endpoint_.uds_path.empty()
                         ? WireClient::connect_tcp(endpoint_.tcp_port,
                                                   options_.io)
                         : WireClient::connect_uds(endpoint_.uds_path,
                                                   options_.io);
      last_hello_ = c.hello(options_.client_name);
      conn_.emplace(std::move(c));
      ++telemetry_.connects;
      if (telemetry_.connects > 1) ++telemetry_.reconnects;
      resync();
      return;
    } catch (const WireError& e) {
      if (e.code() != wire::ErrorCode::kBusy) throw;
      // Admission cap: honor the server's hint, but never retry faster
      // than our own jittered schedule.
      ++telemetry_.busy_backoffs;
      conn_.reset();
      if (++attempt >= options_.max_attempts) throw;
      sleep_ms(std::max(e.retry_after_ms(), backoff_delay_ms(attempt - 1)));
    } catch (const std::exception&) {
      ++telemetry_.transport_errors;
      conn_.reset();
      if (++attempt >= options_.max_attempts) throw;
      sleep_ms(backoff_delay_ms(attempt - 1));
    }
  }
}

wire::HelloOk ResilientWireClient::connect_now() {
  conn_.reset();
  ensure_connected();
  return last_hello_;
}

void ResilientWireClient::resync() {
  // Re-attach every live session.  The server's ADD_SESSION is idempotent
  // by name (a live session with the same name is returned, not
  // duplicated), so replaying registrations is safe whether the daemon
  // kept our state, resumed from a checkpoint, or started fresh.
  for (auto& st : sessions_) {
    if (st.evicted) continue;
    st.server_id = conn_->add_session(st.spec).session;
  }
  if (!sessions_.empty()) sync_offsets();
}

void ResilientWireClient::sync_offsets() {
  const wire::Stats stats = conn_->poll_stats(/*include_sessions=*/true);
  for (auto& st : sessions_) {
    if (st.evicted) continue;
    // sessions_detail is ordered by server id; verify by name in case the
    // daemon restarted fresh and ids shifted.
    const wire::StatsSession* found = nullptr;
    if (st.server_id < stats.sessions_detail.size() &&
        stats.sessions_detail[st.server_id].name == st.spec.name) {
      found = &stats.sessions_detail[st.server_id];
    } else {
      for (const auto& d : stats.sessions_detail) {
        if (d.name == st.spec.name && d.evicted == 0) found = &d;
      }
    }
    if (found == nullptr) continue;
    if (found->evicted != 0) {
      st.evicted = true;
      continue;
    }
    for (const auto& ch : found->channels) {
      st.acked[ch.name] = static_cast<std::size_t>(ch.frames_fed);
    }
  }
}

void ResilientWireClient::refresh_offsets() {
  std::size_t attempt = 0;
  for (;;) {
    try {
      ensure_connected();
      sync_offsets();
      return;
    } catch (const WireError&) {
      throw;
    } catch (const std::exception&) {
      handle_transport_error(attempt, "refresh_offsets");
    }
  }
}

ResilientWireClient::SessionState& ResilientWireClient::state(
    std::uint64_t handle) {
  for (auto& st : sessions_) {
    if (st.handle == handle) return st;
  }
  throw std::out_of_range("ResilientWireClient: unknown session handle " +
                          std::to_string(handle));
}

const ResilientWireClient::SessionState& ResilientWireClient::state(
    std::uint64_t handle) const {
  for (const auto& st : sessions_) {
    if (st.handle == handle) return st;
  }
  throw std::out_of_range("ResilientWireClient: unknown session handle " +
                          std::to_string(handle));
}

std::uint64_t ResilientWireClient::add_session(const SessionSpec& spec) {
  SessionState st;
  st.spec = spec;
  for (const auto& ch : spec.channels) st.acked[ch.name] = 0;

  std::size_t attempt = 0;
  for (;;) {
    try {
      ensure_connected();
      const wire::AddSessionOk ok = conn_->add_session(spec);
      st.handle = ok.session;
      st.server_id = ok.session;
      break;
    } catch (const WireError&) {
      throw;
    } catch (const std::exception&) {
      handle_transport_error(attempt, "add_session");
    }
  }
  sessions_.push_back(std::move(st));
  // Pick up pre-existing cursors when this re-attached to a resumed
  // daemon (fresh sessions just read back zeros).
  refresh_offsets();
  return sessions_.back().handle;
}

std::size_t ResilientWireClient::acked(std::uint64_t session,
                                       const std::string& channel) const {
  const SessionState& st = state(session);
  const auto it = st.acked.find(channel);
  if (it == st.acked.end()) {
    throw std::out_of_range("ResilientWireClient: unknown channel " + channel);
  }
  return it->second;
}

ResilientWireClient::FeedOutcome ResilientWireClient::feed(
    std::uint64_t session, const std::string& channel,
    const nsync::signal::SignalView& frames, std::size_t offset) {
  std::size_t attempt = 0;
  for (;;) {
    SessionState& st = state(session);
    if (st.evicted) {
      throw WireError(wire::ErrorCode::kEvicted, "session evicted");
    }
    try {
      ensure_connected();
      // ensure_connected() may have resynced st.acked from the server, so
      // re-read the cursor every attempt.
      const std::size_t sent = st.acked.at(channel);
      const std::size_t n = frames.frames();
      if (sent >= offset + n) {
        // The whole view was applied before a reply got lost: synthesize
        // success instead of double-feeding (the exactly-once
        // fast-forward).
        telemetry_.fast_forwarded_frames += n;
        FeedOutcome out;
        out.cursor = sent;
        return out;
      }
      if (sent < offset) {
        // Server rolled back past this view (restart from an older
        // checkpoint): the caller owns the data and must re-feed from
        // `cursor`.
        ++telemetry_.rewinds;
        FeedOutcome out;
        out.cursor = sent;
        out.rewound = true;
        return out;
      }
      const std::size_t skip = sent - offset;
      telemetry_.fast_forwarded_frames += skip;
      FeedOutcome out;
      out.ok = conn_->feed(st.server_id, channel, frames.slice(skip, n));
      st.acked[channel] = offset + n;
      out.cursor = offset + n;
      return out;
    } catch (const WireError& e) {
      if (e.code() == wire::ErrorCode::kEvicted) st.evicted = true;
      throw;  // typed server errors are never transport noise: propagate
    } catch (const std::exception&) {
      handle_transport_error(attempt, "feed");
    }
  }
}

void ResilientWireClient::evict(std::uint64_t session) {
  std::size_t attempt = 0;
  for (;;) {
    SessionState& st = state(session);
    if (st.evicted) return;
    try {
      ensure_connected();
      conn_->evict(st.server_id);
      st.evicted = true;
      return;
    } catch (const WireError& e) {
      if (e.code() == wire::ErrorCode::kEvicted) {
        // A retried evict whose first reply was lost, or another client
        // got there first — either way the goal state holds.
        st.evicted = true;
        return;
      }
      throw;
    } catch (const std::exception&) {
      handle_transport_error(attempt, "evict");
    }
  }
}

wire::Stats ResilientWireClient::poll_stats(bool include_sessions) {
  std::size_t attempt = 0;
  for (;;) {
    try {
      ensure_connected();
      return conn_->poll_stats(include_sessions);
    } catch (const WireError&) {
      throw;
    } catch (const std::exception&) {
      handle_transport_error(attempt, "poll_stats");
    }
  }
}

wire::Pong ResilientWireClient::ping(std::uint64_t nonce) {
  std::size_t attempt = 0;
  for (;;) {
    try {
      ensure_connected();
      return conn_->ping(nonce);
    } catch (const WireError&) {
      throw;
    } catch (const std::exception&) {
      handle_transport_error(attempt, "ping");
    }
  }
}

}  // namespace nsync::engine
