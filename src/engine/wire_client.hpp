// WireClient — blocking NSFP client for the fleet daemon.
//
// One connection, synchronous request/reply.  The typed helpers (hello,
// add_session, feed, poll_stats, evict, ping) unwrap the expected reply
// and throw WireError when the daemon answers with a typed ERROR, so
// callers see `catch (const WireError& e) { e.code() ... }` instead of
// decoding frames by hand.  Transport failures and framing violations
// throw plain std::runtime_error — after either, the connection is
// unusable.  With WireClientOptions deadlines set, a connect or a whole
// request/reply exchange that cannot complete in time throws WireTimeout
// (a runtime_error, so existing catch sites still work) and closes the
// connection.  ResilientWireClient (resilient_client.hpp) layers
// reconnect + idempotent resync on top of this class.
#ifndef NSYNC_ENGINE_WIRE_CLIENT_HPP
#define NSYNC_ENGINE_WIRE_CLIENT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "engine/monitor_engine.hpp"
#include "engine/wire_protocol.hpp"

namespace nsync::engine {

/// The daemon replied with a typed ERROR frame.
class WireError : public std::runtime_error {
 public:
  WireError(wire::ErrorCode code, const std::string& message,
            std::uint32_t retry_after_ms = 0)
      : std::runtime_error(wire::error_code_name(code) + ": " + message),
        code_(code),
        retry_after_ms_(retry_after_ms) {}

  [[nodiscard]] wire::ErrorCode code() const { return code_; }
  /// Server back-off hint (kBusy admission rejections); 0 = none.
  [[nodiscard]] std::uint32_t retry_after_ms() const { return retry_after_ms_; }

 private:
  wire::ErrorCode code_;
  std::uint32_t retry_after_ms_;
};

/// A connect or request deadline expired.  The connection is closed.
class WireTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct WireClientOptions {
  /// Deadline for establishing the connection; 0 = OS default (blocking).
  std::uint32_t connect_timeout_ms = 0;
  /// Per-call deadline covering the request write and the reply read;
  /// 0 = wait indefinitely.
  std::uint32_t io_timeout_ms = 0;
};

class WireClient {
 public:
  /// Connects to a Unix-domain socket.  Throws std::runtime_error
  /// (WireTimeout past a connect deadline).
  [[nodiscard]] static WireClient connect_uds(const std::string& path,
                                              WireClientOptions options = {});
  /// Connects to 127.0.0.1:port.  Throws std::runtime_error.
  [[nodiscard]] static WireClient connect_tcp(std::uint16_t port,
                                              WireClientOptions options = {});

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one request frame and blocks for one reply frame.
  [[nodiscard]] wire::Message request(const wire::Message& req);

  // Typed helpers: return the OK reply or throw WireError / runtime_error.
  wire::HelloOk hello(const std::string& client_name);
  wire::AddSessionOk add_session(const SessionSpec& spec);
  wire::FeedOk feed(std::uint64_t session, const std::string& channel,
                    const nsync::signal::SignalView& frames);
  wire::Stats poll_stats(bool include_sessions = false);
  void evict(std::uint64_t session);
  /// Keepalive round trip; throws if the echoed nonce differs.
  wire::Pong ping(std::uint64_t nonce);

 private:
  WireClient(int fd, WireClientOptions options)
      : fd_(fd), options_(options) {}

  int fd_ = -1;
  WireClientOptions options_;
  wire::FrameDecoder decoder_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_WIRE_CLIENT_HPP
