// WireClient — blocking NSFP client for the fleet daemon.
//
// One connection, synchronous request/reply.  The typed helpers (hello,
// add_session, feed, poll_stats, evict) unwrap the expected reply and
// throw WireError when the daemon answers with a typed ERROR, so callers
// see `catch (const WireError& e) { e.code() ... }` instead of decoding
// frames by hand.  Transport failures and framing violations throw plain
// std::runtime_error — after either, the connection is unusable.
#ifndef NSYNC_ENGINE_WIRE_CLIENT_HPP
#define NSYNC_ENGINE_WIRE_CLIENT_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

#include "engine/monitor_engine.hpp"
#include "engine/wire_protocol.hpp"

namespace nsync::engine {

/// The daemon replied with a typed ERROR frame.
class WireError : public std::runtime_error {
 public:
  WireError(wire::ErrorCode code, const std::string& message)
      : std::runtime_error(wire::error_code_name(code) + ": " + message),
        code_(code) {}

  [[nodiscard]] wire::ErrorCode code() const { return code_; }

 private:
  wire::ErrorCode code_;
};

class WireClient {
 public:
  /// Connects to a Unix-domain socket.  Throws std::runtime_error.
  [[nodiscard]] static WireClient connect_uds(const std::string& path);
  /// Connects to 127.0.0.1:port.  Throws std::runtime_error.
  [[nodiscard]] static WireClient connect_tcp(std::uint16_t port);

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one request frame and blocks for one reply frame.
  [[nodiscard]] wire::Message request(const wire::Message& req);

  // Typed helpers: return the OK reply or throw WireError / runtime_error.
  wire::HelloOk hello(const std::string& client_name);
  wire::AddSessionOk add_session(const SessionSpec& spec);
  wire::FeedOk feed(std::uint64_t session, const std::string& channel,
                    const nsync::signal::SignalView& frames);
  wire::Stats poll_stats(bool include_sessions = false);
  void evict(std::uint64_t session);

 private:
  explicit WireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  wire::FrameDecoder decoder_;
};

}  // namespace nsync::engine

#endif  // NSYNC_ENGINE_WIRE_CLIENT_HPP
