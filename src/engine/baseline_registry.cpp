#include "engine/baseline_registry.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "signal/checkpoint.hpp"

namespace nsync::engine {

using nsync::signal::ByteReader;
using nsync::signal::ByteWriter;
using nsync::signal::CheckpointError;
using nsync::signal::CheckpointErrorKind;

namespace {

// 'N','B','R','G' little-endian.
constexpr std::uint32_t kSecBaselineRegistry = 0x4752424E;
// Format version of the NBRG payload, independent of the NCKP container
// version — bump on any layout change.
constexpr std::uint32_t kFormatVersion = 1;

[[nodiscard]] bool thresholds_ok(const core::Thresholds& t) {
  return std::isfinite(t.c_c) && t.c_c >= 0.0 && std::isfinite(t.h_c) &&
         t.h_c >= 0.0 && std::isfinite(t.v_c) && t.v_c >= 0.0;
}

[[nodiscard]] bool maxima_ok(const core::FeatureMaxima& m) {
  return std::isfinite(m.c_max) && m.c_max >= 0.0 && std::isfinite(m.h_max) &&
         m.h_max >= 0.0 && std::isfinite(m.v_max) && m.v_max >= 0.0;
}

void save_thresholds(ByteWriter& w, const core::Thresholds& t) {
  w.pod<double>(t.c_c);
  w.pod<double>(t.h_c);
  w.pod<double>(t.v_c);
}

[[nodiscard]] core::Thresholds load_thresholds(ByteReader& r) {
  core::Thresholds t;
  t.c_c = r.pod<double>();
  t.h_c = r.pod<double>();
  t.v_c = r.pod<double>();
  return t;
}

/// One component's bounded move toward the re-learned target: at most
/// `max_step` relative movement per fold, clamped to the anchor's drift
/// envelope.  The envelope is one-sided — [anchor, anchor*(1+max_drift)]
/// — because the features are nonnegative magnitudes that sensor drift
/// can only inflate: adapting *below* the factory calibration would
/// tighten sensitivity on the strength of a small, noisy window of
/// recent maxima and buy false positives for nothing.  An anchor
/// component of 0 pins the component at 0 (the envelope is empty), which
/// is the safe direction for a threshold.
[[nodiscard]] double step_component(double current, double target,
                                    double anchor,
                                    const AdaptationPolicy& policy) {
  const double bound =
      policy.max_step * std::max(std::abs(current), std::abs(anchor));
  double next = std::clamp(target, current - bound, current + bound);
  next = std::clamp(next, anchor, anchor * (1.0 + policy.max_drift));
  return next;
}

}  // namespace

void AdaptationPolicy::validate() const {
  if (history == 0) {
    throw std::invalid_argument("AdaptationPolicy: history must be >= 1");
  }
  if (min_prints == 0) {
    throw std::invalid_argument("AdaptationPolicy: min_prints must be >= 1");
  }
  if (!(max_step > 0.0) || !(max_step <= 1.0)) {
    throw std::invalid_argument(
        "AdaptationPolicy: max_step must be in (0, 1]");
  }
  if (!std::isfinite(max_drift) || max_drift < 0.0) {
    throw std::invalid_argument(
        "AdaptationPolicy: max_drift must be finite and >= 0");
  }
  if (!std::isfinite(r) || r < 0.0) {
    throw std::invalid_argument("AdaptationPolicy: r must be finite and >= 0");
  }
}

BaselineRegistry::BaselineRegistry(AdaptationPolicy policy)
    : policy_(policy) {
  policy_.validate();
}

BaselineRegistry::BaselineRegistry(const BaselineRegistry& other)
    : policy_(other.policy_) {
  const std::scoped_lock lock(other.mu_);
  baselines_ = other.baselines_;
}

BaselineRegistry& BaselineRegistry::operator=(const BaselineRegistry& other) {
  if (this == &other) return *this;
  std::map<Key, DeviceBaseline> copy;
  {
    const std::scoped_lock lock(other.mu_);
    copy = other.baselines_;
  }
  const std::scoped_lock lock(mu_);
  policy_ = other.policy_;
  baselines_ = std::move(copy);
  return *this;
}

core::Thresholds BaselineRegistry::resolve(const std::string& model,
                                           const std::string& profile,
                                           const core::Thresholds& trained) {
  if (!thresholds_ok(trained)) {
    throw std::invalid_argument(
        "BaselineRegistry::resolve: thresholds must be finite and >= 0");
  }
  const std::scoped_lock lock(mu_);
  auto [it, inserted] = baselines_.try_emplace(Key{model, profile});
  if (inserted) {
    it->second.anchor = trained;
    it->second.current = trained;
  }
  return it->second.current;
}

bool BaselineRegistry::fold(const std::string& model,
                            const std::string& profile,
                            const core::FeatureMaxima& maxima,
                            bool eligible) {
  const std::scoped_lock lock(mu_);
  auto it = baselines_.find(Key{model, profile});
  if (it == baselines_.end()) {
    throw std::out_of_range("BaselineRegistry::fold: unknown baseline " +
                            model + "/" + profile);
  }
  if (!eligible || !maxima_ok(maxima)) {
    ++it->second.frozen;
    return false;
  }
  fold_locked(it->second, policy_, maxima);
  return true;
}

void BaselineRegistry::fold_locked(DeviceBaseline& b,
                                   const AdaptationPolicy& policy,
                                   const core::FeatureMaxima& maxima) {
  b.recent.push_back(maxima);
  if (b.recent.size() > policy.history) {
    b.recent.erase(b.recent.begin());
  }
  ++b.prints;
  // Dwell: no movement until enough eligible prints vouch for the device.
  if (b.prints < policy.min_prints) return;
  const core::Thresholds target =
      core::learn_thresholds(std::span<const core::FeatureMaxima>(b.recent),
                             policy.r);
  b.current.c_c = step_component(b.current.c_c, target.c_c, b.anchor.c_c,
                                 policy);
  b.current.h_c = step_component(b.current.h_c, target.h_c, b.anchor.h_c,
                                 policy);
  b.current.v_c = step_component(b.current.v_c, target.v_c, b.anchor.v_c,
                                 policy);
}

bool BaselineRegistry::contains(const std::string& model,
                                const std::string& profile) const {
  const std::scoped_lock lock(mu_);
  return baselines_.find(Key{model, profile}) != baselines_.end();
}

DeviceBaseline BaselineRegistry::baseline(const std::string& model,
                                          const std::string& profile) const {
  const std::scoped_lock lock(mu_);
  auto it = baselines_.find(Key{model, profile});
  if (it == baselines_.end()) {
    throw std::out_of_range("BaselineRegistry::baseline: unknown baseline " +
                            model + "/" + profile);
  }
  return it->second;
}

std::vector<std::pair<std::string, std::string>> BaselineRegistry::keys()
    const {
  const std::scoped_lock lock(mu_);
  std::vector<Key> out;
  out.reserve(baselines_.size());
  for (const auto& [key, unused] : baselines_) out.push_back(key);
  return out;
}

std::size_t BaselineRegistry::size() const {
  const std::scoped_lock lock(mu_);
  return baselines_.size();
}

void BaselineRegistry::save_state(ByteWriter& w) const {
  const std::scoped_lock lock(mu_);
  const std::size_t token = w.begin_section(kSecBaselineRegistry);
  w.pod<std::uint32_t>(kFormatVersion);
  // Policy fingerprint.
  w.pod<std::uint64_t>(policy_.history);
  w.pod<std::uint64_t>(policy_.min_prints);
  w.pod<double>(policy_.max_step);
  w.pod<double>(policy_.max_drift);
  w.pod<double>(policy_.r);

  w.pod<std::uint64_t>(baselines_.size());
  for (const auto& [key, b] : baselines_) {
    w.str(key.first);
    w.str(key.second);
    save_thresholds(w, b.anchor);
    save_thresholds(w, b.current);
    w.pod<std::uint64_t>(b.prints);
    w.pod<std::uint64_t>(b.frozen);
    w.pod<std::uint64_t>(b.recent.size());
    for (const auto& m : b.recent) {
      w.pod<double>(m.c_max);
      w.pod<double>(m.h_max);
      w.pod<double>(m.v_max);
    }
  }
  w.end_section(token);
}

void BaselineRegistry::restore_state(ByteReader& r) {
  ByteReader s = r.section(kSecBaselineRegistry);
  const auto version = s.pod<std::uint32_t>();
  if (version != kFormatVersion) {
    throw CheckpointError(CheckpointErrorKind::kBadVersion,
                          "BaselineRegistry: format version " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kFormatVersion));
  }
  const auto history = s.pod<std::uint64_t>();
  const auto min_prints = s.pod<std::uint64_t>();
  const auto max_step = s.pod<double>();
  const auto max_drift = s.pod<double>();
  const auto rr = s.pod<double>();
  if (history != policy_.history || min_prints != policy_.min_prints ||
      max_step != policy_.max_step || max_drift != policy_.max_drift ||
      rr != policy_.r) {
    throw CheckpointError(
        CheckpointErrorKind::kMismatch,
        "BaselineRegistry: serialized policy differs from this registry's");
  }

  const auto count = s.pod<std::uint64_t>();
  std::map<Key, DeviceBaseline> loaded;
  for (std::uint64_t i = 0; i < count; ++i) {
    Key key;
    key.first = s.str();
    key.second = s.str();
    DeviceBaseline b;
    b.anchor = load_thresholds(s);
    b.current = load_thresholds(s);
    b.prints = s.pod<std::uint64_t>();
    b.frozen = s.pod<std::uint64_t>();
    const auto ring = s.pod<std::uint64_t>();
    if (!thresholds_ok(b.anchor) || !thresholds_ok(b.current) ||
        ring > policy_.history || ring > b.prints) {
      throw CheckpointError(CheckpointErrorKind::kCorrupt,
                            "BaselineRegistry: implausible baseline for " +
                                key.first + "/" + key.second);
    }
    b.recent.reserve(static_cast<std::size_t>(ring));
    for (std::uint64_t j = 0; j < ring; ++j) {
      core::FeatureMaxima m;
      m.c_max = s.pod<double>();
      m.h_max = s.pod<double>();
      m.v_max = s.pod<double>();
      if (!maxima_ok(m)) {
        throw CheckpointError(CheckpointErrorKind::kCorrupt,
                              "BaselineRegistry: non-finite feature maxima");
      }
      b.recent.push_back(m);
    }
    if (!loaded.emplace(std::move(key), std::move(b)).second) {
      throw CheckpointError(CheckpointErrorKind::kCorrupt,
                            "BaselineRegistry: duplicate baseline key");
    }
  }
  s.finish();

  const std::scoped_lock lock(mu_);
  baselines_ = std::move(loaded);
}

void BaselineRegistry::save(const std::string& path) const {
  ByteWriter w;
  save_state(w);
  nsync::signal::write_checkpoint_file(path, w.data());
}

BaselineRegistry BaselineRegistry::load(const std::string& path,
                                        AdaptationPolicy policy) {
  const std::vector<std::uint8_t> payload =
      nsync::signal::read_checkpoint_file(path);
  BaselineRegistry reg(policy);
  ByteReader r(payload);
  reg.restore_state(r);
  r.finish();
  return reg;
}

}  // namespace nsync::engine
