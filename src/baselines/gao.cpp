#include "baselines/gao.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "signal/filters.hpp"
#include "signal/stats.hpp"

namespace nsync::baselines {

using nsync::signal::SignalView;

namespace {

/// Layer boundaries in sample indexes, with an implicit final boundary at
/// the end of the signal.
std::vector<std::size_t> layer_bounds(const LayeredSignal& s) {
  std::vector<std::size_t> bounds;
  bounds.reserve(s.layer_times.size() + 2);
  bounds.push_back(0);
  for (double t : s.layer_times) {
    const auto idx = static_cast<std::size_t>(t * s.signal.sample_rate());
    if (idx > bounds.back() && idx < s.signal.frames()) {
      bounds.push_back(idx);
    }
  }
  bounds.push_back(s.signal.frames());
  return bounds;
}

}  // namespace

GaoIds::GaoIds(LayeredSignal reference, GaoConfig config)
    : reference_(std::move(reference)), config_(config) {
  if (reference_.signal.frames() == 0) {
    throw std::invalid_argument("GaoIds: empty reference");
  }
}

std::vector<double> GaoIds::distance_trace(const LayeredSignal& observed) const {
  const auto rb = layer_bounds(reference_);
  const auto ob = layer_bounds(observed);
  const std::size_t layers = std::min(rb.size(), ob.size()) - 1;
  const SignalView a = observed.signal;
  const SignalView b = reference_.signal;
  std::vector<double> d;
  d.reserve(a.frames());
  for (std::size_t k = 0; k < layers; ++k) {
    const std::size_t len = std::min(ob[k + 1] - ob[k], rb[k + 1] - rb[k]);
    for (std::size_t i = 0; i < len; ++i) {
      d.push_back(core::frame_distance(a, ob[k] + i, b, rb[k] + i,
                                       config_.metric));
    }
  }
  const auto w = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.smooth_seconds *
                                  b.sample_rate()));
  return nsync::signal::moving_average(d, w);
}

void GaoIds::fit(std::span<const LayeredSignal> benign) {
  if (benign.empty()) {
    throw std::invalid_argument("GaoIds::fit: no training signals");
  }
  double hi = 0.0, lo = std::numeric_limits<double>::max();
  for (const auto& s : benign) {
    const auto d = distance_trace(s);
    const double m = d.empty() ? 0.0 : nsync::signal::max_value(d);
    hi = std::max(hi, m);
    lo = std::min(lo, m);
  }
  threshold_ = hi + config_.r * (hi - lo);
  trained_ = true;
}

bool GaoIds::detect(const LayeredSignal& observed) const {
  if (!trained_) {
    throw std::logic_error("GaoIds::detect: call fit() first");
  }
  const auto d = distance_trace(observed);
  return std::any_of(d.begin(), d.end(),
                     [&](double x) { return x > threshold_; });
}

}  // namespace nsync::baselines
