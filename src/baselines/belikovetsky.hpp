// Belikovetsky's IDS [5] (Section VIII-C): audio-only, no DSYNC.
// The spectrogram of the signal is compressed by PCA to three channels; the
// compressed observed and reference signals are compared point by point
// with the cosine similarity.  A 5-second moving average is taken and an
// intrusion is declared when four consecutive window averages drop below
// 0.63.
//
// Note on polarity: the paper's text says "average distances ... drop
// below 0.63"; since a *distance* of zero means identical signals, the
// operational rule must act on the cosine *similarity* (as in
// Belikovetsky's original audio-signature work).  We alarm when the
// moving-average similarity of `consecutive_windows` windows stays below
// `similarity_floor`.
#ifndef NSYNC_BASELINES_BELIKOVETSKY_HPP
#define NSYNC_BASELINES_BELIKOVETSKY_HPP

#include <cstddef>
#include <vector>

#include "dsp/pca.hpp"
#include "signal/signal.hpp"

namespace nsync::baselines {

struct BelikovetskyConfig {
  std::size_t pca_components = 3;
  double average_seconds = 5.0;
  std::size_t consecutive_windows = 4;
  double similarity_floor = 0.63;
};

class BelikovetskyIds {
 public:
  /// `reference` is the spectrogram of the reference audio (the PCA model
  /// is fit on it).
  BelikovetskyIds(nsync::signal::Signal reference, BelikovetskyConfig config);

  /// Per-window moving-average cosine similarity between the compressed
  /// observed and reference signals.
  [[nodiscard]] std::vector<double> similarity_trace(
      const nsync::signal::SignalView& observed) const;

  /// No training beyond the PCA fit is needed (the 0.63 floor is the
  /// original's magic number).  True = intrusion.
  [[nodiscard]] bool detect(const nsync::signal::SignalView& observed) const;

  [[nodiscard]] const nsync::dsp::Pca& pca() const { return pca_; }

 private:
  nsync::signal::Signal compressed_reference_;
  nsync::dsp::Pca pca_;
  BelikovetskyConfig config_;
};

}  // namespace nsync::baselines

#endif  // NSYNC_BASELINES_BELIKOVETSKY_HPP
