// Bayens' IDS [4] (Section VIII-C): audio-only, window-by-window matching
// in the style of Dejavu/Shazam.  Each observed window is matched against
// every reference window; two sub-modules:
//   Sequence  — the matched reference windows must appear in order
//               (0, 1, 2, ...); any out-of-order match raises the alarm;
//   Threshold — every window's best match score must clear a learned
//               threshold.
// The original paper gives no threshold-derivation procedure, so (as in the
// paper's evaluation) the NSYNC OCC rule with r = 0 is used.
//
// The paper uses 90 s and 120 s windows on multi-hour prints; with the
// simulator's shorter processes the window length is configurable and the
// eval harness scales it to the print duration (see EXPERIMENTS.md).
#ifndef NSYNC_BASELINES_BAYENS_HPP
#define NSYNC_BASELINES_BAYENS_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::baselines {

struct BayensConfig {
  double window_seconds = 90.0;
  double r = 0.0;
};

struct BayensDetection {
  bool intrusion = false;
  bool by_sequence = false;   ///< windows matched out of order
  bool by_threshold = false;  ///< some window scored below the threshold
};

/// Per-window match against the reference: the best-matching reference
/// window index and its similarity score.
struct WindowMatch {
  std::size_t matched_index = 0;
  double score = 0.0;
};

class BayensIds {
 public:
  BayensIds(nsync::signal::Signal reference, BayensConfig config);

  /// Matches every observed window against all reference windows.
  [[nodiscard]] std::vector<WindowMatch> match_windows(
      const nsync::signal::SignalView& observed) const;

  void fit(std::span<const nsync::signal::Signal> benign);
  [[nodiscard]] BayensDetection detect(
      const nsync::signal::SignalView& observed) const;

  [[nodiscard]] double score_threshold() const { return score_threshold_; }
  [[nodiscard]] std::size_t window_samples() const { return n_win_; }

 private:
  nsync::signal::Signal reference_;
  BayensConfig config_;
  std::size_t n_win_ = 0;
  double score_threshold_ = 0.0;
  bool trained_ = false;
};

}  // namespace nsync::baselines

#endif  // NSYNC_BASELINES_BAYENS_HPP
