// Gao's IDS [12] (Section VIII-D): like Moore's point-by-point comparison
// but with coarse dynamic synchronization — the observed and reference
// signals are re-aligned at every layer change.  The original has no
// automatic decision module, so (following the paper) the NSYNC OCC
// discriminator is used with r = 0.
//
// Layer-change moments come from ground truth supplied with each signal;
// the paper obtained them from a dedicated bed accelerometer.
#ifndef NSYNC_BASELINES_GAO_HPP
#define NSYNC_BASELINES_GAO_HPP

#include <span>
#include <vector>

#include "core/distance.hpp"
#include "signal/signal.hpp"

namespace nsync::baselines {

/// A signal plus the layer-change timestamps (seconds from signal start)
/// that the layer-coarse baselines require.
struct LayeredSignal {
  nsync::signal::Signal signal;
  std::vector<double> layer_times;
};

struct GaoConfig {
  core::DistanceMetric metric = core::DistanceMetric::kMae;
  double smooth_seconds = 0.5;
  double r = 0.0;
};

class GaoIds {
 public:
  GaoIds(LayeredSignal reference, GaoConfig config);

  /// Distance trace with per-layer re-alignment: within layer k, sample i
  /// of the observed layer is compared against sample i of the reference
  /// layer (up to the shorter of the two).
  [[nodiscard]] std::vector<double> distance_trace(
      const LayeredSignal& observed) const;

  void fit(std::span<const LayeredSignal> benign);
  [[nodiscard]] bool detect(const LayeredSignal& observed) const;
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  LayeredSignal reference_;
  GaoConfig config_;
  double threshold_ = 0.0;
  bool trained_ = false;
};

}  // namespace nsync::baselines

#endif  // NSYNC_BASELINES_GAO_HPP
