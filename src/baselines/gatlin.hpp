// Gatlin's IDS [13] (Section VIII-D): coarse layer-level synchronization
// with two sub-modules:
//   Time  — the layer-change moments of the observed process must not
//           deviate from the reference by more than a learned threshold;
//   Match — a spectral fingerprint is extracted per layer and compared
//           against the reference layer's fingerprint; too many mismatched
//           layers raise the alarm.
// The original derives layer moments from Z-motor currents; as in the
// paper's own evaluation (which marked layers manually), we use the layer
// ground truth carried by LayeredSignal.
#ifndef NSYNC_BASELINES_GATLIN_HPP
#define NSYNC_BASELINES_GATLIN_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "baselines/gao.hpp"
#include "signal/signal.hpp"

namespace nsync::baselines {

struct GatlinConfig {
  /// Number of strongest spectral peaks forming a layer fingerprint.
  std::size_t fingerprint_peaks = 12;
  /// Minimum fraction of shared peaks for two fingerprints to match.
  double match_fraction = 0.5;
  double r = 0.0;  ///< OCC margin for both learned thresholds
};

struct GatlinDetection {
  bool intrusion = false;
  bool by_time = false;   ///< layer-moment deviation sub-module
  bool by_match = false;  ///< fingerprint mismatch-count sub-module
};

/// A layer fingerprint: the sorted indexes of the strongest spectrum bins.
using LayerFingerprint = std::vector<std::size_t>;

/// Extracts per-layer fingerprints from a layered signal.  Exposed for
/// testing.
[[nodiscard]] std::vector<LayerFingerprint> layer_fingerprints(
    const LayeredSignal& s, std::size_t peaks);

/// Fraction of `a`'s peaks also present in `b`.
[[nodiscard]] double fingerprint_match(const LayerFingerprint& a,
                                       const LayerFingerprint& b);

class GatlinIds {
 public:
  GatlinIds(LayeredSignal reference, GatlinConfig config);

  void fit(std::span<const LayeredSignal> benign);
  [[nodiscard]] GatlinDetection detect(const LayeredSignal& observed) const;

  [[nodiscard]] double time_threshold() const { return time_threshold_; }
  [[nodiscard]] double mismatch_threshold() const {
    return mismatch_threshold_;
  }

 private:
  /// Max |t_obs_k - t_ref_k| over layers, and mismatched-layer count.
  [[nodiscard]] std::pair<double, std::size_t> evaluate(
      const LayeredSignal& observed) const;

  LayeredSignal reference_;
  GatlinConfig config_;
  std::vector<LayerFingerprint> reference_prints_;
  double time_threshold_ = 0.0;
  double mismatch_threshold_ = 0.0;
  bool trained_ = false;
};

}  // namespace nsync::baselines

#endif  // NSYNC_BASELINES_GATLIN_HPP
