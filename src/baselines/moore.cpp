#include "baselines/moore.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/comparator.hpp"
#include "signal/filters.hpp"
#include "signal/stats.hpp"

namespace nsync::baselines {

using nsync::signal::Signal;
using nsync::signal::SignalView;

MooreIds::MooreIds(Signal reference, MooreConfig config)
    : reference_(std::move(reference)), config_(config) {
  if (reference_.frames() == 0) {
    throw std::invalid_argument("MooreIds: empty reference");
  }
}

std::vector<double> MooreIds::distance_trace(const SignalView& observed) const {
  auto d = core::vertical_distances_unsynced(observed, reference_,
                                             config_.metric);
  const auto w = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.smooth_seconds *
                                  reference_.sample_rate()));
  return nsync::signal::moving_average(d, w);
}

void MooreIds::fit(std::span<const Signal> benign) {
  if (benign.empty()) {
    throw std::invalid_argument("MooreIds::fit: no training signals");
  }
  double hi = 0.0, lo = std::numeric_limits<double>::max();
  for (const auto& s : benign) {
    const auto d = distance_trace(s);
    const double m = d.empty() ? 0.0 : nsync::signal::max_value(d);
    hi = std::max(hi, m);
    lo = std::min(lo, m);
  }
  threshold_ = hi + config_.r * (hi - lo);
  trained_ = true;
}

bool MooreIds::detect(const SignalView& observed) const {
  if (!trained_) {
    throw std::logic_error("MooreIds::detect: call fit() first");
  }
  const auto d = distance_trace(observed);
  return std::any_of(d.begin(), d.end(),
                     [&](double x) { return x > threshold_; });
}

}  // namespace nsync::baselines
