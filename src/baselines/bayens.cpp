#include "baselines/bayens.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include <cmath>

#include "core/distance.hpp"
#include "dsp/fft.hpp"
#include "signal/stats.hpp"

namespace nsync::baselines {

using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

/// Dejavu-style matching is anchored to spectral peak constellations: it is
/// tolerant to misalignment *within* a chunk but keyed to the short-time
/// frequency content.  We model that with a time-frequency fingerprint:
/// the window is cut into short chunks, each chunk contributes a coarse
/// magnitude spectrum, and fingerprints are compared by Pearson
/// correlation.  Shifts below one chunk barely move the score; shifts of a
/// chunk or more scramble which spectrum lands in which slot.
std::vector<double> window_fingerprint(const SignalView& w,
                                       double chunk_seconds) {
  constexpr std::size_t kChunkFft = 128;
  const auto chunk = std::max<std::size_t>(
      kChunkFft, static_cast<std::size_t>(chunk_seconds * w.sample_rate()));
  std::vector<double> print;
  std::vector<double> buf(kChunkFft);
  for (std::size_t start = 0; start + chunk <= w.frames(); start += chunk) {
    // Average the chunk's content down to kChunkFft samples per channel and
    // accumulate the magnitude spectrum over channels.
    std::vector<double> spec(kChunkFft / 2 + 1, 0.0);
    const std::size_t stride = chunk / kChunkFft;
    for (std::size_t c = 0; c < w.channels(); ++c) {
      for (std::size_t i = 0; i < kChunkFft; ++i) {
        buf[i] = w(start + i * stride, c);
      }
      const auto mags = nsync::dsp::rfft_magnitude(buf);
      for (std::size_t k = 1; k < spec.size(); ++k) spec[k] += mags[k];
    }
    print.insert(print.end(), spec.begin() + 1, spec.end());
  }
  return print;
}

}  // namespace

BayensIds::BayensIds(Signal reference, BayensConfig config)
    : reference_(std::move(reference)), config_(config) {
  if (config_.window_seconds <= 0.0) {
    throw std::invalid_argument("BayensIds: window_seconds must be positive");
  }
  n_win_ = static_cast<std::size_t>(config_.window_seconds *
                                    reference_.sample_rate());
  n_win_ = std::max<std::size_t>(n_win_, 2);
  if (reference_.frames() < n_win_) {
    throw std::invalid_argument(
        "BayensIds: reference shorter than one matching window");
  }
}

std::vector<WindowMatch> BayensIds::match_windows(
    const SignalView& observed) const {
  constexpr double kChunkSeconds = 0.2;
  const std::size_t n_obs = observed.frames() / n_win_;
  const std::size_t n_ref = reference_.frames() / n_win_;
  const SignalView b = reference_;
  // Precompute reference envelopes once.
  std::vector<std::vector<double>> ref_env;
  ref_env.reserve(n_ref);
  for (std::size_t j = 0; j < n_ref; ++j) {
    ref_env.push_back(window_fingerprint(b.slice(j * n_win_, (j + 1) * n_win_),
                                           kChunkSeconds));
  }
  std::vector<WindowMatch> out;
  out.reserve(n_obs);
  for (std::size_t i = 0; i < n_obs; ++i) {
    const auto env_i = window_fingerprint(
        observed.slice(i * n_win_, (i + 1) * n_win_), kChunkSeconds);
    WindowMatch best;
    best.score = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n_ref; ++j) {
      const double s = nsync::signal::pearson(env_i, ref_env[j]);
      if (s > best.score) {
        best.score = s;
        best.matched_index = j;
      }
    }
    out.push_back(best);
  }
  return out;
}

void BayensIds::fit(std::span<const Signal> benign) {
  if (benign.empty()) {
    throw std::invalid_argument("BayensIds::fit: no training signals");
  }
  double lo = std::numeric_limits<double>::max();
  double hi = std::numeric_limits<double>::lowest();
  for (const auto& s : benign) {
    const auto matches = match_windows(s);
    for (const auto& m : matches) {
      lo = std::min(lo, m.score);
      hi = std::max(hi, m.score);
    }
  }
  if (lo > hi) lo = hi = 0.0;
  // Scores below the learned floor raise the alarm; r widens the floor
  // downward (mirror of Eq. 26 for a lower bound).
  score_threshold_ = lo - config_.r * (hi - lo);
  trained_ = true;
}

BayensDetection BayensIds::detect(const SignalView& observed) const {
  if (!trained_) {
    throw std::logic_error("BayensIds::detect: call fit() first");
  }
  const auto matches = match_windows(observed);
  BayensDetection d;
  // "In sequence" = the matched reference windows never move backwards.
  std::size_t prev = 0;
  for (std::size_t i = 0; i < matches.size(); ++i) {
    if (matches[i].matched_index < prev) d.by_sequence = true;
    prev = matches[i].matched_index;
    if (matches[i].score < score_threshold_) d.by_threshold = true;
  }
  d.intrusion = d.by_sequence || d.by_threshold;
  return d;
}

}  // namespace nsync::baselines
