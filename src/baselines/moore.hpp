// Moore's IDS [18] (Section VIII-C): compares the observed signal against
// the reference point by point with no dynamic synchronization, using the
// Mean Absolute Error as the distance.  Originally designed for actuator
// current signals; the paper applies it to all available side channels.
//
// Thresholding: the original uses pre-determined thresholds; following the
// paper's evaluation methodology we learn the threshold from benign
// training runs with the NSYNC OCC rule (r configurable, 0 by default).
#ifndef NSYNC_BASELINES_MOORE_HPP
#define NSYNC_BASELINES_MOORE_HPP

#include <span>
#include <vector>

#include "core/distance.hpp"
#include "signal/signal.hpp"

namespace nsync::baselines {

struct MooreConfig {
  core::DistanceMetric metric = core::DistanceMetric::kMae;
  /// Smoothing window (seconds) applied to the point distances before the
  /// maximum is taken; tames single-sample spikes.
  double smooth_seconds = 0.5;
  double r = 0.0;  ///< OCC margin
};

class MooreIds {
 public:
  MooreIds(nsync::signal::Signal reference, MooreConfig config);

  /// Smoothed point-by-point distance trace for one observed signal.
  [[nodiscard]] std::vector<double> distance_trace(
      const nsync::signal::SignalView& observed) const;

  /// Learns the alarm threshold from benign runs.
  void fit(std::span<const nsync::signal::Signal> benign);

  /// True = intrusion declared.
  [[nodiscard]] bool detect(const nsync::signal::SignalView& observed) const;

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  nsync::signal::Signal reference_;
  MooreConfig config_;
  double threshold_ = 0.0;
  bool trained_ = false;
};

}  // namespace nsync::baselines

#endif  // NSYNC_BASELINES_MOORE_HPP
