#include "baselines/belikovetsky.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/distance.hpp"
#include "signal/filters.hpp"

namespace nsync::baselines {

using nsync::signal::Signal;
using nsync::signal::SignalView;

BelikovetskyIds::BelikovetskyIds(Signal reference, BelikovetskyConfig config)
    : pca_(nsync::dsp::Pca::fit(reference, config.pca_components)),
      config_(config) {
  if (config_.consecutive_windows == 0) {
    throw std::invalid_argument(
        "BelikovetskyIds: consecutive_windows must be >= 1");
  }
  compressed_reference_ = pca_.transform(reference);
}

std::vector<double> BelikovetskyIds::similarity_trace(
    const SignalView& observed) const {
  const Signal a = pca_.transform(observed);
  const SignalView b = compressed_reference_;
  const std::size_t n = std::min(a.frames(), b.frames());
  std::vector<double> sim(n);
  for (std::size_t i = 0; i < n; ++i) {
    sim[i] = 1.0 - core::frame_distance(a, i, b, i,
                                        core::DistanceMetric::kCosine);
  }
  const auto w = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.average_seconds * a.sample_rate()));
  return nsync::signal::moving_average(sim, w);
}

bool BelikovetskyIds::detect(const SignalView& observed) const {
  const auto sim = similarity_trace(observed);
  const auto w = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.average_seconds *
                                  observed.sample_rate()));
  // "Four consecutive windows": sample the moving average once per window
  // and require `consecutive_windows` sub-floor values in a row.
  std::size_t streak = 0;
  for (std::size_t i = w > 0 ? w - 1 : 0; i < sim.size(); i += w) {
    if (sim[i] < config_.similarity_floor) {
      if (++streak >= config_.consecutive_windows) return true;
    } else {
      streak = 0;
    }
  }
  return false;
}

}  // namespace nsync::baselines
