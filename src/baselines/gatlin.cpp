#include "baselines/gatlin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace nsync::baselines {

using nsync::signal::SignalView;

namespace {

std::vector<std::size_t> layer_bounds(const LayeredSignal& s) {
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  for (double t : s.layer_times) {
    const auto idx = static_cast<std::size_t>(t * s.signal.sample_rate());
    if (idx > bounds.back() && idx < s.signal.frames()) bounds.push_back(idx);
  }
  bounds.push_back(s.signal.frames());
  return bounds;
}

/// Average power spectrum of a segment across channels, chunked to a fixed
/// FFT size so layers of different lengths produce comparable bins.
std::vector<double> segment_spectrum(const SignalView& s, std::size_t start,
                                     std::size_t end) {
  constexpr std::size_t kFft = 256;
  std::vector<double> acc(kFft / 2 + 1, 0.0);
  if (end - start < kFft) end = std::min(start + kFft, s.frames());
  std::size_t chunks = 0;
  std::vector<double> buf(kFft);
  for (std::size_t pos = start; pos + kFft <= end; pos += kFft) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      for (std::size_t i = 0; i < kFft; ++i) buf[i] = s(pos + i, c);
      const auto mags = nsync::dsp::rfft_magnitude(buf);
      for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += mags[k];
      ++chunks;
    }
  }
  if (chunks > 0) {
    for (auto& v : acc) v /= static_cast<double>(chunks);
  }
  return acc;
}

}  // namespace

std::vector<LayerFingerprint> layer_fingerprints(const LayeredSignal& s,
                                                 std::size_t peaks) {
  const auto bounds = layer_bounds(s);
  std::vector<LayerFingerprint> prints;
  prints.reserve(bounds.size() - 1);
  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    const auto spec = segment_spectrum(s.signal, bounds[k], bounds[k + 1]);
    // Top `peaks` bins, excluding DC.
    std::vector<std::size_t> order(spec.size() > 1 ? spec.size() - 1 : 0);
    std::iota(order.begin(), order.end(), 1);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return spec[a] > spec[b];
    });
    order.resize(std::min(peaks, order.size()));
    std::sort(order.begin(), order.end());
    prints.push_back(std::move(order));
  }
  return prints;
}

double fingerprint_match(const LayerFingerprint& a, const LayerFingerprint& b) {
  if (a.empty()) return 1.0;
  std::size_t shared = 0;
  for (std::size_t bin : a) {
    if (std::binary_search(b.begin(), b.end(), bin)) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(a.size());
}

GatlinIds::GatlinIds(LayeredSignal reference, GatlinConfig config)
    : reference_(std::move(reference)), config_(config) {
  if (reference_.signal.frames() == 0) {
    throw std::invalid_argument("GatlinIds: empty reference");
  }
  reference_prints_ =
      layer_fingerprints(reference_, config_.fingerprint_peaks);
}

std::pair<double, std::size_t> GatlinIds::evaluate(
    const LayeredSignal& observed) const {
  // Time sub-module: deviation of layer-change moments.
  double max_dev = 0.0;
  const std::size_t n_layers =
      std::min(observed.layer_times.size(), reference_.layer_times.size());
  for (std::size_t k = 0; k < n_layers; ++k) {
    max_dev = std::max(max_dev, std::abs(observed.layer_times[k] -
                                         reference_.layer_times[k]));
  }
  // A different layer count is itself a maximal timing deviation.
  if (observed.layer_times.size() != reference_.layer_times.size()) {
    max_dev = std::numeric_limits<double>::infinity();
  }

  // Match sub-module: count mismatched layer fingerprints.
  const auto prints = layer_fingerprints(observed, config_.fingerprint_peaks);
  const std::size_t n_prints = std::min(prints.size(),
                                        reference_prints_.size());
  std::size_t mismatches =
      std::max(prints.size(), reference_prints_.size()) - n_prints;
  for (std::size_t k = 0; k < n_prints; ++k) {
    if (fingerprint_match(prints[k], reference_prints_[k]) <
        config_.match_fraction) {
      ++mismatches;
    }
  }
  return {max_dev, mismatches};
}

void GatlinIds::fit(std::span<const LayeredSignal> benign) {
  if (benign.empty()) {
    throw std::invalid_argument("GatlinIds::fit: no training signals");
  }
  double t_hi = 0.0, t_lo = std::numeric_limits<double>::max();
  double m_hi = 0.0, m_lo = std::numeric_limits<double>::max();
  for (const auto& s : benign) {
    const auto [dev, mism] = evaluate(s);
    const auto mism_d = static_cast<double>(mism);
    t_hi = std::max(t_hi, dev);
    t_lo = std::min(t_lo, dev);
    m_hi = std::max(m_hi, mism_d);
    m_lo = std::min(m_lo, mism_d);
  }
  time_threshold_ = t_hi + config_.r * (t_hi - t_lo);
  mismatch_threshold_ = m_hi + config_.r * (m_hi - m_lo);
  trained_ = true;
}

GatlinDetection GatlinIds::detect(const LayeredSignal& observed) const {
  if (!trained_) {
    throw std::logic_error("GatlinIds::detect: call fit() first");
  }
  const auto [dev, mism] = evaluate(observed);
  GatlinDetection d;
  d.by_time = dev > time_threshold_;
  d.by_match = static_cast<double>(mism) > mismatch_threshold_;
  d.intrusion = d.by_time || d.by_match;
  return d;
}

}  // namespace nsync::baselines
