#include "baselines/layer_detect.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "signal/filters.hpp"
#include "signal/stats.hpp"

namespace nsync::baselines {

using nsync::signal::SignalView;

std::vector<double> detect_layer_changes(const SignalView& acc,
                                         const LayerDetectConfig& cfg) {
  if (cfg.z_channel >= acc.channels()) {
    throw std::invalid_argument("detect_layer_changes: z_channel out of range");
  }
  if (acc.frames() < 8) return {};
  const double fs = acc.sample_rate();

  // Rectified, de-meaned Z acceleration, lightly smoothed.
  auto z = acc.channel(cfg.z_channel);
  const double mu = nsync::signal::mean(z);
  for (auto& v : z) v = std::abs(v - mu);
  const auto smooth_window = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.smooth_seconds * fs));
  const auto smoothed = nsync::signal::moving_average(z, smooth_window);

  // Robust noise scale: median absolute deviation around the median.
  std::vector<double> sorted = smoothed;
  auto mid = sorted.begin() + sorted.size() / 2;
  std::nth_element(sorted.begin(), mid, sorted.end());
  const double median = *mid;
  std::vector<double> dev(smoothed.size());
  for (std::size_t i = 0; i < smoothed.size(); ++i) {
    dev[i] = std::abs(smoothed[i] - median);
  }
  auto dmid = dev.begin() + dev.size() / 2;
  std::nth_element(dev.begin(), dmid, dev.end());
  const double mad = std::max(*dmid, 1e-12);
  const double threshold = median + cfg.threshold_mads * mad;

  // Threshold crossings with a minimum-separation debounce.
  std::vector<double> times;
  const auto min_gap = static_cast<std::size_t>(cfg.min_layer_seconds * fs);
  std::size_t last = 0;
  bool armed = true;
  for (std::size_t i = 0; i < smoothed.size(); ++i) {
    if (armed && smoothed[i] > threshold) {
      times.push_back(static_cast<double>(i) / fs);
      last = i;
      armed = false;
    }
    if (!armed && i >= last + min_gap) armed = true;
  }
  return times;
}

double layer_timing_error(const std::vector<double>& detected,
                          const std::vector<double>& truth,
                          std::size_t count_slack) {
  const std::size_t nd = detected.size();
  const std::size_t nt = truth.size();
  if (nd + count_slack < nt || nt + count_slack < nd) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t n = std::min(nd, nt);
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::abs(detected[i] - truth[i]);
  }
  return acc / static_cast<double>(n);
}

}  // namespace nsync::baselines
