// Signal-based layer-change detection.
//
// The layer-coarse baselines need the moments when a layer change happens.
// In the paper, Gao used a dedicated accelerometer on the printing bed and
// Gatlin analyzed Z-motor currents (which our rig cannot observe either —
// the paper marked layers manually).  This module recovers layer-change
// moments from the printhead accelerometer itself: a layer change is the
// only time the Z axis accelerates, so Z-acceleration bursts separated by
// at least a minimum layer time segment the print.
//
// bench_ext_layer_detection quantifies the timing error against the
// simulator's ground truth and its effect on Gao's and Gatlin's IDSs.
#ifndef NSYNC_BASELINES_LAYER_DETECT_HPP
#define NSYNC_BASELINES_LAYER_DETECT_HPP

#include <cstddef>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::baselines {

struct LayerDetectConfig {
  /// Channel of the input signal carrying Z acceleration (ACC channel 2).
  std::size_t z_channel = 2;
  /// Detection threshold as a multiple of the channel's noise scale
  /// (median absolute deviation).
  double threshold_mads = 14.0;
  /// Minimum time between consecutive layer changes (debounce), seconds.
  double min_layer_seconds = 2.0;
  /// Smoothing window for the rectified Z signal, seconds.
  double smooth_seconds = 0.02;
};

/// Returns the detected layer-change timestamps (seconds from the start of
/// `acc`), sorted ascending.  Works on the raw ACC side-channel signal.
/// Throws std::invalid_argument when the channel index is out of range.
[[nodiscard]] std::vector<double> detect_layer_changes(
    const nsync::signal::SignalView& acc, const LayerDetectConfig& cfg = {});

/// Mean absolute error (seconds) between detected and ground-truth layer
/// times, matched one-to-one in order over the shorter list; returns
/// +infinity when the counts differ by more than `count_slack`.
[[nodiscard]] double layer_timing_error(
    const std::vector<double>& detected, const std::vector<double>& truth,
    std::size_t count_slack = 1);

}  // namespace nsync::baselines

#endif  // NSYNC_BASELINES_LAYER_DETECT_HPP
