// Similarity functions and distance metrics (Sections V-B and VII-A).
//
// Two shapes of comparison appear in the paper:
//  * point (frame) comparisons across the C channel values — used by DTW
//    and by point-by-point baselines;
//  * window comparisons along the time axis, computed per channel and then
//    averaged across channels — used by TDE and the DWM comparator (this
//    "discards channel-wise information and focuses on time-wise
//    information", Section V-B).
#ifndef NSYNC_CORE_DISTANCE_HPP
#define NSYNC_CORE_DISTANCE_HPP

#include <span>
#include <string>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::core {

/// Distance metrics supported by the comparator.  The paper defaults to
/// correlation distance because it is insensitive to per-run gain changes
/// (footnote 2); Euclidean/Manhattan/MAE are provided for the baselines and
/// the gain-sensitivity ablation.
enum class DistanceMetric {
  kCorrelation,  ///< 1 - Pearson (Eq. 14)
  kCosine,       ///< 1 - cos angle (Belikovetsky's IDS)
  kEuclidean,    ///< L2
  kManhattan,    ///< L1
  kMae,          ///< mean absolute error (Moore's IDS)
};

[[nodiscard]] std::string distance_metric_name(DistanceMetric m);
[[nodiscard]] DistanceMetric parse_distance_metric(const std::string& name);

/// Distance between two equal-length 1-D vectors.
[[nodiscard]] double vector_distance(std::span<const double> u,
                                     std::span<const double> v,
                                     DistanceMetric metric);

/// Point distance between frame i of `a` and frame j of `b` across the
/// channel dimension (used by DTW and point-based baselines).
[[nodiscard]] double frame_distance(const nsync::signal::SignalView& a,
                                    std::size_t i,
                                    const nsync::signal::SignalView& b,
                                    std::size_t j, DistanceMetric metric);

/// Window distance between two equal-shape windows: the metric is computed
/// along time per channel, then averaged across channels (Section VII-A).
/// Throws std::invalid_argument on shape mismatch.
[[nodiscard]] double window_distance(const nsync::signal::SignalView& u,
                                     const nsync::signal::SignalView& v,
                                     DistanceMetric metric);

/// Reusable scratch for window_distance: holds the per-channel contiguous
/// copies, so a steady-state caller (the streaming DetectionCore) performs
/// no heap allocation per window once the buffers have grown to size.
struct DistanceWorkspace {
  std::vector<double> u;
  std::vector<double> v;
};

/// window_distance writing its scratch into `ws`; bitwise identical to the
/// allocating overload.
[[nodiscard]] double window_distance(const nsync::signal::SignalView& u,
                                     const nsync::signal::SignalView& v,
                                     DistanceMetric metric,
                                     DistanceWorkspace& ws);

/// Window similarity: per-channel Pearson correlation averaged across
/// channels (Eq. 3 extended per Section V-B).  Shape must match.
[[nodiscard]] double window_similarity(const nsync::signal::SignalView& u,
                                       const nsync::signal::SignalView& v);

}  // namespace nsync::core

#endif  // NSYNC_CORE_DISTANCE_HPP
