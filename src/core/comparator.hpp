// The NSYNC comparator (Section VII-A): computes vertical distances between
// corresponding points (DTW) or windows (DWM) once the synchronizer has
// produced the horizontal displacements.
#ifndef NSYNC_CORE_COMPARATOR_HPP
#define NSYNC_CORE_COMPARATOR_HPP

#include <cstdint>
#include <vector>

#include "core/dtw.hpp"
#include "core/dwm.hpp"
#include "core/distance.hpp"
#include "signal/signal.hpp"

namespace nsync::core {

/// Window-by-window vertical distances (Eq. 16):
///   v_dist[i] = d(a{i}, b{i; h_disp[i]}).
/// The matched window of b is clamped into the reference when h_disp points
/// outside it.  `h_disp` must have one entry per processed window.
[[nodiscard]] std::vector<double> vertical_distances_dwm(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    const std::vector<double>& h_disp, const DwmParams& params,
    DistanceMetric metric = DistanceMetric::kCorrelation);

/// Point-by-point vertical distances from a DTW path (Eq. 15).  Alias of
/// v_dist_from_path, named for symmetry with the DWM comparator.
[[nodiscard]] std::vector<double> vertical_distances_dtw(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    const WarpPath& path, DistanceMetric metric = DistanceMetric::kCorrelation);

/// Naive comparator with no synchronization: v_dist[i] = d(a[i], b[i]) for
/// overlapping indexes (the comparison existing IDSs perform, Fig. 2).
[[nodiscard]] std::vector<double> vertical_distances_unsynced(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    DistanceMetric metric);

/// Window-by-window distances with zero displacement: v_dist[i] =
/// d(a{i}, b{i}).  Used to demonstrate time-noise failure window-wise.
[[nodiscard]] std::vector<double> vertical_distances_unsynced_windows(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    std::size_t n_win, std::size_t n_hop, DistanceMetric metric);

}  // namespace nsync::core

#endif  // NSYNC_CORE_COMPARATOR_HPP
