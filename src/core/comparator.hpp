// The NSYNC comparator (Section VII-A): computes vertical distances between
// corresponding points (DTW) or windows (DWM) once the synchronizer has
// produced the horizontal displacements.
#ifndef NSYNC_CORE_COMPARATOR_HPP
#define NSYNC_CORE_COMPARATOR_HPP

#include <cstdint>
#include <vector>

#include "core/dtw.hpp"
#include "core/dwm.hpp"
#include "core/metrics.hpp"
#include "signal/signal.hpp"

namespace nsync::core {

/// Window-by-window vertical distances (Eq. 16):
///   v_dist[i] = d(a{i}, b{i; h_disp[i]}).
/// The matched window of b is clamped into the reference when h_disp points
/// outside it.  `h_disp` must have one entry per processed window.
[[nodiscard]] std::vector<double> vertical_distances_dwm(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    const std::vector<double>& h_disp, const DwmParams& params,
    DistanceMetric metric = DistanceMetric::kCorrelation);

/// Vertical distances plus a per-window validity mask (graceful
/// degradation under sensor faults).
struct MaskedDistances {
  std::vector<double> v_dist;       ///< one distance per window
  std::vector<std::uint8_t> valid;  ///< 1 = scored, 0 = degenerate/held
};

/// Fault-aware variant of vertical_distances_dwm.  A window is invalid
/// when the synchronizer already flagged it (`valid_in[i] == 0`; pass an
/// empty vector to treat every window as synchronizer-valid), when either
/// matched window is degenerate (flat or non-finite samples), or when the
/// distance itself comes out non-finite.  Invalid windows hold the last
/// valid distance (0 before any valid window) so downstream min-filters
/// and cumulative sums see no spurious jump, and are tagged valid = 0 so
/// the discriminator can skip them.
[[nodiscard]] MaskedDistances vertical_distances_dwm_masked(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    const std::vector<double>& h_disp,
    const std::vector<std::uint8_t>& valid_in, const DwmParams& params,
    DistanceMetric metric = DistanceMetric::kCorrelation);

/// Point-by-point vertical distances from a DTW path (Eq. 15).  Alias of
/// v_dist_from_path, named for symmetry with the DWM comparator.
[[nodiscard]] std::vector<double> vertical_distances_dtw(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    const WarpPath& path, DistanceMetric metric = DistanceMetric::kCorrelation);

/// Naive comparator with no synchronization: v_dist[i] = d(a[i], b[i]) for
/// overlapping indexes (the comparison existing IDSs perform, Fig. 2).
[[nodiscard]] std::vector<double> vertical_distances_unsynced(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    DistanceMetric metric);

/// Window-by-window distances with zero displacement: v_dist[i] =
/// d(a{i}, b{i}).  Used to demonstrate time-noise failure window-wise.
[[nodiscard]] std::vector<double> vertical_distances_unsynced_windows(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    std::size_t n_win, std::size_t n_hop, DistanceMetric metric);

}  // namespace nsync::core

#endif  // NSYNC_CORE_COMPARATOR_HPP
