#include "core/dwm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "signal/checkpoint.hpp"
#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::Signal;
using nsync::signal::SignalView;

DwmParams DwmParams::from_seconds(double t_win, double t_hop, double t_ext,
                                  double t_sigma, double eta,
                                  double sample_rate) {
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("DwmParams::from_seconds: bad sample rate");
  }
  DwmParams p;
  p.n_win = static_cast<std::size_t>(std::llround(t_win * sample_rate));
  p.n_hop = static_cast<std::size_t>(std::llround(t_hop * sample_rate));
  p.n_ext = static_cast<std::size_t>(std::llround(t_ext * sample_rate));
  p.n_sigma = t_sigma * sample_rate;
  p.eta = eta;
  p.validate();
  return p;
}

void DwmParams::validate() const {
  if (n_win < 2) {
    throw std::invalid_argument("DwmParams: n_win must be >= 2");
  }
  if (n_hop == 0 || n_hop > n_win) {
    throw std::invalid_argument("DwmParams: need 1 <= n_hop <= n_win");
  }
  if (n_ext == 0) {
    throw std::invalid_argument("DwmParams: n_ext must be >= 1");
  }
  if (n_sigma <= 0.0) {
    throw std::invalid_argument("DwmParams: n_sigma must be positive");
  }
  if (eta <= 0.0 || eta > 1.0) {
    throw std::invalid_argument("DwmParams: eta must be in (0, 1]");
  }
}

DwmSynchronizer::DwmSynchronizer(Signal reference, DwmParams params)
    : reference_(std::move(reference)),
      observed_(reference_.channels(), reference_.sample_rate()),
      params_(params) {
  params_.validate();
  if (reference_.frames() < params_.n_win + 1) {
    throw std::invalid_argument(
        "DwmSynchronizer: reference shorter than one window");
  }
}

std::size_t DwmSynchronizer::push(const SignalView& frames) {
  if (frames.channels() != reference_.channels()) {
    throw std::invalid_argument("DwmSynchronizer::push: channel mismatch");
  }
  // Frames before the next unprocessed window can never be read again —
  // neither by a future window (they start at n_hop multiples >= here)
  // nor by a caller inspecting the windows this push completes.  Once the
  // reference is exhausted no window will ever complete, so everything
  // retained is dead.  Dropping on entry (not after the processing loop)
  // keeps the frames of this push's own windows readable until next time.
  observed_.drop_before(reference_exhausted_
                            ? observed_.end()
                            : result_.h_disp.size() * params_.n_hop);
  observed_.append(frames);
  std::size_t processed = 0;
  while (!reference_exhausted_ && process_next_window()) {
    ++processed;
  }
  return processed;
}

void DwmSynchronizer::reserve_windows(std::size_t n_windows) {
  result_.h_disp.reserve(n_windows);
  result_.h_disp_low.reserve(n_windows);
  result_.h_dist.reserve(n_windows);
  result_.valid.reserve(n_windows);
  observed_.reserve_frames(2 * (params_.n_win + params_.n_hop));
}

bool DwmSynchronizer::process_next_window() {
  const std::size_t i = result_.h_disp.size();
  const std::size_t a_start = i * params_.n_hop;
  const std::size_t a_end = a_start + params_.n_win;
  if (a_end > observed_.end()) return false;  // window not complete yet

  const auto low_prev = static_cast<std::ptrdiff_t>(h_disp_low_prev_);
  // Extended window of b around the expected location (Eq. 9 shifted by
  // h_disp_low[i-1], line 8 of the final algorithm).
  const std::ptrdiff_t want_start = static_cast<std::ptrdiff_t>(a_start) -
                                    static_cast<std::ptrdiff_t>(params_.n_ext) +
                                    low_prev;
  const std::ptrdiff_t want_end = static_cast<std::ptrdiff_t>(a_end) +
                                  static_cast<std::ptrdiff_t>(params_.n_ext) +
                                  low_prev;
  if (want_start >= static_cast<std::ptrdiff_t>(reference_.frames())) {
    reference_exhausted_ = true;
    return false;
  }
  const SignalView b_ext = SignalView(reference_).clamped_slice(want_start,
                                                                want_end);
  if (b_ext.frames() < params_.n_win + 1) {
    // Not enough reference left to search in: the observed process has
    // outlived the reference (itself a strong intrusion indicator, surfaced
    // via reference_exhausted()).
    reference_exhausted_ = true;
    return false;
  }
  const std::ptrdiff_t actual_start =
      std::clamp<std::ptrdiff_t>(want_start, 0,
                                 static_cast<std::ptrdiff_t>(reference_.frames()));

  // Bias center: the score index that corresponds to keeping the previous
  // displacement (j = n_ext when no clamping occurred).
  const double center = static_cast<double>(
      static_cast<std::ptrdiff_t>(a_start) + low_prev - actual_start);
  const SignalView a_win = observed_.view(a_start, a_end);

  // Graceful degradation: a degenerate window (flat or non-finite samples
  // — a dropped-out, stuck or glitching sensor) carries no timing
  // information, and TDEB over it would return an arbitrary displacement
  // (all-zero scores argmax to 0, a jump of -n_ext) that poisons c_disp
  // downstream.  Hold the previous low-frequency estimate instead and tag
  // the window invalid so the comparator/discriminator can skip it.
  if (nsync::signal::degenerate_window(a_win) ||
      nsync::signal::degenerate_window(b_ext)) {
    result_.h_disp.push_back(h_disp_low_prev_);
    result_.h_disp_low.push_back(h_disp_low_prev_);
    result_.h_dist.push_back(std::abs(h_disp_low_prev_));
    result_.valid.push_back(0);
    return true;
  }

  const std::size_t j = estimate_delay_biased(b_ext, a_win, center,
                                              params_.n_sigma, params_.tde,
                                              tde_ws_);

  // h_disp[i] = (position of the matched window in b) - (position in a).
  const double h_disp = static_cast<double>(
      actual_start + static_cast<std::ptrdiff_t>(j) -
      static_cast<std::ptrdiff_t>(a_start));
  // Eq. 12: h_disp_low[i] = round(eta * (h_disp[i] - h_disp_low[i-1]))
  //                         + h_disp_low[i-1].
  const double h_low = std::round(params_.eta * (h_disp - h_disp_low_prev_)) +
                       h_disp_low_prev_;

  result_.h_disp.push_back(h_disp);
  result_.h_disp_low.push_back(h_low);
  result_.h_dist.push_back(std::abs(h_disp));
  result_.valid.push_back(1);
  h_disp_low_prev_ = h_low;
  return true;
}

void DwmSynchronizer::save_state(nsync::signal::ByteWriter& w) const {
  // Reference fingerprint: enough to reject a restore against a different
  // reference without storing the (potentially large) signal twice.
  w.pod<std::uint64_t>(reference_.frames());
  w.pod<std::uint64_t>(reference_.channels());
  w.pod<double>(reference_.sample_rate());
  w.pod<std::uint32_t>(nsync::signal::crc32(
      reference_.data(),
      reference_.frames() * reference_.channels() * sizeof(double)));
  // Parameter fingerprint.
  w.pod<std::uint64_t>(params_.n_win);
  w.pod<std::uint64_t>(params_.n_hop);
  w.pod<std::uint64_t>(params_.n_ext);
  w.pod<double>(params_.n_sigma);
  w.pod<double>(params_.eta);
  w.pod<std::uint8_t>(params_.tde.use_fft ? 1 : 0);

  observed_.save_state(w);
  w.f64_array(result_.h_disp);
  w.f64_array(result_.h_disp_low);
  w.f64_array(result_.h_dist);
  w.u8_array(result_.valid);
  w.pod<double>(h_disp_low_prev_);
  w.pod<std::uint8_t>(reference_exhausted_ ? 1 : 0);
}

void DwmSynchronizer::restore_state(nsync::signal::ByteReader& r) {
  using nsync::signal::CheckpointError;
  using nsync::signal::CheckpointErrorKind;
  const auto ref_frames = r.pod<std::uint64_t>();
  const auto ref_channels = r.pod<std::uint64_t>();
  const auto ref_rate = r.pod<double>();
  const auto ref_crc = r.pod<std::uint32_t>();
  if (ref_frames != reference_.frames() ||
      ref_channels != reference_.channels() ||
      ref_rate != reference_.sample_rate() ||
      ref_crc != nsync::signal::crc32(reference_.data(),
                                      reference_.frames() *
                                          reference_.channels() *
                                          sizeof(double))) {
    throw CheckpointError(CheckpointErrorKind::kMismatch,
                          "DwmSynchronizer: checkpoint was taken against a "
                          "different reference signal");
  }
  const auto n_win = r.pod<std::uint64_t>();
  const auto n_hop = r.pod<std::uint64_t>();
  const auto n_ext = r.pod<std::uint64_t>();
  const auto n_sigma = r.pod<double>();
  const auto eta = r.pod<double>();
  const auto use_fft = r.pod<std::uint8_t>();
  if (n_win != params_.n_win || n_hop != params_.n_hop ||
      n_ext != params_.n_ext || n_sigma != params_.n_sigma ||
      eta != params_.eta || use_fft != (params_.tde.use_fft ? 1 : 0)) {
    throw CheckpointError(CheckpointErrorKind::kMismatch,
                          "DwmSynchronizer: checkpoint was taken with "
                          "different DWM parameters");
  }

  nsync::signal::FrameRingBuffer observed(reference_.channels(),
                                          reference_.sample_rate());
  observed.restore_state(r);
  DwmResult result;
  result.h_disp = r.f64_array();
  result.h_disp_low = r.f64_array();
  result.h_dist = r.f64_array();
  result.valid = r.u8_array();
  const auto h_low_prev = r.pod<double>();
  const auto exhausted = r.pod<std::uint8_t>();

  const std::size_t windows = result.h_disp.size();
  const bool valid_flags =
      std::all_of(result.valid.begin(), result.valid.end(),
                  [](std::uint8_t v) { return v <= 1; });
  // Every processed window must have been complete: its last frame lies
  // below the retained stream end.  The retained start may be at most the
  // next window's origin (push() drops exactly up to there).
  const bool window_span_ok =
      windows == 0 ||
      (windows - 1) * params_.n_hop + params_.n_win <= observed.end();
  if (result.h_disp_low.size() != windows ||
      result.h_dist.size() != windows || result.valid.size() != windows ||
      !valid_flags || exhausted > 1 || !window_span_ok ||
      (exhausted == 0 && observed.start() > windows * params_.n_hop)) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "DwmSynchronizer: inconsistent window state");
  }

  observed_ = std::move(observed);
  result_ = std::move(result);
  h_disp_low_prev_ = h_low_prev;
  reference_exhausted_ = exhausted != 0;
}

DwmResult DwmSynchronizer::align(const SignalView& a, const SignalView& b,
                                 const DwmParams& params) {
  DwmSynchronizer sync(b.to_signal(), params);
  sync.push(a);
  return sync.result();
}

}  // namespace nsync::core
