#include "core/distance.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::SignalView;

std::string distance_metric_name(DistanceMetric m) {
  switch (m) {
    case DistanceMetric::kCorrelation: return "correlation";
    case DistanceMetric::kCosine: return "cosine";
    case DistanceMetric::kEuclidean: return "euclidean";
    case DistanceMetric::kManhattan: return "manhattan";
    case DistanceMetric::kMae: return "mae";
  }
  return "unknown";
}

DistanceMetric parse_distance_metric(const std::string& name) {
  std::string s;
  for (char c : name) {
    s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (s == "correlation" || s == "corr") return DistanceMetric::kCorrelation;
  if (s == "cosine" || s == "cos") return DistanceMetric::kCosine;
  if (s == "euclidean" || s == "l2") return DistanceMetric::kEuclidean;
  if (s == "manhattan" || s == "l1") return DistanceMetric::kManhattan;
  if (s == "mae") return DistanceMetric::kMae;
  throw std::invalid_argument("parse_distance_metric: unknown metric '" +
                              name + "'");
}

double vector_distance(std::span<const double> u, std::span<const double> v,
                       DistanceMetric metric) {
  if (u.size() != v.size()) {
    throw std::invalid_argument("vector_distance: length mismatch");
  }
  if (u.empty()) return 0.0;
  switch (metric) {
    case DistanceMetric::kCorrelation:
      return 1.0 - nsync::signal::pearson(u, v);
    case DistanceMetric::kCosine: {
      double dot = 0.0, nu = 0.0, nv = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) {
        dot += u[i] * v[i];
        nu += u[i] * u[i];
        nv += v[i] * v[i];
      }
      const double denom = std::sqrt(nu) * std::sqrt(nv);
      if (denom <= 0.0) return 1.0;
      return 1.0 - dot / denom;
    }
    case DistanceMetric::kEuclidean: {
      double acc = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) {
        const double d = u[i] - v[i];
        acc += d * d;
      }
      return std::sqrt(acc);
    }
    case DistanceMetric::kManhattan: {
      double acc = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) acc += std::abs(u[i] - v[i]);
      return acc;
    }
    case DistanceMetric::kMae: {
      double acc = 0.0;
      for (std::size_t i = 0; i < u.size(); ++i) acc += std::abs(u[i] - v[i]);
      return acc / static_cast<double>(u.size());
    }
  }
  throw std::invalid_argument("vector_distance: unknown metric");
}

double frame_distance(const SignalView& a, std::size_t i, const SignalView& b,
                      std::size_t j, DistanceMetric metric) {
  return vector_distance(a.frame(i), b.frame(j), metric);
}

double window_distance(const SignalView& u, const SignalView& v,
                       DistanceMetric metric) {
  DistanceWorkspace ws;
  return window_distance(u, v, metric, ws);
}

double window_distance(const SignalView& u, const SignalView& v,
                       DistanceMetric metric, DistanceWorkspace& ws) {
  if (u.frames() != v.frames() || u.channels() != v.channels()) {
    throw std::invalid_argument("window_distance: shape mismatch");
  }
  if (u.channels() == 0 || u.frames() == 0) return 0.0;
  double acc = 0.0;
  ws.u.resize(u.frames());
  ws.v.resize(v.frames());
  for (std::size_t c = 0; c < u.channels(); ++c) {
    for (std::size_t n = 0; n < u.frames(); ++n) {
      ws.u[n] = u(n, c);
      ws.v[n] = v(n, c);
    }
    acc += vector_distance(ws.u, ws.v, metric);
  }
  return acc / static_cast<double>(u.channels());
}

double window_similarity(const SignalView& u, const SignalView& v) {
  if (u.frames() != v.frames() || u.channels() != v.channels()) {
    throw std::invalid_argument("window_similarity: shape mismatch");
  }
  if (u.channels() == 0 || u.frames() == 0) return 0.0;
  double acc = 0.0;
  std::vector<double> cu(u.frames()), cv(v.frames());
  for (std::size_t c = 0; c < u.channels(); ++c) {
    for (std::size_t n = 0; n < u.frames(); ++n) {
      cu[n] = u(n, c);
      cv[n] = v(n, c);
    }
    acc += nsync::signal::pearson(cu, cv);
  }
  return acc / static_cast<double>(u.channels());
}

}  // namespace nsync::core
