#include "core/nsync.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::Signal;
using nsync::signal::SignalView;

std::string sync_method_name(SyncMethod m) {
  switch (m) {
    case SyncMethod::kDwm: return "DWM";
    case SyncMethod::kDtw: return "DTW";
  }
  return "unknown";
}

NsyncIds::NsyncIds(Signal reference, NsyncConfig config)
    : reference_(std::move(reference)), config_(config) {
  if (reference_.frames() == 0) {
    throw std::invalid_argument("NsyncIds: empty reference signal");
  }
  if (config_.sync == SyncMethod::kDwm) {
    config_.dwm.validate();
  }
  if (config_.sync == SyncMethod::kDtw && config_.dtw_radius == 0) {
    throw std::invalid_argument("NsyncIds: dtw_radius must be >= 1");
  }
}

Analysis NsyncIds::analyze(const SignalView& observed) const {
  Analysis a;
  if (config_.sync == SyncMethod::kDwm) {
    const DwmResult r =
        DwmSynchronizer::align(observed, reference_, config_.dwm);
    a.h_disp = r.h_disp;
    // The comparator re-checks each matched window pair and ANDs its
    // verdict into the synchronizer's mask, so a.valid reflects both
    // stages.
    MaskedDistances md = vertical_distances_dwm_masked(
        observed, reference_, r.h_disp, r.valid, config_.dwm, config_.metric);
    a.v_dist = std::move(md.v_dist);
    a.valid = std::move(md.valid);
    // The comparator emits at most one distance per displacement; carry
    // the synchronizer's verdict for any trailing windows it skipped.
    for (std::size_t i = a.valid.size(); i < r.valid.size(); ++i) {
      a.valid.push_back(r.valid[i]);
    }
    a.features = compute_features_masked(a.h_disp, a.v_dist, a.valid,
                                         config_.filter_window);
  } else {
    const DtwResult r =
        fast_dtw(observed, reference_, config_.dtw_radius, config_.metric);
    a.h_disp = h_disp_from_path(r.path, observed.frames());
    a.v_dist = vertical_distances_dtw(observed, reference_, r.path,
                                      config_.metric);
    a.features = compute_features(a.h_disp, a.v_dist, config_.filter_window);
  }
  return a;
}

void NsyncIds::fit(std::span<const Signal> benign) {
  if (benign.empty()) {
    throw std::invalid_argument("NsyncIds::fit: no training signals");
  }
  std::vector<Analysis> analyses;
  analyses.reserve(benign.size());
  for (const auto& s : benign) {
    analyses.push_back(analyze(s));
  }
  fit_from_analyses(analyses);
}

void NsyncIds::fit_from_analyses(std::span<const Analysis> analyses) {
  if (analyses.empty()) {
    throw std::invalid_argument("NsyncIds::fit_from_analyses: empty input");
  }
  std::vector<FeatureMaxima> maxima;
  maxima.reserve(analyses.size());
  for (const auto& a : analyses) {
    maxima.push_back(feature_maxima(a.features));
  }
  thresholds_ = learn_thresholds(maxima, config_.r);
  trained_ = true;
}

Detection NsyncIds::detect(const SignalView& observed) const {
  return detect(analyze(observed));
}

Detection NsyncIds::detect(const Analysis& analysis) const {
  if (!trained_) {
    throw std::logic_error("NsyncIds::detect: call fit() first");
  }
  return discriminate(analysis.features, thresholds_);
}

const Thresholds& NsyncIds::thresholds() const {
  if (!trained_) {
    throw std::logic_error("NsyncIds::thresholds: call fit() first");
  }
  return thresholds_;
}

RealtimeMonitor::RealtimeMonitor(Signal reference, NsyncConfig config,
                                 Thresholds thresholds)
    : sync_(std::move(reference), config.dwm),
      config_(config),
      thresholds_(thresholds),
      health_(config.health) {
  if (config.sync != SyncMethod::kDwm) {
    throw std::invalid_argument(
        "RealtimeMonitor: only DWM supports real-time operation");
  }
}

std::size_t RealtimeMonitor::push(const SignalView& frames) {
  const std::size_t before = sync_.windows();
  sync_.push(frames);
  const std::size_t after = sync_.windows();

  const auto& r = sync_.result();
  for (std::size_t i = before; i < after; ++i) {
    const double h = r.h_disp[i];
    bool window_valid = r.valid.empty() || r.valid[i] != 0;

    // Vertical distance for this window (Eq. 16).  The synchronizer's
    // ring buffer retains every window completed by the current push, so
    // the logical-index view is always in range here.  Skipped entirely
    // for windows the synchronizer already flagged: their frames carry no
    // information and the distance would be garbage.
    double v = v_dist_prev_;
    if (window_valid) {
      const auto& a = sync_.observed();
      const auto& b = sync_.reference();
      const std::size_t a_start = i * config_.dwm.n_hop;
      const SignalView a_win = a.view(a_start, a_start + config_.dwm.n_win);
      auto b_start = static_cast<std::ptrdiff_t>(a_start) +
                     static_cast<std::ptrdiff_t>(std::llround(h));
      b_start = std::clamp<std::ptrdiff_t>(
          b_start, 0,
          static_cast<std::ptrdiff_t>(b.frames()) -
              static_cast<std::ptrdiff_t>(config_.dwm.n_win));
      const SignalView b_win =
          SignalView(b).slice(static_cast<std::size_t>(b_start),
                              static_cast<std::size_t>(b_start) +
                                  config_.dwm.n_win);
      // The matched slice of b can be degenerate even when the extended
      // search window was not; mirror the batch comparator's re-check.
      if (nsync::signal::degenerate_window(b_win)) {
        window_valid = false;
      } else {
        v = window_distance(a_win, b_win, config_.metric);
        if (!std::isfinite(v)) {
          window_valid = false;
          v = v_dist_prev_;
        }
      }
    }

    // Carry-forward semantics (matches compute_features_masked): an
    // invalid window contributes nothing to c_disp and repeats the last
    // valid distances, so the min filters and the cumulative sum never
    // see fault artifacts.
    if (window_valid) {
      c_disp_acc_ += std::abs(h - h_disp_prev_);  // streaming CADHD (Eq. 17)
      h_disp_prev_ = h;
      v_dist_prev_ = v;
    }
    features_.c_disp.push_back(c_disp_acc_);
    h_dist_raw_.push_back(std::abs(h_disp_prev_));
    v_dist_raw_.push_back(v_dist_prev_);
    valid_.push_back(window_valid ? 1 : 0);
    health_.observe(window_valid);

    // Trailing min filters over the raw distance histories (Eq. 21-22).
    const std::size_t w = config_.filter_window;
    auto trailing_min = [w](const std::vector<double>& hist) {
      const std::size_t n = std::min(w, hist.size());
      double m = hist.back();
      for (std::size_t k = hist.size() - n; k < hist.size(); ++k) {
        m = std::min(m, hist[k]);
      }
      return m;
    };
    features_.h_dist_f.push_back(trailing_min(h_dist_raw_));
    features_.v_dist_f.push_back(trailing_min(v_dist_raw_));

    if (!detection_.intrusion) {
      const std::size_t idx = features_.c_disp.size() - 1;
      bool fired = false;
      if (features_.c_disp[idx] > thresholds_.c_c) {
        detection_.by_c_disp = true;
        fired = true;
      }
      if (features_.h_dist_f[idx] > thresholds_.h_c) {
        detection_.by_h_dist = true;
        fired = true;
      }
      if (features_.v_dist_f[idx] > thresholds_.v_c) {
        detection_.by_v_dist = true;
        fired = true;
      }
      if (fired) {
        detection_.intrusion = true;
        detection_.first_alarm_index = static_cast<std::ptrdiff_t>(idx);
      }
    }
  }
  return after - before;
}

}  // namespace nsync::core
