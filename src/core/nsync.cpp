#include "core/nsync.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "signal/checkpoint.hpp"
#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::Signal;
using nsync::signal::SignalView;

std::string sync_method_name(SyncMethod m) {
  switch (m) {
    case SyncMethod::kDwm: return "DWM";
    case SyncMethod::kDtw: return "DTW";
  }
  return "unknown";
}

NsyncIds::NsyncIds(Signal reference, NsyncConfig config)
    : reference_(std::move(reference)), config_(config) {
  if (reference_.frames() == 0) {
    throw std::invalid_argument("NsyncIds: empty reference signal");
  }
  if (config_.sync == SyncMethod::kDwm) {
    config_.dwm.validate();
  }
  if (config_.sync == SyncMethod::kDtw && config_.dtw_radius == 0) {
    throw std::invalid_argument("NsyncIds: dtw_radius must be >= 1");
  }
}

Analysis NsyncIds::analyze(const SignalView& observed) const {
  Analysis a;
  if (config_.sync == SyncMethod::kDwm) {
    const DwmResult r =
        DwmSynchronizer::align(observed, reference_, config_.dwm);
    a.h_disp = r.h_disp;
    // Batch analysis is literally a replay of the streaming DetectionCore
    // over the synchronizer's windows: one implementation of scoring,
    // masking, carry-forward and feature accumulation for both paths.
    // The core re-checks each matched window pair and ANDs its verdict
    // into the synchronizer's mask, so a.valid reflects both stages.
    DetectionCore core(config_.dwm, config_.metric, config_.filter_window);
    core.reserve(r.h_disp.size());
    for (std::size_t i = 0; i < r.h_disp.size(); ++i) {
      const std::size_t a_start = i * config_.dwm.n_hop;
      const SignalView a_win =
          observed.slice(a_start, a_start + config_.dwm.n_win);
      core.step(r.h_disp[i], r.valid.empty() || r.valid[i] != 0, a_win,
                reference_);
    }
    a.v_dist = core.v_dist();
    a.valid = core.valid();
    a.features = core.features();
  } else {
    const DtwResult r =
        fast_dtw(observed, reference_, config_.dtw_radius, config_.metric);
    a.h_disp = h_disp_from_path(r.path, observed.frames());
    a.v_dist = vertical_distances_dtw(observed, reference_, r.path,
                                      config_.metric);
    a.features = compute_features(a.h_disp, a.v_dist, config_.filter_window);
  }
  return a;
}

void NsyncIds::fit(std::span<const Signal> benign) {
  if (benign.empty()) {
    throw std::invalid_argument("NsyncIds::fit: no training signals");
  }
  std::vector<Analysis> analyses;
  analyses.reserve(benign.size());
  for (const auto& s : benign) {
    analyses.push_back(analyze(s));
  }
  fit_from_analyses(analyses);
}

void NsyncIds::fit_from_analyses(std::span<const Analysis> analyses) {
  if (analyses.empty()) {
    throw std::invalid_argument("NsyncIds::fit_from_analyses: empty input");
  }
  std::vector<FeatureMaxima> maxima;
  maxima.reserve(analyses.size());
  for (const auto& a : analyses) {
    maxima.push_back(feature_maxima(a.features));
  }
  thresholds_ = learn_thresholds(maxima, config_.r);
  trained_ = true;
}

Detection NsyncIds::detect(const SignalView& observed) const {
  return detect(analyze(observed));
}

Detection NsyncIds::detect(const Analysis& analysis) const {
  if (!trained_) {
    throw std::logic_error("NsyncIds::detect: call fit() first");
  }
  return discriminate(analysis.features, thresholds_);
}

const Thresholds& NsyncIds::thresholds() const {
  if (!trained_) {
    throw std::logic_error("NsyncIds::thresholds: call fit() first");
  }
  return thresholds_;
}

RealtimeMonitor::RealtimeMonitor(Signal reference, NsyncConfig config,
                                 Thresholds thresholds)
    : sync_(std::move(reference), config.dwm),
      config_(config),
      core_(config.dwm, config.metric, config.filter_window),
      health_(config.health) {
  if (config.sync != SyncMethod::kDwm) {
    throw std::invalid_argument(
        "RealtimeMonitor: only DWM supports real-time operation");
  }
  core_.set_thresholds(thresholds);
}

std::size_t RealtimeMonitor::push(const SignalView& frames) {
  const std::size_t before = sync_.windows();
  sync_.push(frames);
  const std::size_t after = sync_.windows();

  // The synchronizer's ring buffer retains every window completed by the
  // current push, so the logical-index views are always in range here.
  const auto& r = sync_.result();
  const auto& a = sync_.observed();
  for (std::size_t i = before; i < after; ++i) {
    const std::size_t a_start = i * config_.dwm.n_hop;
    const SignalView a_win = a.view(a_start, a_start + config_.dwm.n_win);
    const bool ok = core_.step(r.h_disp[i], r.valid.empty() || r.valid[i] != 0,
                               a_win, sync_.reference());
    health_.observe(ok);
    // Benign-baseline accumulation, gated per window: only a valid window
    // on a healthy channel with no latched intrusion may raise the benign
    // feature maxima.  Evaluated inside the per-window loop (not per
    // push), so the accumulated maxima are invariant to feed chunking and
    // drain/batch boundaries — a precondition for bitwise-deterministic
    // checkpoint replay through the sharded fleet.
    if (ok && health_.state() == ChannelHealth::kHealthy &&
        !core_.detection().intrusion) {
      const DetectionFeatures& f = core_.features();
      benign_max_.c_max = std::max(benign_max_.c_max, f.c_disp[i]);
      benign_max_.h_max = std::max(benign_max_.h_max, f.h_dist_f[i]);
      benign_max_.v_max = std::max(benign_max_.v_max, f.v_dist_f[i]);
      ++benign_windows_;
    }
  }
  return after - before;
}

void RealtimeMonitor::reserve_windows(std::size_t n_windows) {
  sync_.reserve_windows(n_windows);
  core_.reserve(n_windows);
}

void RealtimeMonitor::save_state(nsync::signal::ByteWriter& w) const {
  sync_.save_state(w);
  core_.save_state(w);
  health_.save_state(w);
  w.pod<double>(benign_max_.c_max);
  w.pod<double>(benign_max_.h_max);
  w.pod<double>(benign_max_.v_max);
  w.pod<std::uint64_t>(benign_windows_);
}

void RealtimeMonitor::restore_state(nsync::signal::ByteReader& r) {
  // Restore into copies so a failure partway through (e.g. the core
  // section is corrupt after the synchronizer already parsed) leaves this
  // monitor untouched.
  DwmSynchronizer sync = sync_;
  DetectionCore core = core_;
  ChannelHealthMonitor health = health_;
  sync.restore_state(r);
  core.restore_state(r);
  health.restore_state(r);
  FeatureMaxima benign_max;
  benign_max.c_max = r.pod<double>();
  benign_max.h_max = r.pod<double>();
  benign_max.v_max = r.pod<double>();
  const auto benign_windows = r.pod<std::uint64_t>();
  // The three machines advance in lockstep — one core step and one health
  // observation per synchronizer window.
  if (core.windows() != sync.windows() ||
      health.observed() != sync.windows()) {
    throw nsync::signal::CheckpointError(
        nsync::signal::CheckpointErrorKind::kCorrupt,
        "RealtimeMonitor: synchronizer/core/health window counts disagree");
  }
  if (!std::isfinite(benign_max.c_max) || !std::isfinite(benign_max.h_max) ||
      !std::isfinite(benign_max.v_max) || benign_max.c_max < 0.0 ||
      benign_max.h_max < 0.0 || benign_max.v_max < 0.0 ||
      benign_windows > sync.windows()) {
    throw nsync::signal::CheckpointError(
        nsync::signal::CheckpointErrorKind::kCorrupt,
        "RealtimeMonitor: implausible benign-baseline accumulator");
  }
  sync_ = std::move(sync);
  core_ = std::move(core);
  health_ = std::move(health);
  benign_max_ = benign_max;
  benign_windows_ = benign_windows;
}

}  // namespace nsync::core
