// Time Delay Estimation (Section V-B) and its biased variant TDEB
// (Section VI-B, Fig. 5).
//
// TDE slides the template `y` across the longer signal `x`, scores each
// placement with the channel-averaged Pearson correlation, and returns the
// argmax.  TDEB multiplies the score array by a Gaussian window centered at
// an expected delay, biasing the estimate toward continuity when the window
// content is periodic or noisy.
#ifndef NSYNC_CORE_TDE_HPP
#define NSYNC_CORE_TDE_HPP

#include <cstddef>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::core {

struct TdeOptions {
  /// Use the FFT + prefix-sum sliding correlation (identical output to the
  /// naive path; the naive path exists for testing and ablation).
  bool use_fft = true;
};

/// Similarity array s[n] = f(x[n : n+Ny], y), n = 0 .. Nx - Ny (Eq. 1).
/// Multichannel inputs are scored per channel and averaged (Section V-B).
/// Throws std::invalid_argument when shapes are incompatible.
[[nodiscard]] std::vector<double> similarity_scores(
    const nsync::signal::SignalView& x, const nsync::signal::SignalView& y,
    const TdeOptions& opts = {});

/// n_delay = argmax_n s[n] (Eq. 2).
[[nodiscard]] std::size_t estimate_delay(const nsync::signal::SignalView& x,
                                         const nsync::signal::SignalView& y,
                                         const TdeOptions& opts = {});

/// Multiplies `scores` by a Gaussian of std `sigma_samples` centered at
/// `center` (TDEB bias).  Returns the biased copy.
[[nodiscard]] std::vector<double> bias_scores(std::vector<double> scores,
                                              double center,
                                              double sigma_samples);

/// TDEB[sigma](x, y): biased delay estimate.  `center` is the score index
/// the bias pulls toward (n_ext in the DWM algorithm).  Returns the argmax
/// of the biased scores.
[[nodiscard]] std::size_t estimate_delay_biased(
    const nsync::signal::SignalView& x, const nsync::signal::SignalView& y,
    double center, double sigma_samples, const TdeOptions& opts = {});

}  // namespace nsync::core

#endif  // NSYNC_CORE_TDE_HPP
