// Time Delay Estimation (Section V-B) and its biased variant TDEB
// (Section VI-B, Fig. 5).
//
// TDE slides the template `y` across the longer signal `x`, scores each
// placement with the channel-averaged Pearson correlation, and returns the
// argmax.  TDEB multiplies the score array by a Gaussian window centered at
// an expected delay, biasing the estimate toward continuity when the window
// content is periodic or noisy.
//
// Two tiers of API are provided.  The allocating functions return fresh
// vectors and are convenient for tests and ablations.  The TdeWorkspace
// overloads thread reusable scratch through dsp::xcorr so that the DWM
// steady-state path (one TDEB call per window, millions of windows per
// print) performs no heap allocation and fuses score accumulation, the
// negative-score clamp, the Gaussian bias and the argmax into a single
// pass with no intermediate vectors.  Both tiers produce bitwise
// identical results.
#ifndef NSYNC_CORE_TDE_HPP
#define NSYNC_CORE_TDE_HPP

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/batched_fft.hpp"
#include "dsp/xcorr.hpp"
#include "signal/signal.hpp"

namespace nsync::core {

struct TdeOptions {
  /// Use the FFT + prefix-sum sliding correlation (identical output to the
  /// naive path; the naive path exists for testing and ablation).
  bool use_fft = true;
};

/// Per-thread scratch for the allocation-free TDE path: channel
/// extraction buffers, per-channel and accumulated score buffers, and the
/// sliding-correlation workspace (which itself owns the FFT staging).  A
/// default-constructed workspace is valid for any input and grows to
/// steady-state size on first use.
struct TdeWorkspace {
  std::vector<double> x_chan;       ///< channel c of x (strided copy)
  std::vector<double> y_chan;       ///< channel c of y (strided copy)
  std::vector<double> chan_scores;  ///< per-channel sliding correlation
  std::vector<double> scores;       ///< channel-averaged similarity
  nsync::dsp::SlidingPearsonWorkspace pearson;

  // Batched multichannel FFT path (channels > 1): all channels run
  // through one lane-interleaved BatchedRfftPlan instead of a per-channel
  // transform loop.  The plan is rebuilt only when the padded size or
  // channel count changes, so the DWM steady state (fixed window shape)
  // allocates nothing here.  The cache wrapper copies as empty so the
  // workspace stays copyable (the plan is keyed scratch, rebuilt on
  // demand).
  struct BatchedPlanCache {
    std::unique_ptr<nsync::dsp::BatchedRfftPlan> plan;
    BatchedPlanCache() = default;
    BatchedPlanCache(const BatchedPlanCache&) noexcept {}
    BatchedPlanCache& operator=(const BatchedPlanCache&) noexcept {
      return *this;
    }
    BatchedPlanCache(BatchedPlanCache&&) noexcept = default;
    BatchedPlanCache& operator=(BatchedPlanCache&&) noexcept = default;
    ~BatchedPlanCache() = default;
  };
  BatchedPlanCache batched;
  std::vector<double> mu_x;       ///< per-channel means of x
  std::vector<double> mu_y;       ///< per-channel means of y
  std::vector<double> y_energy;   ///< per-channel centered template energy
  std::vector<double> x_pad;      ///< centered x, lane-interleaved, padded
  std::vector<double> y_pad;      ///< centered reversed y, padded
  std::vector<double> spec_x_re;  ///< batched spectra (split planes)
  std::vector<double> spec_x_im;
  std::vector<double> spec_y_re;
  std::vector<double> spec_y_im;
  std::vector<double> ps;   ///< per-channel prefix sums (row-interleaved)
  std::vector<double> ps2;  ///< per-channel prefix sums of squares

  // TDEB Gaussian weight cache: reused verbatim while (center, sigma,
  // n_out) are unchanged (static callers); recomputed otherwise.
  std::vector<double> bias_w;
  double bias_center = 0.0;
  double bias_sigma = 0.0;
};

/// Similarity array s[n] = f(x[n : n+Ny], y), n = 0 .. Nx - Ny (Eq. 1).
/// Multichannel inputs are scored per channel and averaged (Section V-B).
/// Throws std::invalid_argument when shapes are incompatible.
[[nodiscard]] std::vector<double> similarity_scores(
    const nsync::signal::SignalView& x, const nsync::signal::SignalView& y,
    const TdeOptions& opts = {});

/// Workspace variant: fills ws.scores with the similarity array and
/// returns a span over it (valid until the workspace is reused).  No heap
/// allocation at steady state; bitwise identical to similarity_scores.
std::span<const double> similarity_scores_into(
    const nsync::signal::SignalView& x, const nsync::signal::SignalView& y,
    const TdeOptions& opts, TdeWorkspace& ws);

/// n_delay = argmax_n s[n] (Eq. 2).
[[nodiscard]] std::size_t estimate_delay(const nsync::signal::SignalView& x,
                                         const nsync::signal::SignalView& y,
                                         const TdeOptions& opts = {});

/// Multiplies `scores` by a Gaussian of std `sigma_samples` centered at
/// `center` (TDEB bias).  Returns the biased copy.
[[nodiscard]] std::vector<double> bias_scores(std::vector<double> scores,
                                              double center,
                                              double sigma_samples);

/// TDEB[sigma](x, y): biased delay estimate.  `center` is the score index
/// the bias pulls toward (n_ext in the DWM algorithm).  Returns the argmax
/// of the biased scores.
[[nodiscard]] std::size_t estimate_delay_biased(
    const nsync::signal::SignalView& x, const nsync::signal::SignalView& y,
    double center, double sigma_samples, const TdeOptions& opts = {});

/// Fused workspace variant of estimate_delay_biased: similarity scoring,
/// the clamp of negative correlations, the Gaussian bias and the argmax
/// run as one pass over ws.scores with no intermediate vectors.  Bitwise
/// identical to the allocating overload.
std::size_t estimate_delay_biased(const nsync::signal::SignalView& x,
                                  const nsync::signal::SignalView& y,
                                  double center, double sigma_samples,
                                  const TdeOptions& opts, TdeWorkspace& ws);

}  // namespace nsync::core

#endif  // NSYNC_CORE_TDE_HPP
