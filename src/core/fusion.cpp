#include "core/fusion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nsync::core {

std::string fusion_rule_name(FusionRule r) {
  switch (r) {
    case FusionRule::kAny: return "any";
    case FusionRule::kMajority: return "majority";
    case FusionRule::kAll: return "all";
  }
  return "unknown";
}

FusionRule parse_fusion_rule(const std::string& name) {
  if (name == "any") return FusionRule::kAny;
  if (name == "majority") return FusionRule::kMajority;
  if (name == "all") return FusionRule::kAll;
  throw std::invalid_argument("parse_fusion_rule: unknown rule '" + name +
                              "' (valid: any|majority|all)");
}

bool fused_intrusion(FusionRule rule, std::size_t alarming,
                     std::size_t online) {
  switch (rule) {
    case FusionRule::kAny: return alarming > 0;
    case FusionRule::kMajority: return 2 * alarming > online;
    case FusionRule::kAll: return online > 0 && alarming == online;
  }
  return false;
}

double threshold_ratio(double feature, double threshold) {
  if (std::isnan(feature)) return 0.0;
  if (threshold > 0.0) {
    return std::clamp(feature / threshold, 0.0, kMaxChannelScore);
  }
  return feature > 0.0 ? kMaxChannelScore : 0.0;
}

double channel_score(const DetectionFeatures& f, const Thresholds& t) {
  double peak = 0.0;
  for (const double v : f.c_disp) {
    peak = std::max(peak, threshold_ratio(v, t.c_c));
  }
  for (const double v : f.h_dist_f) {
    peak = std::max(peak, threshold_ratio(v, t.h_c));
  }
  for (const double v : f.v_dist_f) {
    peak = std::max(peak, threshold_ratio(v, t.v_c));
  }
  return peak;
}

void FusionPolicy::fit(std::span<const std::string> /*channel_names*/,
                       const std::vector<std::vector<double>>&
                       /*benign_scores*/) {}

namespace {

/// Shared by both policies: count this channel into the online/alarming
/// totals and fold its first_alarm_window in with the same precedence the
/// engine's historical vote used (earliest non-negative window among the
/// alarming online channels).
void tally_channel(const ChannelScore& c, FusedVerdict& v) {
  if (c.health == ChannelHealth::kOffline) return;
  ++v.online_channels;
  if (c.alarm) {
    ++v.alarming_channels;
    const std::ptrdiff_t w = c.first_alarm_window;
    if (v.first_alarm_window < 0 || (w >= 0 && w < v.first_alarm_window)) {
      v.first_alarm_window = w;
    }
  }
}

}  // namespace

FusedVerdict VotingPolicy::evaluate(
    std::span<const ChannelScore> channels) const {
  FusedVerdict v;
  v.channels.reserve(channels.size());
  for (const ChannelScore& c : channels) {
    tally_channel(c, v);
    v.channels.push_back({c.name, c.score, 0.0, c.alarm, c.health});
  }
  if (v.online_channels > 0) {
    // Every online channel holds an equal vote.
    const double w = 1.0 / static_cast<double>(v.online_channels);
    for (ChannelContribution& c : v.channels) {
      if (c.health != ChannelHealth::kOffline) c.weight = w;
    }
    v.score = static_cast<double>(v.alarming_channels) /
              static_cast<double>(v.online_channels);
  }
  v.intrusion = fused_intrusion(rule_, v.alarming_channels, v.online_channels);
  return v;
}

void WeightedPolicyConfig::validate() const {
  if (!(threshold > 0.0) || !std::isfinite(threshold)) {
    throw std::invalid_argument("WeightedPolicyConfig: threshold must be > 0");
  }
  if (!(degraded_weight >= 0.0) || !(degraded_weight <= 1.0)) {
    throw std::invalid_argument(
        "WeightedPolicyConfig: degraded_weight must be in [0, 1]");
  }
  if (!(score_cap >= 1.0) || !std::isfinite(score_cap)) {
    throw std::invalid_argument(
        "WeightedPolicyConfig: score_cap must be >= 1");
  }
  if (!(spread_floor > 0.0) || !std::isfinite(spread_floor)) {
    throw std::invalid_argument(
        "WeightedPolicyConfig: spread_floor must be > 0");
  }
}

WeightedPolicy::WeightedPolicy(WeightedPolicyConfig config)
    : config_(config) {
  config_.validate();
}

WeightedPolicy::WeightedPolicy(
    WeightedPolicyConfig config,
    std::vector<std::pair<std::string, double>> weights)
    : config_(config), weights_(std::move(weights)), trained_(true) {
  config_.validate();
  for (const auto& [name, w] : weights_) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("WeightedPolicy: weight for '" + name +
                                  "' must be finite and >= 0");
    }
  }
}

FusedVerdict WeightedPolicy::evaluate(
    std::span<const ChannelScore> channels) const {
  FusedVerdict v;
  v.channels.reserve(channels.size());
  double weight_sum = 0.0;
  double vote_sum = 0.0;
  double margin_sum = 0.0;
  for (const ChannelScore& c : channels) {
    tally_channel(c, v);
    ChannelContribution contrib{c.name, c.score, 0.0, c.alarm, c.health};
    if (c.health != ChannelHealth::kOffline) {
      double w = 1.0;
      if (trained_) {
        // A channel the fit never saw gets an average share rather than a
        // full unit on the normalized scale.
        w = weights_.empty() ? 1.0
                             : 1.0 / static_cast<double>(weights_.size());
        for (const auto& [name, learned] : weights_) {
          if (name == c.name) {
            w = learned;
            break;
          }
        }
      }
      if (c.health == ChannelHealth::kDegraded) w *= config_.degraded_weight;
      contrib.weight = w;
      weight_sum += w;
      if (c.alarm) vote_sum += w;
      margin_sum += w * std::min(c.score, config_.score_cap);
    }
    v.channels.push_back(std::move(contrib));
  }
  if (weight_sum > 0.0) {
    // Renormalize the surviving (online, possibly degraded) weights so
    // both terms stay weighted *means* however many sensors are dark.
    for (ChannelContribution& c : v.channels) c.weight /= weight_sum;
    v.score = vote_sum / weight_sum +
              kWeightedRefineGain * (margin_sum / weight_sum) /
                  config_.score_cap;
  }
  v.intrusion = v.score > config_.threshold;
  return v;
}

void WeightedPolicy::fit(std::span<const std::string> channel_names,
                         const std::vector<std::vector<double>>& benign_scores) {
  const std::size_t n = channel_names.size();
  if (n == 0) {
    throw std::invalid_argument("WeightedPolicy::fit: no channels");
  }
  if (benign_scores.size() < 2) {
    throw std::invalid_argument(
        "WeightedPolicy::fit: need >= 2 benign calibration runs to estimate "
        "per-channel spread");
  }
  for (const auto& run : benign_scores) {
    if (run.size() != n) {
      throw std::invalid_argument(
          "WeightedPolicy::fit: calibration run has " +
          std::to_string(run.size()) + " scores for " + std::to_string(n) +
          " channels");
    }
  }
  const double runs = static_cast<double>(benign_scores.size());
  std::vector<double> mu(n, 0.0);
  std::vector<double> sd(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    for (const auto& run : benign_scores) {
      mu[k] += std::min(run[k], config_.score_cap);
    }
    mu[k] /= runs;
    for (const auto& run : benign_scores) {
      const double d = std::min(run[k], config_.score_cap) - mu[k];
      sd[k] += d * d;
    }
    sd[k] = std::sqrt(sd[k] / runs);
  }
  // Pairwise Pearson correlation of the benign score series; only
  // *positive* co-movement counts as redundancy (anti-correlated channels
  // are complementary, not redundant).
  auto positive_corr = [&](std::size_t a, std::size_t b) {
    if (sd[a] == 0.0 || sd[b] == 0.0) return 0.0;
    double cov = 0.0;
    for (const auto& run : benign_scores) {
      cov += (std::min(run[a], config_.score_cap) - mu[a]) *
             (std::min(run[b], config_.score_cap) - mu[b]);
    }
    cov /= runs;
    const double rho = std::clamp(cov / (sd[a] * sd[b]), -1.0, 1.0);
    return std::max(0.0, rho);
  };
  std::vector<double> w(n, 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    // Benign headroom over spread: low, tight benign scores are the mark
    // of a reliable channel.  The floor keeps a channel whose benign mean
    // already rides the threshold from going exactly weightless.
    const double headroom = std::max(1.0 - mu[k], 0.05);
    const double raw = headroom / (sd[k] + config_.spread_floor);
    double shrink = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != k) shrink += positive_corr(k, j);
    }
    w[k] = raw / shrink;
    total += w[k];
  }
  weights_.clear();
  weights_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    weights_.emplace_back(channel_names[k],
                          total > 0.0 ? w[k] / total
                                      : 1.0 / static_cast<double>(n));
  }
  trained_ = true;
}

FusionIds::FusionIds(FusionRule rule)
    : rule_(rule), policy_(std::make_shared<VotingPolicy>(rule)) {}

FusionIds::FusionIds(std::shared_ptr<FusionPolicy> policy)
    : policy_(std::move(policy)) {
  if (!policy_) {
    throw std::invalid_argument("FusionIds: null fusion policy");
  }
  if (const auto* voting = dynamic_cast<const VotingPolicy*>(policy_.get())) {
    rule_ = voting->rule();
  }
}

void FusionIds::add_channel(const std::string& name,
                            nsync::signal::Signal reference,
                            const NsyncConfig& config) {
  if (members_.contains(name)) {
    throw std::invalid_argument("FusionIds: channel '" + name +
                                "' already registered");
  }
  members_.emplace(name, NsyncIds(std::move(reference), config));
}

void FusionIds::fit(std::span<const SignalMap> benign_runs) {
  if (members_.empty()) {
    throw std::logic_error("FusionIds::fit: no channels registered");
  }
  if (benign_runs.empty()) {
    throw std::invalid_argument("FusionIds::fit: no training runs");
  }
  // Per channel: analyze every run once, learn the OCC thresholds, then
  // score the same runs against them — the policy's calibration matrix.
  std::vector<std::string> names;
  names.reserve(members_.size());
  std::vector<std::vector<double>> scores(benign_runs.size());
  for (auto& row : scores) row.reserve(members_.size());
  for (auto& [name, ids] : members_) {
    std::vector<Analysis> analyses;
    analyses.reserve(benign_runs.size());
    for (const auto& run : benign_runs) {
      const auto it = run.find(name);
      if (it == run.end()) {
        throw FusionChannelError(
            FusionChannelError::Kind::kMissing, name,
            "FusionIds::fit: training run missing '" + name + "'");
      }
      analyses.push_back(ids.analyze(it->second));
    }
    ids.fit_from_analyses(analyses);
    for (std::size_t i = 0; i < analyses.size(); ++i) {
      scores[i].push_back(
          channel_score(analyses[i].features, ids.thresholds()));
    }
    names.push_back(name);
  }
  policy_->fit(names, scores);
}

FusionDetection FusionIds::detect(const SignalMap& observed) const {
  if (members_.empty()) {
    throw std::logic_error("FusionIds::detect: no channels registered");
  }
  std::map<std::string, Analysis> analyses;
  for (const auto& [name, ids] : members_) {
    const auto it = observed.find(name);
    if (it == observed.end()) {
      throw FusionChannelError(
          FusionChannelError::Kind::kMissing, name,
          "FusionIds::detect: observation missing '" + name + "'");
    }
    analyses.emplace(name, ids.analyze(it->second));
  }
  for (const auto& [name, signal] : observed) {
    if (!members_.contains(name)) {
      throw FusionChannelError(
          FusionChannelError::Kind::kUnknown, name,
          "FusionIds::detect: observation carries unknown channel '" + name +
              "'");
    }
  }
  return detect_analyses(analyses);
}

FusionDetection FusionIds::detect_analyses(
    const std::map<std::string, Analysis>& analyses) const {
  if (members_.empty()) {
    throw std::logic_error("FusionIds::detect_analyses: no channels");
  }
  for (const auto& [name, analysis] : analyses) {
    if (!members_.contains(name)) {
      throw FusionChannelError(
          FusionChannelError::Kind::kUnknown, name,
          "FusionIds::detect_analyses: unknown channel '" + name + "'");
    }
  }
  FusionDetection out;
  std::vector<ChannelScore> scores;
  scores.reserve(members_.size());
  for (const auto& [name, ids] : members_) {
    const auto it = analyses.find(name);
    if (it == analyses.end()) {
      throw FusionChannelError(
          FusionChannelError::Kind::kMissing, name,
          "FusionIds::detect_analyses: analysis missing '" + name + "'");
    }
    const Detection d = ids.detect(it->second);
    const ChannelHealth h =
        replay_health(it->second.valid, ids.config().health);
    scores.push_back({name, channel_score(it->second.features, ids.thresholds()),
                      d.intrusion, d.first_alarm_window, h});
    out.per_channel.emplace_back(name, d);
    out.health.emplace_back(name, h);
  }
  FusedVerdict v = policy_->evaluate(scores);
  out.intrusion = v.intrusion;
  out.fused_score = v.score;
  out.alarming_channels = v.alarming_channels;
  out.online_channels = v.online_channels;
  out.contributions = std::move(v.channels);
  return out;
}

const NsyncIds& FusionIds::member(const std::string& name) const {
  const auto it = members_.find(name);
  if (it == members_.end()) {
    throw std::invalid_argument("FusionIds::member: unknown channel '" +
                                name + "'");
  }
  return it->second;
}

}  // namespace nsync::core
