#include "core/fusion.hpp"

#include <stdexcept>

namespace nsync::core {

std::string fusion_rule_name(FusionRule r) {
  switch (r) {
    case FusionRule::kAny: return "any";
    case FusionRule::kMajority: return "majority";
    case FusionRule::kAll: return "all";
  }
  return "unknown";
}

bool fused_intrusion(FusionRule rule, std::size_t alarming,
                     std::size_t online) {
  switch (rule) {
    case FusionRule::kAny: return alarming > 0;
    case FusionRule::kMajority: return 2 * alarming > online;
    case FusionRule::kAll: return online > 0 && alarming == online;
  }
  return false;
}

void FusionIds::add_channel(const std::string& name,
                            nsync::signal::Signal reference,
                            const NsyncConfig& config) {
  if (members_.contains(name)) {
    throw std::invalid_argument("FusionIds: channel '" + name +
                                "' already registered");
  }
  members_.emplace(name, NsyncIds(std::move(reference), config));
}

void FusionIds::fit(std::span<const SignalMap> benign_runs) {
  if (members_.empty()) {
    throw std::logic_error("FusionIds::fit: no channels registered");
  }
  if (benign_runs.empty()) {
    throw std::invalid_argument("FusionIds::fit: no training runs");
  }
  for (auto& [name, ids] : members_) {
    std::vector<nsync::signal::Signal> train;
    train.reserve(benign_runs.size());
    for (const auto& run : benign_runs) {
      const auto it = run.find(name);
      if (it == run.end()) {
        throw std::invalid_argument("FusionIds::fit: training run missing '" +
                                    name + "'");
      }
      train.push_back(it->second);
    }
    ids.fit(train);
  }
}

FusionDetection FusionIds::detect(const SignalMap& observed) const {
  if (members_.empty()) {
    throw std::logic_error("FusionIds::detect: no channels registered");
  }
  std::map<std::string, Analysis> analyses;
  for (const auto& [name, ids] : members_) {
    const auto it = observed.find(name);
    if (it == observed.end()) {
      throw std::invalid_argument("FusionIds::detect: observation missing '" +
                                  name + "'");
    }
    analyses.emplace(name, ids.analyze(it->second));
  }
  return detect_analyses(analyses);
}

FusionDetection FusionIds::detect_analyses(
    const std::map<std::string, Analysis>& analyses) const {
  if (members_.empty()) {
    throw std::logic_error("FusionIds::detect_analyses: no channels");
  }
  FusionDetection out;
  for (const auto& [name, ids] : members_) {
    const auto it = analyses.find(name);
    if (it == analyses.end()) {
      throw std::invalid_argument(
          "FusionIds::detect_analyses: analysis missing '" + name + "'");
    }
    const Detection d = ids.detect(it->second);
    const ChannelHealth h =
        replay_health(it->second.valid, ids.config().health);
    if (h != ChannelHealth::kOffline) {
      ++out.online_channels;
      if (d.intrusion) ++out.alarming_channels;
    }
    out.per_channel.emplace_back(name, d);
    out.health.emplace_back(name, h);
  }
  out.intrusion =
      fused_intrusion(rule_, out.alarming_channels, out.online_channels);
  return out;
}

const NsyncIds& FusionIds::member(const std::string& name) const {
  const auto it = members_.find(name);
  if (it == members_.end()) {
    throw std::invalid_argument("FusionIds::member: unknown channel '" +
                                name + "'");
  }
  return it->second;
}

}  // namespace nsync::core
