// The streaming detection core — the single implementation of NSYNC's
// window-by-window detection logic (Sections VII-A/B), shared by the batch
// pipeline (`NsyncIds::analyze`), the per-print streaming monitor
// (`RealtimeMonitor`) and the multi-session `MonitorEngine`.
//
// One `step()` consumes one synchronizer window and performs, in order:
//   1. window scoring     — the comparator's vertical distance (Eq. 16)
//                           against the matched, clamped reference window;
//   2. validity masking   — a window is invalid when the synchronizer
//                           flagged it, either matched window is degenerate
//                           (flat / non-finite samples), or the distance
//                           itself comes out non-finite;
//   3. carry-forward      — invalid windows repeat the last valid h/v
//                           values, so they contribute zero CADHD evidence
//                           and the min filters never see fault artifacts;
//   4. c_disp             — the streaming CADHD accumulator (Eq. 17);
//   5. min filtering      — the spike-suppression filters (Eq. 21-22),
//                           computed incrementally with a monotonic deque
//                           (O(1) amortized per window) instead of
//                           re-scanning the trailing history;
//   6. threshold latching — once armed with OCC thresholds, the first
//                           window whose features cross any critical value
//                           latches the intrusion verdict and records
//                           `first_alarm_window` (Eq. 18-20).
//
// Batch and streaming use produce bitwise-identical features, masks and
// verdicts by construction: the batch path literally replays this state
// machine window by window (see tests/test_streaming_equivalence.cpp).
#ifndef NSYNC_CORE_DETECTION_CORE_HPP
#define NSYNC_CORE_DETECTION_CORE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/discriminator.hpp"
#include "core/distance.hpp"
#include "core/dwm.hpp"
#include "signal/signal.hpp"

namespace nsync::signal {
class ByteWriter;
class ByteReader;
}  // namespace nsync::signal

namespace nsync::core {

/// Incremental trailing-minimum filter (Eq. 21-22) over a scalar stream:
/// push(x) returns min of x and the previous window-1 samples.  Internally
/// a monotonic deque in a fixed ring, so a push is O(1) amortized and
/// allocation-free after construction; the emitted values are exactly
/// those of the batch `signal::min_filter` (same comparison structure),
/// which tests/test_detection_core.cpp pins against a naive recompute.
class StreamingMinFilter {
 public:
  /// Throws std::invalid_argument when `window` is 0.
  explicit StreamingMinFilter(std::size_t window);

  /// Consumes the next sample and returns the filtered value.
  double push(double x);

  /// Forgets all history (the stream restarts at index 0).
  void reset();

  [[nodiscard]] std::size_t window() const { return window_; }
  /// Samples consumed since construction / reset().
  [[nodiscard]] std::size_t samples() const { return next_; }

  /// Serializes the deque contents and stream position (checkpointing).
  void save_state(nsync::signal::ByteWriter& w) const;
  /// Restores state written by save_state.  Throws CheckpointError:
  /// kMismatch on a different filter window, kCorrupt on malformed state.
  void restore_state(nsync::signal::ByteReader& r);

 private:
  struct Entry {
    std::size_t index = 0;
    double value = 0.0;
  };

  std::size_t window_ = 0;
  std::vector<Entry> ring_;  // capacity window_ + 1, monotonic deque
  std::size_t head_ = 0;     // ring slot of the deque front
  std::size_t size_ = 0;     // live deque entries
  std::size_t next_ = 0;     // stream index of the next sample
};

/// Window-at-a-time detection state machine.  Feed it one synchronizer
/// window per step() — in real time as windows complete, or in a batch
/// replay over a finished DwmResult — and read features()/valid()/
/// detection() at any point.
class DetectionCore {
 public:
  /// `dwm` supplies the window geometry (n_win/n_hop) used to locate the
  /// matched reference window; `filter_window` is the spike-suppression
  /// width (Section VII-B).  Throws on invalid parameters.
  DetectionCore(const DwmParams& dwm, DistanceMetric metric,
                std::size_t filter_window);

  /// Installs OCC thresholds and arms the intrusion latch.  Steps taken
  /// before arming never fire; discriminating a finished batch instead
  /// uses `discriminate()` on features() (identical comparisons).
  void set_thresholds(const Thresholds& t);
  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] const Thresholds& thresholds() const { return thresholds_; }

  /// Scores window index windows(): `h_disp`/`sync_valid` are the
  /// synchronizer's outputs for it, `a_win` its observed frames (exactly
  /// n_win of them) and `b` the whole reference signal.  Returns the
  /// window's validity after the comparator-stage re-checks.
  bool step(double h_disp, bool sync_valid,
            const nsync::signal::SignalView& a_win,
            const nsync::signal::SignalView& b);

  /// Pre-scored variant: consumes a window whose vertical distance was
  /// already computed (or synthesized — unit tests, non-DWM feeds).
  /// Applies stages 2-6 only; a non-finite `h_disp`/`v_dist` invalidates
  /// the window regardless of `valid`.
  bool step_scored(double h_disp, double v_dist, bool valid);

  /// Pre-allocates every per-window array for `n_windows` windows so a
  /// steady-state step performs no heap allocation.
  void reserve(std::size_t n_windows);

  /// Windows consumed so far.
  [[nodiscard]] std::size_t windows() const { return valid_.size(); }
  /// The three feature arrays, one entry per consumed window.
  [[nodiscard]] const DetectionFeatures& features() const { return features_; }
  /// Carried vertical distances (the comparator output, Eq. 16).
  [[nodiscard]] const std::vector<double>& v_dist() const { return v_dist_; }
  /// Per-window validity (1 = scored, 0 = degenerate/held).
  [[nodiscard]] const std::vector<std::uint8_t>& valid() const {
    return valid_;
  }
  /// Latched verdict.  `intrusion`/`first_alarm_window` freeze at the
  /// first crossing; the per-sub-module flags keep accumulating so a
  /// finished stream reports exactly what batch `discriminate()` would.
  [[nodiscard]] const Detection& detection() const { return detection_; }

  /// Serializes every window of accumulated state — features, masks,
  /// carried values, min-filter deques, latched verdict — such that a
  /// restored core continues the stream bitwise identically to one that
  /// never stopped.
  void save_state(nsync::signal::ByteWriter& w) const;
  /// Restores state written by save_state into a core constructed with
  /// the same parameters.  Throws CheckpointError: kMismatch when the
  /// serialized geometry/metric/filter differ from this core's, kCorrupt
  /// on internally inconsistent state.
  void restore_state(nsync::signal::ByteReader& r);

 private:
  bool apply_window(double h_disp, double v_dist, bool ok);

  DwmParams dwm_;
  DistanceMetric metric_;
  std::size_t filter_window_;
  Thresholds thresholds_;
  bool armed_ = false;

  DetectionFeatures features_;
  std::vector<double> v_dist_;
  std::vector<std::uint8_t> valid_;
  Detection detection_;

  StreamingMinFilter h_min_;
  StreamingMinFilter v_min_;
  DistanceWorkspace dist_ws_;  // window_distance scratch, reused per step
  double c_disp_acc_ = 0.0;
  double h_prev_ = 0.0;  // last *valid* displacement (carry-forward)
  double v_prev_ = 0.0;  // last *valid* vertical distance
};

}  // namespace nsync::core

#endif  // NSYNC_CORE_DETECTION_CORE_HPP
