#include "core/health.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "signal/checkpoint.hpp"

namespace nsync::core {

std::string channel_health_name(ChannelHealth h) {
  switch (h) {
    case ChannelHealth::kHealthy: return "healthy";
    case ChannelHealth::kDegraded: return "degraded";
    case ChannelHealth::kOffline: return "offline";
  }
  return "unknown";
}

void HealthPolicy::validate() const {
  if (history == 0) {
    throw std::invalid_argument("HealthPolicy: history must be >= 1");
  }
  if (degraded_fraction <= 0.0 || degraded_fraction > 1.0) {
    throw std::invalid_argument(
        "HealthPolicy: degraded_fraction must be in (0, 1]");
  }
  if (offline_consecutive == 0 || recovery_consecutive == 0) {
    throw std::invalid_argument(
        "HealthPolicy: streak lengths must be >= 1");
  }
}

ChannelHealthMonitor::ChannelHealthMonitor(HealthPolicy policy)
    : policy_(policy) {
  policy_.validate();
  history_.assign(policy_.history, 1);
}

double ChannelHealthMonitor::invalid_fraction() const {
  if (filled_ == 0) return 0.0;
  return static_cast<double>(invalid_in_history_) /
         static_cast<double>(filled_);
}

ChannelHealth ChannelHealthMonitor::observe(bool valid) {
  ++observed_;
  if (!valid) ++invalid_total_;

  // Circular history update.
  if (filled_ == history_.size()) {
    if (history_[head_] == 0) --invalid_in_history_;
  } else {
    ++filled_;
  }
  history_[head_] = valid ? 1 : 0;
  if (!valid) ++invalid_in_history_;
  head_ = (head_ + 1) % history_.size();

  if (valid) {
    ++valid_streak_;
    invalid_streak_ = 0;
  } else {
    ++invalid_streak_;
    valid_streak_ = 0;
  }

  // Demotions first: a sustained invalid streak always wins.
  if (invalid_streak_ >= policy_.offline_consecutive) {
    state_ = ChannelHealth::kOffline;
    return state_;
  }
  // The fraction-based demotion waits for a full history window: during
  // warm-up `invalid_fraction()` divides by `filled_`, so one invalid
  // window out of two observed would read as 50% and flap the channel to
  // degraded seconds into a stream.  Sustained failures still demote via
  // the streak rule above regardless of warm-up.
  if (state_ == ChannelHealth::kHealthy && filled_ == history_.size() &&
      invalid_fraction() >= policy_.degraded_fraction) {
    state_ = ChannelHealth::kDegraded;
    return state_;
  }

  // Recovery: one level per clean streak, with a stricter bar for the
  // final step back to healthy (hysteresis).
  if (state_ == ChannelHealth::kOffline &&
      valid_streak_ >= policy_.recovery_consecutive) {
    state_ = ChannelHealth::kDegraded;
    valid_streak_ = 0;  // the next level costs a fresh streak
    return state_;
  }
  if (state_ == ChannelHealth::kDegraded &&
      valid_streak_ >= policy_.recovery_consecutive &&
      invalid_fraction() < policy_.degraded_fraction / 2.0) {
    state_ = ChannelHealth::kHealthy;
  }
  return state_;
}

void ChannelHealthMonitor::save_state(nsync::signal::ByteWriter& w) const {
  using std::uint64_t;
  // Policy fingerprint.
  w.pod<uint64_t>(policy_.history);
  w.pod<double>(policy_.degraded_fraction);
  w.pod<uint64_t>(policy_.offline_consecutive);
  w.pod<uint64_t>(policy_.recovery_consecutive);

  w.pod<std::uint8_t>(static_cast<std::uint8_t>(state_));
  w.u8_array(history_);
  w.pod<uint64_t>(head_);
  w.pod<uint64_t>(filled_);
  w.pod<uint64_t>(invalid_in_history_);
  w.pod<uint64_t>(invalid_streak_);
  w.pod<uint64_t>(valid_streak_);
  w.pod<uint64_t>(observed_);
  w.pod<uint64_t>(invalid_total_);
}

void ChannelHealthMonitor::restore_state(nsync::signal::ByteReader& r) {
  using nsync::signal::CheckpointError;
  using nsync::signal::CheckpointErrorKind;
  const auto history = r.pod<std::uint64_t>();
  const auto degraded_fraction = r.pod<double>();
  const auto offline_consecutive = r.pod<std::uint64_t>();
  const auto recovery_consecutive = r.pod<std::uint64_t>();
  if (history != policy_.history ||
      degraded_fraction != policy_.degraded_fraction ||
      offline_consecutive != policy_.offline_consecutive ||
      recovery_consecutive != policy_.recovery_consecutive) {
    throw CheckpointError(
        CheckpointErrorKind::kMismatch,
        "ChannelHealthMonitor: serialized policy differs from this "
        "monitor's");
  }

  const auto state = r.pod<std::uint8_t>();
  std::vector<std::uint8_t> bits = r.u8_array();
  const auto head = r.pod<std::uint64_t>();
  const auto filled = r.pod<std::uint64_t>();
  const auto invalid_in_history = r.pod<std::uint64_t>();
  const auto invalid_streak = r.pod<std::uint64_t>();
  const auto valid_streak = r.pod<std::uint64_t>();
  const auto observed = r.pod<std::uint64_t>();
  const auto invalid_total = r.pod<std::uint64_t>();
  const bool bits_are_flags =
      std::all_of(bits.begin(), bits.end(),
                  [](std::uint8_t b) { return b <= 1; });
  if (state > static_cast<std::uint8_t>(ChannelHealth::kOffline) ||
      bits.size() != history_.size() || head >= bits.size() ||
      filled > bits.size() || invalid_in_history > filled ||
      filled > observed || invalid_total > observed ||
      invalid_in_history > invalid_total ||
      std::max(valid_streak, invalid_streak) > observed || !bits_are_flags) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "ChannelHealthMonitor: inconsistent counters");
  }

  state_ = static_cast<ChannelHealth>(state);
  history_ = std::move(bits);
  head_ = static_cast<std::size_t>(head);
  filled_ = static_cast<std::size_t>(filled);
  invalid_in_history_ = static_cast<std::size_t>(invalid_in_history);
  invalid_streak_ = static_cast<std::size_t>(invalid_streak);
  valid_streak_ = static_cast<std::size_t>(valid_streak);
  observed_ = static_cast<std::size_t>(observed);
  invalid_total_ = static_cast<std::size_t>(invalid_total);
}

ChannelHealth replay_health(const std::vector<std::uint8_t>& valid,
                            const HealthPolicy& policy) {
  ChannelHealthMonitor m(policy);
  for (std::uint8_t v : valid) m.observe(v != 0);
  return m.state();
}

}  // namespace nsync::core
