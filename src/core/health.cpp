#include "core/health.hpp"

#include <stdexcept>

namespace nsync::core {

std::string channel_health_name(ChannelHealth h) {
  switch (h) {
    case ChannelHealth::kHealthy: return "healthy";
    case ChannelHealth::kDegraded: return "degraded";
    case ChannelHealth::kOffline: return "offline";
  }
  return "unknown";
}

void HealthPolicy::validate() const {
  if (history == 0) {
    throw std::invalid_argument("HealthPolicy: history must be >= 1");
  }
  if (degraded_fraction <= 0.0 || degraded_fraction > 1.0) {
    throw std::invalid_argument(
        "HealthPolicy: degraded_fraction must be in (0, 1]");
  }
  if (offline_consecutive == 0 || recovery_consecutive == 0) {
    throw std::invalid_argument(
        "HealthPolicy: streak lengths must be >= 1");
  }
}

ChannelHealthMonitor::ChannelHealthMonitor(HealthPolicy policy)
    : policy_(policy) {
  policy_.validate();
  history_.assign(policy_.history, 1);
}

double ChannelHealthMonitor::invalid_fraction() const {
  if (filled_ == 0) return 0.0;
  return static_cast<double>(invalid_in_history_) /
         static_cast<double>(filled_);
}

ChannelHealth ChannelHealthMonitor::observe(bool valid) {
  ++observed_;
  if (!valid) ++invalid_total_;

  // Circular history update.
  if (filled_ == history_.size()) {
    if (history_[head_] == 0) --invalid_in_history_;
  } else {
    ++filled_;
  }
  history_[head_] = valid ? 1 : 0;
  if (!valid) ++invalid_in_history_;
  head_ = (head_ + 1) % history_.size();

  if (valid) {
    ++valid_streak_;
    invalid_streak_ = 0;
  } else {
    ++invalid_streak_;
    valid_streak_ = 0;
  }

  // Demotions first: a sustained invalid streak always wins.
  if (invalid_streak_ >= policy_.offline_consecutive) {
    state_ = ChannelHealth::kOffline;
    return state_;
  }
  if (state_ == ChannelHealth::kHealthy &&
      invalid_fraction() >= policy_.degraded_fraction) {
    state_ = ChannelHealth::kDegraded;
    return state_;
  }

  // Recovery: one level per clean streak, with a stricter bar for the
  // final step back to healthy (hysteresis).
  if (state_ == ChannelHealth::kOffline &&
      valid_streak_ >= policy_.recovery_consecutive) {
    state_ = ChannelHealth::kDegraded;
    valid_streak_ = 0;  // the next level costs a fresh streak
    return state_;
  }
  if (state_ == ChannelHealth::kDegraded &&
      valid_streak_ >= policy_.recovery_consecutive &&
      invalid_fraction() < policy_.degraded_fraction / 2.0) {
    state_ = ChannelHealth::kHealthy;
  }
  return state_;
}

ChannelHealth replay_health(const std::vector<std::uint8_t>& valid,
                            const HealthPolicy& policy) {
  ChannelHealthMonitor m(policy);
  for (std::uint8_t v : valid) m.observe(v != 0);
  return m.state();
}

}  // namespace nsync::core
