#include "core/discriminator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "signal/filters.hpp"

namespace nsync::core {

DetectionFeatures compute_features(std::span<const double> h_disp,
                                   std::span<const double> v_dist,
                                   std::size_t filter_window) {
  if (filter_window == 0) {
    throw std::invalid_argument("compute_features: filter_window must be >= 1");
  }
  DetectionFeatures f;
  // Eq. 17 with h_disp[-1] = 0.
  f.c_disp = nsync::signal::cumulative_abs_diff(h_disp, 0.0);
  // Horizontal distance |h_disp| then the trailing min filter (Eq. 21).
  std::vector<double> h_dist(h_disp.size());
  for (std::size_t i = 0; i < h_disp.size(); ++i) {
    h_dist[i] = std::abs(h_disp[i]);
  }
  f.h_dist_f = nsync::signal::min_filter(h_dist, filter_window);
  f.v_dist_f = nsync::signal::min_filter(v_dist, filter_window);
  return f;
}

FeatureMaxima feature_maxima(const DetectionFeatures& f) {
  auto max_of = [](const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, x);
    return m;
  };
  return {max_of(f.c_disp), max_of(f.h_dist_f), max_of(f.v_dist_f)};
}

Thresholds learn_thresholds(std::span<const FeatureMaxima> train, double r) {
  if (train.empty()) {
    throw std::invalid_argument("learn_thresholds: no training maxima");
  }
  if (r < 0.0) {
    throw std::invalid_argument("learn_thresholds: r must be >= 0");
  }
  double c_lo = std::numeric_limits<double>::max(), c_hi = 0.0;
  double h_lo = std::numeric_limits<double>::max(), h_hi = 0.0;
  double v_lo = std::numeric_limits<double>::max(), v_hi = 0.0;
  for (const auto& m : train) {
    c_lo = std::min(c_lo, m.c_max);
    c_hi = std::max(c_hi, m.c_max);
    h_lo = std::min(h_lo, m.h_max);
    h_hi = std::max(h_hi, m.h_max);
    v_lo = std::min(v_lo, m.v_max);
    v_hi = std::max(v_hi, m.v_max);
  }
  // Eq. 28 margin with a relative floor: when every training maximum is
  // identical the raw spread is 0 and the threshold would sit exactly at
  // the benign max.
  auto margin = [r](double hi, double lo) {
    return r * std::max(hi - lo, kMinRelativeSpread * hi);
  };
  Thresholds t;
  t.c_c = c_hi + margin(c_hi, c_lo);
  t.h_c = h_hi + margin(h_hi, h_lo);
  t.v_c = v_hi + margin(v_hi, v_lo);
  return t;
}

Detection discriminate(const DetectionFeatures& f, const Thresholds& t) {
  Detection d;
  auto first_over = [](const std::vector<double>& v,
                       double limit) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] > limit) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  const std::ptrdiff_t ic = first_over(f.c_disp, t.c_c);
  const std::ptrdiff_t ih = first_over(f.h_dist_f, t.h_c);
  const std::ptrdiff_t iv = first_over(f.v_dist_f, t.v_c);
  d.by_c_disp = ic >= 0;
  d.by_h_dist = ih >= 0;
  d.by_v_dist = iv >= 0;
  d.intrusion = d.by_c_disp || d.by_h_dist || d.by_v_dist;
  d.first_alarm_window = -1;
  for (std::ptrdiff_t idx : {ic, ih, iv}) {
    if (idx >= 0 &&
        (d.first_alarm_window < 0 || idx < d.first_alarm_window)) {
      d.first_alarm_window = idx;
    }
  }
  return d;
}

}  // namespace nsync::core
