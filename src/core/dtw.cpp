#include "core/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nsync::core {

using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Row-banded cost matrix with parent tracking for traceback.
class BandedDp {
 public:
  BandedDp(const SignalView& a, const SignalView& b, DistanceMetric metric,
           const DtwWindow& window)
      : a_(a), b_(b), metric_(metric), window_(window) {
    offsets_.resize(window.size() + 1, 0);
    for (std::size_t i = 0; i < window.size(); ++i) {
      if (window[i].second <= window[i].first ||
          window[i].second > b.frames()) {
        throw std::invalid_argument("dtw_windowed: malformed band row");
      }
      offsets_[i + 1] = offsets_[i] + (window[i].second - window[i].first);
    }
    cost_.assign(offsets_.back(), kInf);
    parent_.assign(offsets_.back(), -1);
  }

  [[nodiscard]] bool in_band(std::size_t i, std::size_t j) const {
    return i < window_.size() && j >= window_[i].first &&
           j < window_[i].second;
  }

  double& cost(std::size_t i, std::size_t j) {
    return cost_[offsets_[i] + (j - window_[i].first)];
  }
  [[nodiscard]] double cost_or_inf(std::size_t i, std::size_t j) const {
    if (!in_band(i, j)) return kInf;
    return cost_[offsets_[i] + (j - window_[i].first)];
  }
  signed char& parent(std::size_t i, std::size_t j) {
    return parent_[offsets_[i] + (j - window_[i].first)];
  }
  [[nodiscard]] signed char parent(std::size_t i, std::size_t j) const {
    return parent_[offsets_[i] + (j - window_[i].first)];
  }

  DtwResult solve() {
    const std::size_t na = a_.frames();
    if (!in_band(0, 0) || !in_band(na - 1, b_.frames() - 1)) {
      throw std::invalid_argument(
          "dtw_windowed: band must include both path endpoints");
    }
    for (std::size_t i = 0; i < na; ++i) {
      for (std::size_t j = window_[i].first; j < window_[i].second; ++j) {
        const double d = frame_distance(a_, i, b_, j, metric_);
        if (i == 0 && j == 0) {
          cost(i, j) = d;
          parent(i, j) = 0;
          continue;
        }
        // Parents: 1 = (i-1, j-1), 2 = (i-1, j), 3 = (i, j-1).
        double best = kInf;
        signed char dir = -1;
        if (i > 0 && j > 0) {
          const double c = cost_or_inf(i - 1, j - 1);
          if (c < best) {
            best = c;
            dir = 1;
          }
        }
        if (i > 0) {
          const double c = cost_or_inf(i - 1, j);
          if (c < best) {
            best = c;
            dir = 2;
          }
        }
        if (j > 0) {
          const double c = cost_or_inf(i, j - 1);
          if (c < best) {
            best = c;
            dir = 3;
          }
        }
        if (dir < 0) continue;  // unreachable band cell
        cost(i, j) = best + d;
        parent(i, j) = dir;
      }
    }
    DtwResult out;
    out.cost = cost_or_inf(na - 1, b_.frames() - 1);
    if (!std::isfinite(out.cost)) {
      throw std::runtime_error("dtw_windowed: endpoint unreachable in band");
    }
    // Traceback.
    std::size_t i = na - 1;
    std::size_t j = b_.frames() - 1;
    while (true) {
      out.path.push_back({i, j});
      const signed char dir = parent(i, j);
      if (dir == 0) break;
      if (dir == 1) {
        --i;
        --j;
      } else if (dir == 2) {
        --i;
      } else {
        --j;
      }
    }
    std::reverse(out.path.begin(), out.path.end());
    return out;
  }

 private:
  const SignalView& a_;
  const SignalView& b_;
  DistanceMetric metric_;
  const DtwWindow& window_;
  std::vector<std::size_t> offsets_;
  std::vector<double> cost_;
  std::vector<signed char> parent_;
};

DtwWindow full_window(std::size_t na, std::size_t nb) {
  return DtwWindow(na, {0, nb});
}

/// Expands a coarse path to the fine grid and inflates it by `radius`.
DtwWindow expand_window(const WarpPath& coarse_path, std::size_t na,
                        std::size_t nb, std::size_t radius) {
  const auto r = static_cast<std::ptrdiff_t>(radius);
  std::vector<std::ptrdiff_t> lo(na, std::numeric_limits<std::ptrdiff_t>::max());
  std::vector<std::ptrdiff_t> hi(na, -1);
  auto mark = [&](std::ptrdiff_t i, std::ptrdiff_t j0, std::ptrdiff_t j1) {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(na)) return;
    lo[i] = std::min(lo[i], std::max<std::ptrdiff_t>(0, j0));
    hi[i] = std::max(hi[i], std::min<std::ptrdiff_t>(
                                static_cast<std::ptrdiff_t>(nb) - 1, j1));
  };
  for (const auto& p : coarse_path) {
    const auto ci = static_cast<std::ptrdiff_t>(p.i);
    const auto cj = static_cast<std::ptrdiff_t>(p.j);
    for (std::ptrdiff_t di = -r; di <= r + 1; ++di) {
      mark(2 * ci + di, 2 * cj - r, 2 * cj + 1 + r);
    }
  }
  // Rows never touched (can happen at the fine edge) inherit neighbors.
  for (std::size_t i = 0; i < na; ++i) {
    if (hi[i] < 0) {
      lo[i] = i > 0 ? lo[i - 1] : 0;
      hi[i] = i > 0 ? hi[i - 1] : static_cast<std::ptrdiff_t>(nb) - 1;
    }
  }
  // Enforce monotone, overlapping bands so the DP stays connected.
  for (std::size_t i = 1; i < na; ++i) {
    lo[i] = std::max(lo[i], std::ptrdiff_t{0});
    if (lo[i] > hi[i - 1]) lo[i] = hi[i - 1];
    if (hi[i] < hi[i - 1]) hi[i] = hi[i - 1];
  }
  hi[na - 1] = static_cast<std::ptrdiff_t>(nb) - 1;
  DtwWindow w(na);
  for (std::size_t i = 0; i < na; ++i) {
    w[i] = {static_cast<std::size_t>(lo[i]),
            static_cast<std::size_t>(hi[i]) + 1};
  }
  return w;
}

}  // namespace

Signal half_resolution(const SignalView& s) {
  const std::size_t out_frames = (s.frames() + 1) / 2;
  Signal out(out_frames, s.channels(), s.sample_rate() / 2.0);
  for (std::size_t n = 0; n < out_frames; ++n) {
    const std::size_t n0 = 2 * n;
    const std::size_t n1 = std::min(2 * n + 1, s.frames() - 1);
    for (std::size_t c = 0; c < s.channels(); ++c) {
      out(n, c) = 0.5 * (s(n0, c) + s(n1, c));
    }
  }
  return out;
}

DtwResult dtw(const SignalView& a, const SignalView& b,
              DistanceMetric metric) {
  if (a.frames() == 0 || b.frames() == 0) {
    throw std::invalid_argument("dtw: empty input");
  }
  if (a.channels() != b.channels()) {
    throw std::invalid_argument("dtw: channel mismatch");
  }
  const DtwWindow w = full_window(a.frames(), b.frames());
  return BandedDp(a, b, metric, w).solve();
}

DtwResult dtw_windowed(const SignalView& a, const SignalView& b,
                       DistanceMetric metric, const DtwWindow& window) {
  if (a.frames() == 0 || b.frames() == 0) {
    throw std::invalid_argument("dtw_windowed: empty input");
  }
  if (window.size() != a.frames()) {
    throw std::invalid_argument("dtw_windowed: band row count mismatch");
  }
  return BandedDp(a, b, metric, window).solve();
}

DtwResult fast_dtw(const SignalView& a, const SignalView& b,
                   std::size_t radius, DistanceMetric metric) {
  if (radius == 0) {
    throw std::invalid_argument("fast_dtw: radius must be >= 1");
  }
  const std::size_t min_size = radius + 2;
  if (a.frames() <= min_size || b.frames() <= min_size) {
    return dtw(a, b, metric);
  }
  const Signal a2 = half_resolution(a);
  const Signal b2 = half_resolution(b);
  const DtwResult coarse = fast_dtw(a2, b2, radius, metric);
  const DtwWindow w =
      expand_window(coarse.path, a.frames(), b.frames(), radius);
  return dtw_windowed(a, b, metric, w);
}

std::vector<double> h_disp_from_path(const WarpPath& path, std::size_t n_a) {
  std::vector<double> sum(n_a, 0.0);
  std::vector<std::size_t> count(n_a, 0);
  for (const auto& p : path) {
    if (p.i >= n_a) continue;
    sum[p.i] += static_cast<double>(p.j) - static_cast<double>(p.i);
    ++count[p.i];
  }
  std::vector<double> out(n_a, 0.0);
  double last = 0.0;
  for (std::size_t i = 0; i < n_a; ++i) {
    if (count[i] > 0) {
      last = sum[i] / static_cast<double>(count[i]);
    }
    out[i] = last;  // carry forward for indexes the path skipped
  }
  return out;
}

std::vector<double> v_dist_from_path(const SignalView& a, const SignalView& b,
                                     const WarpPath& path,
                                     DistanceMetric metric) {
  std::vector<double> sum(a.frames(), 0.0);
  std::vector<std::size_t> count(a.frames(), 0);
  for (const auto& p : path) {
    if (p.i >= a.frames() || p.j >= b.frames()) continue;
    sum[p.i] += frame_distance(a, p.i, b, p.j, metric);
    ++count[p.i];
  }
  std::vector<double> out(a.frames(), 0.0);
  for (std::size_t i = 0; i < a.frames(); ++i) {
    out[i] = count[i] > 0 ? sum[i] / static_cast<double>(count[i]) : 0.0;
  }
  return out;
}

}  // namespace nsync::core
