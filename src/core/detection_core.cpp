#include "core/detection_core.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "signal/checkpoint.hpp"
#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::SignalView;

StreamingMinFilter::StreamingMinFilter(std::size_t window) : window_(window) {
  if (window == 0) {
    throw std::invalid_argument("StreamingMinFilter: window must be >= 1");
  }
  // The deque momentarily holds window_ + 1 entries: the new sample is
  // pushed before the expired front is popped (matching the batch
  // min_filter's operation order exactly).
  ring_.resize(window_ + 1);
}

double StreamingMinFilter::push(double x) {
  const std::size_t cap = ring_.size();
  // Drop dominated entries from the back.  `!(back < x)` — not `back >= x`
  // — so NaN handling is identical to the batch filter's comparator.
  while (size_ > 0 && !(ring_[(head_ + size_ - 1) % cap].value < x)) {
    --size_;
  }
  ring_[(head_ + size_) % cap] = Entry{next_, x};
  ++size_;
  if (ring_[head_].index + window_ <= next_) {
    head_ = (head_ + 1) % cap;
    --size_;
  }
  ++next_;
  return ring_[head_].value;
}

void StreamingMinFilter::reset() {
  head_ = 0;
  size_ = 0;
  next_ = 0;
}

void StreamingMinFilter::save_state(nsync::signal::ByteWriter& w) const {
  using std::uint64_t;
  w.pod<uint64_t>(window_);
  w.pod<uint64_t>(next_);
  // Write the live deque entries front to back; the restored ring is
  // normalized to head 0, which changes nothing observable (the deque is
  // only ever addressed relative to head).
  w.pod<uint64_t>(size_);
  const std::size_t cap = ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    const Entry& e = ring_[(head_ + i) % cap];
    w.pod<uint64_t>(e.index);
    w.pod<double>(e.value);
  }
}

void StreamingMinFilter::restore_state(nsync::signal::ByteReader& r) {
  using nsync::signal::CheckpointError;
  using nsync::signal::CheckpointErrorKind;
  const auto window = r.pod<std::uint64_t>();
  if (window != window_) {
    throw CheckpointError(CheckpointErrorKind::kMismatch,
                          "StreamingMinFilter: serialized window " +
                              std::to_string(window) + " != constructed " +
                              std::to_string(window_));
  }
  const auto next = r.pod<std::uint64_t>();
  const auto size = r.pod<std::uint64_t>();
  if (size > ring_.size() || (next > 0 && size == 0) || size > next) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "StreamingMinFilter: implausible deque size");
  }
  std::size_t prev_index = 0;
  for (std::size_t i = 0; i < size; ++i) {
    Entry e;
    e.index = static_cast<std::size_t>(r.pod<std::uint64_t>());
    e.value = r.pod<double>();
    // Deque invariant: strictly increasing stream indices, all inside the
    // trailing window.
    if (e.index >= next || (i > 0 && e.index <= prev_index) ||
        e.index + window_ < next) {
      throw CheckpointError(CheckpointErrorKind::kCorrupt,
                            "StreamingMinFilter: broken deque invariant");
    }
    prev_index = e.index;
    ring_[i] = e;
  }
  head_ = 0;
  size_ = static_cast<std::size_t>(size);
  next_ = static_cast<std::size_t>(next);
}

DetectionCore::DetectionCore(const DwmParams& dwm, DistanceMetric metric,
                             std::size_t filter_window)
    : dwm_(dwm),
      metric_(metric),
      filter_window_(filter_window),
      h_min_(filter_window == 0 ? 1 : filter_window),
      v_min_(filter_window == 0 ? 1 : filter_window) {
  dwm_.validate();
  if (filter_window == 0) {
    throw std::invalid_argument("DetectionCore: filter_window must be >= 1");
  }
}

void DetectionCore::set_thresholds(const Thresholds& t) {
  thresholds_ = t;
  armed_ = true;
}

bool DetectionCore::step(double h_disp, bool sync_valid,
                         const SignalView& a_win, const SignalView& b) {
  if (a_win.frames() != dwm_.n_win) {
    throw std::invalid_argument("DetectionCore::step: a_win must span n_win");
  }
  const std::size_t a_start = windows() * dwm_.n_hop;
  auto b_start = static_cast<std::ptrdiff_t>(a_start) +
                 static_cast<std::ptrdiff_t>(std::llround(h_disp));
  // Clamp the matched window fully inside the reference (Eq. 16).
  b_start = std::clamp<std::ptrdiff_t>(
      b_start, 0,
      static_cast<std::ptrdiff_t>(b.frames()) -
          static_cast<std::ptrdiff_t>(dwm_.n_win));
  if (b_start < 0) {
    throw std::invalid_argument(
        "DetectionCore::step: reference shorter than one window");
  }
  const SignalView b_win =
      b.slice(static_cast<std::size_t>(b_start),
              static_cast<std::size_t>(b_start) + dwm_.n_win);

  // The matched windows can be degenerate (flat / non-finite frames) even
  // when the synchronizer's extended search window was not; re-check both
  // before trusting the distance.
  bool ok = sync_valid;
  if (ok) {
    ok = !nsync::signal::degenerate_window(a_win) &&
         !nsync::signal::degenerate_window(b_win);
  }
  double v = v_prev_;
  if (ok) {
    v = window_distance(a_win, b_win, metric_, dist_ws_);
    // Degenerate-window guards do not cover every way a distance can go
    // non-finite (e.g. overflowing Euclidean sums); check the value itself
    // as the last line of defense.
    if (!std::isfinite(v)) {
      ok = false;
      v = v_prev_;
    }
  }
  return apply_window(h_disp, v, ok);
}

bool DetectionCore::step_scored(double h_disp, double v_dist, bool valid) {
  // Non-finite inputs carry no usable evidence whatever the caller's mask
  // says — they would poison the cumulative sum and the min filters.
  if (valid && !(std::isfinite(h_disp) && std::isfinite(v_dist))) {
    valid = false;
  }
  return apply_window(h_disp, valid ? v_dist : v_prev_, valid);
}

bool DetectionCore::apply_window(double h_disp, double v_dist, bool ok) {
  // Carry-forward (Section "graceful degradation"): an invalid window
  // contributes nothing to c_disp and repeats the last valid values, so
  // the cumulative sum and the min filters never see fault artifacts.
  if (ok) {
    c_disp_acc_ += std::abs(h_disp - h_prev_);  // streaming CADHD (Eq. 17)
    h_prev_ = h_disp;
    v_prev_ = v_dist;
  }
  features_.c_disp.push_back(c_disp_acc_);
  features_.h_dist_f.push_back(h_min_.push(std::abs(h_prev_)));
  features_.v_dist_f.push_back(v_min_.push(v_prev_));
  v_dist_.push_back(v_prev_);
  valid_.push_back(ok ? 1 : 0);

  if (armed_) {
    const std::size_t idx = valid_.size() - 1;
    // Same comparisons as the batch discriminate() (Eq. 18-20, strict >).
    // The sub-module flags keep accumulating after the latch so a finished
    // stream reports exactly what discriminate() would over the full
    // feature arrays; intrusion and first_alarm_window freeze at the
    // first crossing.
    bool fired = false;
    if (features_.c_disp[idx] > thresholds_.c_c) {
      detection_.by_c_disp = true;
      fired = true;
    }
    if (features_.h_dist_f[idx] > thresholds_.h_c) {
      detection_.by_h_dist = true;
      fired = true;
    }
    if (features_.v_dist_f[idx] > thresholds_.v_c) {
      detection_.by_v_dist = true;
      fired = true;
    }
    if (fired && !detection_.intrusion) {
      detection_.intrusion = true;
      detection_.first_alarm_window = static_cast<std::ptrdiff_t>(idx);
    }
  }
  return ok;
}

void DetectionCore::save_state(nsync::signal::ByteWriter& w) const {
  using std::uint64_t;
  // Configuration fingerprint: restore targets must be constructed with
  // the same window geometry, metric and filter width, or the replayed
  // stream would diverge from the saved one.
  w.pod<uint64_t>(dwm_.n_win);
  w.pod<uint64_t>(dwm_.n_hop);
  w.pod<std::uint32_t>(static_cast<std::uint32_t>(metric_));
  w.pod<uint64_t>(filter_window_);

  w.pod<std::uint8_t>(armed_ ? 1 : 0);
  w.pod<double>(thresholds_.c_c);
  w.pod<double>(thresholds_.h_c);
  w.pod<double>(thresholds_.v_c);

  w.f64_array(features_.c_disp);
  w.f64_array(features_.h_dist_f);
  w.f64_array(features_.v_dist_f);
  w.f64_array(v_dist_);
  w.u8_array(valid_);

  w.pod<std::uint8_t>(detection_.intrusion ? 1 : 0);
  w.pod<std::uint8_t>(detection_.by_c_disp ? 1 : 0);
  w.pod<std::uint8_t>(detection_.by_h_dist ? 1 : 0);
  w.pod<std::uint8_t>(detection_.by_v_dist ? 1 : 0);
  w.pod<std::int64_t>(detection_.first_alarm_window);

  h_min_.save_state(w);
  v_min_.save_state(w);
  w.pod<double>(c_disp_acc_);
  w.pod<double>(h_prev_);
  w.pod<double>(v_prev_);
}

void DetectionCore::restore_state(nsync::signal::ByteReader& r) {
  using nsync::signal::CheckpointError;
  using nsync::signal::CheckpointErrorKind;
  const auto n_win = r.pod<std::uint64_t>();
  const auto n_hop = r.pod<std::uint64_t>();
  const auto metric = r.pod<std::uint32_t>();
  const auto filter_window = r.pod<std::uint64_t>();
  if (n_win != dwm_.n_win || n_hop != dwm_.n_hop ||
      metric != static_cast<std::uint32_t>(metric_) ||
      filter_window != filter_window_) {
    throw CheckpointError(
        CheckpointErrorKind::kMismatch,
        "DetectionCore: serialized geometry/metric/filter differ from the "
        "constructed configuration");
  }

  const bool armed = r.pod<std::uint8_t>() != 0;
  Thresholds thresholds;
  thresholds.c_c = r.pod<double>();
  thresholds.h_c = r.pod<double>();
  thresholds.v_c = r.pod<double>();

  DetectionFeatures features;
  features.c_disp = r.f64_array();
  features.h_dist_f = r.f64_array();
  features.v_dist_f = r.f64_array();
  std::vector<double> v_dist = r.f64_array();
  std::vector<std::uint8_t> valid = r.u8_array();
  const std::size_t windows = valid.size();
  if (features.c_disp.size() != windows ||
      features.h_dist_f.size() != windows ||
      features.v_dist_f.size() != windows || v_dist.size() != windows) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "DetectionCore: per-window arrays disagree on the "
                          "number of windows");
  }

  Detection detection;
  detection.intrusion = r.pod<std::uint8_t>() != 0;
  detection.by_c_disp = r.pod<std::uint8_t>() != 0;
  detection.by_h_dist = r.pod<std::uint8_t>() != 0;
  detection.by_v_dist = r.pod<std::uint8_t>() != 0;
  detection.first_alarm_window =
      static_cast<std::ptrdiff_t>(r.pod<std::int64_t>());
  if (detection.first_alarm_window < -1 ||
      detection.first_alarm_window >= static_cast<std::ptrdiff_t>(windows) ||
      (detection.intrusion != (detection.first_alarm_window >= 0))) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "DetectionCore: inconsistent latched verdict");
  }

  // Restore the min filters into scratch copies first so a malformed
  // filter blob cannot leave this core half-updated.
  StreamingMinFilter h_min(filter_window_);
  StreamingMinFilter v_min(filter_window_);
  h_min.restore_state(r);
  v_min.restore_state(r);
  if (h_min.samples() != windows || v_min.samples() != windows) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "DetectionCore: filter stream position disagrees "
                          "with the window count");
  }
  const double c_disp_acc = r.pod<double>();
  const double h_prev = r.pod<double>();
  const double v_prev = r.pod<double>();

  armed_ = armed;
  thresholds_ = thresholds;
  features_ = std::move(features);
  v_dist_ = std::move(v_dist);
  valid_ = std::move(valid);
  detection_ = detection;
  h_min_ = std::move(h_min);
  v_min_ = std::move(v_min);
  c_disp_acc_ = c_disp_acc;
  h_prev_ = h_prev;
  v_prev_ = v_prev;
}

void DetectionCore::reserve(std::size_t n_windows) {
  features_.c_disp.reserve(n_windows);
  features_.h_dist_f.reserve(n_windows);
  features_.v_dist_f.reserve(n_windows);
  v_dist_.reserve(n_windows);
  valid_.reserve(n_windows);
}

}  // namespace nsync::core
