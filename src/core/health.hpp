// Per-channel health tracking for graceful degradation.
//
// The validity mask produced by the synchronizer/comparator says whether
// each *window* was usable (finite, non-degenerate).  This module turns
// that per-window stream into a per-channel operational state with
// hysteresis, so the detector layer (RealtimeMonitor, FusionIds) can keep
// detecting on the surviving channels when one sensor degrades or goes
// dark, instead of letting a single faulty stream poison the verdict.
//
//   healthy --(invalid fraction over recent history)--> degraded
//   degraded --(consecutive invalid windows)----------> offline
//   offline --(consecutive valid windows)-------------> degraded
//   degraded --(consecutive valid windows, stricter)---> healthy
//
// Recovery always steps down one level at a time and demands a longer
// clean streak than the demotion did (hysteresis), so a flapping sensor
// settles in `degraded` rather than oscillating.
#ifndef NSYNC_CORE_HEALTH_HPP
#define NSYNC_CORE_HEALTH_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nsync::signal {
class ByteWriter;
class ByteReader;
}  // namespace nsync::signal

namespace nsync::core {

enum class ChannelHealth {
  kHealthy,   ///< validity within normal bounds
  kDegraded,  ///< elevated invalid-window fraction; verdicts still used
  kOffline,   ///< sustained invalid stream; excluded from fusion votes
};

[[nodiscard]] std::string channel_health_name(ChannelHealth h);

struct HealthPolicy {
  /// Sliding history length (windows) for the invalid-fraction estimate.
  std::size_t history = 32;
  /// Invalid fraction over `history` that demotes healthy -> degraded.
  /// The demotion is gated until a full history has been observed, so a
  /// single invalid window early in a stream (1 of 2 observed = 50%)
  /// cannot flap the channel during warm-up; the consecutive-invalid
  /// offline rule still applies from the first window.
  double degraded_fraction = 0.25;
  /// Consecutive invalid windows that force any state -> offline.
  std::size_t offline_consecutive = 12;
  /// Consecutive valid windows required to recover one level (offline ->
  /// degraded, and degraded -> healthy once the fraction also clears
  /// degraded_fraction / 2).
  std::size_t recovery_consecutive = 16;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

/// Streaming state machine: feed one observe(valid) per processed window.
class ChannelHealthMonitor {
 public:
  explicit ChannelHealthMonitor(HealthPolicy policy = {});

  /// Updates the state with the validity of the next window and returns
  /// the state after the update.
  ChannelHealth observe(bool valid);

  [[nodiscard]] ChannelHealth state() const { return state_; }
  /// Invalid fraction over the retained history (0 before any window).
  [[nodiscard]] double invalid_fraction() const;
  /// Windows observed so far.
  [[nodiscard]] std::size_t observed() const { return observed_; }
  /// Total invalid windows seen (not just recent history).
  [[nodiscard]] std::size_t invalid_total() const { return invalid_total_; }
  /// Current run of consecutive valid windows (the recovery-hysteresis
  /// counter; exposed so restore-equivalence tests can assert the streak
  /// resumed rather than reset).
  [[nodiscard]] std::size_t valid_streak() const { return valid_streak_; }
  /// Current run of consecutive invalid windows (the offline-demotion
  /// counter).
  [[nodiscard]] std::size_t invalid_streak() const { return invalid_streak_; }
  [[nodiscard]] const HealthPolicy& policy() const { return policy_; }

  /// Serializes the state machine — state, sliding history, hysteresis
  /// streaks, lifetime counters (checkpointing).
  void save_state(nsync::signal::ByteWriter& w) const;
  /// Restores state written by save_state.  Throws CheckpointError:
  /// kMismatch when the serialized policy differs from this monitor's,
  /// kCorrupt on malformed state.
  void restore_state(nsync::signal::ByteReader& r);

 private:
  HealthPolicy policy_;
  ChannelHealth state_ = ChannelHealth::kHealthy;
  std::vector<std::uint8_t> history_;  // circular buffer of validity bits
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  std::size_t invalid_in_history_ = 0;
  std::size_t invalid_streak_ = 0;
  std::size_t valid_streak_ = 0;
  std::size_t observed_ = 0;
  std::size_t invalid_total_ = 0;
};

/// Replays a whole validity mask (e.g. Analysis::valid from a batch
/// detection) through a fresh monitor and returns the final state.
[[nodiscard]] ChannelHealth replay_health(
    const std::vector<std::uint8_t>& valid, const HealthPolicy& policy = {});

}  // namespace nsync::core

#endif  // NSYNC_CORE_HEALTH_HPP
