#include "core/online_dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nsync::core {

using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Gain of the inertial band-center tracker.
constexpr double kOffsetGain = 0.2;
}

OnlineDtw::OnlineDtw(Signal reference, std::size_t band_halfwidth,
                     DistanceMetric metric)
    : reference_(std::move(reference)), w_(band_halfwidth), metric_(metric) {
  if (reference_.frames() == 0) {
    throw std::invalid_argument("OnlineDtw: empty reference");
  }
  if (w_ == 0) {
    throw std::invalid_argument("OnlineDtw: band_halfwidth must be >= 1");
  }
}

void OnlineDtw::push(const SignalView& frames) {
  if (frames.channels() != reference_.channels()) {
    throw std::invalid_argument("OnlineDtw::push: channel mismatch");
  }
  for (std::size_t n = 0; n < frames.frames(); ++n) {
    process_frame(frames.frame(n));
  }
}

void OnlineDtw::process_frame(std::span<const double> frame) {
  const auto nb = static_cast<std::ptrdiff_t>(reference_.frames());
  const std::size_t i = h_disp_.size();

  // Band center: the warp path's expected slope is 1, so the band rides
  // the diagonal j = i + offset, where `offset` is an inertial estimate of
  // the current displacement (the same stabilization idea as DWM's
  // h_disp_low tracker).  Re-centering greedily on each row's argmin is
  // tempting but fragile: on smooth signals near-tie rows let the band
  // wander off the diagonal and never recover.
  const std::ptrdiff_t center =
      static_cast<std::ptrdiff_t>(i) +
      static_cast<std::ptrdiff_t>(std::llround(offset_));
  const std::ptrdiff_t band_start =
      std::clamp<std::ptrdiff_t>(center - static_cast<std::ptrdiff_t>(w_), 0,
                                 std::max<std::ptrdiff_t>(0, nb - 1));
  const std::ptrdiff_t band_end =
      std::min<std::ptrdiff_t>(center + static_cast<std::ptrdiff_t>(w_) + 1,
                               nb);
  const auto band_len = static_cast<std::size_t>(band_end - band_start);

  std::vector<double> costs(band_len, kInf);
  std::vector<double> dist(band_len, 0.0);
  for (std::size_t k = 0; k < band_len; ++k) {
    const auto j = static_cast<std::size_t>(band_start +
                                            static_cast<std::ptrdiff_t>(k));
    dist[k] = vector_distance(frame, reference_.frame(j), metric_);
  }

  auto prev_cost_at = [&](std::ptrdiff_t j) -> double {
    if (first_row_) return j == 0 ? 0.0 : kInf;  // path starts at (0, 0)
    const std::ptrdiff_t k = j - prev_band_start_;
    if (k < 0 || k >= static_cast<std::ptrdiff_t>(prev_costs_.size())) {
      return kInf;
    }
    return prev_costs_[static_cast<std::size_t>(k)];
  };

  // Cells the previous band cannot reach stay infeasible — granting them a
  // discounted base would pull the argmin to the band edge every row and
  // ratchet the alignment away.  Interior cells always connect through the
  // left-chain, so at most the first cell of the row is affected.
  for (std::size_t k = 0; k < band_len; ++k) {
    const std::ptrdiff_t j = band_start + static_cast<std::ptrdiff_t>(k);
    const double diag = prev_cost_at(j - 1);
    const double up = prev_cost_at(j);
    const double left = k > 0 ? costs[k - 1] : kInf;
    const double best = std::min({diag, up, left});
    costs[k] = std::isfinite(best) ? best + dist[k] : kInf;
  }
  // Pathological full disconnect (band jumped clear of the previous one):
  // re-acquire from the previous row's minimum.
  bool any_finite = false;
  for (double c : costs) {
    if (std::isfinite(c)) {
      any_finite = true;
      break;
    }
  }
  if (!any_finite) {
    double prev_min = prev_costs_.empty() ? 0.0 : prev_costs_[0];
    for (double c : prev_costs_) prev_min = std::min(prev_min, c);
    for (std::size_t k = 0; k < band_len; ++k) {
      costs[k] = prev_min + dist[k];
    }
  }

  std::size_t best_k = 0;
  for (std::size_t k = 1; k < band_len; ++k) {
    if (costs[k] < costs[best_k]) best_k = k;
  }
  const std::ptrdiff_t j_best = band_start + static_cast<std::ptrdiff_t>(best_k);
  const double h = static_cast<double>(j_best) - static_cast<double>(i);
  h_disp_.push_back(h);
  v_dist_.push_back(dist[best_k]);
  if (j_best >= nb - 1) reference_exhausted_ = true;

  // Inertial offset update (cf. DWM Eq. 12).
  offset_ += kOffsetGain * (h - offset_);

  prev_costs_ = std::move(costs);
  prev_band_start_ = band_start;
  first_row_ = false;
}

}  // namespace nsync::core
