// Dynamic Time Warping (Section VI-A): the existing point-based dynamic
// synchronizer that DWM replaces, kept as both a baseline and an
// alternative NSYNC synchronizer (Table IX).
//
// Provides exact DTW (Sakoe & Chiba), a windowed variant, and FastDTW
// (Salvador & Chan) whose `radius` trades accuracy for speed; the paper
// always uses the smallest radius because DTW is otherwise too slow for
// side-channel signals (Fig. 11).
#ifndef NSYNC_CORE_DTW_HPP
#define NSYNC_CORE_DTW_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "core/distance.hpp"
#include "signal/signal.hpp"

namespace nsync::core {

/// One correspondence (i, j): a[i] matches b[j].
struct WarpPoint {
  std::size_t i = 0;
  std::size_t j = 0;
  friend bool operator==(const WarpPoint&, const WarpPoint&) = default;
};

/// Monotonic warping path from (0, 0) to (Na-1, Nb-1).
using WarpPath = std::vector<WarpPoint>;

struct DtwResult {
  WarpPath path;
  double cost = 0.0;  ///< accumulated distance along the path
};

/// Exact DTW over all Na x Nb cells.  Memory O(Na * Nb) — intended for
/// short signals and for validating FastDTW.
[[nodiscard]] DtwResult dtw(const nsync::signal::SignalView& a,
                            const nsync::signal::SignalView& b,
                            DistanceMetric metric);

/// Per-row search band: row i may use columns [window[i].first,
/// window[i].second).
using DtwWindow = std::vector<std::pair<std::size_t, std::size_t>>;

/// DTW constrained to `window` (must cover (0,0) and (Na-1, Nb-1) and be
/// row-wise contiguous).  Throws std::invalid_argument on malformed bands.
[[nodiscard]] DtwResult dtw_windowed(const nsync::signal::SignalView& a,
                                     const nsync::signal::SignalView& b,
                                     DistanceMetric metric,
                                     const DtwWindow& window);

/// FastDTW: recursive coarsening with search `radius` (>= 1).
[[nodiscard]] DtwResult fast_dtw(const nsync::signal::SignalView& a,
                                 const nsync::signal::SignalView& b,
                                 std::size_t radius, DistanceMetric metric);

/// Horizontal displacement per index of `a` (Eq. 5): the mean of j - i over
/// all path tuples with first index i.
[[nodiscard]] std::vector<double> h_disp_from_path(const WarpPath& path,
                                                   std::size_t n_a);

/// Vertical distance per index of `a` (Eq. 15): the mean of d(a[i], b[j])
/// over all path tuples with first index i.
[[nodiscard]] std::vector<double> v_dist_from_path(
    const nsync::signal::SignalView& a, const nsync::signal::SignalView& b,
    const WarpPath& path, DistanceMetric metric);

/// Halves a signal's time resolution by averaging adjacent frame pairs
/// (FastDTW's coarsening step).  Exposed for testing.
[[nodiscard]] nsync::signal::Signal half_resolution(
    const nsync::signal::SignalView& s);

}  // namespace nsync::core

#endif  // NSYNC_CORE_DTW_HPP
