// Multi-channel fusion IDS — an extension beyond the paper.
//
// The paper evaluates NSYNC one side channel at a time (Tables VIII/IX) and
// notes that h_disp is "a property of the printing process, not the side
// channels" (Section VIII-B).  That observation invites fusion: run one
// NSYNC instance per side channel against per-channel references of the
// same benign process and combine the verdicts.
//
// Fusion is score-based and pluggable.  Each channel contributes a
// continuous anomaly score — its normalized OCC margin, the largest
// feature/threshold ratio over the stream so far (1.0 = exactly at the
// learned critical value; strictly above 1.0 iff the discriminator
// alarms) — plus its latched alarm bit and health state.  A FusionPolicy
// maps that score vector to a fused verdict with a per-channel
// contribution breakdown.  Two families ship behind the interface:
//
//   * VotingPolicy — the paper-era boolean vote over latched alarm bits
//     (kAny maximizes TPR, kMajority suppresses per-channel false
//     positives, kAll minimizes FPR), bit-for-bit identical to the
//     historical fused_intrusion() path.
//   * WeightedPolicy — per-channel reliability weights learned during
//     fit() from the benign calibration spread (channels whose benign
//     scores sit low and tight earn more weight), shrunk by the
//     positive pairwise correlation of the benign score series (Fig. 10
//     structure: redundant channels must not double-count), with
//     degraded channels down-weighted and offline channels excluded,
//     the surviving weights renormalized online.
#ifndef NSYNC_CORE_FUSION_HPP
#define NSYNC_CORE_FUSION_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/nsync.hpp"

namespace nsync::core {

enum class FusionRule {
  kAny,       ///< alarm if any channel alarms (union)
  kMajority,  ///< alarm if more than half of the channels alarm
  kAll,       ///< alarm only if every channel alarms (intersection)
};

[[nodiscard]] std::string fusion_rule_name(FusionRule r);

/// Inverse of fusion_rule_name(): "any" | "majority" | "all".  Throws
/// std::invalid_argument naming the valid set on anything else.
[[nodiscard]] FusionRule parse_fusion_rule(const std::string& name);

/// The voting rule itself: fused verdict given the number of alarming and
/// online channels.  Votes are taken over online channels only; with every
/// sensor dark there is no evidence either way, so the verdict stays benign
/// (callers can see online == 0 and escalate operationally).  Shared by the
/// batch FusionIds and the streaming MonitorEngine.
[[nodiscard]] bool fused_intrusion(FusionRule rule, std::size_t alarming,
                                   std::size_t online);

/// A per-channel map handed to FusionIds did not line up with the
/// registered channels: a registered channel is missing from the map
/// (kMissing) or the map carries a key no channel was registered under
/// (kUnknown).  channel() names the offender.
class FusionChannelError : public std::invalid_argument {
 public:
  enum class Kind { kMissing, kUnknown };

  FusionChannelError(Kind kind, std::string channel, const std::string& what)
      : std::invalid_argument(what), kind_(kind), channel_(std::move(channel)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& channel() const { return channel_; }

 private:
  Kind kind_;
  std::string channel_;
};

/// Ceiling on a channel's anomaly score.  Keeps degenerate thresholds
/// (t == 0 with nonzero evidence) and extreme outliers finite so weighted
/// sums, telemetry doubles and JSON stay well-formed.
inline constexpr double kMaxChannelScore = 1e9;

/// One feature's contribution to the anomaly score: feature / threshold,
/// clamped to [0, kMaxChannelScore].  NaN features (masked faulted
/// windows) carry no evidence and score 0; a non-positive threshold with
/// positive evidence scores the ceiling (consistent with discriminate()'s
/// strict `feature > threshold` alarm).
[[nodiscard]] double threshold_ratio(double feature, double threshold);

/// Normalized OCC margin of one channel: the maximum threshold_ratio over
/// every window of every feature array.  Strictly greater than 1.0 iff
/// discriminate(f, t) alarms; monotone in the number of windows processed,
/// so streaming evaluations at different drain boundaries agree once they
/// have seen the same windows.
[[nodiscard]] double channel_score(const DetectionFeatures& f,
                                   const Thresholds& t);

/// Per-channel input to a FusionPolicy evaluation.
struct ChannelScore {
  std::string name;
  double score = 0.0;  ///< channel_score(): normalized OCC margin
  bool alarm = false;  ///< latched per-channel discriminator verdict
  std::ptrdiff_t first_alarm_window = -1;
  ChannelHealth health = ChannelHealth::kHealthy;
};

/// One channel's share of a fused verdict.
struct ChannelContribution {
  std::string name;
  double score = 0.0;   ///< the channel's anomaly score as evaluated
  double weight = 0.0;  ///< normalized weight (0 for offline channels)
  bool alarm = false;
  ChannelHealth health = ChannelHealth::kHealthy;
};

/// A policy's fused verdict over one score vector.
struct FusedVerdict {
  bool intrusion = false;
  /// Fused anomaly score.  VotingPolicy reports the alarming fraction of
  /// online channels; WeightedPolicy its soft vote — weighted alarm mass
  /// plus the gained margin term — and > threshold declares an intrusion.
  double score = 0.0;
  std::size_t alarming_channels = 0;  ///< alarming among online channels
  std::size_t online_channels = 0;    ///< channels not classified offline
  /// Earliest first_alarm_window among the alarming online channels; -1
  /// when none of them alarmed.
  std::ptrdiff_t first_alarm_window = -1;
  std::vector<ChannelContribution> channels;
};

/// Serialization tag of a concrete policy (stable wire/checkpoint values).
enum class FusionPolicyKind : std::uint8_t {
  kVoting = 0,
  kWeighted = 1,
};

/// Maps a vector of per-channel anomaly scores (+ alarm bits and health)
/// to one fused verdict.  Implementations are deterministic pure
/// functions of their configuration and fitted state; after fit() they
/// are immutable and safe to share across threads/sessions via
/// shared_ptr<const FusionPolicy>.
class FusionPolicy {
 public:
  virtual ~FusionPolicy() = default;

  [[nodiscard]] virtual FusionPolicyKind kind() const = 0;
  /// Human-readable identity for telemetry ("any", "weighted", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual FusedVerdict evaluate(
      std::span<const ChannelScore> channels) const = 0;

  /// Learns from benign calibration: `benign_scores[run][k]` is channel
  /// `channel_names[k]`'s anomaly score on calibration run `run`.  The
  /// default is a no-op (voting needs no calibration).
  virtual void fit(std::span<const std::string> channel_names,
                   const std::vector<std::vector<double>>& benign_scores);
};

/// The historical boolean vote, reproduced exactly: counts latched alarm
/// bits over online channels and applies fused_intrusion().  Scores are
/// reported for telemetry but never influence the verdict.
class VotingPolicy final : public FusionPolicy {
 public:
  explicit VotingPolicy(FusionRule rule) : rule_(rule) {}

  [[nodiscard]] FusionRule rule() const { return rule_; }

  [[nodiscard]] FusionPolicyKind kind() const override {
    return FusionPolicyKind::kVoting;
  }
  [[nodiscard]] std::string name() const override {
    return fusion_rule_name(rule_);
  }
  [[nodiscard]] FusedVerdict evaluate(
      std::span<const ChannelScore> channels) const override;

 private:
  FusionRule rule_;
};

/// Gain on the continuous margin-refinement term of the weighted fused
/// score (the alarm-vote mass term has unit range).  Trades fault
/// robustness (vote-dominant, low gain) against margin sensitivity
/// (mean-dominant, high gain); 2.0 keeps weighted fusion at or above
/// majority voting's TPR at matched FPR across the bench_ext_fusion
/// fault sweep, where either extreme loses a regime.
inline constexpr double kWeightedRefineGain = 2.0;

/// WeightedPolicy knobs.
struct WeightedPolicyConfig {
  /// Fused score above which the verdict is an intrusion.  With no
  /// alarming channel the score provably stays at or below
  /// kWeightedRefineGain / score_cap (benign scores cannot exceed 1), so
  /// the default can only be crossed once real alarm mass exists.
  double threshold = 0.75;
  /// Multiplier applied to a degraded channel's weight before online
  /// renormalization.
  double degraded_weight = 0.5;
  /// Per-channel scores are clamped to this inside the refinement term,
  /// so one saturated channel cannot single-handedly swamp it.
  double score_cap = 8.0;
  /// Additive floor on the benign-score spread in the reliability weight
  /// denominator (guards division by a zero spread).
  double spread_floor = 0.02;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

/// Score fusion with learned per-channel reliability weights.
///
/// fit() learns, from C benign calibration runs:
///   mu_k, sd_k   — mean / spread of channel k's benign scores
///   raw_k        = max(1 - mu_k, 0.05) / (sd_k + spread_floor)
///                  (benign headroom over spread: a channel whose benign
///                  scores sit low and tight is reliable)
///   shrink_k     = 1 + sum_{j != k} max(0, pearson(k, j))
///                  (channels whose benign scores co-move are redundant —
///                  Fig. 10's correlation structure — and must not
///                  double-count)
///   w_k          = raw_k / shrink_k, normalized to sum 1.
///
/// evaluate() excludes offline channels, multiplies degraded channels'
/// weights by degraded_weight and renormalizes over the survivors.  The
/// fused score is a reliability-weighted *soft vote*:
///
///   fused = sum_k w_k [channel k alarms]                 (vote mass)
///         + kWeightedRefineGain * mean_w(min(score, cap)) / cap
///
/// The vote-mass term is the robust backbone: under sensor faults one
/// saturated channel score cannot by itself carry the fusion past the
/// alarm structure, which is exactly what a bare weighted mean gets
/// wrong.  The margin term grades evidence within and between vote
/// levels by how far channels sit from their OCC thresholds, which is
/// where the learned weights buy extra TPR over boolean majority
/// voting.  Untrained policies fuse with uniform weights.
class WeightedPolicy final : public FusionPolicy {
 public:
  explicit WeightedPolicy(WeightedPolicyConfig config = {});
  /// Rebuilds a fitted policy from serialized state (codec restore).
  /// `weights` must be the normalized (name, weight) pairs of a previous
  /// fit(), in the order fit() produced them.
  WeightedPolicy(WeightedPolicyConfig config,
                 std::vector<std::pair<std::string, double>> weights);

  [[nodiscard]] FusionPolicyKind kind() const override {
    return FusionPolicyKind::kWeighted;
  }
  [[nodiscard]] std::string name() const override { return "weighted"; }
  [[nodiscard]] FusedVerdict evaluate(
      std::span<const ChannelScore> channels) const override;
  /// Requires >= 2 calibration runs (a spread needs two points) and one
  /// score column per channel name; throws std::invalid_argument.
  void fit(std::span<const std::string> channel_names,
           const std::vector<std::vector<double>>& benign_scores) override;

  [[nodiscard]] bool trained() const { return trained_; }
  /// Normalized learned weights (empty until trained).
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& weights()
      const {
    return weights_;
  }
  [[nodiscard]] const WeightedPolicyConfig& config() const { return config_; }

 private:
  WeightedPolicyConfig config_;
  std::vector<std::pair<std::string, double>> weights_;
  bool trained_ = false;
};

/// Verdict of the fused IDS, with the per-channel breakdown.
///
/// Graceful degradation: each channel's validity mask (Analysis::valid)
/// is replayed through the health state machine (core/health.hpp).
/// Channels that end up offline are excluded from the fusion entirely —
/// they neither alarm nor count toward the majority/all denominator (nor
/// the weighted mean) — so a dead sensor cannot veto (kAll) or dilute
/// (kMajority) the surviving channels.  `alarming_channels` counts alarms
/// among *online* channels; the raw per-channel verdicts (including
/// offline ones) stay in `per_channel` for inspection.
struct FusionDetection {
  bool intrusion = false;
  double fused_score = 0.0;           ///< FusedVerdict::score
  std::size_t alarming_channels = 0;  ///< alarming among online channels
  std::size_t online_channels = 0;    ///< channels not classified offline
  std::vector<std::pair<std::string, Detection>> per_channel;
  std::vector<std::pair<std::string, ChannelHealth>> health;
  std::vector<ChannelContribution> contributions;
};

/// An NSYNC IDS per named channel, fused by a FusionPolicy.
///
/// Usage mirrors NsyncIds but with per-channel signal maps (key = channel
/// name, e.g. "ACC"):
///   FusionIds ids(rule);             // or FusionIds(policy)
///   ids.add_channel("ACC", acc_reference, acc_config);
///   ids.add_channel("AUD", aud_reference, aud_config);
///   ids.fit(training_runs);          // vector of per-channel maps
///   auto d = ids.detect(observed);   // per-channel map
class FusionIds {
 public:
  using SignalMap = std::map<std::string, nsync::signal::Signal>;

  /// Voting fusion by `rule` (the historical constructor).
  explicit FusionIds(FusionRule rule);
  /// Fusion by an explicit policy.  fit() trains the policy (weighted
  /// policies learn their reliability weights from the calibration runs);
  /// throws std::invalid_argument on a null policy.
  explicit FusionIds(std::shared_ptr<FusionPolicy> policy);

  /// Registers a channel with its reference signal and NSYNC config.
  /// Throws if the name is already registered.
  void add_channel(const std::string& name, nsync::signal::Signal reference,
                   const NsyncConfig& config);

  [[nodiscard]] std::size_t channels() const { return members_.size(); }

  /// Trains every member on its channel's training signals, then fits the
  /// policy on the per-channel benign anomaly scores of the same runs.
  /// Each map must contain every registered channel; throws
  /// FusionChannelError otherwise.
  void fit(std::span<const SignalMap> benign_runs);

  /// Detects on one observed process (per-channel signals).
  [[nodiscard]] FusionDetection detect(const SignalMap& observed) const;

  /// Detects from precomputed per-channel analyses (key = channel name).
  /// The map must contain exactly the registered channels: a missing
  /// channel or an unknown extra key throws FusionChannelError naming the
  /// offender.  Lets callers run analyze() themselves — to inspect
  /// validity masks or reuse analyses — and still get the health-aware
  /// fused verdict.
  [[nodiscard]] FusionDetection detect_analyses(
      const std::map<std::string, Analysis>& analyses) const;

  /// The voting rule when the policy is a VotingPolicy; kAny otherwise
  /// (kept for introspection by rule-era callers).
  [[nodiscard]] FusionRule rule() const { return rule_; }
  [[nodiscard]] const FusionPolicy& policy() const { return *policy_; }
  /// Access to a member IDS (for thresholds introspection).
  [[nodiscard]] const NsyncIds& member(const std::string& name) const;

 private:
  FusionRule rule_ = FusionRule::kAny;
  std::shared_ptr<FusionPolicy> policy_;
  std::map<std::string, NsyncIds> members_;
};

}  // namespace nsync::core

#endif  // NSYNC_CORE_FUSION_HPP
