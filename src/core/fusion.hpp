// Multi-channel fusion IDS — an extension beyond the paper.
//
// The paper evaluates NSYNC one side channel at a time (Tables VIII/IX) and
// notes that h_disp is "a property of the printing process, not the side
// channels" (Section VIII-B).  That observation invites fusion: run one
// NSYNC instance per side channel against per-channel references of the
// same benign process and combine the verdicts.  kAny maximizes TPR (an
// attack only needs to leak through one channel), kMajority suppresses
// per-channel false positives, kAll minimizes FPR.
#ifndef NSYNC_CORE_FUSION_HPP
#define NSYNC_CORE_FUSION_HPP

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/nsync.hpp"

namespace nsync::core {

enum class FusionRule {
  kAny,       ///< alarm if any channel alarms (union)
  kMajority,  ///< alarm if more than half of the channels alarm
  kAll,       ///< alarm only if every channel alarms (intersection)
};

[[nodiscard]] std::string fusion_rule_name(FusionRule r);

/// The voting rule itself: fused verdict given the number of alarming and
/// online channels.  Votes are taken over online channels only; with every
/// sensor dark there is no evidence either way, so the verdict stays benign
/// (callers can see online == 0 and escalate operationally).  Shared by the
/// batch FusionIds and the streaming MonitorEngine.
[[nodiscard]] bool fused_intrusion(FusionRule rule, std::size_t alarming,
                                   std::size_t online);

/// Verdict of the fused IDS, with the per-channel breakdown.
///
/// Graceful degradation: each channel's validity mask (Analysis::valid)
/// is replayed through the health state machine (core/health.hpp).
/// Channels that end up offline are excluded from the vote entirely —
/// they neither alarm nor count toward the majority/all denominator — so
/// a dead sensor cannot veto (kAll) or dilute (kMajority) the surviving
/// channels.  `alarming_channels` counts alarms among *online* channels;
/// the raw per-channel verdicts (including offline ones) stay in
/// `per_channel` for inspection.
struct FusionDetection {
  bool intrusion = false;
  std::size_t alarming_channels = 0;  ///< alarming among online channels
  std::size_t online_channels = 0;    ///< channels not classified offline
  std::vector<std::pair<std::string, Detection>> per_channel;
  std::vector<std::pair<std::string, ChannelHealth>> health;
};

/// An NSYNC IDS per named channel, fused by `rule`.
///
/// Usage mirrors NsyncIds but with per-channel signal maps (key = channel
/// name, e.g. "ACC"):
///   FusionIds ids(rule);
///   ids.add_channel("ACC", acc_reference, acc_config);
///   ids.add_channel("AUD", aud_reference, aud_config);
///   ids.fit(training_runs);          // vector of per-channel maps
///   auto d = ids.detect(observed);   // per-channel map
class FusionIds {
 public:
  using SignalMap = std::map<std::string, nsync::signal::Signal>;

  explicit FusionIds(FusionRule rule) : rule_(rule) {}

  /// Registers a channel with its reference signal and NSYNC config.
  /// Throws if the name is already registered.
  void add_channel(const std::string& name, nsync::signal::Signal reference,
                   const NsyncConfig& config);

  [[nodiscard]] std::size_t channels() const { return members_.size(); }

  /// Trains every member on its channel's training signals.  Each map must
  /// contain every registered channel; throws otherwise.
  void fit(std::span<const SignalMap> benign_runs);

  /// Detects on one observed process (per-channel signals).
  [[nodiscard]] FusionDetection detect(const SignalMap& observed) const;

  /// Detects from precomputed per-channel analyses (key = channel name;
  /// must contain every registered channel).  Lets callers run analyze()
  /// themselves — to inspect validity masks or reuse analyses — and still
  /// get the health-aware fused vote.
  [[nodiscard]] FusionDetection detect_analyses(
      const std::map<std::string, Analysis>& analyses) const;

  [[nodiscard]] FusionRule rule() const { return rule_; }
  /// Access to a member IDS (for thresholds introspection).
  [[nodiscard]] const NsyncIds& member(const std::string& name) const;

 private:
  FusionRule rule_;
  std::map<std::string, NsyncIds> members_;
};

}  // namespace nsync::core

#endif  // NSYNC_CORE_FUSION_HPP
