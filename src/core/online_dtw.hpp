// On-line DTW — an extension implementing the alternative the paper points
// at (Section VI-A: "there is an ongoing effort to create a version of DTW
// that supports real-time analysis", citing Oregi et al.).
//
// This is a banded streaming variant in the spirit of Dixon's OLTW: the
// reference b is known in full; observed frames arrive one at a time.  For
// each new frame i we evaluate one DP row restricted to a band of width
// 2w+1 centered on the previous row's best alignment, so cost and memory
// are O(w * C) per frame — constant in the signal length, like DWM.
//
// Compared with DWM it is point-based (finer-grained h_disp) but inherits
// DTW's weaknesses the paper criticizes: a greedy band can lock onto a
// locally-good warp and never recover, and per-point distances are noisy
// for raw side-channel signals.  bench_ext_online_dtw quantifies both.
#ifndef NSYNC_CORE_ONLINE_DTW_HPP
#define NSYNC_CORE_ONLINE_DTW_HPP

#include <cstddef>
#include <vector>

#include "core/distance.hpp"
#include "signal/signal.hpp"

namespace nsync::core {

class OnlineDtw {
 public:
  /// `band_halfwidth` is w above; the evaluated band per row spans
  /// [center - w, center + w] in reference indexes.
  OnlineDtw(nsync::signal::Signal reference, std::size_t band_halfwidth,
            DistanceMetric metric = DistanceMetric::kEuclidean);

  /// Consumes observed frames; processes each one immediately.
  void push(const nsync::signal::SignalView& frames);

  /// Per observed frame: the aligned reference index minus the frame index
  /// (same convention as DWM's h_disp, in samples).
  [[nodiscard]] const std::vector<double>& h_disp() const { return h_disp_; }

  /// Per observed frame: the point distance at the chosen alignment.
  [[nodiscard]] const std::vector<double>& v_dist() const { return v_dist_; }

  /// Number of observed frames processed.
  [[nodiscard]] std::size_t frames() const { return h_disp_.size(); }

  /// True once the alignment has reached the end of the reference.
  [[nodiscard]] bool reference_exhausted() const {
    return reference_exhausted_;
  }

 private:
  void process_frame(std::span<const double> frame);

  nsync::signal::Signal reference_;
  std::size_t w_;
  DistanceMetric metric_;
  // DP state: accumulated costs over the previous row's band.
  std::vector<double> prev_costs_;
  std::ptrdiff_t prev_band_start_ = 0;
  double offset_ = 0.0;  // inertial estimate of the band-center displacement
  bool first_row_ = true;
  bool reference_exhausted_ = false;
  std::vector<double> h_disp_;
  std::vector<double> v_dist_;
};

}  // namespace nsync::core

#endif  // NSYNC_CORE_ONLINE_DTW_HPP
