// The NSYNC IDS (Fig. 7): dynamic synchronizer -> comparator ->
// discriminator, with OCC threshold learning.  Both synchronizers are
// supported: DWM (Table VIII) and DTW/FastDTW (Table IX).
#ifndef NSYNC_CORE_NSYNC_HPP
#define NSYNC_CORE_NSYNC_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/comparator.hpp"
#include "core/detection_core.hpp"
#include "core/discriminator.hpp"
#include "core/distance.hpp"
#include "core/dtw.hpp"
#include "core/dwm.hpp"
#include "core/health.hpp"
#include "signal/signal.hpp"

namespace nsync::core {

enum class SyncMethod {
  kDwm,  ///< Dynamic Window Matching (the paper's contribution)
  kDtw,  ///< FastDTW (the prior art)
};

[[nodiscard]] std::string sync_method_name(SyncMethod m);

struct NsyncConfig {
  SyncMethod sync = SyncMethod::kDwm;
  DwmParams dwm;                  ///< used when sync == kDwm
  std::size_t dtw_radius = 1;     ///< used when sync == kDtw ("the smallest
                                  ///< radius for the fastest speed")
  DistanceMetric metric = DistanceMetric::kCorrelation;
  std::size_t filter_window = 3;  ///< spike suppression (Eq. 21-22)
  double r = 0.3;                 ///< OCC margin (Section VIII-E)
  HealthPolicy health;            ///< channel-health state machine knobs
};

/// Synchronizer + comparator outputs for one observed signal.
///
/// `valid[i] == 0` marks window i as degenerate (sensor fault: flat or
/// non-finite data in either matched window); its h_disp/v_dist hold the
/// last valid value and contribute no detection evidence.  Empty for the
/// DTW path (no fault masking) — treat empty as all-valid.
struct Analysis {
  std::vector<double> h_disp;
  std::vector<double> v_dist;
  std::vector<std::uint8_t> valid;
  DetectionFeatures features;
};

/// A complete NSYNC intrusion detection system bound to one reference
/// signal.  Typical use:
///   NsyncIds ids(reference, config);
///   ids.fit(benign_training_signals);
///   Detection d = ids.detect(observed);
///
/// Thread safety: after construction (and, for detect, after fit) the
/// const methods — analyze(), detect(), thresholds(), config(),
/// reference() — touch no mutable state (no caches, no lazy init) and
/// may be called concurrently from any number of threads on one
/// instance; the eval experiment runners do exactly that.  fit(),
/// fit_from_analyses() and set_thresholds() are writers and must not
/// overlap with readers.
class NsyncIds {
 public:
  NsyncIds(nsync::signal::Signal reference, NsyncConfig config);

  /// Runs the synchronizer and the comparator on one observed signal.
  [[nodiscard]] Analysis analyze(const nsync::signal::SignalView& observed) const;

  /// Learns the OCC thresholds from benign observations (Section VII-C).
  /// Throws when `benign` is empty.
  void fit(std::span<const nsync::signal::Signal> benign);

  /// Learns thresholds from precomputed analyses (lets callers reuse
  /// analyses across `r` sweeps).
  void fit_from_analyses(std::span<const Analysis> analyses);

  /// Manually installs thresholds.
  void set_thresholds(const Thresholds& t) {
    thresholds_ = t;
    trained_ = true;
  }

  /// Analyzes and discriminates.  Throws std::logic_error before fit().
  [[nodiscard]] Detection detect(const nsync::signal::SignalView& observed) const;

  /// Discriminates a precomputed analysis.
  [[nodiscard]] Detection detect(const Analysis& analysis) const;

  [[nodiscard]] const Thresholds& thresholds() const;
  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] const NsyncConfig& config() const { return config_; }
  [[nodiscard]] const nsync::signal::Signal& reference() const {
    return reference_;
  }

 private:
  nsync::signal::Signal reference_;
  NsyncConfig config_;
  Thresholds thresholds_;
  bool trained_ = false;
};

/// Real-time monitor: a streaming NSYNC/DWM instance that consumes observed
/// frames as the print progresses and raises the alarm at the first window
/// whose features cross the thresholds.  DWM's causality is what makes this
/// possible (DTW "does not natively support real-time operations").
///
/// This is a thin composition: DwmSynchronizer turns frames into windows,
/// DetectionCore scores/masks/latches each window, ChannelHealthMonitor
/// classifies the validity stream.  All detection logic lives in the core.
class RealtimeMonitor {
 public:
  /// `config.sync` must be kDwm; throws std::invalid_argument otherwise.
  RealtimeMonitor(nsync::signal::Signal reference, NsyncConfig config,
                  Thresholds thresholds);

  /// Feeds observed frames; processes every completed window and updates
  /// the detection state.  Returns the number of windows processed by this
  /// call.  Once an intrusion has been flagged the state latches.
  std::size_t push(const nsync::signal::SignalView& frames);

  /// Pre-allocates synchronizer and core storage for `n_windows` windows so
  /// a steady-state window step performs no heap allocation.
  void reserve_windows(std::size_t n_windows);

  [[nodiscard]] const Detection& detection() const {
    return core_.detection();
  }
  [[nodiscard]] bool intrusion() const { return core_.detection().intrusion; }
  [[nodiscard]] std::size_t windows() const { return sync_.windows(); }
  /// Features accumulated so far (c_disp / filtered distances per window).
  [[nodiscard]] const DetectionFeatures& features() const {
    return core_.features();
  }

  /// Per-window validity mask (1 = scored, 0 = degenerate window whose
  /// features were carried forward from the last valid window).
  [[nodiscard]] const std::vector<std::uint8_t>& valid() const {
    return core_.valid();
  }
  /// Current channel-health classification driven by the validity stream
  /// (healthy -> degraded -> offline with recovery hysteresis; see
  /// core/health.hpp).  The fusion layer uses this to drop offline
  /// channels from the vote.
  [[nodiscard]] ChannelHealth health() const { return health_.state(); }
  [[nodiscard]] const ChannelHealthMonitor& health_monitor() const {
    return health_;
  }

  /// The configuration this monitor was constructed with (checkpointing
  /// needs it to rebuild an identical monitor before restore_state).
  [[nodiscard]] const NsyncConfig& config() const { return config_; }
  /// The armed OCC thresholds.
  [[nodiscard]] const Thresholds& thresholds() const {
    return core_.thresholds();
  }
  /// The reference signal this monitor synchronizes against.
  [[nodiscard]] const nsync::signal::Signal& reference() const {
    return sync_.reference();
  }

  /// Running maxima of the detection features over *benign-looking*
  /// windows only: a window contributes iff it was valid, the channel was
  /// healthy when it completed, and no intrusion was latched.  This is the
  /// raw material the baseline registry folds into per-device OCC
  /// re-learning at end of print — windows observed during an alarm or on
  /// a degraded/offline sensor never enter the baseline (anti-poisoning).
  [[nodiscard]] const FeatureMaxima& benign_feature_maxima() const {
    return benign_max_;
  }
  /// Number of windows that contributed to benign_feature_maxima().
  [[nodiscard]] std::uint64_t benign_windows() const {
    return benign_windows_;
  }

  /// Serializes the full streaming state — synchronizer, detection core,
  /// health machine — so a monitor restored into the same configuration
  /// continues the stream bitwise identically to one that never stopped.
  void save_state(nsync::signal::ByteWriter& w) const;
  /// Restores state written by save_state.  Throws CheckpointError
  /// (kMismatch/kCorrupt); on throw this monitor is unchanged.
  void restore_state(nsync::signal::ByteReader& r);

 private:
  DwmSynchronizer sync_;
  NsyncConfig config_;
  DetectionCore core_;
  ChannelHealthMonitor health_;
  FeatureMaxima benign_max_;
  std::uint64_t benign_windows_ = 0;
};

}  // namespace nsync::core

#endif  // NSYNC_CORE_NSYNC_HPP
