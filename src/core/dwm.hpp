// Dynamic Window Matching (Section VI-B) — the paper's core contribution.
//
// DWM slides a pair of windows across the observed signal `a` and the
// reference signal `b`.  For each window index i it runs biased TDE (TDEB)
// to locate a's window inside an extended window of b centered at the
// current low-frequency displacement estimate, producing the horizontal
// displacement array h_disp.  An inertial tracker h_disp_low (Eq. 12)
// prevents runaway, and the Gaussian bias stabilizes periodic/noisy
// windows.
//
// Unlike DTW, DWM is causal: it only ever looks at samples of `a` up to the
// current window, so it runs in real time while the print progresses
// (the DwmSynchronizer::push streaming interface).
#ifndef NSYNC_CORE_DWM_HPP
#define NSYNC_CORE_DWM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/tde.hpp"
#include "signal/ring_buffer.hpp"
#include "signal/signal.hpp"

namespace nsync::signal {
class ByteWriter;
class ByteReader;
}  // namespace nsync::signal

namespace nsync::core {

/// DWM parameters (Section VI-C, Table IV).  All counts are in samples of
/// the signal being synchronized (raw samples or spectrogram columns).
struct DwmParams {
  std::size_t n_win = 0;    ///< window width
  std::size_t n_hop = 0;    ///< hop between windows (default n_win / 2)
  std::size_t n_ext = 0;    ///< extended-window half width
  double n_sigma = 0.0;     ///< TDEB Gaussian std (samples)
  double eta = 0.1;         ///< inertial gain of the low-frequency tracker
  TdeOptions tde;

  /// Builds parameters from the time-domain values of Table IV and a
  /// sampling rate.  Enforces the paper's constraints (t_hop <= t_win,
  /// positive values) and rounds to whole samples.
  [[nodiscard]] static DwmParams from_seconds(double t_win, double t_hop,
                                              double t_ext, double t_sigma,
                                              double eta, double sample_rate);

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

/// Output of a DWM run; all arrays share length = number of windows
/// processed.
///
/// `valid[i]` is 0 when window i was degenerate — the observed window (or
/// the reference search window) was flat or contained non-finite samples,
/// so TDEB could not produce a meaningful displacement.  For such windows
/// the synchronizer holds the previous displacement estimate instead of
/// scoring garbage: h_disp[i] = h_disp_low[i] = h_disp_low[i-1].
struct DwmResult {
  std::vector<double> h_disp;      ///< horizontal displacement per window
  std::vector<double> h_disp_low;  ///< low-frequency (inertial) component
  std::vector<double> h_dist;      ///< |h_disp| (horizontal distance)
  std::vector<std::uint8_t> valid; ///< 1 = window scored, 0 = degenerate
};

/// Streaming DWM.  Owns a copy of the reference and consumes observed
/// frames incrementally; results for completed windows are available
/// immediately after each push.
///
/// The observed stream is held in a drop-front FrameRingBuffer: at the
/// start of every push, frames that no future (or in-flight) window can
/// read are discarded, so steady-state memory is O(n_win + n_hop + chunk)
/// regardless of how long the print runs.  Per-window TDEB evaluations
/// reuse a TdeWorkspace, making the whole window step allocation-free at
/// steady state.
class DwmSynchronizer {
 public:
  /// `reference` is b; throws on invalid params / channel mismatch checks
  /// happen at push time.
  DwmSynchronizer(nsync::signal::Signal reference, DwmParams params);

  /// Appends observed frames (channel count must match the reference) and
  /// processes every window that became complete.  Returns the number of
  /// windows newly processed.  Frames of completed windows from
  /// *previous* pushes are dropped from memory on entry; frames of
  /// windows completed by this push stay readable (via observed()) until
  /// the next push.
  std::size_t push(const nsync::signal::SignalView& frames);

  /// Pre-allocates the result arrays for `n_windows` windows and the
  /// observed buffer for the corresponding retained span, so a
  /// steady-state window step performs no heap allocation at all.
  void reserve_windows(std::size_t n_windows);

  /// True when the reference has been exhausted: the next window of `a`
  /// would need reference samples beyond the end of b.  Windows are no
  /// longer processed once exhausted.
  [[nodiscard]] bool reference_exhausted() const {
    return reference_exhausted_;
  }

  /// Number of windows processed so far.
  [[nodiscard]] std::size_t windows() const { return result_.h_disp.size(); }

  [[nodiscard]] const DwmResult& result() const { return result_; }
  [[nodiscard]] const DwmParams& params() const { return params_; }
  [[nodiscard]] const nsync::signal::Signal& reference() const {
    return reference_;
  }
  /// The retained suffix of the observed stream.  Frames are addressed by
  /// their logical stream index (observed().view(n1, n2)); indices below
  /// observed().start() have been dropped.
  [[nodiscard]] const nsync::signal::FrameRingBuffer& observed() const {
    return observed_;
  }

  /// Serializes the streaming state — retained observed frames, per-window
  /// result arrays, the inertial tracker — plus fingerprints of the
  /// reference and parameters (checkpointing).  The reference itself is
  /// not stored; the restoring synchronizer must be constructed with the
  /// same reference, which the fingerprint enforces.
  void save_state(nsync::signal::ByteWriter& w) const;
  /// Restores state written by save_state.  Throws CheckpointError:
  /// kMismatch when the fingerprints disagree with this synchronizer's
  /// reference/params, kCorrupt on internally inconsistent state.  On
  /// throw, this synchronizer is unchanged.
  void restore_state(nsync::signal::ByteReader& r);

  /// One-shot convenience: runs DWM over the whole of `a` against `b`.
  [[nodiscard]] static DwmResult align(const nsync::signal::SignalView& a,
                                       const nsync::signal::SignalView& b,
                                       const DwmParams& params);

 private:
  bool process_next_window();

  nsync::signal::Signal reference_;          // b
  nsync::signal::FrameRingBuffer observed_;  // sliding suffix of a
  DwmParams params_;
  DwmResult result_;
  TdeWorkspace tde_ws_;           // reused by every window's TDEB call
  double h_disp_low_prev_ = 0.0;  // h_disp_low[i-1], seeded with 0
  bool reference_exhausted_ = false;
};

}  // namespace nsync::core

#endif  // NSYNC_CORE_DWM_HPP
