#include "core/tde.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/simd/simd.hpp"
#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::SignalView;

namespace simd = nsync::dsp::simd;

namespace {

void check_shapes(const SignalView& x, const SignalView& y) {
  if (x.channels() != y.channels()) {
    throw std::invalid_argument("similarity_scores: channel mismatch");
  }
  if (y.frames() < 2 || x.frames() < y.frames()) {
    throw std::invalid_argument(
        "similarity_scores: need x.frames() >= y.frames() >= 2");
  }
}

/// Channel c of `s` as a contiguous span: single-channel signals are
/// already contiguous and need no copy; otherwise a strided copy lands in
/// `buf` (resized, no allocation once at capacity).
std::span<const double> channel_span(const SignalView& s, std::size_t c,
                                     std::vector<double>& buf) {
  if (s.channels() == 1) {
    return {s.data(), s.frames()};
  }
  buf.resize(s.frames());
  s.channel_into(c, buf);
  return buf;
}

// All channels of the FFT sliding correlation through one batched plan.
//
// This mirrors sliding_pearson_fft_into channel by channel — same
// centering, same padded correlation, same prefix-sum normalization,
// same degenerate-template early-out — but runs every transform as one
// lane-interleaved BatchedRfftPlan pass and every pre/post pass as a
// row-wise dispatched kernel.  The per-channel operation sequence is
// identical to the sequential scalar path (the row kernels accumulate
// each channel's reductions sequentially across frames), so the result
// is bitwise equal to looping sliding_pearson_fft_into under the scalar
// backend — which is what the per-channel loop used to produce.
void similarity_scores_batched(const SignalView& x, const SignalView& y,
                               TdeWorkspace& ws) {
  const auto& k = simd::ops();
  const std::size_t C = x.channels();
  const std::size_t nx = x.frames();
  const std::size_t ny = y.frames();
  const std::size_t n_out = nx - ny + 1;

  // Per-channel means (sequential per channel, like signal::mean on an
  // extracted channel under the scalar backend).
  ws.mu_x.resize(C);
  ws.mu_y.resize(C);
  k.channel_sums(x.data(), nx, C, ws.mu_x.data());
  k.channel_sums(y.data(), ny, C, ws.mu_y.data());
  for (auto& v : ws.mu_x) v /= static_cast<double>(nx);
  for (auto& v : ws.mu_y) v /= static_cast<double>(ny);

  const std::size_t m = nsync::dsp::next_power_of_two(nx + ny);
  const std::size_t bins = m / 2 + 1;
  if (!ws.batched.plan || ws.batched.plan->size() != m || ws.batched.plan->lanes() != C) {
    ws.batched.plan = std::make_unique<nsync::dsp::BatchedRfftPlan>(m, C);
  }

  // Zero-padded, centered x; zero-padded, centered, time-reversed y with
  // the per-channel template energy fused into the reversal pass.
  ws.x_pad.assign(m * C, 0.0);
  ws.y_pad.assign(m * C, 0.0);
  k.center_rows(x.data(), nx, C, ws.mu_x.data(), ws.x_pad.data());
  ws.y_energy.assign(C, 0.0);
  k.center_rows_reversed_energy(y.data(), ny, C, ws.mu_y.data(),
                                ws.y_pad.data(), ws.y_energy.data());

  // Windowed-variance prefix sums must read the centered x rows before
  // the inverse transform reuses x_pad as its output buffer.
  ws.ps.resize((nx + 1) * C);
  ws.ps2.resize((nx + 1) * C);
  k.prefix_sums_rows(ws.x_pad.data(), ws.ps.data(), ws.ps2.data(), nx, C);

  ws.spec_x_re.resize(bins * C);
  ws.spec_x_im.resize(bins * C);
  ws.spec_y_re.resize(bins * C);
  ws.spec_y_im.resize(bins * C);
  ws.batched.plan->forward_interleaved(ws.x_pad.data(), ws.spec_x_re.data(),
                                  ws.spec_x_im.data());
  ws.batched.plan->forward_interleaved(ws.y_pad.data(), ws.spec_y_re.data(),
                                  ws.spec_y_im.data());
  k.cmul_split_inplace(ws.spec_x_re.data(), ws.spec_x_im.data(),
                       ws.spec_y_re.data(), ws.spec_y_im.data(), bins * C);
  ws.batched.plan->inverse_interleaved(ws.spec_x_re.data(), ws.spec_x_im.data(),
                                  ws.x_pad.data());
  // Numerator for window n of channel c: ws.x_pad[(n + ny - 1) * C + c].

  ws.scores.assign(n_out, 0.0);
  ws.chan_scores.resize(n_out);
  for (std::size_t c = 0; c < C; ++c) {
    const double y_norm = std::sqrt(ws.y_energy[c]);
    if (!(y_norm > 0.0) || !std::isfinite(y_norm)) {
      // Degenerate template: the channel scores 0 everywhere, and the
      // zero array is still accumulated so the signed-zero arithmetic
      // matches the sequential path exactly.
      std::fill(ws.chan_scores.begin(), ws.chan_scores.end(), 0.0);
    } else {
      k.normalize_windows_strided(ws.ps.data() + c, ws.ps2.data() + c, C, ny,
                                  y_norm, ws.x_pad.data() + (ny - 1) * C + c,
                                  ws.chan_scores.data(), n_out);
    }
    k.add_arrays(ws.scores.data(), ws.chan_scores.data(), n_out);
  }
  k.scale(ws.scores.data(), 1.0 / static_cast<double>(C), n_out);
}

}  // namespace

std::span<const double> similarity_scores_into(const SignalView& x,
                                               const SignalView& y,
                                               const TdeOptions& opts,
                                               TdeWorkspace& ws) {
  check_shapes(x, y);
  if (opts.use_fft && x.channels() > 1) {
    similarity_scores_batched(x, y, ws);
    return ws.scores;
  }
  const std::size_t n_out = x.frames() - y.frames() + 1;
  ws.scores.assign(n_out, 0.0);
  ws.chan_scores.resize(n_out);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    const auto xc = channel_span(x, c, ws.x_chan);
    const auto yc = channel_span(y, c, ws.y_chan);
    if (opts.use_fft) {
      nsync::dsp::sliding_pearson_fft_into(xc, yc, ws.chan_scores, ws.pearson);
    } else {
      nsync::dsp::sliding_pearson_naive_into(xc, yc, ws.chan_scores);
    }
    for (std::size_t n = 0; n < n_out; ++n) ws.scores[n] += ws.chan_scores[n];
  }
  const double inv_c = 1.0 / static_cast<double>(x.channels());
  for (auto& v : ws.scores) v *= inv_c;
  return ws.scores;
}

std::vector<double> similarity_scores(const SignalView& x, const SignalView& y,
                                      const TdeOptions& opts) {
  thread_local TdeWorkspace ws;
  const auto scores = similarity_scores_into(x, y, opts, ws);
  return {scores.begin(), scores.end()};
}

std::size_t estimate_delay(const SignalView& x, const SignalView& y,
                           const TdeOptions& opts) {
  thread_local TdeWorkspace ws;
  return nsync::signal::argmax(similarity_scores_into(x, y, opts, ws));
}

std::vector<double> bias_scores(std::vector<double> scores, double center,
                                double sigma_samples) {
  if (sigma_samples <= 0.0) {
    throw std::invalid_argument("bias_scores: sigma must be positive");
  }
  for (std::size_t j = 0; j < scores.size(); ++j) {
    const double d = (static_cast<double>(j) - center) / sigma_samples;
    scores[j] *= std::exp(-0.5 * d * d);
  }
  return scores;
}

std::size_t estimate_delay_biased(const SignalView& x, const SignalView& y,
                                  double center, double sigma_samples,
                                  const TdeOptions& opts) {
  thread_local TdeWorkspace ws;
  return estimate_delay_biased(x, y, center, sigma_samples, opts, ws);
}

std::size_t estimate_delay_biased(const SignalView& x, const SignalView& y,
                                  double center, double sigma_samples,
                                  const TdeOptions& opts, TdeWorkspace& ws) {
  if (sigma_samples <= 0.0) {
    throw std::invalid_argument("bias_scores: sigma must be positive");
  }
  const auto scores = similarity_scores_into(x, y, opts, ws);
  // Fused epilogue: clamp + Gaussian bias + argmax through the
  // dispatched kernel.
  //
  // Multiplying a negative score by a small Gaussian weight would *raise*
  // it toward zero, perversely rewarding far-from-center anti-correlated
  // placements.  A negative correlation is never a candidate match, so
  // the kernel clamps to zero before applying the bias.  The per-element
  // arithmetic (max, then exp-weight multiply) matches the allocating
  // bias_scores path exactly, and the argmax keeps std::max_element's
  // first-occurrence semantics, so the result is bitwise identical.
  //
  // The exp() weights are the expensive part and depend only on
  // (center, sigma, n_out), so they are cached in the workspace and
  // reused verbatim while those stay unchanged (static callers; the DWM
  // moves `center` per window and recomputes, exactly as the old inline
  // loop did).
  const std::size_t n_out = scores.size();
  if (ws.bias_w.size() != n_out || ws.bias_center != center ||
      ws.bias_sigma != sigma_samples) {
    ws.bias_w.resize(n_out);
    for (std::size_t j = 0; j < n_out; ++j) {
      const double d = (static_cast<double>(j) - center) / sigma_samples;
      ws.bias_w[j] = std::exp(-0.5 * d * d);
    }
    ws.bias_center = center;
    ws.bias_sigma = sigma_samples;
  }
  return simd::ops().clamp_weight_argmax(scores.data(), ws.bias_w.data(),
                                         n_out);
}

}  // namespace nsync::core
