#include "core/tde.hpp"

#include <cmath>
#include <stdexcept>

#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::SignalView;

namespace {

void check_shapes(const SignalView& x, const SignalView& y) {
  if (x.channels() != y.channels()) {
    throw std::invalid_argument("similarity_scores: channel mismatch");
  }
  if (y.frames() < 2 || x.frames() < y.frames()) {
    throw std::invalid_argument(
        "similarity_scores: need x.frames() >= y.frames() >= 2");
  }
}

/// Channel c of `s` as a contiguous span: single-channel signals are
/// already contiguous and need no copy; otherwise a strided copy lands in
/// `buf` (resized, no allocation once at capacity).
std::span<const double> channel_span(const SignalView& s, std::size_t c,
                                     std::vector<double>& buf) {
  if (s.channels() == 1) {
    return {s.data(), s.frames()};
  }
  buf.resize(s.frames());
  s.channel_into(c, buf);
  return buf;
}

}  // namespace

std::span<const double> similarity_scores_into(const SignalView& x,
                                               const SignalView& y,
                                               const TdeOptions& opts,
                                               TdeWorkspace& ws) {
  check_shapes(x, y);
  const std::size_t n_out = x.frames() - y.frames() + 1;
  ws.scores.assign(n_out, 0.0);
  ws.chan_scores.resize(n_out);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    const auto xc = channel_span(x, c, ws.x_chan);
    const auto yc = channel_span(y, c, ws.y_chan);
    if (opts.use_fft) {
      nsync::dsp::sliding_pearson_fft_into(xc, yc, ws.chan_scores, ws.pearson);
    } else {
      nsync::dsp::sliding_pearson_naive_into(xc, yc, ws.chan_scores);
    }
    for (std::size_t n = 0; n < n_out; ++n) ws.scores[n] += ws.chan_scores[n];
  }
  const double inv_c = 1.0 / static_cast<double>(x.channels());
  for (auto& v : ws.scores) v *= inv_c;
  return ws.scores;
}

std::vector<double> similarity_scores(const SignalView& x, const SignalView& y,
                                      const TdeOptions& opts) {
  thread_local TdeWorkspace ws;
  const auto scores = similarity_scores_into(x, y, opts, ws);
  return {scores.begin(), scores.end()};
}

std::size_t estimate_delay(const SignalView& x, const SignalView& y,
                           const TdeOptions& opts) {
  thread_local TdeWorkspace ws;
  return nsync::signal::argmax(similarity_scores_into(x, y, opts, ws));
}

std::vector<double> bias_scores(std::vector<double> scores, double center,
                                double sigma_samples) {
  if (sigma_samples <= 0.0) {
    throw std::invalid_argument("bias_scores: sigma must be positive");
  }
  for (std::size_t j = 0; j < scores.size(); ++j) {
    const double d = (static_cast<double>(j) - center) / sigma_samples;
    scores[j] *= std::exp(-0.5 * d * d);
  }
  return scores;
}

std::size_t estimate_delay_biased(const SignalView& x, const SignalView& y,
                                  double center, double sigma_samples,
                                  const TdeOptions& opts) {
  thread_local TdeWorkspace ws;
  return estimate_delay_biased(x, y, center, sigma_samples, opts, ws);
}

std::size_t estimate_delay_biased(const SignalView& x, const SignalView& y,
                                  double center, double sigma_samples,
                                  const TdeOptions& opts, TdeWorkspace& ws) {
  if (sigma_samples <= 0.0) {
    throw std::invalid_argument("bias_scores: sigma must be positive");
  }
  const auto scores = similarity_scores_into(x, y, opts, ws);
  // Fused epilogue: clamp + Gaussian bias + argmax in one pass.
  //
  // Multiplying a negative score by a small Gaussian weight would *raise*
  // it toward zero, perversely rewarding far-from-center anti-correlated
  // placements.  A negative correlation is never a candidate match, so
  // clamp to zero before applying the bias.  The per-element arithmetic
  // (max, then exp-weight multiply) matches the allocating
  // bias_scores path exactly, and the argmax keeps std::max_element's
  // first-occurrence semantics, so the result is bitwise identical.
  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t j = 0; j < scores.size(); ++j) {
    const double s = std::max(scores[j], 0.0);
    const double d = (static_cast<double>(j) - center) / sigma_samples;
    const double biased = s * std::exp(-0.5 * d * d);
    if (j == 0 || biased > best_score) {
      best = j;
      best_score = biased;
    }
  }
  return best;
}

}  // namespace nsync::core
