#include "core/tde.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/xcorr.hpp"
#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::SignalView;

std::vector<double> similarity_scores(const SignalView& x, const SignalView& y,
                                      const TdeOptions& opts) {
  if (x.channels() != y.channels()) {
    throw std::invalid_argument("similarity_scores: channel mismatch");
  }
  if (y.frames() < 2 || x.frames() < y.frames()) {
    throw std::invalid_argument(
        "similarity_scores: need x.frames() >= y.frames() >= 2");
  }
  const std::size_t n_out = x.frames() - y.frames() + 1;
  std::vector<double> acc(n_out, 0.0);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    const auto xc = x.channel(c);
    const auto yc = y.channel(c);
    const auto sc = opts.use_fft ? nsync::dsp::sliding_pearson_fft(xc, yc)
                                 : nsync::dsp::sliding_pearson_naive(xc, yc);
    for (std::size_t n = 0; n < n_out; ++n) acc[n] += sc[n];
  }
  const double inv_c = 1.0 / static_cast<double>(x.channels());
  for (auto& v : acc) v *= inv_c;
  return acc;
}

std::size_t estimate_delay(const SignalView& x, const SignalView& y,
                           const TdeOptions& opts) {
  return nsync::signal::argmax(similarity_scores(x, y, opts));
}

std::vector<double> bias_scores(std::vector<double> scores, double center,
                                double sigma_samples) {
  if (sigma_samples <= 0.0) {
    throw std::invalid_argument("bias_scores: sigma must be positive");
  }
  for (std::size_t j = 0; j < scores.size(); ++j) {
    const double d = (static_cast<double>(j) - center) / sigma_samples;
    scores[j] *= std::exp(-0.5 * d * d);
  }
  return scores;
}

std::size_t estimate_delay_biased(const SignalView& x, const SignalView& y,
                                  double center, double sigma_samples,
                                  const TdeOptions& opts) {
  auto scores = similarity_scores(x, y, opts);
  // Multiplying a negative score by a small Gaussian weight would *raise*
  // it toward zero, perversely rewarding far-from-center anti-correlated
  // placements.  A negative correlation is never a candidate match, so
  // clamp to zero before applying the bias.
  for (auto& s : scores) s = std::max(s, 0.0);
  scores = bias_scores(std::move(scores), center, sigma_samples);
  return nsync::signal::argmax(scores);
}

}  // namespace nsync::core
