// The NSYNC discriminator (Section VII-B) and its One-Class-Classification
// threshold learning (Section VII-C).
//
// Three sub-modules, each with a learned critical value; any one alarming
// declares an intrusion:
//   1. c_disp: Cumulative Absolute Difference of the Horizontal
//      Displacement (CADHD, Eq. 17) -- catches failed synchronization;
//   2. h_dist: filtered |h_disp| (Eq. 19/21) -- catches timing divergence;
//   3. v_dist: filtered vertical distance (Eq. 20/22) -- catches amplitude
//      divergence.
#ifndef NSYNC_CORE_DISCRIMINATOR_HPP
#define NSYNC_CORE_DISCRIMINATOR_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nsync::core {

/// Derived per-window (or per-point) detection features.
struct DetectionFeatures {
  std::vector<double> c_disp;    ///< CADHD (Eq. 17)
  std::vector<double> h_dist_f;  ///< min-filtered horizontal distance
  std::vector<double> v_dist_f;  ///< min-filtered vertical distance
};

/// Computes the three feature arrays from the synchronizer/comparator
/// outputs.  `filter_window` is the spike-suppression window (3 by
/// default, Section VII-B).  h_disp and v_dist may differ in length (DWM
/// produces one v_dist per h_disp; DTW one per point) — each feature uses
/// its own source length.
[[nodiscard]] DetectionFeatures compute_features(
    std::span<const double> h_disp, std::span<const double> v_dist,
    std::size_t filter_window = 3);

/// Learned critical values.
struct Thresholds {
  double c_c = 0.0;
  double h_c = 0.0;
  double v_c = 0.0;
};

/// Per-signal training maxima (Eq. 23-25).
struct FeatureMaxima {
  double c_max = 0.0;
  double h_max = 0.0;
  double v_max = 0.0;
};

/// Maxima of one training signal's features (0 when a feature is empty).
[[nodiscard]] FeatureMaxima feature_maxima(const DetectionFeatures& f);

/// Relative floor on the Eq. 28 spread: per feature the margin is
/// r * max(hi - lo, kMinRelativeSpread * hi).  Without it, identical
/// training maxima (a single benign print, or per-device calibration on
/// one profile) collapse the spread to zero and the critical threshold
/// sits exactly at the benign max — any benign window one ULP above
/// training fires.
inline constexpr double kMinRelativeSpread = 0.05;

/// OCC threshold learning (Eq. 26-28): critical = max_m + r (max_m -
/// min_m), with the spread floored at kMinRelativeSpread * max_m so
/// degenerate training sets keep a safety margin.  `r` trades FPR against
/// FNR.  Throws on empty input.
[[nodiscard]] Thresholds learn_thresholds(std::span<const FeatureMaxima> train,
                                          double r);

/// Outcome of running the discriminator over one signal.
struct Detection {
  bool intrusion = false;
  bool by_c_disp = false;  ///< sub-module 1 alarmed
  bool by_h_dist = false;  ///< sub-module 2 alarmed
  bool by_v_dist = false;  ///< sub-module 3 alarmed
  /// Index of the first window (feature entry) at which any sub-module
  /// alarmed — the alarm-latency metric; -1 when benign.
  std::ptrdiff_t first_alarm_window = -1;
};

/// Applies Eq. 18-20 to the features.
[[nodiscard]] Detection discriminate(const DetectionFeatures& f,
                                     const Thresholds& t);

}  // namespace nsync::core

#endif  // NSYNC_CORE_DISCRIMINATOR_HPP
