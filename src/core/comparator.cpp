#include "core/comparator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "signal/stats.hpp"

namespace nsync::core {

using nsync::signal::SignalView;

std::vector<double> vertical_distances_dwm(const SignalView& a,
                                           const SignalView& b,
                                           const std::vector<double>& h_disp,
                                           const DwmParams& params,
                                           DistanceMetric metric) {
  params.validate();
  std::vector<double> out;
  out.reserve(h_disp.size());
  for (std::size_t i = 0; i < h_disp.size(); ++i) {
    const std::size_t a_start = i * params.n_hop;
    const std::size_t a_end = a_start + params.n_win;
    if (a_end > a.frames()) break;
    const SignalView a_win = a.slice(a_start, a_end);

    auto b_start = static_cast<std::ptrdiff_t>(a_start) +
                   static_cast<std::ptrdiff_t>(std::llround(h_disp[i]));
    // Clamp the matched window fully inside the reference.
    b_start = std::clamp<std::ptrdiff_t>(
        b_start, 0,
        static_cast<std::ptrdiff_t>(b.frames()) -
            static_cast<std::ptrdiff_t>(params.n_win));
    if (b_start < 0) {
      throw std::invalid_argument(
          "vertical_distances_dwm: reference shorter than one window");
    }
    const SignalView b_win =
        b.slice(static_cast<std::size_t>(b_start),
                static_cast<std::size_t>(b_start) + params.n_win);
    out.push_back(window_distance(a_win, b_win, metric));
  }
  return out;
}

std::vector<double> vertical_distances_dtw(const SignalView& a,
                                           const SignalView& b,
                                           const WarpPath& path,
                                           DistanceMetric metric) {
  return v_dist_from_path(a, b, path, metric);
}

std::vector<double> vertical_distances_unsynced(const SignalView& a,
                                                const SignalView& b,
                                                DistanceMetric metric) {
  const std::size_t n = std::min(a.frames(), b.frames());
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = frame_distance(a, i, b, i, metric);
  }
  return out;
}

std::vector<double> vertical_distances_unsynced_windows(const SignalView& a,
                                                        const SignalView& b,
                                                        std::size_t n_win,
                                                        std::size_t n_hop,
                                                        DistanceMetric metric) {
  if (n_win < 2 || n_hop == 0) {
    throw std::invalid_argument(
        "vertical_distances_unsynced_windows: bad window/hop");
  }
  std::vector<double> out;
  for (std::size_t i = 0;; ++i) {
    const std::size_t start = i * n_hop;
    const std::size_t end = start + n_win;
    if (end > a.frames() || end > b.frames()) break;
    out.push_back(window_distance(a.slice(start, end), b.slice(start, end),
                                  metric));
  }
  return out;
}

}  // namespace nsync::core
