// Motion planner: converts a G-code program into an executable plan of
// motion segments with trapezoidal velocity profiles and junction-limited
// corner speeds (two-pass lookahead), plus non-motion items (dwells,
// heater commands, fan changes).
//
// G-code does not specify timing (Section II-A): the planner decides the
// acceleration profile, which is exactly why the same instruction can take
// a slightly different amount of time on a real machine.  Our executor
// reintroduces that randomness via TimeNoiseConfig.
#ifndef NSYNC_PRINTER_PLANNER_HPP
#define NSYNC_PRINTER_PLANNER_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "gcode/program.hpp"
#include "printer/machine.hpp"

namespace nsync::printer {

/// Trapezoidal profile for one straight move.
struct MotionSegment {
  std::array<double, 3> p0{};  ///< start position (mm)
  std::array<double, 3> p1{};  ///< end position (mm)
  double e0 = 0.0;             ///< start extruder position (mm filament)
  double e1 = 0.0;             ///< end extruder position
  double length = 0.0;         ///< XYZ path length (mm); 0 for E-only moves
  double v_entry = 0.0;        ///< mm/s
  double v_cruise = 0.0;       ///< mm/s
  double v_exit = 0.0;         ///< mm/s
  double accel = 0.0;          ///< mm/s^2
  double t_accel = 0.0;        ///< s
  double t_cruise = 0.0;       ///< s
  double t_decel = 0.0;        ///< s
  std::size_t layer = 0;       ///< layer index active during this move
  bool extruding = false;

  [[nodiscard]] double duration() const {
    return t_accel + t_cruise + t_decel;
  }
  /// Distance traveled along the path after `t` seconds into the segment.
  [[nodiscard]] double distance_at(double t) const;
  /// Scalar speed along the path at `t` seconds into the segment.
  [[nodiscard]] double speed_at(double t) const;
  /// Signed scalar acceleration along the path at `t`.
  [[nodiscard]] double accel_at(double t) const;
};

/// Non-motion plan entries.
enum class PlanItemType {
  kMove,            ///< see MotionSegment
  kDwell,           ///< fixed pause (G4)
  kSetHotendTemp,   ///< fire and forget (M104)
  kWaitHotendTemp,  ///< block until reached (M109)
  kSetBedTemp,      ///< M140
  kWaitBedTemp,     ///< M190
  kFan,             ///< M106/M107
  kLayerMarker,     ///< ;LAYER:n comment
};

struct PlanItem {
  PlanItemType type = PlanItemType::kMove;
  MotionSegment move;       ///< valid when type == kMove
  double value = 0.0;       ///< dwell seconds / target temp / fan 0..1
  std::size_t layer = 0;    ///< layer index for kLayerMarker
};

/// A fully planned program.
struct MotionPlan {
  std::vector<PlanItem> items;
  std::size_t layer_count = 0;
  /// Sum of nominal move/dwell durations (heater waits excluded; their
  /// length depends on the thermal state at execution time).
  [[nodiscard]] double nominal_motion_duration() const;
};

/// Plans `program` for machine `m`.  Throws std::invalid_argument when the
/// program commands motion beyond the machine's reach (delta kinematics).
[[nodiscard]] MotionPlan plan_program(const gcode::Program& program,
                                      const MachineConfig& m);

/// Builds a trapezoid for a straight move of `length` mm with the given
/// entry/exit speeds, speed limit and acceleration.  Exposed for testing.
/// Guarantees v_entry/v_exit are respected exactly when reachable, and
/// falls back to a triangular profile otherwise.
[[nodiscard]] MotionSegment make_trapezoid(double length, double v_entry,
                                           double v_exit, double v_limit,
                                           double accel);

}  // namespace nsync::printer

#endif  // NSYNC_PRINTER_PLANNER_HPP
