#include "printer/executor.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nsync::printer {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Instantaneous machine state while emitting samples.
struct EmitState {
  std::array<double, 3> pos{0.0, 0.0, 0.0};
  std::array<double, 3> vel{0.0, 0.0, 0.0};
  std::array<double, 3> acc{0.0, 0.0, 0.0};
  double flow = 0.0;
  double fan = 0.0;
  double hotend_temp = 25.0;
  double bed_temp = 25.0;
  double hotend_set = 0.0;
  double bed_set = 0.0;
  double layer = 0.0;
};

class TraceEmitter {
 public:
  TraceEmitter(const MachineConfig& m, const ExecutorConfig& cfg)
      : m_(m), cfg_(cfg), dt_(1.0 / cfg.sample_rate) {
    trace_.sample_rate = cfg.sample_rate;
    state_.hotend_temp = m.ambient_temp;
    state_.bed_temp = m.ambient_temp;
    prev_motor_ = motor_positions(m_, state_.pos[0], state_.pos[1],
                                  state_.pos[2]);
    have_prev_motor_ = false;
  }

  [[nodiscard]] double now() const {
    return static_cast<double>(trace_.samples()) * dt_;
  }

  EmitState& state() { return state_; }
  MotionTrace& trace() { return trace_; }

  /// Emits samples while `until` exceeds the sample clock.  `update` is
  /// called with the sample timestamp to refresh the motion part of the
  /// state; thermal integration always runs.
  template <typename UpdateFn>
  void emit_until(double until, UpdateFn&& update) {
    while (now() < until - 1e-12) {
      const double t = now();
      update(t);
      integrate_thermal();
      push_row();
    }
  }

  /// Emits idle (no-motion) samples until the given time.
  void emit_idle_until(double until) {
    emit_until(until, [this](double) {
      state_.vel = {0.0, 0.0, 0.0};
      state_.acc = {0.0, 0.0, 0.0};
      state_.flow = 0.0;
    });
  }

  /// Runs the heater-wait loop; returns when the target is reached or the
  /// cap expires.  `hotend` selects which heater is awaited.
  void wait_for_temp(bool hotend) {
    const double start = now();
    while (now() - start < cfg_.max_heat_wait) {
      const double target = hotend ? state_.hotend_set : state_.bed_set;
      const double temp = hotend ? state_.hotend_temp : state_.bed_temp;
      if (std::abs(temp - target) <= cfg_.temp_tolerance) return;
      state_.vel = {0.0, 0.0, 0.0};
      state_.acc = {0.0, 0.0, 0.0};
      state_.flow = 0.0;
      integrate_thermal();
      push_row();
    }
  }

 private:
  void integrate_thermal() {
    // Bang-bang control with +-0.5 C hysteresis, as simple printer
    // firmwares use.  The resulting heater cycling dominates the power
    // side channel with motion-uncorrelated structure — the reason PWR is
    // "weakly correlated with the state of the printer" (Section VIII-B).
    auto step = [this](double temp, double set, double heat_rate, double tau,
                       bool& heating) -> std::pair<double, double> {
      double duty = 0.0;
      if (set > 0.0) {
        if (temp < set - 0.5) heating = true;
        if (temp > set + 0.5) heating = false;
        duty = heating ? 1.0 : 0.0;
      } else {
        heating = false;
      }
      const double d_temp =
          (duty * heat_rate - (temp - m_.ambient_temp) / tau) * dt_;
      return {temp + d_temp, duty};
    };
    auto [ht, hd] = step(state_.hotend_temp, state_.hotend_set,
                         m_.hotend_heat_rate, m_.hotend_tau, hotend_heating_);
    auto [bt, bd] = step(state_.bed_temp, state_.bed_set, m_.bed_heat_rate,
                         m_.bed_tau, bed_heating_);
    state_.hotend_temp = ht;
    state_.bed_temp = bt;
    hotend_duty_ = hd;
    bed_duty_ = bd;
  }

  void push_row() {
    trace_.x.push_back(state_.pos[0]);
    trace_.y.push_back(state_.pos[1]);
    trace_.z.push_back(state_.pos[2]);
    trace_.vx.push_back(state_.vel[0]);
    trace_.vy.push_back(state_.vel[1]);
    trace_.vz.push_back(state_.vel[2]);
    trace_.ax.push_back(state_.acc[0]);
    trace_.ay.push_back(state_.acc[1]);
    trace_.az.push_back(state_.acc[2]);
    const auto mp =
        motor_positions(m_, state_.pos[0], state_.pos[1], state_.pos[2]);
    for (int i = 0; i < 3; ++i) {
      const double mv =
          have_prev_motor_ ? (mp[i] - prev_motor_[i]) / dt_ : 0.0;
      trace_.motor_vel[i].push_back(mv);
    }
    prev_motor_ = mp;
    have_prev_motor_ = true;
    trace_.flow.push_back(state_.flow);
    trace_.fan.push_back(state_.fan);
    trace_.hotend_temp.push_back(state_.hotend_temp);
    trace_.bed_temp.push_back(state_.bed_temp);
    trace_.hotend_duty.push_back(hotend_duty_);
    trace_.bed_duty.push_back(bed_duty_);
    trace_.layer.push_back(state_.layer);
  }

  const MachineConfig& m_;
  const ExecutorConfig& cfg_;
  const double dt_;
  MotionTrace trace_;
  EmitState state_;
  std::array<double, 3> prev_motor_{};
  bool have_prev_motor_ = false;
  double hotend_duty_ = 0.0;
  double bed_duty_ = 0.0;
  bool hotend_heating_ = false;
  bool bed_heating_ = false;
};

}  // namespace

MotionTrace execute_plan(const MotionPlan& plan, const MachineConfig& m,
                         const ExecutorConfig& cfg,
                         nsync::signal::Rng& rng) {
  if (cfg.sample_rate <= 0.0) {
    throw std::invalid_argument("execute_plan: sample_rate must be positive");
  }
  TraceEmitter em(m, cfg);
  const TimeNoiseConfig& tn = m.time_noise;
  const double drift_phase = rng.uniform(0.0, kTwoPi);

  // Startup offset: the residual alignment error after "aligning at the
  // beginning" (Section VII assumes approximate, not perfect, alignment).
  if (tn.start_offset_std > 0.0) {
    const double offset = std::abs(rng.normal(0.0, tn.start_offset_std));
    em.emit_idle_until(em.now() + offset);
  }

  for (const auto& item : plan.items) {
    switch (item.type) {
      case PlanItemType::kLayerMarker: {
        em.state().layer = static_cast<double>(item.layer);
        em.trace().layer_events.push_back({item.layer, em.now()});
        break;
      }
      case PlanItemType::kFan: {
        em.state().fan = item.value;
        break;
      }
      case PlanItemType::kSetHotendTemp: {
        em.state().hotend_set = item.value;
        break;
      }
      case PlanItemType::kSetBedTemp: {
        em.state().bed_set = item.value;
        break;
      }
      case PlanItemType::kWaitHotendTemp: {
        em.state().hotend_set = item.value;
        if (item.value > 0.0) em.wait_for_temp(/*hotend=*/true);
        break;
      }
      case PlanItemType::kWaitBedTemp: {
        em.state().bed_set = item.value;
        if (item.value > 0.0) em.wait_for_temp(/*hotend=*/false);
        break;
      }
      case PlanItemType::kDwell: {
        double dur = item.value;
        if (tn.duration_jitter_std > 0.0) {
          dur *= std::max(0.2, 1.0 + rng.normal(0.0, tn.duration_jitter_std));
        }
        em.emit_idle_until(em.now() + dur);
        break;
      }
      case PlanItemType::kMove: {
        const MotionSegment& seg = item.move;
        const double t_nom = seg.duration();
        if (t_nom <= 0.0) break;
        double factor = 1.0;
        if (tn.duration_jitter_std > 0.0) {
          factor *=
              std::max(0.2, 1.0 + rng.normal(0.0, tn.duration_jitter_std));
        }
        if (tn.drift_amplitude > 0.0) {
          factor *= 1.0 + tn.drift_amplitude *
                              std::sin(kTwoPi * em.now() / tn.drift_period +
                                       drift_phase);
        }
        const double t_act = t_nom * factor;
        const double t_start = em.now();
        const double rate = t_nom / t_act;  // nominal seconds per actual
        const bool e_only = seg.p0 == seg.p1;
        std::array<double, 3> unit{0.0, 0.0, 0.0};
        if (!e_only && seg.length > 0.0) {
          unit = {(seg.p1[0] - seg.p0[0]) / seg.length,
                  (seg.p1[1] - seg.p0[1]) / seg.length,
                  (seg.p1[2] - seg.p0[2]) / seg.length};
        }
        const double de = seg.e1 - seg.e0;
        em.state().layer = static_cast<double>(seg.layer);
        em.emit_until(t_start + t_act, [&](double t) {
          const double tau = std::clamp((t - t_start) * rate, 0.0, t_nom);
          const double s = seg.distance_at(tau);
          const double v = seg.speed_at(tau) * rate;
          const double a = seg.accel_at(tau) * rate * rate;
          auto& st = em.state();
          if (e_only) {
            st.vel = {0.0, 0.0, 0.0};
            st.acc = {0.0, 0.0, 0.0};
            st.flow = (de >= 0.0 ? v : -v);
          } else {
            for (int i = 0; i < 3; ++i) {
              st.pos[i] = seg.p0[i] + unit[i] * s;
              st.vel[i] = unit[i] * v;
              st.acc[i] = unit[i] * a;
            }
            st.flow = seg.length > 0.0 ? de / seg.length * v : 0.0;
          }
        });
        // Snap to the exact endpoint to avoid drift accumulation.
        auto& st = em.state();
        if (!e_only) st.pos = seg.p1;
        st.vel = {0.0, 0.0, 0.0};
        st.acc = {0.0, 0.0, 0.0};
        st.flow = 0.0;
        // Random scheduling gap after the instruction (Section II-A: the
        // firmware may delay any queued instruction).
        if (tn.gap_probability > 0.0 && rng.bernoulli(tn.gap_probability)) {
          const double gap = rng.exponential(1.0 / std::max(1e-6, tn.gap_mean));
          em.emit_idle_until(em.now() + std::min(gap, 10.0 * tn.gap_mean));
        }
        break;
      }
    }
  }
  em.emit_idle_until(em.now() + cfg.tail_padding);
  return std::move(em.trace());
}

MotionTrace trim_trace(const MotionTrace& trace, double t_start) {
  if (t_start <= 0.0) return trace;
  const auto skip = static_cast<std::size_t>(t_start * trace.sample_rate);
  if (skip >= trace.samples()) {
    throw std::invalid_argument("trim_trace: t_start beyond trace end");
  }
  auto cut = [skip](const std::vector<double>& v) {
    return std::vector<double>(v.begin() + static_cast<std::ptrdiff_t>(skip),
                               v.end());
  };
  MotionTrace out;
  out.sample_rate = trace.sample_rate;
  out.x = cut(trace.x);
  out.y = cut(trace.y);
  out.z = cut(trace.z);
  out.vx = cut(trace.vx);
  out.vy = cut(trace.vy);
  out.vz = cut(trace.vz);
  out.ax = cut(trace.ax);
  out.ay = cut(trace.ay);
  out.az = cut(trace.az);
  for (int i = 0; i < 3; ++i) out.motor_vel[i] = cut(trace.motor_vel[i]);
  out.flow = cut(trace.flow);
  out.fan = cut(trace.fan);
  out.hotend_temp = cut(trace.hotend_temp);
  out.bed_temp = cut(trace.bed_temp);
  out.hotend_duty = cut(trace.hotend_duty);
  out.bed_duty = cut(trace.bed_duty);
  out.layer = cut(trace.layer);
  const double t_cut = static_cast<double>(skip) / trace.sample_rate;
  for (const auto& ev : trace.layer_events) {
    if (ev.time >= t_cut) {
      out.layer_events.push_back({ev.layer, ev.time - t_cut});
    }
  }
  return out;
}

MotionTrace trim_to_first_layer(const MotionTrace& trace, double pre_roll) {
  if (trace.layer_events.empty()) return trace;
  const double t = std::max(0.0, trace.layer_events.front().time - pre_roll);
  return trim_trace(trace, t);
}

}  // namespace nsync::printer
