#include "printer/planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nsync::printer {

namespace {

struct PendingMove {
  std::array<double, 3> p0{};
  std::array<double, 3> p1{};
  double e0 = 0.0;
  double e1 = 0.0;
  double length = 0.0;
  std::array<double, 3> unit{};
  double v_limit = 0.0;
  double accel = 0.0;
  std::size_t layer = 0;
  std::size_t plan_slot = 0;  ///< index into MotionPlan::items
  double v_entry = 0.0;
  double v_exit = 0.0;
};

double junction_speed(const PendingMove& a, const PendingMove& b,
                      const MachineConfig& m) {
  const double cos_theta = a.unit[0] * b.unit[0] + a.unit[1] * b.unit[1] +
                           a.unit[2] * b.unit[2];
  const double v_cap = std::min(a.v_limit, b.v_limit);
  if (cos_theta > 0.9999) return v_cap;  // straight line
  if (cos_theta < -0.9999) return m.min_junction_speed;  // reversal
  const double sin_half = std::sqrt(0.5 * (1.0 - cos_theta));
  if (1.0 - sin_half < 1e-9) return m.min_junction_speed;
  const double v2 =
      m.max_accel * m.junction_deviation * sin_half / (1.0 - sin_half);
  return std::clamp(std::sqrt(std::max(0.0, v2)), m.min_junction_speed,
                    v_cap);
}

// Finalizes a contiguous run of moves: lookahead passes then trapezoids.
void finalize_run(std::vector<PendingMove>& run, MotionPlan& plan,
                  const MachineConfig& m) {
  if (run.empty()) return;
  // Junction speeds seed both the entry of move i+1 and the exit of move i.
  run.front().v_entry = 0.0;
  for (std::size_t i = 0; i + 1 < run.size(); ++i) {
    const double vj = junction_speed(run[i], run[i + 1], m);
    run[i].v_exit = vj;
    run[i + 1].v_entry = vj;
  }
  run.back().v_exit = 0.0;

  // Backward pass: ensure we can decelerate into every junction.
  for (std::size_t i = run.size(); i-- > 1;) {
    const double reachable = std::sqrt(run[i].v_exit * run[i].v_exit +
                                       2.0 * run[i].accel * run[i].length);
    run[i].v_entry = std::min(run[i].v_entry, reachable);
    run[i - 1].v_exit = std::min(run[i - 1].v_exit, run[i].v_entry);
  }
  {
    const double reachable = std::sqrt(run[0].v_exit * run[0].v_exit +
                                       2.0 * run[0].accel * run[0].length);
    run[0].v_entry = std::min(run[0].v_entry, reachable);
  }
  // Forward pass: ensure every junction is reachable by accelerating.
  for (std::size_t i = 0; i + 1 < run.size(); ++i) {
    const double reachable = std::sqrt(run[i].v_entry * run[i].v_entry +
                                       2.0 * run[i].accel * run[i].length);
    run[i].v_exit = std::min(run[i].v_exit, reachable);
    run[i + 1].v_entry = std::min(run[i + 1].v_entry, run[i].v_exit);
  }
  {
    auto& last = run.back();
    const double reachable = std::sqrt(last.v_entry * last.v_entry +
                                       2.0 * last.accel * last.length);
    last.v_exit = std::min(last.v_exit, reachable);
  }

  for (auto& pm : run) {
    MotionSegment seg =
        make_trapezoid(pm.length, pm.v_entry, pm.v_exit, pm.v_limit, pm.accel);
    seg.p0 = pm.p0;
    seg.p1 = pm.p1;
    seg.e0 = pm.e0;
    seg.e1 = pm.e1;
    seg.layer = pm.layer;
    seg.extruding = pm.e1 > pm.e0 + 1e-12;
    plan.items[pm.plan_slot].move = seg;
  }
  run.clear();
}

}  // namespace

double MotionSegment::distance_at(double t) const {
  if (t <= 0.0) return 0.0;
  if (t >= duration()) return length;
  if (t < t_accel) {
    return v_entry * t + 0.5 * accel * t * t;
  }
  const double d_acc = v_entry * t_accel + 0.5 * accel * t_accel * t_accel;
  if (t < t_accel + t_cruise) {
    return d_acc + v_cruise * (t - t_accel);
  }
  const double td = t - t_accel - t_cruise;
  return d_acc + v_cruise * t_cruise + v_cruise * td - 0.5 * accel * td * td;
}

double MotionSegment::speed_at(double t) const {
  if (t <= 0.0) return v_entry;
  if (t >= duration()) return v_exit;
  if (t < t_accel) return v_entry + accel * t;
  if (t < t_accel + t_cruise) return v_cruise;
  return v_cruise - accel * (t - t_accel - t_cruise);
}

double MotionSegment::accel_at(double t) const {
  if (t < 0.0 || t > duration()) return 0.0;
  if (t < t_accel) return accel;
  if (t < t_accel + t_cruise) return 0.0;
  return -accel;
}

double MotionPlan::nominal_motion_duration() const {
  double acc = 0.0;
  for (const auto& item : items) {
    if (item.type == PlanItemType::kMove) {
      acc += item.move.duration();
    } else if (item.type == PlanItemType::kDwell) {
      acc += item.value;
    }
  }
  return acc;
}

MotionSegment make_trapezoid(double length, double v_entry, double v_exit,
                             double v_limit, double accel) {
  if (length < 0.0 || v_entry < 0.0 || v_exit < 0.0 || v_limit <= 0.0 ||
      accel <= 0.0) {
    throw std::invalid_argument("make_trapezoid: invalid kinematic inputs");
  }
  MotionSegment seg;
  seg.length = length;
  seg.accel = accel;
  if (length < 1e-12) {
    seg.v_entry = seg.v_cruise = seg.v_exit = 0.0;
    return seg;
  }
  // Clamp an unreachable exit speed (defensive; lookahead should prevent it).
  const double max_exit =
      std::sqrt(v_entry * v_entry + 2.0 * accel * length);
  v_exit = std::min(v_exit, max_exit);
  const double min_exit_sq = v_entry * v_entry - 2.0 * accel * length;
  if (min_exit_sq > 0.0) {
    v_exit = std::max(v_exit, std::sqrt(min_exit_sq));
  }
  const double v_peak = std::sqrt(
      0.5 * (2.0 * accel * length + v_entry * v_entry + v_exit * v_exit));
  const double v_cruise = std::min({v_limit, v_peak,
                                    std::max(v_peak, std::max(v_entry, v_exit))});
  const double vc = std::max({v_cruise, v_entry, v_exit});
  seg.v_entry = v_entry;
  seg.v_exit = v_exit;
  seg.v_cruise = vc;
  const double d_acc = (vc * vc - v_entry * v_entry) / (2.0 * accel);
  const double d_dec = (vc * vc - v_exit * v_exit) / (2.0 * accel);
  const double d_cruise = std::max(0.0, length - d_acc - d_dec);
  seg.t_accel = (vc - v_entry) / accel;
  seg.t_cruise = vc > 0.0 ? d_cruise / vc : 0.0;
  seg.t_decel = (vc - v_exit) / accel;
  return seg;
}

MotionPlan plan_program(const gcode::Program& program,
                        const MachineConfig& m) {
  MotionPlan plan;
  std::vector<PendingMove> run;

  std::array<double, 3> pos{0.0, 0.0, 0.0};
  double e = 0.0;
  double feed = 40.0;  // mm/s default until the program sets one
  std::size_t layer = 0;
  bool seen_layer_marker = false;

  auto flush = [&] { finalize_run(run, plan, m); };

  for (const auto& c : program.commands()) {
    switch (c.type) {
      case gcode::CommandType::kComment: {
        if (c.text.rfind("LAYER:", 0) == 0) {
          flush();
          try {
            layer = static_cast<std::size_t>(std::stoul(c.text.substr(6)));
          } catch (...) {
            layer = seen_layer_marker ? layer + 1 : 0;
          }
          seen_layer_marker = true;
          plan.layer_count = std::max(plan.layer_count, layer + 1);
          PlanItem item;
          item.type = PlanItemType::kLayerMarker;
          item.layer = layer;
          plan.items.push_back(item);
        }
        break;
      }
      case gcode::CommandType::kRapidMove:
      case gcode::CommandType::kLinearMove: {
        if (c.f) feed = *c.f / 60.0;  // G-code F is mm/min
        std::array<double, 3> target = pos;
        if (c.x) target[0] = *c.x;
        if (c.y) target[1] = *c.y;
        if (c.z) target[2] = *c.z;
        const double ne = c.e.value_or(e);
        const double dx = target[0] - pos[0];
        const double dy = target[1] - pos[1];
        const double dz = target[2] - pos[2];
        const double length = std::sqrt(dx * dx + dy * dy + dz * dz);
        const double de = std::abs(ne - e);
        if (length < 1e-9 && de < 1e-9) {
          pos = target;
          e = ne;
          break;
        }
        PendingMove pm;
        pm.p0 = pos;
        pm.p1 = target;
        pm.e0 = e;
        pm.e1 = ne;
        pm.layer = layer;
        if (length < 1e-9) {
          // E-only move (retract/prime): time it on the E axis.
          pm.length = de;
          pm.unit = {0.0, 0.0, 0.0};
          pm.v_limit = std::min(feed, 45.0);
          pm.accel = m.max_accel;
          // An E-only move breaks XY lookahead continuity.
          flush();
          pm.plan_slot = plan.items.size();
          PlanItem item;
          item.type = PlanItemType::kMove;
          plan.items.push_back(item);
          run.push_back(pm);
          flush();
        } else {
          pm.length = length;
          pm.unit = {dx / length, dy / length, dz / length};
          double v_limit = std::min(feed, m.max_velocity);
          const double z_frac = std::abs(pm.unit[2]);
          if (z_frac > 1e-6) {
            v_limit = std::min(v_limit, m.max_z_velocity / z_frac);
          }
          pm.v_limit = std::max(v_limit, m.min_junction_speed);
          pm.accel = m.max_accel;
          pm.plan_slot = plan.items.size();
          PlanItem item;
          item.type = PlanItemType::kMove;
          plan.items.push_back(item);
          run.push_back(pm);
        }
        pos = target;
        e = ne;
        break;
      }
      case gcode::CommandType::kDwell: {
        flush();
        PlanItem item;
        item.type = PlanItemType::kDwell;
        item.value = c.p ? *c.p / 1000.0 : c.s.value_or(0.0);
        plan.items.push_back(item);
        break;
      }
      case gcode::CommandType::kHome: {
        flush();
        // Synthesize a homing move to the machine origin at a fixed pace.
        const std::array<double, 3> home =
            m.kinematics == KinematicsType::kDelta
                ? std::array<double, 3>{0.0, 0.0, 150.0}
                : std::array<double, 3>{0.0, 0.0, 0.0};
        const double dx = home[0] - pos[0];
        const double dy = home[1] - pos[1];
        const double dz = home[2] - pos[2];
        const double length = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (length > 1e-9) {
          PendingMove pm;
          pm.p0 = pos;
          pm.p1 = home;
          pm.e0 = pm.e1 = e;
          pm.length = length;
          pm.unit = {dx / length, dy / length, dz / length};
          pm.v_limit = 40.0;  // homing speed
          pm.accel = m.max_accel / 2.0;
          pm.layer = layer;
          pm.plan_slot = plan.items.size();
          PlanItem item;
          item.type = PlanItemType::kMove;
          plan.items.push_back(item);
          run.push_back(pm);
          flush();
        }
        pos = home;
        break;
      }
      case gcode::CommandType::kSetPosition: {
        flush();
        if (c.x) pos[0] = *c.x;
        if (c.y) pos[1] = *c.y;
        if (c.z) pos[2] = *c.z;
        if (c.e) e = *c.e;
        break;
      }
      case gcode::CommandType::kSetHotendTemp:
      case gcode::CommandType::kWaitHotendTemp:
      case gcode::CommandType::kSetBedTemp:
      case gcode::CommandType::kWaitBedTemp: {
        flush();
        PlanItem item;
        switch (c.type) {
          case gcode::CommandType::kSetHotendTemp:
            item.type = PlanItemType::kSetHotendTemp;
            break;
          case gcode::CommandType::kWaitHotendTemp:
            item.type = PlanItemType::kWaitHotendTemp;
            break;
          case gcode::CommandType::kSetBedTemp:
            item.type = PlanItemType::kSetBedTemp;
            break;
          default:
            item.type = PlanItemType::kWaitBedTemp;
            break;
        }
        item.value = c.s.value_or(0.0);
        plan.items.push_back(item);
        break;
      }
      case gcode::CommandType::kFanOn: {
        flush();
        PlanItem item;
        item.type = PlanItemType::kFan;
        item.value = std::clamp(c.s.value_or(255.0) / 255.0, 0.0, 1.0);
        plan.items.push_back(item);
        break;
      }
      case gcode::CommandType::kFanOff: {
        flush();
        PlanItem item;
        item.type = PlanItemType::kFan;
        item.value = 0.0;
        plan.items.push_back(item);
        break;
      }
      case gcode::CommandType::kOther:
        break;
    }
  }
  flush();
  if (plan.layer_count == 0) {
    plan.layer_count = program.layer_starts().size();
  }
  return plan;
}

}  // namespace nsync::printer
