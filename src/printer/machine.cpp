#include "printer/machine.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nsync::printer {

MachineConfig ultimaker3() {
  MachineConfig m;
  m.name = "UM3";
  m.kinematics = KinematicsType::kCartesian;
  m.max_velocity = 150.0;
  m.max_z_velocity = 20.0;
  m.max_accel = 3000.0;
  m.junction_deviation = 0.05;
  m.steps_per_mm = {80.0, 80.0, 400.0};
  m.e_steps_per_mm = 311.0;
  // The UM3's enclosed frame damps vibration; time noise dominated by
  // scheduling gaps and a slow firmware-load drift.
  m.time_noise.duration_jitter_std = 0.002;
  m.time_noise.gap_probability = 0.008;
  m.time_noise.gap_mean = 0.006;
  m.time_noise.drift_amplitude = 0.003;
  m.time_noise.drift_period = 45.0;
  return m;
}

MachineConfig rostock_max_v3() {
  MachineConfig m;
  m.name = "RM3";
  m.kinematics = KinematicsType::kDelta;
  m.delta.arm_length = 291.0;
  m.delta.tower_radius = 200.0;
  m.max_velocity = 200.0;
  m.max_z_velocity = 200.0;  // delta towers move fast in every direction
  m.max_accel = 4000.0;
  m.junction_deviation = 0.08;
  m.steps_per_mm = {80.0, 80.0, 80.0};  // tower carriages share a pitch
  m.e_steps_per_mm = 92.0;
  // RM3's RAMBo board keeps gaps shorter (simpler queueing) but shows more
  // per-segment jitter (8-bit planner arithmetic).
  m.time_noise.duration_jitter_std = 0.002;
  m.time_noise.gap_probability = 0.004;
  m.time_noise.gap_mean = 0.003;
  m.time_noise.drift_amplitude = 0.0012;
  m.time_noise.drift_period = 30.0;
  return m;
}

std::array<double, 3> motor_positions(const MachineConfig& m, double x,
                                      double y, double z) {
  if (m.kinematics == KinematicsType::kCartesian) {
    return {x, y, z};
  }
  // Delta inverse kinematics.  Tower i sits at angle (90 + 120 i) degrees
  // on the tower circle; carriage height h_i satisfies
  //   (h_i - z)^2 + |tower_i - (x, y)|^2 = arm_length^2.
  constexpr double kDeg = std::numbers::pi / 180.0;
  std::array<double, 3> h{};
  for (int i = 0; i < 3; ++i) {
    const double ang = (90.0 + 120.0 * static_cast<double>(i)) * kDeg;
    const double tx = m.delta.tower_radius * std::cos(ang);
    const double ty = m.delta.tower_radius * std::sin(ang);
    const double d2 = (tx - x) * (tx - x) + (ty - y) * (ty - y);
    const double s = m.delta.arm_length * m.delta.arm_length - d2;
    if (s <= 0.0) {
      throw std::domain_error("motor_positions: point out of delta reach");
    }
    h[i] = z + std::sqrt(s);
  }
  return h;
}

}  // namespace nsync::printer
