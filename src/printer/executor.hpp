// Firmware executor: runs a MotionPlan on a simulated clock, injecting the
// paper's time noise (duration jitter, random inter-command gaps, slow
// drift, start offset), integrating a first-order thermal model, and
// sampling everything into a uniformly-sampled MotionTrace that the sensor
// models render into side-channel signals.
#ifndef NSYNC_PRINTER_EXECUTOR_HPP
#define NSYNC_PRINTER_EXECUTOR_HPP

#include <array>
#include <cstddef>
#include <vector>

#include "printer/machine.hpp"
#include "printer/planner.hpp"
#include "signal/rng.hpp"

namespace nsync::printer {

/// Timestamped layer-change event (ground truth used by the layer-coarse
/// baselines; the paper obtained these from a bed accelerometer or Z-motor
/// currents).
struct LayerEvent {
  std::size_t layer = 0;
  double time = 0.0;  ///< seconds from trace start
};

/// Uniformly sampled record of the machine state over a whole printing
/// process.  All per-sample vectors share the same length.
struct MotionTrace {
  double sample_rate = 0.0;  ///< master rate in Hz

  std::vector<double> x, y, z;     ///< head position (mm)
  std::vector<double> vx, vy, vz;  ///< head velocity (mm/s)
  std::vector<double> ax, ay, az;  ///< head acceleration (mm/s^2)
  std::array<std::vector<double>, 3> motor_vel;  ///< motor-space speeds
  std::vector<double> flow;         ///< extrusion rate (mm filament / s)
  std::vector<double> fan;          ///< fan duty 0..1
  std::vector<double> hotend_temp;  ///< deg C
  std::vector<double> bed_temp;     ///< deg C
  std::vector<double> hotend_duty;  ///< heater duty 0..1
  std::vector<double> bed_duty;     ///< heater duty 0..1
  std::vector<double> layer;        ///< active layer index

  std::vector<LayerEvent> layer_events;

  [[nodiscard]] std::size_t samples() const { return x.size(); }
  [[nodiscard]] double duration() const {
    return sample_rate > 0.0 ? static_cast<double>(samples()) / sample_rate
                             : 0.0;
  }
};

/// Execution options.
struct ExecutorConfig {
  double sample_rate = 2000.0;  ///< master trace rate (Hz)
  /// Hard cap on any single heater wait (seconds of simulated time).
  double max_heat_wait = 120.0;
  /// Temperature tolerance that releases M109/M190.
  double temp_tolerance = 1.5;
  /// Extra trace padding after the last command (seconds).
  double tail_padding = 0.25;
};

/// Executes `plan` on machine `m` with time noise drawn from `rng`.
/// Pass TimeNoiseConfig::none() in `m.time_noise` for a noise-free
/// reference run.  Throws std::domain_error if the toolpath leaves a delta
/// machine's reachable volume.
[[nodiscard]] MotionTrace execute_plan(const MotionPlan& plan,
                                       const MachineConfig& m,
                                       const ExecutorConfig& cfg,
                                       nsync::signal::Rng& rng);

/// Drops everything before `t_start` seconds and re-bases timestamps.
/// Used to start side-channel signals at the first deposition move: the
/// paper aligns signals "at the beginning of the printing process", i.e.
/// after homing/heating, whose duration varies run to run.
[[nodiscard]] MotionTrace trim_trace(const MotionTrace& trace, double t_start);

/// Convenience: trims to `pre_roll` seconds before the first layer event
/// (no-op when there are no layer events).
[[nodiscard]] MotionTrace trim_to_first_layer(const MotionTrace& trace,
                                              double pre_roll = 0.25);

}  // namespace nsync::printer

#endif  // NSYNC_PRINTER_EXECUTOR_HPP
