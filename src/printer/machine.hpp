// Machine descriptions for the two printers of the evaluation:
// an Ultimaker 3-like Cartesian machine (UM3) and a SeeMeCNC Rostock Max
// V3-like delta machine (RM3), plus the stochastic time-noise model that is
// the phenomenon the paper studies (Section I).
#ifndef NSYNC_PRINTER_MACHINE_HPP
#define NSYNC_PRINTER_MACHINE_HPP

#include <array>
#include <string>

namespace nsync::printer {

enum class KinematicsType {
  kCartesian,  ///< motors drive X/Y/Z directly (UM3 style)
  kDelta,      ///< three vertical towers with arms (RM3 style)
};

/// Delta-robot geometry: towers at 120 degree spacing on a circle of
/// `tower_radius`, arms of length `arm_length` connecting carriages to the
/// effector.
struct DeltaGeometry {
  double arm_length = 291.0;    ///< mm (Rostock Max V3 ballpark)
  double tower_radius = 200.0;  ///< mm
};

/// Sources of time noise (Section I): frame drops in the DAQ, mechanical
/// and thermal delays in devices, and task scheduling.  Each printing
/// process draws fresh noise from these distributions, which is what makes
/// repeated runs of the same G-code end at different times (Fig. 1).
struct TimeNoiseConfig {
  /// Multiplicative duration jitter per motion segment:
  /// actual = nominal * max(0.2, 1 + N(0, duration_jitter_std)).
  double duration_jitter_std = 0.01;
  /// Probability that a random gap is inserted after a segment.
  double gap_probability = 0.02;
  /// Mean of the exponential gap length (seconds).
  double gap_mean = 0.02;
  /// Std of the one-time startup offset (seconds); models the alignment
  /// error left over after signals are aligned "at the beginning".
  double start_offset_std = 0.01;
  /// Low-frequency drift: a slowly varying speed factor with this
  /// amplitude (fraction) models firmware/clock drift over the process.
  double drift_amplitude = 0.004;
  /// Period of the drift modulation in seconds.
  double drift_period = 40.0;

  /// Disables every noise source (for deterministic tests/references).
  [[nodiscard]] static TimeNoiseConfig none() {
    TimeNoiseConfig c;
    c.duration_jitter_std = 0.0;
    c.gap_probability = 0.0;
    c.gap_mean = 0.0;
    c.start_offset_std = 0.0;
    c.drift_amplitude = 0.0;
    return c;
  }
};

/// Printer description: kinematics, dynamic limits, drivetrain and a simple
/// first-order thermal model for the hotend and bed.
struct MachineConfig {
  std::string name = "UM3";
  KinematicsType kinematics = KinematicsType::kCartesian;
  DeltaGeometry delta;

  double max_velocity = 150.0;        ///< mm/s (XY)
  double max_z_velocity = 20.0;       ///< mm/s
  double max_accel = 3000.0;          ///< mm/s^2
  double junction_deviation = 0.05;   ///< mm (corner slowdown aggressiveness)
  double min_junction_speed = 0.5;    ///< mm/s floor at sharp corners

  std::array<double, 3> steps_per_mm = {80.0, 80.0, 400.0};  ///< per motor
  double e_steps_per_mm = 300.0;

  // First-order thermal model: dT/dt = (duty * heat_rate - (T - ambient) /
  // tau).  heat_rate is deg C per second at full power.
  double ambient_temp = 25.0;
  double hotend_heat_rate = 40.0;  ///< scaled up so heating is seconds, not
                                   ///< minutes (documented in DESIGN.md)
  double hotend_tau = 25.0;
  double bed_heat_rate = 15.0;
  double bed_tau = 60.0;

  double motor_hold_current = 0.3;   ///< A, stepper idle current proxy
  double motor_run_current = 0.9;    ///< A while moving
  double heater_hotend_power = 35.0; ///< W at full duty
  double heater_bed_power = 180.0;   ///< W at full duty
  double base_power = 8.0;           ///< W electronics idle draw

  TimeNoiseConfig time_noise;
};

/// An Ultimaker 3-like Cartesian machine (the most popular desktop printer
/// per the paper's Section VIII-A).
[[nodiscard]] MachineConfig ultimaker3();

/// A SeeMeCNC Rostock Max V3-like delta machine.
[[nodiscard]] MachineConfig rostock_max_v3();

/// Motor-space position for a head position (x, y, z) in mm.
/// Cartesian: identity.  Delta: the three carriage heights via inverse
/// kinematics; throws std::domain_error when (x, y) is out of reach.
[[nodiscard]] std::array<double, 3> motor_positions(const MachineConfig& m,
                                                    double x, double y,
                                                    double z);

}  // namespace nsync::printer

#endif  // NSYNC_PRINTER_MACHINE_HPP
