// One-call convenience API: G-code program -> planned -> executed trace.
#ifndef NSYNC_PRINTER_SIMULATOR_HPP
#define NSYNC_PRINTER_SIMULATOR_HPP

#include <cstdint>

#include "gcode/program.hpp"
#include "printer/executor.hpp"
#include "printer/machine.hpp"
#include "printer/planner.hpp"

namespace nsync::printer {

/// Plans and executes `program` on machine `m` with the machine's
/// time-noise model and the given seed.  Each distinct seed yields a
/// distinct realization of the time noise — running the same program twice
/// with different seeds reproduces Fig. 1 (signals that align at the start
/// and drift apart).
[[nodiscard]] MotionTrace simulate_print(const gcode::Program& program,
                                         const MachineConfig& m,
                                         const ExecutorConfig& cfg,
                                         std::uint64_t seed);

/// Noise-free execution (TimeNoiseConfig::none()), used for reference
/// signals derived "by simulating a process with its G-code file"
/// (Section IV, acquisition of reference signals).
[[nodiscard]] MotionTrace simulate_print_noiseless(
    const gcode::Program& program, const MachineConfig& m,
    const ExecutorConfig& cfg);

}  // namespace nsync::printer

#endif  // NSYNC_PRINTER_SIMULATOR_HPP
