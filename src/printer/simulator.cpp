#include "printer/simulator.hpp"

namespace nsync::printer {

MotionTrace simulate_print(const gcode::Program& program,
                           const MachineConfig& m, const ExecutorConfig& cfg,
                           std::uint64_t seed) {
  const MotionPlan plan = plan_program(program, m);
  nsync::signal::Rng rng(seed);
  return execute_plan(plan, m, cfg, rng);
}

MotionTrace simulate_print_noiseless(const gcode::Program& program,
                                     const MachineConfig& m,
                                     const ExecutorConfig& cfg) {
  MachineConfig quiet = m;
  quiet.time_noise = TimeNoiseConfig::none();
  const MotionPlan plan = plan_program(program, quiet);
  nsync::signal::Rng rng(0);
  return execute_plan(plan, quiet, cfg, rng);
}

}  // namespace nsync::printer
