#include "sensors/daq.hpp"

#include <cmath>
#include <stdexcept>

namespace nsync::sensors {

using nsync::signal::Rng;
using nsync::signal::Signal;
using nsync::signal::SignalView;

Signal quantize(const SignalView& s, int bits, double full_scale) {
  if (bits < 2 || bits > 32) {
    throw std::invalid_argument("quantize: bits out of range");
  }
  if (full_scale <= 0.0) {
    throw std::invalid_argument("quantize: full_scale must be positive");
  }
  const double step = full_scale / std::pow(2.0, bits - 1);
  Signal out(s.frames(), s.channels(), s.sample_rate());
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      out(n, c) = std::round(s(n, c) / step) * step;
    }
  }
  return out;
}

Signal apply_daq(const SignalView& s, const DaqConfig& cfg, Rng& rng) {
  // Per-run gain error applies to all channels alike (shared front end).
  const double gain =
      cfg.gain_jitter_std > 0.0
          ? std::max(0.1, 1.0 + rng.normal(0.0, cfg.gain_jitter_std))
          : 1.0;

  Signal out = Signal::empty(s.channels(), s.sample_rate());
  out.reserve_frames(s.frames());
  const std::size_t frame = std::max<std::size_t>(1, cfg.frame_samples);
  std::vector<double> row(s.channels());
  for (std::size_t start = 0; start < s.frames(); start += frame) {
    // One draw per frame, the trailing partial frame included: transport
    // loses its last (short) packet as readily as any other, and the RNG
    // consumption must not depend on the length remainder.
    if (cfg.frame_drop_probability > 0.0 &&
        rng.bernoulli(cfg.frame_drop_probability)) {
      continue;  // whole frame lost in transport
    }
    const std::size_t end = std::min(start + frame, s.frames());
    for (std::size_t n = start; n < end; ++n) {
      for (std::size_t c = 0; c < s.channels(); ++c) {
        row[c] = s(n, c) * gain;
      }
      out.append_frame(row);
    }
  }
  if (cfg.full_scale > 0.0) {
    return quantize(out, cfg.bits, cfg.full_scale);
  }
  return out;
}

}  // namespace nsync::sensors
