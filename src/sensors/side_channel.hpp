// Side-channel identifiers and per-channel acquisition settings (Table II).
#ifndef NSYNC_SENSORS_SIDE_CHANNEL_HPP
#define NSYNC_SENSORS_SIDE_CHANNEL_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace nsync::sensors {

/// The six side channels of Table II.
enum class SideChannel {
  kAcc,  ///< acceleration, MPU9250 on the printhead (6 ch: accel + gyro)
  kTmp,  ///< temperature, MPU9250 die thermometer (1 ch)
  kMag,  ///< magnetic field, MPU9250 magnetometer (3 ch)
  kAud,  ///< audio, AKG170 microphone (2 ch)
  kEpt,  ///< electric potential, modified AKG170 (1 ch)
  kPwr,  ///< AC power / current, SCT013 clamp (1 ch)
};

/// All six channels in Table II order.
[[nodiscard]] const std::vector<SideChannel>& all_side_channels();

/// Table II ID string ("ACC", "TMP", ...).
[[nodiscard]] std::string side_channel_name(SideChannel ch);

/// Parses "ACC"/"acc"/... ; throws std::invalid_argument on unknown names.
[[nodiscard]] SideChannel parse_side_channel(const std::string& name);

/// Number of sensor channels for each side channel (Table II "CHs").
[[nodiscard]] std::size_t side_channel_components(SideChannel ch);

/// Table II sampling rate in Hz (the paper's hardware rates; the eval
/// harness typically scales these down, see DESIGN.md).
[[nodiscard]] double side_channel_paper_rate(SideChannel ch);

/// ADC resolution in bits (Table II "Bits").
[[nodiscard]] int side_channel_bits(SideChannel ch);

}  // namespace nsync::sensors

#endif  // NSYNC_SENSORS_SIDE_CHANNEL_HPP
