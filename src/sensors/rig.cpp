#include "sensors/rig.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nsync::sensors {

using nsync::signal::Rng;
using nsync::signal::Signal;
using printer::MotionTrace;

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Linear interpolation into a master-rate trace channel.
class TraceSampler {
 public:
  TraceSampler(const std::vector<double>& data, double rate)
      : data_(data), rate_(rate) {}

  [[nodiscard]] double at(double t) const {
    if (data_.empty()) return 0.0;
    const double idx = t * rate_;
    if (idx <= 0.0) return data_.front();
    const auto i0 = static_cast<std::size_t>(idx);
    if (i0 + 1 >= data_.size()) return data_.back();
    const double frac = idx - static_cast<double>(i0);
    return (1.0 - frac) * data_[i0] + frac * data_[i0 + 1];
  }

 private:
  const std::vector<double>& data_;
  double rate_;
};

/// Second-order resonator: models the mechanical resonance of the printer
/// frame excited by head acceleration.  y'' = w^2 (u - y) - 2 z w y'.
class Resonator {
 public:
  Resonator(double freq_hz, double damping, double fs)
      : w_(kTwoPi * freq_hz), zeta_(damping), dt_(1.0 / fs) {}

  double step(double u) {
    const double acc = w_ * w_ * (u - y_) - 2.0 * zeta_ * w_ * v_;
    v_ += acc * dt_;
    y_ += v_ * dt_;
    return y_;
  }

 private:
  double w_, zeta_, dt_;
  double y_ = 0.0, v_ = 0.0;
};

/// Stepper activity in [0, 1]: how hard motor j is working.  Proportional
/// up to typical cruise speeds so the side channels carry speed structure,
/// not just a moving/idle bit.
double motor_activity(double motor_vel) {
  return std::min(1.0, std::abs(motor_vel) / 30.0);
}

}  // namespace

SensorRig::SensorRig(printer::MachineConfig machine, RigConfig config)
    : machine_(std::move(machine)), config_(std::move(config)) {
  if (config_.rate_scale <= 0.0) {
    throw std::invalid_argument("SensorRig: rate_scale must be positive");
  }
}

double SensorRig::rate(SideChannel ch) const {
  double override_rate = 0.0;
  switch (ch) {
    case SideChannel::kAcc: override_rate = config_.acc_rate; break;
    case SideChannel::kTmp: override_rate = config_.tmp_rate; break;
    case SideChannel::kMag: override_rate = config_.mag_rate; break;
    case SideChannel::kAud: override_rate = config_.aud_rate; break;
    case SideChannel::kEpt: override_rate = config_.ept_rate; break;
    case SideChannel::kPwr: override_rate = config_.pwr_rate; break;
  }
  if (override_rate > 0.0) return override_rate;
  return side_channel_paper_rate(ch) * config_.rate_scale;
}

Signal SensorRig::render(SideChannel ch, const MotionTrace& trace,
                         Rng& rng) const {
  const double fs = rate(ch);
  if (fs <= 0.0) {
    throw std::invalid_argument("SensorRig::render: non-positive rate");
  }
  const double t_end = trace.duration();
  const auto n_out = static_cast<std::size_t>(std::floor(t_end * fs));
  const double mr = trace.sample_rate;
  const double noise = config_.noise_scale;

  Signal out(std::max<std::size_t>(n_out, 1), side_channel_components(ch), fs);

  switch (ch) {
    case SideChannel::kAcc: {
      TraceSampler sax(trace.ax, mr), say(trace.ay, mr), saz(trace.az, mr);
      // Frame resonances differ per axis (stiffness anisotropy).
      Resonator rx(28.0, 0.06, fs), ry(35.0, 0.06, fs), rz(55.0, 0.10, fs);
      for (std::size_t n = 0; n < n_out; ++n) {
        const double t = static_cast<double>(n) / fs;
        const double ux = sax.at(t), uy = say.at(t), uz = saz.at(t);
        const double wx = rx.step(ux), wy = ry.step(uy), wz = rz.step(uz);
        out(n, 0) = ux + 0.35 * wx + rng.normal(0.0, 6.0 * noise);
        out(n, 1) = uy + 0.35 * wy + rng.normal(0.0, 6.0 * noise);
        out(n, 2) = uz + 9810.0 + 0.25 * wz + rng.normal(0.0, 6.0 * noise);
        // Gyro channels: the head rocks in reaction to cross-axis
        // acceleration transients.
        out(n, 3) = 0.002 * (uy - uz) + 0.001 * wy + rng.normal(0.0, 0.04 * noise);
        out(n, 4) = 0.002 * (uz - ux) + 0.001 * wz + rng.normal(0.0, 0.04 * noise);
        out(n, 5) = 0.002 * (ux - uy) + 0.001 * wx + rng.normal(0.0, 0.04 * noise);
      }
      break;
    }
    case SideChannel::kTmp: {
      TraceSampler sh(trace.hotend_temp, mr);
      // The IMU die warms with electronics ambient, only faintly tracking
      // the hotend; dominated by sensor noise -> weakly correlated.
      for (std::size_t n = 0; n < n_out; ++n) {
        const double t = static_cast<double>(n) / fs;
        const double die =
            machine_.ambient_temp + 4.0 +
            0.02 * (sh.at(t) - machine_.ambient_temp);
        out(n, 0) = die + rng.normal(0.0, 0.12 * noise);
      }
      break;
    }
    case SideChannel::kMag: {
      const TraceSampler mv0(trace.motor_vel[0], mr),
          mv1(trace.motor_vel[1], mr), mv2(trace.motor_vel[2], mr);
      // Fixed coupling matrix from the three coils to the magnetometer
      // axes (geometry of the rig), plus the geomagnetic field.
      constexpr double kCouple[3][3] = {
          {0.9, 0.3, 0.1}, {0.2, 0.8, 0.3}, {0.1, 0.4, 0.7}};
      constexpr double kEarth[3] = {22.0, -5.0, 40.0};  // microtesla
      for (std::size_t n = 0; n < n_out; ++n) {
        const double t = static_cast<double>(n) / fs;
        const double cur[3] = {
            machine_.motor_hold_current +
                (machine_.motor_run_current - machine_.motor_hold_current) *
                    motor_activity(mv0.at(t)),
            machine_.motor_hold_current +
                (machine_.motor_run_current - machine_.motor_hold_current) *
                    motor_activity(mv1.at(t)),
            machine_.motor_hold_current +
                (machine_.motor_run_current - machine_.motor_hold_current) *
                    motor_activity(mv2.at(t))};
        for (int i = 0; i < 3; ++i) {
          double b = kEarth[i];
          for (int j = 0; j < 3; ++j) b += 6.0 * kCouple[i][j] * cur[j];
          out(n, i) = b + rng.normal(0.0, 1.8 * noise);  // noisy channel
        }
      }
      break;
    }
    case SideChannel::kAud: {
      const TraceSampler mv0(trace.motor_vel[0], mr),
          mv1(trace.motor_vel[1], mr), mv2(trace.motor_vel[2], mr),
          fan(trace.fan, mr), flow(trace.flow, mr),
          sax(trace.ax, mr), say(trace.ay, mr);
      double phase[4] = {0.0, 0.0, 0.0, 0.0};
      const double nyquist = 0.45 * fs;
      double fan_lp = 0.0;  // low-passed white noise = fan whoosh
      for (std::size_t n = 0; n < n_out; ++n) {
        const double t = static_cast<double>(n) / fs;
        const double mvel[3] = {mv0.at(t), mv1.at(t), mv2.at(t)};
        double tone_l = 0.0, tone_r = 0.0;
        for (int j = 0; j < 3; ++j) {
          // Audible motor tone: dominated by rotation/PWM components well
          // below the full-step rate (kToneScale maps step rate to the
          // dominant audible component, keeping tones inside the scaled
          // Nyquist band).
          constexpr double kToneScale = 0.12;
          const double f_step =
              std::abs(mvel[j]) * machine_.steps_per_mm[j] * kToneScale;
          phase[j] += kTwoPi * f_step / fs;
          if (phase[j] > kTwoPi) phase[j] -= kTwoPi * std::floor(phase[j] / kTwoPi);
          const double amp = motor_activity(mvel[j]);
          double v = 0.0;
          for (int h = 1; h <= 3; ++h) {
            if (f_step * h > nyquist || f_step < 1.0) break;
            v += std::sin(phase[j] * h) / static_cast<double>(h);
          }
          // The two microphone channels hear the motors with different
          // gains (stereo placement).
          tone_l += amp * v * (j == 0 ? 1.0 : 0.6);
          tone_r += amp * v * (j == 1 ? 1.0 : 0.6);
        }
        // Extruder gear tone.
        const double f_e = std::abs(flow.at(t)) * machine_.e_steps_per_mm;
        phase[3] += kTwoPi * f_e / fs;
        if (phase[3] > kTwoPi) phase[3] -= kTwoPi * std::floor(phase[3] / kTwoPi);
        double e_tone = 0.0;
        if (f_e > 1.0 && f_e < nyquist) e_tone = 0.3 * std::sin(phase[3]);
        const double white = rng.normal(0.0, 1.0);
        fan_lp += 0.05 * (white - fan_lp);
        const double fan_noise = 0.25 * fan.at(t) * fan_lp;
        // Frame resonance rung by XY acceleration: a deterministic,
        // aperiodic component that anchors audio alignment across runs
        // (real printheads thump the frame at every move boundary).
        const double thump =
            0.0004 * (sax.at(t) + 0.8 * say.at(t));
        const double ambient_l = rng.normal(0.0, 0.02 * noise);
        const double ambient_r = rng.normal(0.0, 0.02 * noise);
        out(n, 0) = 0.5 * tone_l + e_tone + fan_noise + thump + ambient_l;
        out(n, 1) = 0.5 * tone_r + e_tone + fan_noise + 0.8 * thump + ambient_r;
      }
      break;
    }
    case SideChannel::kEpt: {
      const TraceSampler mv0(trace.motor_vel[0], mr),
          mv1(trace.motor_vel[1], mr), mv2(trace.motor_vel[2], mr);
      const double mains_phase0 = rng.uniform(0.0, kTwoPi);
      for (std::size_t n = 0; n < n_out; ++n) {
        const double t = static_cast<double>(n) / fs;
        // 60 Hz mains dominates the raw capture (Section VIII-B), with a
        // faint motor-switching EMI floor amplitude-modulated by activity.
        const double mains = std::sin(kTwoPi * 60.0 * t + mains_phase0) +
                             0.12 * std::sin(kTwoPi * 180.0 * t + 3.0 * mains_phase0);
        // EMI floor proportional to total motor speed (switching activity
        // scales with step rate, not merely with a moving/idle flag).
        const double speed_sum = std::abs(mv0.at(t)) + std::abs(mv1.at(t)) +
                                 std::abs(mv2.at(t));
        const double emi = 0.006 * speed_sum * rng.normal(0.0, 1.0);
        out(n, 0) = mains + emi + rng.normal(0.0, 0.005 * noise);
      }
      break;
    }
    case SideChannel::kPwr: {
      const TraceSampler hd(trace.hotend_duty, mr), bd(trace.bed_duty, mr),
          fan(trace.fan, mr), mv0(trace.motor_vel[0], mr),
          mv1(trace.motor_vel[1], mr), mv2(trace.motor_vel[2], mr);
      for (std::size_t n = 0; n < n_out; ++n) {
        const double t = static_cast<double>(n) / fs;
        const double motor_w = 0.8 * (motor_activity(mv0.at(t)) +
                                      motor_activity(mv1.at(t)) +
                                      motor_activity(mv2.at(t)));
        const double watts = machine_.base_power +
                             hd.at(t) * machine_.heater_hotend_power +
                             bd.at(t) * machine_.heater_bed_power +
                             3.0 * fan.at(t) + motor_w;
        out(n, 0) = watts + rng.normal(0.0, 2.0 * noise);
      }
      break;
    }
  }

  if (!config_.apply_daq) return out;
  DaqConfig daq = config_.daq;
  daq.bits = side_channel_bits(ch);
  daq.full_scale = 0.0;  // quantization disabled by default; see DESIGN.md
  return apply_daq(out, daq, rng);
}

}  // namespace nsync::sensors
