#include "sensors/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nsync::sensors {

using nsync::signal::Signal;
using nsync::signal::SignalView;

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropout: return "dropout";
    case FaultKind::kStuckAt: return "stuck-at";
    case FaultKind::kSaturation: return "saturation";
    case FaultKind::kNanBurst: return "nan-burst";
    case FaultKind::kGainStep: return "gain-step";
    case FaultKind::kFrameDuplication: return "frame-duplication";
    case FaultKind::kClockSkew: return "clock-skew";
  }
  return "unknown";
}

void FaultConfig::validate() const {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0 || !std::isfinite(p)) {
      throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                  " must be a probability in [0, 1]");
    }
  };
  check_prob(dropout_rate, "dropout_rate");
  check_prob(stuck_rate, "stuck_rate");
  check_prob(nan_burst_rate, "nan_burst_rate");
  check_prob(gain_step_rate, "gain_step_rate");
  check_prob(duplication_rate, "duplication_rate");
  check_prob(inf_fraction, "inf_fraction");
  if (dropout_frames_mean < 1.0 || stuck_frames_mean < 1.0 ||
      nan_burst_frames_mean < 1.0) {
    throw std::invalid_argument(
        "FaultConfig: interval means must be >= 1 frame");
  }
  if (gain_step_std < 0.0 || !std::isfinite(gain_step_std)) {
    throw std::invalid_argument("FaultConfig: gain_step_std must be >= 0");
  }
  if (!std::isfinite(saturation_level)) {
    throw std::invalid_argument("FaultConfig: saturation_level must be finite");
  }
  if (clock_skew <= -1.0 || !std::isfinite(clock_skew)) {
    throw std::invalid_argument("FaultConfig: clock_skew must be > -1");
  }
  if (gain_drift_per_frame <= -1.0 || !std::isfinite(gain_drift_per_frame)) {
    throw std::invalid_argument(
        "FaultConfig: gain_drift_per_frame must be finite and > -1");
  }
  if (!std::isfinite(offset_drift_per_frame)) {
    throw std::invalid_argument(
        "FaultConfig: offset_drift_per_frame must be finite");
  }
}

FaultInjector::FaultInjector(FaultConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  cfg_.validate();
}

std::size_t FaultInjector::draw_length(double mean) {
  if (mean <= 1.0) return 1;
  return 1 + static_cast<std::size_t>(rng_.exponential(1.0 / (mean - 1.0)));
}

Signal FaultInjector::resample_skewed(const SignalView& s) {
  // Output sample k sits at input position skew_pos_ (advanced by 1 + skew
  // per output frame).  Positions live on the *global* input timeline so
  // consecutive chunks resample seamlessly; the last frame of the
  // previous chunk is retained for interpolation across the boundary.
  const double step = 1.0 + cfg_.clock_skew;
  const std::size_t chunk_start = frames_in_;
  const std::size_t chunk_end = frames_in_ + s.frames();
  Signal out = Signal::empty(s.channels(), s.sample_rate());
  if (s.frames() == 0) return out;
  out.reserve_frames(
      static_cast<std::size_t>(static_cast<double>(s.frames()) / step) + 2);
  std::vector<double> row(s.channels());
  while (skew_pos_ <= static_cast<double>(chunk_end - 1)) {
    const double pos = skew_pos_;
    const auto i0 = static_cast<std::size_t>(std::floor(pos));
    const double frac = pos - static_cast<double>(i0);
    for (std::size_t c = 0; c < s.channels(); ++c) {
      // i0 < chunk_start only when pos straddles the previous chunk's last
      // frame, which resample_skewed always saves before returning.
      const double a =
          i0 < chunk_start ? skew_prev_frame_[c] : s(i0 - chunk_start, c);
      const double b =
          i0 + 1 >= chunk_end ? a : s(i0 + 1 - chunk_start, c);
      row[c] = a + frac * (b - a);
    }
    out.append_frame(row);
    skew_pos_ += step;
  }
  skew_prev_frame_.assign(s.frame(s.frames() - 1).begin(),
                          s.frame(s.frames() - 1).end());
  have_skew_prev_ = true;
  return out;
}

void FaultInjector::corrupt_in_place(Signal& chunk, std::size_t base_frame) {
  const std::size_t channels = chunk.channels();
  if (held_frame_.size() != channels) {
    held_frame_.assign(channels, 0.0);
    have_held_frame_ = false;
  }
  for (std::size_t n = 0; n < chunk.frames(); ++n) {
    const std::size_t global = base_frame + n;
    // Slow drift advances on every input frame — including frames that a
    // burst later overwrites — so the drift trajectory is a function of
    // the input frame count alone, never of the other faults' outcomes.
    if (cfg_.gain_drift_per_frame != 0.0) {
      drift_gain_ *= 1.0 + cfg_.gain_drift_per_frame;
    }
    if (cfg_.offset_drift_per_frame != 0.0) {
      drift_offset_ += cfg_.offset_drift_per_frame;
    }
    // Gain step: a persistent multiplicative change from this frame on.
    if (cfg_.gain_step_rate > 0.0 && rng_.bernoulli(cfg_.gain_step_rate)) {
      gain_ *= std::exp(rng_.normal(0.0, cfg_.gain_step_std));
      events_.push_back({FaultKind::kGainStep, global, 1, gain_});
    }
    // Start new intervals.
    if (cfg_.stuck_rate > 0.0 && stuck_left_ == 0 &&
        rng_.bernoulli(cfg_.stuck_rate)) {
      stuck_left_ = draw_length(cfg_.stuck_frames_mean);
      events_.push_back({FaultKind::kStuckAt, global, stuck_left_, 0.0});
    }
    if (cfg_.nan_burst_rate > 0.0 && nan_left_ == 0 &&
        rng_.bernoulli(cfg_.nan_burst_rate)) {
      nan_left_ = draw_length(cfg_.nan_burst_frames_mean);
      events_.push_back({FaultKind::kNanBurst, global, nan_left_, 0.0});
    }

    auto frame = chunk.frame(n);
    if (nan_left_ > 0) {
      --nan_left_;
      const bool inf = cfg_.inf_fraction > 0.0 &&
                       rng_.bernoulli(cfg_.inf_fraction);
      const double junk =
          inf ? (rng_.bernoulli(0.5) ? std::numeric_limits<double>::infinity()
                                     : -std::numeric_limits<double>::infinity())
              : std::numeric_limits<double>::quiet_NaN();
      for (double& v : frame) v = junk;
      continue;  // a non-finite frame is never the held frame
    }
    if (stuck_left_ > 0 && have_held_frame_) {
      --stuck_left_;
      std::copy(held_frame_.begin(), held_frame_.end(), frame.begin());
      continue;
    }
    if (stuck_left_ > 0) --stuck_left_;  // nothing held yet: fault is moot

    for (double& v : frame) {
      v = v * (gain_ * drift_gain_) + drift_offset_;
      if (cfg_.saturation_level > 0.0) {
        v = std::clamp(v, -cfg_.saturation_level, cfg_.saturation_level);
      }
    }
    held_frame_.assign(frame.begin(), frame.end());
    have_held_frame_ = true;
  }
}

Signal FaultInjector::apply(const SignalView& s) {
  if (s.channels() == 0) {
    throw std::invalid_argument("FaultInjector::apply: zero-channel signal");
  }
  // 1. Amplitude faults on the original timeline.
  Signal amp = s.to_signal();
  corrupt_in_place(amp, frames_in_);

  // 2. Clock skew reshapes the timeline (before transport faults: the
  //    skew lives in the DAQ; duplication/dropout live in transport).
  Signal timed = cfg_.clock_skew != 0.0 ? resample_skewed(amp) : std::move(amp);

  // 3. Transport faults: duplication then dropout, per frame.
  Signal out = Signal::empty(timed.channels(), timed.sample_rate());
  out.reserve_frames(timed.frames() + 4);
  for (std::size_t n = 0; n < timed.frames(); ++n) {
    // Post-skew frames no longer map 1:1 to input frames; clamp the event
    // coordinate into this chunk's input range.
    const std::size_t global =
        frames_in_ + std::min(n, s.frames() == 0 ? 0 : s.frames() - 1);
    if (cfg_.dropout_rate > 0.0 && drop_left_ == 0 &&
        rng_.bernoulli(cfg_.dropout_rate)) {
      drop_left_ = draw_length(cfg_.dropout_frames_mean);
      events_.push_back({FaultKind::kDropout, global, drop_left_, 0.0});
    }
    if (drop_left_ > 0) {
      --drop_left_;
      continue;
    }
    out.append_frame(timed.frame(n));
    if (cfg_.duplication_rate > 0.0 && rng_.bernoulli(cfg_.duplication_rate)) {
      events_.push_back({FaultKind::kFrameDuplication, global, 1, 0.0});
      out.append_frame(timed.frame(n));
    }
  }

  frames_in_ += s.frames();
  frames_out_ += out.frames();
  return out;
}

Signal flatline_from(const SignalView& s, std::size_t from_frame,
                     double level) {
  Signal out = s.to_signal();
  for (std::size_t n = from_frame; n < out.frames(); ++n) {
    for (std::size_t c = 0; c < out.channels(); ++c) {
      out(n, c) = level;
    }
  }
  return out;
}

}  // namespace nsync::sensors
