// Composable, seeded sensor-fault model.
//
// The paper treats the sensing front end as a source of trouble in its own
// right: Section I lists frame drops among the causes of time noise and
// footnote 2 notes the side-channel gains are "susceptible to changes".
// `apply_daq` models the benign version of that (quantization, gain
// jitter, rare frame drops); the FaultInjector models the *degraded*
// regimes a production IDS must survive — a loose connector, a saturated
// amplifier, a DAQ whose clock drifts, a sensor that goes dark mid-print.
//
// Faults compose: every enabled fault type is evaluated per input frame
// from one seeded Rng, so a given (config, seed) pair always yields the
// same output, and the injector keeps its state (gain level, in-progress
// burst, resampling phase) across apply() calls so it can sit inside a
// streaming pipeline and corrupt chunk after chunk consistently.
//
// Amplitude faults act on the original timeline (gain step, stuck-at,
// NaN/Inf burst, saturation); timeline faults (clock skew, duplication,
// dropout) then reshape it.  Every fault interval is recorded in the
// event log with its logical input-frame position, giving tests and
// benches exact ground truth for what was injected where.
#ifndef NSYNC_SENSORS_FAULT_INJECTOR_HPP
#define NSYNC_SENSORS_FAULT_INJECTOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::sensors {

/// The fault taxonomy.  Rates are per input frame; interval lengths are
/// drawn 1 + Exponential(mean - 1) so every burst lasts at least one
/// frame.
enum class FaultKind {
  kDropout,     ///< contiguous frames lost in transport (shortens stream)
  kStuckAt,     ///< output freezes at the last delivered frame
  kSaturation,  ///< amplifier clipping at +/- a fixed level
  kNanBurst,    ///< ADC glitch emitting NaN (or +/-Inf) samples
  kGainStep,    ///< abrupt multiplicative gain change that persists
  kFrameDuplication,  ///< a frame is delivered twice (lengthens stream)
  kClockSkew,   ///< sampling-clock rate error (resampled timeline)
};

[[nodiscard]] std::string fault_kind_name(FaultKind kind);

/// All fault probabilities default to 0 (a default FaultConfig is a
/// transparent pass-through), so callers enable exactly the regimes they
/// want to study.
struct FaultConfig {
  /// Per-frame probability that a dropout interval starts.
  double dropout_rate = 0.0;
  /// Mean dropout length in frames (>= 1).
  double dropout_frames_mean = 8.0;

  /// Per-frame probability that the output freezes (stuck-at interval).
  double stuck_rate = 0.0;
  /// Mean stuck interval length in frames (>= 1).
  double stuck_frames_mean = 16.0;

  /// Per-frame probability that a non-finite burst starts.
  double nan_burst_rate = 0.0;
  /// Mean burst length in frames (>= 1).
  double nan_burst_frames_mean = 4.0;
  /// Fraction of burst frames emitting +/-Inf instead of NaN.
  double inf_fraction = 0.25;

  /// Per-frame probability of an abrupt gain step.
  double gain_step_rate = 0.0;
  /// Std of the log-gain step (0.2 ~= +/-20 % per step).
  double gain_step_std = 0.2;

  /// Per-frame probability that the frame is delivered twice.
  double duplication_rate = 0.0;

  /// Clip the output to [-saturation_level, +saturation_level]; <= 0
  /// disables clipping.
  double saturation_level = 0.0;

  /// Relative sampling-clock rate error: the stream is resampled so that
  /// `1 + clock_skew` input frames produce one output frame step (0.001 =
  /// the DAQ clock runs 0.1 % fast).  0 disables resampling.
  double clock_skew = 0.0;

  /// Deterministic slow sensor drift — the aging/temperature regime the
  /// baseline registry adapts to, as opposed to the *abrupt* random
  /// kGainStep above.  Every input frame multiplies the drift gain by
  /// `1 + gain_drift_per_frame` and adds `offset_drift_per_frame` to the
  /// drift offset; a frame's samples become
  /// `v * (gain * drift_gain) + drift_offset` (before saturation).  No
  /// randomness is consumed, so enabling drift does not perturb the other
  /// faults' RNG stream, and no events are logged (drift is continuous,
  /// not an interval).  0 disables.
  double gain_drift_per_frame = 0.0;
  double offset_drift_per_frame = 0.0;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

/// One injected fault interval, in logical *input* frame coordinates
/// (indices since the first frame ever passed to apply()).
struct FaultEvent {
  FaultKind kind = FaultKind::kDropout;
  std::size_t start = 0;   ///< first affected input frame
  std::size_t frames = 0;  ///< interval length (1 for point events)
  double value = 0.0;      ///< gain after a step; saturation level; 0 else
};

/// Stateful, streaming-capable fault model.  apply() may be called once
/// with a whole signal or repeatedly with consecutive chunks; the fault
/// state carries across calls.
class FaultInjector {
 public:
  FaultInjector(FaultConfig cfg, std::uint64_t seed);

  /// Corrupts `s` (the next chunk of the stream) and returns the faulted
  /// frames.  The output length can differ from the input length
  /// (dropout, duplication, clock skew).
  [[nodiscard]] nsync::signal::Signal apply(const nsync::signal::SignalView& s);

  /// Ground-truth log of every fault injected so far.
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  /// Total input frames consumed so far.
  [[nodiscard]] std::size_t frames_in() const { return frames_in_; }
  /// Total output frames produced so far.
  [[nodiscard]] std::size_t frames_out() const { return frames_out_; }
  /// Current cumulative gain (product of all gain steps).
  [[nodiscard]] double gain() const { return gain_; }
  /// Current cumulative drift gain/offset (see FaultConfig drift fields).
  [[nodiscard]] double drift_gain() const { return drift_gain_; }
  [[nodiscard]] double drift_offset() const { return drift_offset_; }

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

 private:
  void corrupt_in_place(nsync::signal::Signal& chunk, std::size_t base_frame);
  [[nodiscard]] nsync::signal::Signal resample_skewed(
      const nsync::signal::SignalView& s);
  [[nodiscard]] std::size_t draw_length(double mean);

  FaultConfig cfg_;
  nsync::signal::Rng rng_;
  std::vector<FaultEvent> events_;

  // Streaming state.
  std::size_t frames_in_ = 0;
  std::size_t frames_out_ = 0;
  double gain_ = 1.0;
  double drift_gain_ = 1.0;
  double drift_offset_ = 0.0;
  std::size_t stuck_left_ = 0;
  std::size_t nan_left_ = 0;
  std::size_t drop_left_ = 0;
  std::vector<double> held_frame_;   // last clean frame (stuck-at source)
  bool have_held_frame_ = false;
  // Clock-skew resampler state: position of the next output sample on the
  // global input timeline, plus the last input frame of the previous
  // chunk for cross-chunk interpolation.
  double skew_pos_ = 0.0;
  std::vector<double> skew_prev_frame_;
  bool have_skew_prev_ = false;
};

/// Convenience for the "sensor goes dark" scenario: returns a copy of `s`
/// whose frames from `from_frame` on are replaced by the constant `level`
/// (a flatlined, zero-information channel).  `from_frame` past the end
/// returns the signal unchanged.
[[nodiscard]] nsync::signal::Signal flatline_from(
    const nsync::signal::SignalView& s, std::size_t from_frame,
    double level = 0.0);

}  // namespace nsync::sensors

#endif  // NSYNC_SENSORS_FAULT_INJECTOR_HPP
