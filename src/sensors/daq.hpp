// Data-acquisition model: quantization to the ADC bit depth, per-run gain
// jitter (the paper notes that side-channel gains are "susceptible to
// changes", footnote 2), and frame drops (listed in Section I as a source
// of time noise).
#ifndef NSYNC_SENSORS_DAQ_HPP
#define NSYNC_SENSORS_DAQ_HPP

#include <cstddef>

#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::sensors {

struct DaqConfig {
  /// ADC resolution; quantization step = full_scale / 2^(bits-1).
  int bits = 16;
  /// Full-scale amplitude for quantization; <= 0 disables quantization.
  double full_scale = 0.0;
  /// Std of the per-run multiplicative gain error (0.05 = +-5 % typical).
  double gain_jitter_std = 0.05;
  /// Probability that any given frame is dropped.
  double frame_drop_probability = 0.0002;
  /// Frame size in samples.
  std::size_t frame_samples = 64;
};

/// Applies the DAQ model to a rendered sensor signal (in place semantics via
/// return): gain jitter -> quantization -> frame drops.  Frame drops remove
/// whole frames, shortening the signal and shifting all later samples
/// earlier — a pure time-noise contribution.  Every frame, including a
/// trailing partial frame (when the signal length is not a multiple of
/// frame_samples), makes exactly one drop draw and is drop-eligible; this
/// keeps the RNG stream consumption independent of the signal length
/// remainder and is pinned by regression tests.
[[nodiscard]] nsync::signal::Signal apply_daq(
    const nsync::signal::SignalView& s, const DaqConfig& cfg,
    nsync::signal::Rng& rng);

/// Quantizes each sample to the grid implied by `bits` and `full_scale`.
[[nodiscard]] nsync::signal::Signal quantize(const nsync::signal::SignalView& s,
                                             int bits, double full_scale);

}  // namespace nsync::sensors

#endif  // NSYNC_SENSORS_DAQ_HPP
