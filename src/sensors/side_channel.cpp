#include "sensors/side_channel.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace nsync::sensors {

const std::vector<SideChannel>& all_side_channels() {
  static const std::vector<SideChannel> kAll = {
      SideChannel::kAcc, SideChannel::kTmp, SideChannel::kMag,
      SideChannel::kAud, SideChannel::kEpt, SideChannel::kPwr};
  return kAll;
}

std::string side_channel_name(SideChannel ch) {
  switch (ch) {
    case SideChannel::kAcc: return "ACC";
    case SideChannel::kTmp: return "TMP";
    case SideChannel::kMag: return "MAG";
    case SideChannel::kAud: return "AUD";
    case SideChannel::kEpt: return "EPT";
    case SideChannel::kPwr: return "PWR";
  }
  return "???";
}

SideChannel parse_side_channel(const std::string& name) {
  std::string s;
  for (char c : name) {
    s.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  for (SideChannel ch : all_side_channels()) {
    if (side_channel_name(ch) == s) return ch;
  }
  throw std::invalid_argument("parse_side_channel: unknown channel '" + name +
                              "'");
}

std::size_t side_channel_components(SideChannel ch) {
  switch (ch) {
    case SideChannel::kAcc: return 6;
    case SideChannel::kTmp: return 1;
    case SideChannel::kMag: return 3;
    case SideChannel::kAud: return 2;
    case SideChannel::kEpt: return 1;
    case SideChannel::kPwr: return 1;
  }
  return 0;
}

double side_channel_paper_rate(SideChannel ch) {
  switch (ch) {
    case SideChannel::kAcc: return 4000.0;
    case SideChannel::kTmp: return 4000.0;
    case SideChannel::kMag: return 100.0;
    case SideChannel::kAud: return 48000.0;
    case SideChannel::kEpt: return 96000.0;
    case SideChannel::kPwr: return 12000.0;
  }
  return 0.0;
}

int side_channel_bits(SideChannel ch) {
  switch (ch) {
    case SideChannel::kAcc:
    case SideChannel::kTmp:
    case SideChannel::kMag:
      return 16;
    case SideChannel::kAud:
    case SideChannel::kEpt:
    case SideChannel::kPwr:
      return 24;
  }
  return 16;
}

}  // namespace nsync::sensors
