// The sensor rig: renders a simulated MotionTrace into each of the six
// side-channel signals of Table II.
//
// Model summary (see DESIGN.md for the substitution argument):
//  ACC  head acceleration + frame resonance + wideband noise; gyro channels
//       react to cross-axis acceleration (strongly printer-state coupled)
//  TMP  sensor die temperature: slow thermal state + noise (weakly coupled)
//  MAG  stepper coil currents through a fixed coupling matrix + geomagnetic
//       offset + strong noise (coupled but noisy, as in Fig. 10)
//  AUD  per-motor step-frequency tones with harmonics + fan/ambient noise
//       (strongly coupled)
//  EPT  60 Hz mains hum dominating a faint motion-correlated EMI floor (raw
//       signal useless, spectrogram informative — Section VIII-B)
//  PWR  heater-dominated electrical power draw (weakly coupled)
#ifndef NSYNC_SENSORS_RIG_HPP
#define NSYNC_SENSORS_RIG_HPP

#include <cstdint>

#include "printer/executor.hpp"
#include "printer/machine.hpp"
#include "sensors/daq.hpp"
#include "sensors/side_channel.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::sensors {

/// Rig-wide rendering options.
struct RigConfig {
  /// Multiplies all Table II sampling rates.  The paper records AUD at
  /// 48 kHz and EPT at 96 kHz; eval runs use rate_scale < 1 to keep the
  /// synthetic datasets tractable (recorded in EXPERIMENTS.md).
  double rate_scale = 1.0;
  /// Per-channel explicit rate override in Hz; <= 0 means
  /// paper_rate * rate_scale.
  double acc_rate = 0.0;
  double tmp_rate = 0.0;
  double mag_rate = 0.0;
  double aud_rate = 0.0;
  double ept_rate = 0.0;
  double pwr_rate = 0.0;
  /// Scales every additive noise source.
  double noise_scale = 1.0;
  /// DAQ model shared by all channels; bits/full_scale are set per channel.
  DaqConfig daq;
  /// Disables the DAQ stage entirely (deterministic unit tests).
  bool apply_daq = true;
};

/// Renders side-channel signals from motion traces.
class SensorRig {
 public:
  SensorRig(printer::MachineConfig machine, RigConfig config);

  /// Effective sampling rate for `ch` under this rig's configuration.
  [[nodiscard]] double rate(SideChannel ch) const;

  /// Renders one side channel from `trace`.  `rng` drives sensor noise and
  /// the DAQ model; pass a per-run fork so runs are independent.
  [[nodiscard]] nsync::signal::Signal render(SideChannel ch,
                                             const printer::MotionTrace& trace,
                                             nsync::signal::Rng& rng) const;

  [[nodiscard]] const printer::MachineConfig& machine() const {
    return machine_;
  }
  [[nodiscard]] const RigConfig& config() const { return config_; }

 private:
  printer::MachineConfig machine_;
  RigConfig config_;
};

}  // namespace nsync::sensors

#endif  // NSYNC_SENSORS_RIG_HPP
