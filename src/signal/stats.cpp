#include "signal/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/simd/simd.hpp"

namespace nsync::signal {

namespace simd = nsync::dsp::simd;

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return simd::ops().sum(v.data(), v.size()) / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double mu = mean(v);
  return simd::ops().centered_energy(v.data(), mu, v.size()) /
         static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double rms(std::span<const double> v) {
  if (v.empty()) return 0.0;
  // Centered energy about 0 is exactly the sum of squares (x - 0.0 == x
  // bitwise for every finite x, including -0.0).
  const double acc = simd::ops().centered_energy(v.data(), 0.0, v.size());
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double min_value(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(v.begin(), v.end());
}

std::size_t argmax(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("argmax: empty input");
  return static_cast<std::size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

std::size_t argmin(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("argmin: empty input");
  return static_cast<std::size_t>(
      std::distance(v.begin(), std::min_element(v.begin(), v.end())));
}

double pearson(std::span<const double> u, std::span<const double> v) {
  if (u.size() != v.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  if (u.empty()) return 0.0;
  const double mu = mean(u);
  const double mv = mean(v);
  double num = 0.0, du2 = 0.0, dv2 = 0.0;
  simd::ops().pearson_accumulate(u.data(), v.data(), mu, mv, u.size(), &num,
                                 &du2, &dv2);
  // Degenerate guard shared with the sliding-correlation window
  // normalization (simd::degenerate_variance).  The scale argument is the
  // centered energy itself — the accumulation runs over centered samples,
  // exactly like the sliding path's prefix sums over the globally
  // centered signal — so the guard stays offset-invariant (a large DC
  // must not widen the threshold; Pearson is offset-invariant).  The
  // !(.. > ..) form routes NaN from non-finite inputs into the
  // degenerate branch instead of past it.
  if (simd::degenerate_variance(du2, du2) ||
      simd::degenerate_variance(dv2, dv2) || !std::isfinite(num)) {
    return 0.0;
  }
  return num / (std::sqrt(du2) * std::sqrt(dv2));
}

bool finite_window(const SignalView& s) {
  const double* p = s.data();
  const std::size_t n = s.frames() * s.channels();
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool degenerate_window(const SignalView& s) {
  if (s.frames() < 2) return true;
  if (!finite_window(s)) return true;  // one NaN poisons every channel's FFT
  for (std::size_t c = 0; c < s.channels(); ++c) {
    const double first = s(0, c);
    for (std::size_t n = 1; n < s.frames(); ++n) {
      if (s(n, c) != first) return false;  // this channel carries information
    }
  }
  return true;  // every channel constant
}

std::vector<double> channel_means(const SignalView& s) {
  std::vector<double> out(s.channels(), 0.0);
  if (s.frames() == 0) return out;
  simd::ops().channel_sums(s.data(), s.frames(), s.channels(), out.data());
  for (auto& x : out) x /= static_cast<double>(s.frames());
  return out;
}

std::vector<double> channel_stddevs(const SignalView& s) {
  std::vector<double> out(s.channels(), 0.0);
  if (s.frames() < 2) return out;
  const auto mus = channel_means(s);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      const double d = s(n, c) - mus[c];
      out[c] += d * d;
    }
  }
  for (auto& x : out) {
    x = std::sqrt(x / static_cast<double>(s.frames()));
  }
  return out;
}

std::vector<double> channel_peaks(const SignalView& s) {
  std::vector<double> out(s.channels(), 0.0);
  for (std::size_t n = 0; n < s.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      out[c] = std::max(out[c], std::abs(s(n, c)));
    }
  }
  return out;
}

}  // namespace nsync::signal
