// Drop-front frame buffer for streaming consumers.
//
// A FrameRingBuffer stores a sliding window of a conceptually unbounded
// frame stream.  Frames keep their *logical* index (the position in the
// full stream since the first append), but only the suffix that the
// consumer still needs is retained in memory: once drop_before(f) marks
// everything before logical frame f as dead, the storage is reclaimed by
// an amortized-O(1) compaction, so peak memory is proportional to the
// largest retained span plus the largest appended chunk — independent of
// the total stream length.  This is what keeps DwmSynchronizer's memory
// O(n_win + n_hop) over an arbitrarily long print instead of O(T).
//
// Views over any retained logical range are contiguous SignalViews, so
// every downstream analysis function works unchanged.
#ifndef NSYNC_SIGNAL_RING_BUFFER_HPP
#define NSYNC_SIGNAL_RING_BUFFER_HPP

#include <cstddef>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::signal {

class ByteWriter;
class ByteReader;

class FrameRingBuffer {
 public:
  /// An empty stream of `channels`-wide frames at `sample_rate` Hz.
  /// Throws std::invalid_argument on a zero channel count or a
  /// non-positive rate.
  FrameRingBuffer(std::size_t channels, double sample_rate);

  [[nodiscard]] std::size_t channels() const { return channels_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }

  /// Logical index of the first retained frame.
  [[nodiscard]] std::size_t start() const { return start_; }
  /// Logical index one past the last appended frame (= total frames ever
  /// appended).
  [[nodiscard]] std::size_t end() const { return end_; }
  /// Frames currently held in memory (end() - start()).
  [[nodiscard]] std::size_t retained_frames() const { return end_ - start_; }
  /// Frames that fit in the current allocation (diagnostic; used by the
  /// bounded-memory tests).
  [[nodiscard]] std::size_t capacity_frames() const {
    return data_.capacity() / channels_;
  }

  /// Appends frames to the logical stream; channel counts must match.
  void append(const SignalView& frames);

  /// Marks every frame before logical index `frame` as dead.  Indices in
  /// the past (< start()) are a no-op; indices beyond end() clamp to
  /// end().  Storage is reclaimed lazily: the live frames are slid to the
  /// front of the buffer only once the dead prefix is at least as large
  /// as the live suffix, making the memmove amortized O(1) per frame.
  void drop_before(std::size_t frame);

  /// Contiguous view over logical frames [n1, n2).  Throws
  /// std::out_of_range unless start() <= n1 <= n2 <= end().
  [[nodiscard]] SignalView view(std::size_t n1, std::size_t n2) const;

  /// View over everything still retained ([start(), end())).
  [[nodiscard]] SignalView retained() const {
    return SignalView(data_.data() + head_ * channels_, retained_frames(),
                      channels_, sample_rate_);
  }

  /// Pre-allocates room for `frames` retained frames.
  void reserve_frames(std::size_t frames) {
    data_.reserve(frames * channels_);
  }

  /// Serializes the logical stream position and the retained frames
  /// (checkpointing).  The physical head offset is not stored; restored
  /// buffers are normalized to head 0.
  void save_state(ByteWriter& w) const;

  /// Restores state written by save_state into this buffer, replacing its
  /// contents.  Throws CheckpointError: kMismatch when the serialized
  /// channel count / sample rate differ from this buffer's, kCorrupt /
  /// kTruncated on malformed input.  On throw, *this is unchanged.
  void restore_state(ByteReader& r);

 private:
  void compact();

  std::vector<double> data_;  // row-major; frame f lives at head_ + (f - start_)
  std::size_t head_ = 0;      // offset (in frames) of start_ within data_
  std::size_t start_ = 0;     // logical index of first retained frame
  std::size_t end_ = 0;       // logical index one past the last frame
  std::size_t channels_ = 0;
  double sample_rate_ = 0.0;
};

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_RING_BUFFER_HPP
