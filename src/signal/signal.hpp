// Multichannel sampled-signal container and non-owning views.
//
// Implements the signal notation of Section V-A of the paper:
//   x[n]      -- the n-th frame (a vector of C channel values)
//   x[n, c]   -- the n-th sample of channel c
//   x[n1:n2]  -- a slice from n1 (inclusive) to n2 (exclusive)
//   x[:, c]   -- all samples of channel c
#ifndef NSYNC_SIGNAL_SIGNAL_HPP
#define NSYNC_SIGNAL_SIGNAL_HPP

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace nsync::signal {

class Signal;

/// Non-owning, read-only view over a contiguous run of frames of a Signal.
///
/// The view assumes row-major layout: frame n, channel c lives at
/// data()[n * channels() + c].  A SignalView is cheap to copy and is the
/// preferred parameter type for all analysis functions.
class SignalView {
 public:
  SignalView() = default;

  /// Wraps raw storage. `data` must contain `frames * channels` doubles.
  SignalView(const double* data, std::size_t frames, std::size_t channels,
             double sample_rate)
      : data_(data),
        frames_(frames),
        channels_(channels),
        sample_rate_(sample_rate) {}

  /// Implicit conversion from an owning Signal (defined out of line).
  SignalView(const Signal& s);  // NOLINT(google-explicit-constructor)

  /// Number of frames (samples per channel), N in the paper.
  [[nodiscard]] std::size_t frames() const { return frames_; }
  /// Number of channels, C in the paper.
  [[nodiscard]] std::size_t channels() const { return channels_; }
  /// Sampling frequency f_s in Hz.
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  /// Duration in seconds (frames / f_s).
  [[nodiscard]] double duration() const {
    return sample_rate_ > 0.0 ? static_cast<double>(frames_) / sample_rate_
                              : 0.0;
  }
  [[nodiscard]] bool empty() const { return frames_ == 0; }
  [[nodiscard]] const double* data() const { return data_; }

  /// x[n, c] with bounds checking.
  [[nodiscard]] double at(std::size_t frame, std::size_t channel) const {
    check_frame(frame);
    check_channel(channel);
    return data_[frame * channels_ + channel];
  }

  /// x[n, c] without bounds checking.
  double operator()(std::size_t frame, std::size_t channel) const {
    return data_[frame * channels_ + channel];
  }

  /// The n-th frame as a span of `channels()` values.
  [[nodiscard]] std::span<const double> frame(std::size_t n) const {
    check_frame(n);
    return {data_ + n * channels_, channels_};
  }

  /// x[n1:n2] — sub-view over frames [n1, n2).  Throws on out-of-range.
  [[nodiscard]] SignalView slice(std::size_t n1, std::size_t n2) const;

  /// x[n1:n2] where the requested range is clamped into [0, frames()].
  /// Never throws; the result may be empty.
  [[nodiscard]] SignalView clamped_slice(std::ptrdiff_t n1,
                                         std::ptrdiff_t n2) const;

  /// Copies channel c out into a contiguous vector (x[:, c]).
  [[nodiscard]] std::vector<double> channel(std::size_t c) const;

  /// Copies channel c into `out`, which must have exactly frames()
  /// elements.  Allocation-free alternative to channel() for hot paths.
  void channel_into(std::size_t c, std::span<double> out) const;

  /// Deep copy into an owning Signal.
  [[nodiscard]] Signal to_signal() const;

 private:
  void check_frame(std::size_t n) const {
    if (n >= frames_) {
      throw std::out_of_range("SignalView: frame " + std::to_string(n) +
                              " >= " + std::to_string(frames_));
    }
  }
  void check_channel(std::size_t c) const {
    if (c >= channels_) {
      throw std::out_of_range("SignalView: channel " + std::to_string(c) +
                              " >= " + std::to_string(channels_));
    }
  }

  const double* data_ = nullptr;
  std::size_t frames_ = 0;
  std::size_t channels_ = 0;
  double sample_rate_ = 0.0;
};

/// Owning multichannel signal with row-major storage.
///
/// Frames can be appended incrementally, which supports the streaming
/// (real-time) use of DWM where the observed signal grows while the
/// printing process runs.
class Signal {
 public:
  Signal() = default;

  /// Creates a zero-filled signal with `frames` frames of `channels`
  /// channels sampled at `sample_rate` Hz.
  Signal(std::size_t frames, std::size_t channels, double sample_rate);

  /// Creates an empty (zero-frame) signal with a fixed channel count.
  static Signal empty(std::size_t channels, double sample_rate);

  /// Builds a single-channel signal from a vector of samples.
  static Signal from_samples(std::vector<double> samples, double sample_rate);

  /// Builds a multichannel signal from channel-major data:
  /// `channels[c][n]` becomes x[n, c].  All channels must share a length.
  static Signal from_channels(const std::vector<std::vector<double>>& channels,
                              double sample_rate);

  [[nodiscard]] std::size_t frames() const { return frames_; }
  [[nodiscard]] std::size_t channels() const { return channels_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  [[nodiscard]] double duration() const {
    return sample_rate_ > 0.0 ? static_cast<double>(frames_) / sample_rate_
                              : 0.0;
  }
  [[nodiscard]] bool empty() const { return frames_ == 0; }

  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] double* data() { return data_.data(); }

  /// x[n, c] with bounds checking (mutable / const).
  [[nodiscard]] double& at(std::size_t frame, std::size_t channel);
  [[nodiscard]] double at(std::size_t frame, std::size_t channel) const;

  /// x[n, c] without bounds checking.
  double& operator()(std::size_t frame, std::size_t channel) {
    return data_[frame * channels_ + channel];
  }
  double operator()(std::size_t frame, std::size_t channel) const {
    return data_[frame * channels_ + channel];
  }

  /// The n-th frame as a mutable / const span.
  [[nodiscard]] std::span<double> frame(std::size_t n);
  [[nodiscard]] std::span<const double> frame(std::size_t n) const;

  /// Appends one frame; `values.size()` must equal channels().  Storage
  /// grows geometrically (see reserve_frames), so appending N frames one
  /// at a time costs O(N) total copies.
  void append_frame(std::span<const double> values);

  /// Appends all frames of `other`; channel counts must match.
  void append(const SignalView& other);

  /// x[n1:n2] as a non-owning view.
  [[nodiscard]] SignalView slice(std::size_t n1, std::size_t n2) const {
    return view().slice(n1, n2);
  }

  /// Whole-signal view.
  [[nodiscard]] SignalView view() const {
    return SignalView(data_.data(), frames_, channels_, sample_rate_);
  }

  /// Copies channel c (x[:, c]) into a vector.
  [[nodiscard]] std::vector<double> channel(std::size_t c) const {
    return view().channel(c);
  }

  /// Replaces the sampling rate tag (e.g. after decimation).
  void set_sample_rate(double fs) { sample_rate_ = fs; }

  /// Reserves storage for at least `frames` total frames (streaming
  /// ergonomics).  Append-heavy producers (sensor rendering, streaming
  /// STFT, eval runners) should call this up front to avoid repeated
  /// reallocation; without it, appends still grow the buffer
  /// geometrically (never per-frame).
  void reserve_frames(std::size_t frames) { data_.reserve(frames * channels_); }

  /// Backwards-compatible alias for reserve_frames().
  void reserve(std::size_t frames) { reserve_frames(frames); }

  /// Frames that fit in the current allocation.
  [[nodiscard]] std::size_t capacity_frames() const {
    return channels_ == 0 ? 0 : data_.capacity() / channels_;
  }

 private:
  /// Guarantees room for `extra` more frames, growing geometrically
  /// (doubling) so a long run of appends costs amortized O(1) per frame.
  void grow_for(std::size_t extra) {
    const std::size_t need = data_.size() + extra * channels_;
    if (need > data_.capacity()) {
      data_.reserve(std::max(need, data_.capacity() * 2));
    }
  }

  std::vector<double> data_;  // row-major, frames_ x channels_
  std::size_t frames_ = 0;
  std::size_t channels_ = 0;
  double sample_rate_ = 0.0;
};

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_SIGNAL_HPP
