#include "signal/io.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace nsync::signal {

static_assert(std::endian::native == std::endian::little,
              "NSIG serialization assumes a little-endian host");

namespace {

constexpr char kMagic[4] = {'N', 'S', 'I', 'G'};
constexpr std::uint32_t kVersion = 1;
// Backstop against malformed headers asking for absurd allocations.
constexpr std::uint64_t kMaxElements = 1ULL << 34;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error("read_signal: truncated input");
  }
  return value;
}

}  // namespace

void write_signal(std::ostream& out, const SignalView& s) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(s.frames()));
  write_pod(out, static_cast<std::uint64_t>(s.channels()));
  write_pod(out, s.sample_rate());
  out.write(reinterpret_cast<const char*>(s.data()),
            static_cast<std::streamsize>(s.frames() * s.channels() *
                                         sizeof(double)));
  if (!out) {
    throw std::runtime_error("write_signal: stream write failed");
  }
}

Signal read_signal(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("read_signal: bad magic (not an NSIG file)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("read_signal: unsupported version " +
                             std::to_string(version));
  }
  const auto frames = read_pod<std::uint64_t>(in);
  const auto channels = read_pod<std::uint64_t>(in);
  const auto rate = read_pod<double>(in);
  // Division form avoids the frames * channels overflow a forged header
  // could use to sneak past the element cap.
  if (channels == 0 || rate <= 0.0 || frames > kMaxElements / channels) {
    throw std::runtime_error("read_signal: implausible header");
  }
  // Read the payload in bounded chunks, growing the signal as data
  // actually arrives: a forged header claiming billions of frames over a
  // tiny (or truncated) stream fails after at most one chunk instead of
  // forcing a huge upfront allocation.
  Signal s = Signal::empty(static_cast<std::size_t>(channels), rate);
  constexpr std::uint64_t kChunkBytes = 1ULL << 20;
  const std::uint64_t frames_per_chunk =
      std::max<std::uint64_t>(1, kChunkBytes / (channels * sizeof(double)));
  std::vector<double> chunk;
  for (std::uint64_t done = 0; done < frames;) {
    const std::uint64_t batch = std::min(frames - done, frames_per_chunk);
    chunk.resize(static_cast<std::size_t>(batch * channels));
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(batch * channels * sizeof(double)));
    if (!in) {
      throw std::runtime_error("read_signal: truncated payload");
    }
    s.append(SignalView(chunk.data(), static_cast<std::size_t>(batch),
                        static_cast<std::size_t>(channels), rate));
    done += batch;
  }
  return s;
}

void save_signal(const std::string& path, const SignalView& s) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_signal: cannot open '" + path + "'");
  }
  write_signal(out, s);
}

Signal load_signal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_signal: cannot open '" + path + "'");
  }
  return read_signal(in);
}

void write_csv(std::ostream& out, const SignalView& s, int precision) {
  out.precision(precision);
  out << "t";
  for (std::size_t c = 0; c < s.channels(); ++c) {
    out << ",ch" << c;
  }
  out << '\n';
  for (std::size_t n = 0; n < s.frames(); ++n) {
    out << static_cast<double>(n) / s.sample_rate();
    for (std::size_t c = 0; c < s.channels(); ++c) {
      out << ',' << s(n, c);
    }
    out << '\n';
  }
}

}  // namespace nsync::signal
