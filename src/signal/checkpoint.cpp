#include "signal/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace nsync::signal {

static_assert(std::endian::native == std::endian::little,
              "checkpoint serialization assumes a little-endian host");

namespace {

constexpr std::array<char, 4> kMagic = {'N', 'C', 'K', 'P'};
// v2: RealtimeMonitor serializes the benign-baseline accumulator and fleet
// payloads carry the baseline-registry section; v1 files predate per-device
// adaptation and are rejected rather than restored with a silently empty
// baseline.
constexpr std::uint32_t kVersion = 2;
// Header: magic + u32 version + u64 payload length; footer: u32 CRC.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kFooterBytes = 4;

[[nodiscard]] std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

std::string checkpoint_error_kind_name(CheckpointErrorKind k) {
  switch (k) {
    case CheckpointErrorKind::kIo: return "checkpoint io error";
    case CheckpointErrorKind::kBadMagic: return "checkpoint bad magic";
    case CheckpointErrorKind::kBadVersion: return "checkpoint bad version";
    case CheckpointErrorKind::kTruncated: return "checkpoint truncated";
    case CheckpointErrorKind::kCorrupt: return "checkpoint corrupt";
    case CheckpointErrorKind::kMismatch: return "checkpoint mismatch";
  }
  return "checkpoint error";
}

std::uint32_t crc32(const void* data, std::size_t bytes) {
  // Table-driven reflected CRC-32 (polynomial 0xEDB88320).  The table is
  // built once on first use; thread-safe via static-local init.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// ByteWriter

void ByteWriter::append(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void ByteWriter::f64_array(std::span<const double> values) {
  pod<std::uint64_t>(values.size());
  append(values.data(), values.size() * sizeof(double));
}

void ByteWriter::u8_array(std::span<const std::uint8_t> values) {
  pod<std::uint64_t>(values.size());
  append(values.data(), values.size());
}

void ByteWriter::str(const std::string& s) {
  pod<std::uint64_t>(s.size());
  append(s.data(), s.size());
}

void ByteWriter::signal(const SignalView& s) {
  pod<std::uint64_t>(s.frames());
  pod<std::uint64_t>(s.channels());
  pod<double>(s.sample_rate());
  f64_array({s.data(), s.frames() * s.channels()});
}

std::size_t ByteWriter::begin_section(std::uint32_t id) {
  pod<std::uint32_t>(id);
  const std::size_t token = buf_.size();
  pod<std::uint64_t>(0);  // patched by end_section
  return token;
}

void ByteWriter::end_section(std::size_t token) {
  const std::uint64_t length = buf_.size() - token - sizeof(std::uint64_t);
  std::memcpy(buf_.data() + token, &length, sizeof(length));
}

// ---------------------------------------------------------------------------
// ByteReader

void ByteReader::require(std::size_t n) const {
  if (n > remaining()) {
    throw CheckpointError(
        CheckpointErrorKind::kTruncated,
        "need " + std::to_string(n) + " bytes, have " +
            std::to_string(remaining()));
  }
}

std::vector<double> ByteReader::f64_array() {
  const auto count = pod<std::uint64_t>();
  if (count > remaining() / sizeof(double)) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "f64 array of " + std::to_string(count) +
                              " elements exceeds remaining bytes");
  }
  std::vector<double> out(static_cast<std::size_t>(count));
  std::memcpy(out.data(), data_.data() + pos_, out.size() * sizeof(double));
  pos_ += out.size() * sizeof(double);
  return out;
}

std::vector<std::uint8_t> ByteReader::u8_array() {
  const auto count = pod<std::uint64_t>();
  if (count > remaining()) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "u8 array of " + std::to_string(count) +
                              " elements exceeds remaining bytes");
  }
  std::vector<std::uint8_t> out(
      data_.begin() + static_cast<std::ptrdiff_t>(pos_),
      data_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += static_cast<std::size_t>(count);
  return out;
}

std::string ByteReader::str() {
  const auto count = pod<std::uint64_t>();
  if (count > remaining()) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "string of " + std::to_string(count) +
                              " bytes exceeds remaining bytes");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(count));
  pos_ += static_cast<std::size_t>(count);
  return out;
}

Signal ByteReader::signal() {
  const auto frames = pod<std::uint64_t>();
  const auto channels = pod<std::uint64_t>();
  const auto rate = pod<double>();
  std::vector<double> samples = f64_array();
  // Division form: `frames * channels` wraps for forged headers (e.g.
  // frames = 2^62, channels = 4 with an empty sample array), which would
  // admit a Signal claiming frames it has no backing storage for.
  if (channels == 0 || !(rate > 0.0) || samples.size() % channels != 0 ||
      samples.size() / channels != frames) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "implausible serialized signal header");
  }
  Signal s = Signal::empty(static_cast<std::size_t>(channels), rate);
  s.append(SignalView(samples.data(), static_cast<std::size_t>(frames),
                      static_cast<std::size_t>(channels), rate));
  return s;
}

ByteReader ByteReader::section(std::uint32_t expected_id) {
  const auto id = pod<std::uint32_t>();
  if (id != expected_id) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "expected section " + std::to_string(expected_id) +
                              ", found " + std::to_string(id));
  }
  const auto length = pod<std::uint64_t>();
  require(static_cast<std::size_t>(length));
  ByteReader sub(data_.subspan(pos_, static_cast<std::size_t>(length)));
  pos_ += static_cast<std::size_t>(length);
  return sub;
}

void ByteReader::finish() const {
  if (remaining() != 0) {
    throw CheckpointError(
        CheckpointErrorKind::kCorrupt,
        std::to_string(remaining()) + " trailing bytes after payload");
  }
}

// ---------------------------------------------------------------------------
// Container framing

std::vector<std::uint8_t> frame_checkpoint(
    std::span<const std::uint8_t> payload) {
  ByteWriter w;
  w.bytes(kMagic.data(), kMagic.size());
  w.pod<std::uint32_t>(kVersion);
  w.pod<std::uint64_t>(payload.size());
  w.bytes(payload.data(), payload.size());
  w.pod<std::uint32_t>(crc32(payload.data(), payload.size()));
  return w.take();
}

std::span<const std::uint8_t> unframe_checkpoint(
    std::span<const std::uint8_t> file) {
  if (file.size() < kMagic.size()) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "file shorter than the magic");
  }
  if (std::memcmp(file.data(), kMagic.data(), kMagic.size()) != 0) {
    throw CheckpointError(CheckpointErrorKind::kBadMagic,
                          "not an NCKP checkpoint file");
  }
  if (file.size() < kHeaderBytes + kFooterBytes) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "file shorter than the fixed header + footer");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, file.data() + 4, sizeof(version));
  if (version != kVersion) {
    throw CheckpointError(CheckpointErrorKind::kBadVersion,
                          "format version " + std::to_string(version) +
                              ", this build reads version " +
                              std::to_string(kVersion));
  }
  std::uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, file.data() + 8, sizeof(payload_bytes));
  if (payload_bytes != file.size() - kHeaderBytes - kFooterBytes) {
    throw CheckpointError(
        CheckpointErrorKind::kTruncated,
        "declared payload of " + std::to_string(payload_bytes) +
            " bytes does not match file size " + std::to_string(file.size()));
  }
  const std::span<const std::uint8_t> payload =
      file.subspan(kHeaderBytes, static_cast<std::size_t>(payload_bytes));
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, file.data() + file.size() - kFooterBytes,
              sizeof(stored_crc));
  if (stored_crc != crc32(payload.data(), payload.size())) {
    throw CheckpointError(CheckpointErrorKind::kCorrupt,
                          "payload CRC mismatch");
  }
  return payload;
}

// ---------------------------------------------------------------------------
// Atomic file replacement (POSIX)

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Unique tmp name per writer (pid + process-wide counter) with O_EXCL:
  // two concurrent writers each assemble a complete file privately and
  // race only on the atomic rename, so the loser can never leave a torn
  // file at `path`.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string tmp = path + "." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_seq.fetch_add(1)) + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          errno_message("cannot create '" + tmp + "'"));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string msg = errno_message("write to '" + tmp + "' failed");
      ::close(fd);
      ::unlink(tmp.c_str());
      throw CheckpointError(CheckpointErrorKind::kIo, msg);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string msg = errno_message("fsync of '" + tmp + "' failed");
    ::close(fd);
    ::unlink(tmp.c_str());
    throw CheckpointError(CheckpointErrorKind::kIo, msg);
  }
  if (::close(fd) != 0) {
    const std::string msg = errno_message("close of '" + tmp + "' failed");
    ::unlink(tmp.c_str());
    throw CheckpointError(CheckpointErrorKind::kIo, msg);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string msg =
        errno_message("rename '" + tmp + "' -> '" + path + "' failed");
    ::unlink(tmp.c_str());
    throw CheckpointError(CheckpointErrorKind::kIo, msg);
  }
  // Persist the rename itself: fsync the containing directory so the new
  // file survives a power cut, not just a process crash.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    // Best-effort: some filesystems reject directory fsync; the rename is
    // already atomic for crash (not power-loss) purposes either way.
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> file = frame_checkpoint(payload);
  atomic_write_file(path, file);
}

std::vector<std::uint8_t> read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          errno_message("cannot open '" + path + "'"));
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n = 0;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    bytes.insert(bytes.end(), chunk.data(), chunk.data() + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw CheckpointError(CheckpointErrorKind::kIo,
                          "read of '" + path + "' failed");
  }
  const std::span<const std::uint8_t> payload = unframe_checkpoint(bytes);
  return {payload.begin(), payload.end()};
}

}  // namespace nsync::signal
