#include "signal/resample.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nsync::signal {

Signal resample_linear(const SignalView& s, double new_rate) {
  if (new_rate <= 0.0) {
    throw std::invalid_argument("resample_linear: rate must be positive");
  }
  if (s.frames() == 0) {
    return Signal::empty(std::max<std::size_t>(1, s.channels()), new_rate);
  }
  const double ratio = s.sample_rate() / new_rate;
  const auto out_frames = static_cast<std::size_t>(
      std::floor(static_cast<double>(s.frames()) / ratio));
  Signal out(std::max<std::size_t>(out_frames, 1), s.channels(), new_rate);
  for (std::size_t n = 0; n < out.frames(); ++n) {
    const double src = static_cast<double>(n) * ratio;
    const auto i0 = std::min<std::size_t>(static_cast<std::size_t>(src),
                                          s.frames() - 1);
    const auto i1 = std::min<std::size_t>(i0 + 1, s.frames() - 1);
    const double frac = src - static_cast<double>(i0);
    for (std::size_t c = 0; c < s.channels(); ++c) {
      out(n, c) = (1.0 - frac) * s(i0, c) + frac * s(i1, c);
    }
  }
  return out;
}

Signal decimate(const SignalView& s, std::size_t factor) {
  if (factor == 0) {
    throw std::invalid_argument("decimate: factor must be >= 1");
  }
  if (factor == 1) return s.to_signal();
  const std::size_t out_frames = s.frames() / factor;
  Signal out(out_frames, s.channels(), s.sample_rate() / static_cast<double>(factor));
  for (std::size_t n = 0; n < out_frames; ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < factor; ++k) {
        acc += s(n * factor + k, c);
      }
      out(n, c) = acc / static_cast<double>(factor);
    }
  }
  return out;
}

std::vector<double> sample_piecewise_linear(std::span<const double> times,
                                            std::span<const double> values,
                                            double fs, double t_end) {
  if (times.size() != values.size()) {
    throw std::invalid_argument("sample_piecewise_linear: size mismatch");
  }
  if (fs <= 0.0 || t_end < 0.0) {
    throw std::invalid_argument("sample_piecewise_linear: bad fs or t_end");
  }
  const auto n_out = static_cast<std::size_t>(std::floor(t_end * fs)) + 1;
  std::vector<double> out(n_out, 0.0);
  if (times.empty()) return out;
  std::size_t seg = 0;
  for (std::size_t n = 0; n < n_out; ++n) {
    const double t = static_cast<double>(n) / fs;
    while (seg + 1 < times.size() && times[seg + 1] <= t) ++seg;
    if (t <= times.front()) {
      out[n] = values.front();
    } else if (seg + 1 >= times.size()) {
      out[n] = values.back();
    } else {
      const double t0 = times[seg], t1 = times[seg + 1];
      const double dt = t1 - t0;
      if (dt <= 0.0) {
        out[n] = values[seg + 1];
      } else {
        const double frac = (t - t0) / dt;
        out[n] = (1.0 - frac) * values[seg] + frac * values[seg + 1];
      }
    }
  }
  return out;
}

}  // namespace nsync::signal
