// Signal persistence: a small self-describing binary format ("NSIG") for
// recording reference side-channel signals to disk, plus CSV export for
// plotting.  Reference signals are long-lived artifacts in a deployed IDS
// (Section IV, "Acquisition of Reference Signals"), so they need a stable
// on-disk form.
#ifndef NSYNC_SIGNAL_IO_HPP
#define NSYNC_SIGNAL_IO_HPP

#include <iosfwd>
#include <string>

#include "signal/signal.hpp"

namespace nsync::signal {

/// Writes `s` to `out` in the NSIG v1 binary format:
///   magic "NSIG" | u32 version | u64 frames | u64 channels | f64 rate |
///   f64 samples (row-major).
/// Little-endian hosts only (checked at compile time).
void write_signal(std::ostream& out, const SignalView& s);

/// Reads an NSIG v1 signal.  Throws std::runtime_error on malformed input
/// (bad magic, truncated payload, absurd dimensions).
[[nodiscard]] Signal read_signal(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error when the file
/// cannot be opened.
void save_signal(const std::string& path, const SignalView& s);
[[nodiscard]] Signal load_signal(const std::string& path);

/// CSV export: header "t,ch0,ch1,..." then one row per frame with the
/// timestamp in seconds.  For plotting / external analysis.
void write_csv(std::ostream& out, const SignalView& s, int precision = 9);

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_IO_HPP
