#include "signal/filters.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace nsync::signal {

namespace {

void check_window(std::size_t window, const char* who) {
  if (window == 0) {
    throw std::invalid_argument(std::string(who) + ": window must be >= 1");
  }
}

// Sliding-extremum via a monotonic deque (O(n) total).
template <typename Compare>
std::vector<double> trailing_extremum(std::span<const double> v,
                                      std::size_t window, Compare keep_back) {
  std::vector<double> out(v.size());
  std::deque<std::size_t> dq;  // indexes, extremum at front
  for (std::size_t i = 0; i < v.size(); ++i) {
    while (!dq.empty() && !keep_back(v[dq.back()], v[i])) dq.pop_back();
    dq.push_back(i);
    if (dq.front() + window <= i) dq.pop_front();
    out[i] = v[dq.front()];
  }
  return out;
}

}  // namespace

std::vector<double> min_filter(std::span<const double> v, std::size_t window) {
  check_window(window, "min_filter");
  return trailing_extremum(v, window,
                           [](double back, double x) { return back < x; });
}

std::vector<double> max_filter(std::span<const double> v, std::size_t window) {
  check_window(window, "max_filter");
  return trailing_extremum(v, window,
                           [](double back, double x) { return back > x; });
}

std::vector<double> moving_average(std::span<const double> v,
                                   std::size_t window) {
  check_window(window, "moving_average");
  std::vector<double> out(v.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    if (i >= window) acc -= v[i - window];
    const std::size_t n = std::min(i + 1, window);
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<double> median_filter(std::span<const double> v,
                                  std::size_t window) {
  check_window(window, "median_filter");
  if (window % 2 == 0) {
    throw std::invalid_argument("median_filter: window must be odd");
  }
  std::vector<double> out(v.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(window / 2);
  std::vector<double> buf;
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(v.size()); ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(v.size()),
                                 i + half + 1);
    buf.assign(v.begin() + lo, v.begin() + hi);
    auto mid = buf.begin() + (buf.size() / 2);
    std::nth_element(buf.begin(), mid, buf.end());
    out[static_cast<std::size_t>(i)] = *mid;
  }
  return out;
}

std::vector<double> diff(std::span<const double> v, double initial) {
  std::vector<double> out(v.size());
  double prev = initial;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = v[i] - prev;
    prev = v[i];
  }
  return out;
}

std::vector<double> cumulative_sum(std::span<const double> v) {
  std::vector<double> out(v.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += v[i];
    out[i] = acc;
  }
  return out;
}

std::vector<double> cumulative_abs_diff(std::span<const double> v,
                                        double initial) {
  std::vector<double> out(v.size());
  double acc = 0.0;
  double prev = initial;
  for (std::size_t i = 0; i < v.size(); ++i) {
    acc += std::abs(v[i] - prev);
    prev = v[i];
    out[i] = acc;
  }
  return out;
}

std::vector<double> one_pole_lowpass(std::span<const double> v, double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("one_pole_lowpass: alpha must be in (0, 1]");
  }
  std::vector<double> out(v.size());
  if (v.empty()) return out;
  double y = v[0];
  for (std::size_t i = 0; i < v.size(); ++i) {
    y = alpha * v[i] + (1.0 - alpha) * y;
    out[i] = y;
  }
  return out;
}

}  // namespace nsync::signal
