// Sample-rate conversion helpers used by the sensor models (each side
// channel has its own sampling rate, Table II) and by the spectrogram
// pipeline.
#ifndef NSYNC_SIGNAL_RESAMPLE_HPP
#define NSYNC_SIGNAL_RESAMPLE_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::signal {

/// Linear-interpolation resampling of a multichannel signal to a new rate.
/// The output covers the same time span; out-of-range queries clamp to the
/// edge samples.
[[nodiscard]] Signal resample_linear(const SignalView& s, double new_rate);

/// Integer decimation by `factor` with a trailing boxcar average as a crude
/// anti-aliasing step.  `factor` must be >= 1.
[[nodiscard]] Signal decimate(const SignalView& s, std::size_t factor);

/// Samples a piecewise-linear function given by (time, value) breakpoints at
/// a uniform rate `fs` from t = 0 to t = t_end.  Breakpoint times must be
/// nondecreasing.  Used to render planner motion profiles into signals.
[[nodiscard]] std::vector<double> sample_piecewise_linear(
    std::span<const double> times, std::span<const double> values, double fs,
    double t_end);

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_RESAMPLE_HPP
