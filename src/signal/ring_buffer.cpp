#include "signal/ring_buffer.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "signal/checkpoint.hpp"

namespace nsync::signal {

FrameRingBuffer::FrameRingBuffer(std::size_t channels, double sample_rate)
    : channels_(channels), sample_rate_(sample_rate) {
  if (channels == 0) {
    throw std::invalid_argument(
        "FrameRingBuffer: channel count must be positive");
  }
  if (sample_rate <= 0.0) {
    throw std::invalid_argument(
        "FrameRingBuffer: sample rate must be positive");
  }
}

void FrameRingBuffer::append(const SignalView& frames) {
  if (frames.channels() != channels_) {
    throw std::invalid_argument("FrameRingBuffer::append: channel mismatch");
  }
  // Reclaim the dead prefix before growing; appending never leaves more
  // dead than live data, so the buffer length tracks the retained span.
  compact();
  const std::size_t live = data_.size();
  const std::size_t incoming = frames.frames() * channels_;
  if (live + incoming > data_.capacity()) {
    data_.reserve(std::max(live + incoming, data_.capacity() * 2));
  }
  data_.insert(data_.end(), frames.data(), frames.data() + incoming);
  end_ += frames.frames();
}

void FrameRingBuffer::drop_before(std::size_t frame) {
  const std::size_t f = std::clamp(frame, start_, end_);
  head_ += f - start_;
  start_ = f;
  compact();
}

void FrameRingBuffer::compact() {
  const std::size_t live = retained_frames();
  if (head_ == 0 || head_ < live) return;  // dead prefix still small
  if (live > 0) {
    std::memmove(data_.data(), data_.data() + head_ * channels_,
                 live * channels_ * sizeof(double));
  }
  data_.resize(live * channels_);
  head_ = 0;
}

SignalView FrameRingBuffer::view(std::size_t n1, std::size_t n2) const {
  if (n1 < start_ || n1 > n2 || n2 > end_) {
    throw std::out_of_range("FrameRingBuffer::view: [" + std::to_string(n1) +
                            ", " + std::to_string(n2) + ") outside retained [" +
                            std::to_string(start_) + ", " +
                            std::to_string(end_) + ")");
  }
  return SignalView(data_.data() + (head_ + n1 - start_) * channels_, n2 - n1,
                    channels_, sample_rate_);
}

void FrameRingBuffer::save_state(ByteWriter& w) const {
  w.pod<std::uint64_t>(channels_);
  w.pod<double>(sample_rate_);
  w.pod<std::uint64_t>(start_);
  w.pod<std::uint64_t>(end_);
  w.f64_array({data_.data() + head_ * channels_,
               retained_frames() * channels_});
}

void FrameRingBuffer::restore_state(ByteReader& r) {
  const auto channels = r.pod<std::uint64_t>();
  const auto rate = r.pod<double>();
  if (channels != channels_ || rate != sample_rate_) {
    throw CheckpointError(
        CheckpointErrorKind::kMismatch,
        "FrameRingBuffer: serialized stream has " + std::to_string(channels) +
            " channels @ " + std::to_string(rate) + " Hz, this buffer " +
            std::to_string(channels_) + " @ " + std::to_string(sample_rate_));
  }
  const auto start = r.pod<std::uint64_t>();
  const auto end = r.pod<std::uint64_t>();
  std::vector<double> retained = r.f64_array();
  // Division form: `(end - start) * channels_` wraps for a forged blob
  // with a huge [start, end) span over an empty retained vector.
  if (start > end || retained.size() % channels_ != 0 ||
      retained.size() / channels_ != end - start) {
    throw CheckpointError(
        CheckpointErrorKind::kCorrupt,
        "FrameRingBuffer: retained span does not match [start, end)");
  }
  data_ = std::move(retained);
  head_ = 0;
  start_ = static_cast<std::size_t>(start);
  end_ = static_cast<std::size_t>(end);
}

}  // namespace nsync::signal
