// 1-D filters used by the NSYNC discriminator and the sensor models:
// trailing minimum filter (spike suppression, Eq. 21-22), moving average,
// median filter, first difference, cumulative sum, and a one-pole low pass.
#ifndef NSYNC_SIGNAL_FILTERS_HPP
#define NSYNC_SIGNAL_FILTERS_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace nsync::signal {

/// Trailing minimum filter (Eq. 21-22 of the paper):
///   out[i] = min(v[max(0, i-n+1) : i+1])
/// i.e. the minimum of the current sample and the previous n-1 samples.
/// The paper writes min(v[i-n : i]); we interpret the window as including
/// the current sample so that the filtered array has the same length and a
/// defined value at i = 0.  `window` must be >= 1.
[[nodiscard]] std::vector<double> min_filter(std::span<const double> v,
                                             std::size_t window);

/// Trailing maximum filter, same window convention as min_filter.
[[nodiscard]] std::vector<double> max_filter(std::span<const double> v,
                                             std::size_t window);

/// Trailing moving average with the same window convention as min_filter.
[[nodiscard]] std::vector<double> moving_average(std::span<const double> v,
                                                 std::size_t window);

/// Centered median filter with an odd window (edges use shrunken windows).
[[nodiscard]] std::vector<double> median_filter(std::span<const double> v,
                                                std::size_t window);

/// First difference: out[i] = v[i] - v[i-1], with out[0] = v[0] - `initial`.
/// The paper defines h_disp[-1] = 0 for the CADHD sum, matching
/// `initial = 0`.
[[nodiscard]] std::vector<double> diff(std::span<const double> v,
                                       double initial = 0.0);

/// Cumulative sum: out[i] = sum(v[0..i]).
[[nodiscard]] std::vector<double> cumulative_sum(std::span<const double> v);

/// Cumulative absolute difference (Eq. 17):
///   out[i] = sum_{j<=i} |v[j] - v[j-1]|  with v[-1] = `initial`.
[[nodiscard]] std::vector<double> cumulative_abs_diff(
    std::span<const double> v, double initial = 0.0);

/// One-pole low-pass filter: y[i] = alpha * x[i] + (1 - alpha) * y[i-1],
/// y[-1] = x[0].  `alpha` must lie in (0, 1].
[[nodiscard]] std::vector<double> one_pole_lowpass(std::span<const double> v,
                                                   double alpha);

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_FILTERS_HPP
