#include "signal/signal.hpp"

#include <algorithm>
#include <cstring>

namespace nsync::signal {

SignalView::SignalView(const Signal& s)
    : data_(s.data()),
      frames_(s.frames()),
      channels_(s.channels()),
      sample_rate_(s.sample_rate()) {}

SignalView SignalView::slice(std::size_t n1, std::size_t n2) const {
  if (n1 > n2 || n2 > frames_) {
    throw std::out_of_range("SignalView::slice: [" + std::to_string(n1) +
                            ", " + std::to_string(n2) + ") out of " +
                            std::to_string(frames_) + " frames");
  }
  return SignalView(data_ + n1 * channels_, n2 - n1, channels_, sample_rate_);
}

SignalView SignalView::clamped_slice(std::ptrdiff_t n1,
                                     std::ptrdiff_t n2) const {
  const auto lo = std::clamp<std::ptrdiff_t>(n1, 0,
                                             static_cast<std::ptrdiff_t>(frames_));
  const auto hi = std::clamp<std::ptrdiff_t>(n2, lo,
                                             static_cast<std::ptrdiff_t>(frames_));
  return SignalView(data_ + static_cast<std::size_t>(lo) * channels_,
                    static_cast<std::size_t>(hi - lo), channels_,
                    sample_rate_);
}

std::vector<double> SignalView::channel(std::size_t c) const {
  check_channel(c);
  std::vector<double> out(frames_);
  for (std::size_t n = 0; n < frames_; ++n) {
    out[n] = data_[n * channels_ + c];
  }
  return out;
}

void SignalView::channel_into(std::size_t c, std::span<double> out) const {
  check_channel(c);
  if (out.size() != frames_) {
    throw std::invalid_argument(
        "SignalView::channel_into: out.size() must equal frames()");
  }
  for (std::size_t n = 0; n < frames_; ++n) {
    out[n] = data_[n * channels_ + c];
  }
}

Signal SignalView::to_signal() const {
  Signal out(frames_, channels_, sample_rate_);
  if (frames_ > 0 && channels_ > 0) {
    std::memcpy(out.data(), data_, frames_ * channels_ * sizeof(double));
  }
  return out;
}

Signal::Signal(std::size_t frames, std::size_t channels, double sample_rate)
    : data_(frames * channels, 0.0),
      frames_(frames),
      channels_(channels),
      sample_rate_(sample_rate) {
  if (channels == 0) {
    throw std::invalid_argument("Signal: channel count must be positive");
  }
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("Signal: sample rate must be positive");
  }
}

Signal Signal::empty(std::size_t channels, double sample_rate) {
  return Signal(0, channels, sample_rate);
}

Signal Signal::from_samples(std::vector<double> samples, double sample_rate) {
  Signal s;
  s.frames_ = samples.size();
  s.channels_ = 1;
  s.sample_rate_ = sample_rate;
  s.data_ = std::move(samples);
  if (sample_rate <= 0.0) {
    throw std::invalid_argument("Signal: sample rate must be positive");
  }
  return s;
}

Signal Signal::from_channels(const std::vector<std::vector<double>>& channels,
                             double sample_rate) {
  if (channels.empty()) {
    throw std::invalid_argument("Signal::from_channels: no channels");
  }
  const std::size_t frames = channels.front().size();
  for (const auto& ch : channels) {
    if (ch.size() != frames) {
      throw std::invalid_argument(
          "Signal::from_channels: channels have unequal lengths");
    }
  }
  Signal s(frames, channels.size(), sample_rate);
  for (std::size_t c = 0; c < channels.size(); ++c) {
    for (std::size_t n = 0; n < frames; ++n) {
      s(n, c) = channels[c][n];
    }
  }
  return s;
}

double& Signal::at(std::size_t frame, std::size_t channel) {
  if (frame >= frames_ || channel >= channels_) {
    throw std::out_of_range("Signal::at: index out of range");
  }
  return data_[frame * channels_ + channel];
}

double Signal::at(std::size_t frame, std::size_t channel) const {
  if (frame >= frames_ || channel >= channels_) {
    throw std::out_of_range("Signal::at: index out of range");
  }
  return data_[frame * channels_ + channel];
}

std::span<double> Signal::frame(std::size_t n) {
  if (n >= frames_) {
    throw std::out_of_range("Signal::frame: index out of range");
  }
  return {data_.data() + n * channels_, channels_};
}

std::span<const double> Signal::frame(std::size_t n) const {
  if (n >= frames_) {
    throw std::out_of_range("Signal::frame: index out of range");
  }
  return {data_.data() + n * channels_, channels_};
}

void Signal::append_frame(std::span<const double> values) {
  if (channels_ == 0) {
    channels_ = values.size();
  }
  if (values.size() != channels_) {
    throw std::invalid_argument("Signal::append_frame: channel mismatch");
  }
  grow_for(1);
  data_.insert(data_.end(), values.begin(), values.end());
  ++frames_;
}

void Signal::append(const SignalView& other) {
  if (other.channels() != channels_) {
    throw std::invalid_argument("Signal::append: channel mismatch");
  }
  grow_for(other.frames());
  data_.insert(data_.end(), other.data(),
               other.data() + other.frames() * other.channels());
  frames_ += other.frames();
}

}  // namespace nsync::signal
