// Deterministic random-number source.  Every stochastic component of the
// simulator (time noise, sensor noise, DAQ frame drops) draws from an Rng
// that is explicitly seeded, so whole experiments are reproducible from a
// single seed.
#ifndef NSYNC_SIGNAL_RNG_HPP
#define NSYNC_SIGNAL_RNG_HPP

#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nsync::signal {

/// Thin, copyable wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double normal(double mu = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential draw with the given rate.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child stream (for per-sensor / per-run seeding).
  [[nodiscard]] Rng fork() {
    return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL);
  }

  /// Serializes the full engine state (the standard textual mt19937_64
  /// representation) so a checkpointed stochastic component resumes its
  /// stream exactly where it left off.
  [[nodiscard]] std::string save_state() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }

  /// Restores a state produced by save_state().  The subsequent draw
  /// sequence is identical to the uninterrupted one.  Throws
  /// std::invalid_argument on a malformed blob (state unchanged).
  void restore_state(const std::string& state) {
    std::istringstream in(state);
    std::mt19937_64 engine;
    in >> engine;
    if (!in) {
      throw std::invalid_argument("Rng::restore_state: malformed state");
    }
    engine_ = engine;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_RNG_HPP
