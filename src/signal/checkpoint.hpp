// Crash-safe checkpoint serialization for the streaming fleet.
//
// NSYNC's value is in-process detection: every byte of detection state —
// synchronizer rings, min-filter deques, CADHD accumulators, health
// machines, latched verdicts — otherwise lives only in RAM, so a monitor
// host crash silently resets every session to "benign", exactly the
// window an attacker wants.  This module provides the primitives the
// streaming classes serialize themselves with, and the hardened on-disk
// container they are stored in:
//
//   * ByteWriter / ByteReader — little-endian POD + length-prefixed array
//     encoding with strict bounds checking.  Doubles round-trip as raw
//     bits, so restored state is bitwise identical to the saved state
//     (the restore-equivalence property tests depend on this).
//   * Sections — (u32 id | u64 length | payload) envelopes that let a
//     reader validate structure and reject foreign/corrupt payloads with
//     a typed error instead of misparsing them.
//   * Container framing — magic "NCKP" | u32 version | u64 payload length
//     | payload | u32 CRC32(payload).  Truncated, corrupt and
//     version-mismatched files are rejected with CheckpointError; nothing
//     is ever partially applied.
//   * Atomic file replacement — write to a unique "<path>.<pid>.<n>.tmp",
//     fsync, rename over `path`.  A crash mid-write leaves the previous
//     checkpoint loadable, and concurrent writers never share a tmp file.
//
// Every failure mode throws CheckpointError with a machine-readable kind;
// no other exception type escapes the loaders (fuzz/fuzz_checkpoint pins
// this).
#ifndef NSYNC_SIGNAL_CHECKPOINT_HPP
#define NSYNC_SIGNAL_CHECKPOINT_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::signal {

/// Why a checkpoint operation failed (CheckpointError::kind()).
enum class CheckpointErrorKind {
  kIo,          ///< open/write/fsync/rename/read failure
  kBadMagic,    ///< not a checkpoint file at all
  kBadVersion,  ///< a checkpoint, but from an incompatible format version
  kTruncated,   ///< file/section shorter than its declared contents
  kCorrupt,     ///< CRC mismatch, implausible counts, malformed structure
  kMismatch,    ///< valid state, but for a different object configuration
};

[[nodiscard]] std::string checkpoint_error_kind_name(CheckpointErrorKind k);

/// The one exception type every checkpoint save/restore path throws.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& message)
      : std::runtime_error(checkpoint_error_kind_name(kind) + ": " + message),
        kind_(kind) {}

  [[nodiscard]] CheckpointErrorKind kind() const { return kind_; }

 private:
  CheckpointErrorKind kind_;
};

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t bytes);

/// Append-only little-endian encoder.  All multi-byte values are written
/// via memcpy of their object representation (the build asserts a
/// little-endian host, matching the NSIG signal format).
class ByteWriter {
 public:
  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter::pod needs a trivially copyable type");
    append(&value, sizeof(T));
  }

  void bytes(const void* data, std::size_t n) { append(data, n); }

  /// u64 element count followed by the raw values.
  void f64_array(std::span<const double> values);
  void u8_array(std::span<const std::uint8_t> values);

  /// u64 byte count followed by the characters.
  void str(const std::string& s);

  /// Full signal state: u64 frames | u64 channels | f64 rate | samples.
  void signal(const SignalView& s);

  /// Opens a (u32 id | u64 length | ...) section and returns a token for
  /// end_section(), which patches the length in place.  Sections nest.
  [[nodiscard]] std::size_t begin_section(std::uint32_t id);
  void end_section(std::size_t token);

  [[nodiscard]] std::span<const std::uint8_t> data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append(const void* data, std::size_t n);

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked decoder over a byte span.  Every read validates that
/// the declared contents fit in the remaining bytes and throws
/// CheckpointError (kTruncated/kCorrupt) otherwise — a malformed blob can
/// never cause an out-of-range read or an absurd allocation.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader::pod needs a trivially copyable type");
    require(sizeof(T));
    T value{};
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  [[nodiscard]] std::vector<double> f64_array();
  [[nodiscard]] std::vector<std::uint8_t> u8_array();
  [[nodiscard]] std::string str();
  [[nodiscard]] Signal signal();

  /// Enters the next section, which must carry `expected_id`, and returns
  /// a sub-reader spanning exactly its payload.  The parent reader
  /// advances past the whole section.
  [[nodiscard]] ByteReader section(std::uint32_t expected_id);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws kCorrupt unless every byte has been consumed — trailing
  /// garbage means the payload was not written by the matching saver.
  void finish() const;

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Frames a payload into the on-disk container:
///   "NCKP" | u32 version | u64 payload bytes | payload | u32 crc32(payload).
[[nodiscard]] std::vector<std::uint8_t> frame_checkpoint(
    std::span<const std::uint8_t> payload);

/// Validates container framing (magic, version, length, CRC) and returns
/// the payload span (a view into `file`).  Throws CheckpointError with
/// kBadMagic / kBadVersion / kTruncated / kCorrupt.
[[nodiscard]] std::span<const std::uint8_t> unframe_checkpoint(
    std::span<const std::uint8_t> file);

/// Atomically replaces `path` with `bytes`: writes a per-writer-unique
/// "<path>.<pid>.<n>.tmp" (O_EXCL), fsyncs it, then renames over `path`
/// (and fsyncs the directory).  On any failure the tmp file is removed
/// and the previous `path` contents are untouched; concurrent callers
/// race only on the final rename, each with a complete file.  Throws
/// CheckpointError(kIo).
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// frame_checkpoint + atomic_write_file.
void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> payload);

/// Reads `path`, validates the container, returns a copy of the payload.
[[nodiscard]] std::vector<std::uint8_t> read_checkpoint_file(
    const std::string& path);

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_CHECKPOINT_HPP
