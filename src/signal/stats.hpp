// Basic descriptive statistics over 1-D sample arrays and per-channel
// statistics over multichannel signals.  The mean/variance/energy and
// Pearson accumulation loops run through the runtime-dispatched SIMD
// moments kernels (dsp/simd/simd.hpp), shared with dsp/xcorr.cpp; under
// a vector backend these reductions reassociate and may differ from the
// scalar backend by a few ULPs.
#ifndef NSYNC_SIGNAL_STATS_HPP
#define NSYNC_SIGNAL_STATS_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::signal {

/// Arithmetic mean of `v` (0 for an empty span).
[[nodiscard]] double mean(std::span<const double> v);

/// Population variance of `v` (0 for fewer than 2 samples).
[[nodiscard]] double variance(std::span<const double> v);

/// Population standard deviation of `v`.
[[nodiscard]] double stddev(std::span<const double> v);

/// Root-mean-square of `v`.
[[nodiscard]] double rms(std::span<const double> v);

/// Minimum value (throws std::invalid_argument on an empty span).
[[nodiscard]] double min_value(std::span<const double> v);

/// Maximum value (throws std::invalid_argument on an empty span).
[[nodiscard]] double max_value(std::span<const double> v);

/// Index of the maximum value (first occurrence); throws on empty input.
[[nodiscard]] std::size_t argmax(std::span<const double> v);

/// Index of the minimum value (first occurrence); throws on empty input.
[[nodiscard]] std::size_t argmin(std::span<const double> v);

/// Pearson correlation coefficient between `u` and `v` (Eq. 3 of the paper).
/// Returns 0 when either vector is degenerate — its centered energy is
/// rounding noise relative to its raw magnitude (the shared
/// simd::degenerate_variance guard, also used by the sliding-correlation
/// window normalization) — or when any sample is non-finite (the paper's
/// similarity function is undefined there; 0 is the neutral score).
[[nodiscard]] double pearson(std::span<const double> u,
                             std::span<const double> v);

/// True when every sample of `s` is finite (no NaN / +-Inf).
[[nodiscard]] bool finite_window(const SignalView& s);

/// True when `s` cannot support correlation-based comparison: it is
/// shorter than 2 frames, contains a non-finite sample, or every channel
/// is constant (zero variance).  Such windows are tagged invalid by the
/// streaming pipeline instead of being scored.
[[nodiscard]] bool degenerate_window(const SignalView& s);

/// Per-channel means of a multichannel signal.
[[nodiscard]] std::vector<double> channel_means(const SignalView& s);

/// Per-channel standard deviations of a multichannel signal.
[[nodiscard]] std::vector<double> channel_stddevs(const SignalView& s);

/// Per-channel peak absolute values.
[[nodiscard]] std::vector<double> channel_peaks(const SignalView& s);

}  // namespace nsync::signal

#endif  // NSYNC_SIGNAL_STATS_HPP
