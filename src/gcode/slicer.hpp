// Slicer-lite: turns a 2-D part outline into layer-by-layer G-code with
// perimeters and infill.  Stands in for Cura / MatterControl (Section
// VIII-A): the paper's attacks are parameter changes at slicing time or
// G-code edits, both of which this module supports.
#ifndef NSYNC_GCODE_SLICER_HPP
#define NSYNC_GCODE_SLICER_HPP

#include <cstddef>
#include <string>

#include "gcode/geometry.hpp"
#include "gcode/program.hpp"

namespace nsync::gcode {

/// Infill patterns.  The paper's InfillGrid attack switches Lines -> Grid.
enum class InfillPattern {
  kLines,  ///< parallel lines, direction alternating 45/135 deg per layer
  kGrid,   ///< two crossed families (0 and 90 deg) in every layer
};

[[nodiscard]] std::string infill_pattern_name(InfillPattern p);

/// Slicing parameters (defaults approximate a 0.4 mm nozzle FDM profile,
/// layer height 0.2 mm as in the paper's default setting).
struct SlicerConfig {
  double layer_height = 0.2;        ///< mm (Layer0.3 attack changes this)
  double object_height = 7.5;       ///< mm (the paper's gear is 7.5 mm thick)
  double scale = 1.0;               ///< XY+Z scale (Scale0.95 attack: 0.95)
  double extrusion_width = 0.4;     ///< mm
  double filament_diameter = 1.75;  ///< mm
  double infill_density = 0.2;      ///< 0..1 fraction
  InfillPattern infill = InfillPattern::kLines;
  std::size_t perimeter_count = 2;  ///< concentric shells per layer
  double perimeter_speed = 30.0;    ///< mm/s
  double infill_speed = 45.0;       ///< mm/s
  double travel_speed = 120.0;      ///< mm/s
  /// Maximum volumetric deposition rate (mm^3/s) the hotend can melt; print
  /// speeds are capped so width * layer_height * speed stays below it.
  /// This is why re-slicing at a thicker layer height (the Layer0.3
  /// attack) audibly slows the print down on a real machine.
  double max_volumetric_rate = 4.0;
  double first_layer_speed_factor = 0.5;
  double speed_factor = 1.0;        ///< global multiplier (Speed0.95: 0.95)
  double bed_center_x = 100.0;      ///< part placement on the bed, mm
  double bed_center_y = 100.0;
  double hotend_temp = 205.0;       ///< deg C
  double bed_temp = 60.0;           ///< deg C
  bool emit_header = true;          ///< homing + heating preamble
  bool emit_layer_comments = true;  ///< ;LAYER:n markers
};

/// Slices `outline` (defined around the origin) into a complete program.
/// Throws std::invalid_argument for degenerate configs (non-positive layer
/// height, empty outline, ...).
[[nodiscard]] Program slice(const Polygon& outline, const SlicerConfig& cfg);

/// Convenience: the paper's test object, a gear with `diameter` mm outer
/// diameter (60 mm in the paper), sliced with `cfg`.
[[nodiscard]] Program slice_gear(double diameter, const SlicerConfig& cfg);

}  // namespace nsync::gcode

#endif  // NSYNC_GCODE_SLICER_HPP
