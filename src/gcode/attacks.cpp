#include "gcode/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nsync::gcode {

const std::vector<AttackType>& all_attacks() {
  static const std::vector<AttackType> kAll = {
      AttackType::kVoid, AttackType::kInfillGrid, AttackType::kSpeed095,
      AttackType::kLayer03, AttackType::kScale095};
  return kAll;
}

std::string attack_name(AttackType type) {
  switch (type) {
    case AttackType::kVoid: return "Void";
    case AttackType::kInfillGrid: return "InfillGrid";
    case AttackType::kSpeed095: return "Speed0.95";
    case AttackType::kLayer03: return "Layer0.3";
    case AttackType::kScale095: return "Scale0.95";
  }
  return "Unknown";
}

namespace {

/// Axis-aligned bounds of the deposition moves only; travel and homing
/// moves (e.g. G28 to the origin) would skew the part center.
struct DepositionBounds {
  double min_x = 0.0, max_x = 0.0;
  double min_y = 0.0, max_y = 0.0;
  double max_z = 0.0;
  double center_x() const { return (min_x + max_x) / 2.0; }
  double center_y() const { return (min_y + max_y) / 2.0; }
};

DepositionBounds deposition_bounds(const Program& program) {
  DepositionBounds b;
  b.min_x = b.min_y = std::numeric_limits<double>::max();
  b.max_x = b.max_y = std::numeric_limits<double>::lowest();
  double x = 0.0, y = 0.0, z = 0.0, e = 0.0;
  for (const auto& c : program.commands()) {
    if (c.type == CommandType::kSetPosition) {
      if (c.x) x = *c.x;
      if (c.y) y = *c.y;
      if (c.z) z = *c.z;
      if (c.e) e = *c.e;
      continue;
    }
    if (c.type == CommandType::kHome) {
      x = y = z = 0.0;
      continue;
    }
    if (!c.is_move()) continue;
    const double nx = c.x.value_or(x);
    const double ny = c.y.value_or(y);
    const double nz = c.z.value_or(z);
    const double ne = c.e.value_or(e);
    if (ne > e) {
      b.min_x = std::min({b.min_x, x, nx});
      b.max_x = std::max({b.max_x, x, nx});
      b.min_y = std::min({b.min_y, y, ny});
      b.max_y = std::max({b.max_y, y, ny});
      b.max_z = std::max(b.max_z, nz);
    }
    x = nx;
    y = ny;
    z = nz;
    e = ne;
  }
  if (b.max_x < b.min_x) {
    throw std::invalid_argument("deposition_bounds: program never extrudes");
  }
  return b;
}

}  // namespace

Program attack_void(const Program& benign, double z_lo_fraction,
                    double z_hi_fraction, double radius_fraction) {
  if (!(0.0 <= z_lo_fraction && z_lo_fraction < z_hi_fraction &&
        z_hi_fraction <= 1.0)) {
    throw std::invalid_argument("attack_void: bad z fractions");
  }
  if (radius_fraction <= 0.0 || radius_fraction > 1.0) {
    throw std::invalid_argument("attack_void: bad radius fraction");
  }
  const DepositionBounds part = deposition_bounds(benign);
  const double z_lo = part.max_z * z_lo_fraction;
  const double z_hi = part.max_z * z_hi_fraction;
  const double cx = part.center_x();
  const double cy = part.center_y();
  const double radius =
      radius_fraction *
      std::max(part.max_x - part.min_x, part.max_y - part.min_y) / 2.0;

  Program out = benign;
  out.set_name(benign.name() + " [attack: Void]");
  double x = 0.0, y = 0.0, z = 0.0, e = 0.0;
  double removed = 0.0;  // extrusion removed so far; later E words shift down
  for (auto& c : out.commands()) {
    if (c.type == CommandType::kSetPosition) {
      if (c.x) x = *c.x;
      if (c.y) y = *c.y;
      if (c.z) z = *c.z;
      if (c.e) e = *c.e;
      continue;
    }
    if (c.type == CommandType::kHome) {
      x = y = z = 0.0;
      continue;
    }
    if (!c.is_move()) continue;
    const double nx = c.x.value_or(x);
    const double ny = c.y.value_or(y);
    const double nz = c.z.value_or(z);
    const double ne = c.e.value_or(e);
    const bool extruding = c.e.has_value() && ne > e;
    // A deposition move is inside the void when its layer falls in the
    // z-band and its path passes within `radius` of the part center
    // (point-to-segment distance, so infill lines crossing the center are
    // caught even though their endpoints sit on the perimeter).
    const double seg_dx = nx - x;
    const double seg_dy = ny - y;
    const double seg_len2 = seg_dx * seg_dx + seg_dy * seg_dy;
    double t_closest = 0.0;
    if (seg_len2 > 1e-12) {
      t_closest = std::clamp(
          ((cx - x) * seg_dx + (cy - y) * seg_dy) / seg_len2, 0.0, 1.0);
    }
    const double closest = std::hypot(x + t_closest * seg_dx - cx,
                                      y + t_closest * seg_dy - cy);
    const bool in_void = nz >= z_lo && nz <= z_hi && closest <= radius;
    if (extruding && in_void) {
      removed += ne - e;
      c.e.reset();               // travel instead of extrusion
      c.type = CommandType::kRapidMove;
      c.f = 7200.0;              // the head skips over the void at travel pace
    } else if (c.e.has_value()) {
      *c.e -= removed;           // keep the E axis continuous
    }
    x = nx;
    y = ny;
    z = nz;
    e = ne;
  }
  return out;
}

Program attack_speed(const Program& benign, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("attack_speed: factor must be positive");
  }
  Program out = benign;
  out.set_name(benign.name() + " [attack: Speed" + std::to_string(factor) +
               "]");
  for (auto& c : out.commands()) {
    if (c.is_move() && c.f) {
      *c.f *= factor;
    }
  }
  return out;
}

Program attack_scale(const Program& benign, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("attack_scale: factor must be positive");
  }
  const DepositionBounds part = deposition_bounds(benign);
  const double cx = part.center_x();
  const double cy = part.center_y();
  Program out = benign;
  out.set_name(benign.name() + " [attack: Scale" + std::to_string(factor) +
               "]");
  for (auto& c : out.commands()) {
    if (!c.is_move()) continue;
    if (c.x) *c.x = cx + (*c.x - cx) * factor;
    if (c.y) *c.y = cy + (*c.y - cy) * factor;
    if (c.z) *c.z = *c.z * factor;
    if (c.e) *c.e = *c.e * factor;  // shorter paths need less material
  }
  return out;
}

Program attack_infill_grid(const Polygon& outline, SlicerConfig cfg) {
  cfg.infill = InfillPattern::kGrid;
  Program out = slice(outline, cfg);
  out.set_name(out.name() + " [attack: InfillGrid]");
  return out;
}

Program attack_layer_height(const Polygon& outline, SlicerConfig cfg,
                            double new_height) {
  if (new_height <= 0.0) {
    throw std::invalid_argument("attack_layer_height: bad height");
  }
  cfg.layer_height = new_height;
  Program out = slice(outline, cfg);
  out.set_name(out.name() + " [attack: Layer" + std::to_string(new_height) +
               "]");
  return out;
}

Program attack_temperature(const Program& benign, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("attack_temperature: bad factor");
  }
  Program out = benign;
  out.set_name(benign.name() + " [attack: Temp" + std::to_string(factor) +
               "]");
  for (auto& c : out.commands()) {
    if ((c.type == CommandType::kSetHotendTemp ||
         c.type == CommandType::kWaitHotendTemp) &&
        c.s) {
      *c.s *= factor;
    }
  }
  return out;
}

Program attack_fan_off(const Program& benign) {
  Program out = benign;
  out.set_name(benign.name() + " [attack: FanOff]");
  for (auto& c : out.commands()) {
    if (c.type == CommandType::kFanOn) {
      c.type = CommandType::kFanOff;
      c.s.reset();
    }
  }
  return out;
}

Program apply_attack(AttackType type, const Program& benign,
                     const Polygon& outline, const SlicerConfig& cfg) {
  switch (type) {
    case AttackType::kVoid: return attack_void(benign);
    case AttackType::kInfillGrid: return attack_infill_grid(outline, cfg);
    case AttackType::kSpeed095: return attack_speed(benign, 0.95);
    case AttackType::kLayer03: return attack_layer_height(outline, cfg, 0.3);
    case AttackType::kScale095: return attack_scale(benign, 0.95);
  }
  throw std::invalid_argument("apply_attack: unknown attack type");
}

}  // namespace nsync::gcode
