#include "gcode/program.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nsync::gcode {

ProgramStats Program::stats() const {
  ProgramStats st;
  st.commands = commands_.size();
  double x = 0.0, y = 0.0, z = 0.0, e = 0.0;
  bool have_xy = false;
  st.min_x = st.min_y = std::numeric_limits<double>::max();
  st.max_x = st.max_y = std::numeric_limits<double>::lowest();
  double last_layer_z = -std::numeric_limits<double>::max();
  for (const auto& c : commands_) {
    if (c.type == CommandType::kSetPosition) {
      if (c.x) x = *c.x;
      if (c.y) y = *c.y;
      if (c.z) z = *c.z;
      if (c.e) e = *c.e;
      continue;
    }
    if (c.type == CommandType::kHome) {
      x = y = z = 0.0;
      continue;
    }
    if (!c.is_move()) continue;
    ++st.moves;
    const double nx = c.x.value_or(x);
    const double ny = c.y.value_or(y);
    const double nz = c.z.value_or(z);
    const double ne = c.e.value_or(e);
    st.total_xy_travel += std::hypot(nx - x, ny - y);
    if (ne > e) {
      ++st.extruding_moves;
      st.total_extrusion += ne - e;
    }
    if (nz > last_layer_z + 1e-9 && (c.x || c.y || ne > e || c.z)) {
      if (nz > z + 1e-9 || st.layers == 0) {
        ++st.layers;
        last_layer_z = nz;
      }
    }
    x = nx;
    y = ny;
    z = nz;
    e = ne;
    st.min_x = std::min(st.min_x, x);
    st.max_x = std::max(st.max_x, x);
    st.min_y = std::min(st.min_y, y);
    st.max_y = std::max(st.max_y, y);
    st.max_z = std::max(st.max_z, z);
    have_xy = true;
  }
  if (!have_xy) {
    st.min_x = st.max_x = st.min_y = st.max_y = 0.0;
  }
  return st;
}

std::vector<std::size_t> Program::layer_starts() const {
  std::vector<std::size_t> starts;
  // Prefer explicit ;LAYER: markers (our slicer and Cura both emit them).
  for (std::size_t i = 0; i < commands_.size(); ++i) {
    const auto& c = commands_[i];
    if (c.type == CommandType::kComment &&
        c.text.rfind("LAYER:", 0) == 0) {
      starts.push_back(i);
    }
  }
  if (!starts.empty()) return starts;

  // Fall back to upward Z changes on moves.
  double z = 0.0;
  double last_layer_z = -std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < commands_.size(); ++i) {
    const auto& c = commands_[i];
    if (!c.is_move() || !c.z) continue;
    if (*c.z > last_layer_z + 1e-9 && *c.z > z + 1e-9) {
      starts.push_back(i);
      last_layer_z = *c.z;
    }
    z = *c.z;
  }
  return starts;
}

}  // namespace nsync::gcode
