// G-code text parsing and serialization.
#ifndef NSYNC_GCODE_PARSER_HPP
#define NSYNC_GCODE_PARSER_HPP

#include <string>
#include <string_view>

#include "gcode/program.hpp"

namespace nsync::gcode {

/// Parses a single G-code line (without newline).  Comments after ';' are
/// stripped; a line that is only a comment yields a kComment command whose
/// `text` is the comment body.  Explicitly signed values ("X+1.5") are
/// accepted, as emitted by some slicers.  Unknown words throw
/// std::invalid_argument only when they are malformed (e.g. "X1.2.3");
/// the message reports both the line number and the 1-based column of the
/// offending token.  Unknown command codes parse to kOther with `text`
/// preserved.
[[nodiscard]] Command parse_line(std::string_view line, std::size_t line_no = 0);

/// Parses a complete program from G-code source text.
[[nodiscard]] Program parse_program(std::string_view source);

/// Serializes one command back to G-code text.
[[nodiscard]] std::string to_gcode(const Command& c);

/// Serializes a whole program (one command per line).
[[nodiscard]] std::string to_gcode(const Program& p);

}  // namespace nsync::gcode

#endif  // NSYNC_GCODE_PARSER_HPP
