// 2-D geometry used by the slicer-lite: polygons, point-in-polygon,
// scanline clipping, insetting, and the parametric part outlines (the
// paper's test object is a 60 mm gear; we also provide a ring and a box).
#ifndef NSYNC_GCODE_GEOMETRY_HPP
#define NSYNC_GCODE_GEOMETRY_HPP

#include <cstddef>
#include <vector>

namespace nsync::gcode {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Closed polygon given by its vertex loop (implicitly closed; the last
/// vertex connects back to the first).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point2> vertices)
      : vertices_(std::move(vertices)) {}

  [[nodiscard]] const std::vector<Point2>& vertices() const {
    return vertices_;
  }
  [[nodiscard]] std::size_t size() const { return vertices_.size(); }
  [[nodiscard]] bool empty() const { return vertices_.empty(); }

  /// Signed area (positive for counter-clockwise winding).
  [[nodiscard]] double signed_area() const;
  /// |signed_area()|.
  [[nodiscard]] double area() const;
  /// Perimeter length.
  [[nodiscard]] double perimeter() const;
  /// Vertex centroid.
  [[nodiscard]] Point2 centroid() const;
  /// Even-odd point-in-polygon test.
  [[nodiscard]] bool contains(Point2 p) const;
  /// Uniform scale about a center point.
  [[nodiscard]] Polygon scaled(double factor, Point2 center) const;
  /// Translation.
  [[nodiscard]] Polygon translated(double dx, double dy) const;
  /// Rotation about a center point by `radians`.
  [[nodiscard]] Polygon rotated(double radians, Point2 center) const;
  /// Approximate inward offset: scales toward the centroid so that the
  /// boundary moves in by roughly `distance`.  Good enough for star-convex
  /// outlines such as gears, rings and boxes.
  [[nodiscard]] Polygon inset(double distance) const;
  /// Axis-aligned bounding box as {min, max}.
  [[nodiscard]] std::pair<Point2, Point2> bounding_box() const;

 private:
  std::vector<Point2> vertices_;
};

/// X coordinates where the horizontal line y = `y` crosses the polygon
/// boundary, sorted ascending.  Consecutive pairs bound interior spans
/// (even-odd rule).
[[nodiscard]] std::vector<double> scanline_intersections(const Polygon& poly,
                                                         double y);

/// A straight fill segment produced by clipping an infill line to a polygon.
struct Segment2 {
  Point2 a;
  Point2 b;
};

/// Clips a family of parallel lines (at `angle_rad` from the X axis, spaced
/// `spacing` apart) to the polygon interior.  Returns the interior segments
/// ordered line by line, with alternating direction for short travel moves.
[[nodiscard]] std::vector<Segment2> fill_lines(const Polygon& poly,
                                               double spacing,
                                               double angle_rad);

/// Parametric gear outline: `teeth` trapezoidal teeth between the root and
/// tip radii.  `tip_fraction` is the fraction of the tooth pitch occupied by
/// the tip land.  Matches the paper's test object at outer_d = 60 mm.
[[nodiscard]] Polygon gear_outline(std::size_t teeth, double root_radius,
                                   double tip_radius,
                                   double tip_fraction = 0.35,
                                   std::size_t arc_points = 3);

/// Regular polygon approximating a circle.
[[nodiscard]] Polygon circle_outline(double radius, std::size_t points = 64);

/// Axis-aligned rectangle centered at the origin.
[[nodiscard]] Polygon rect_outline(double width, double height);

}  // namespace nsync::gcode

#endif  // NSYNC_GCODE_GEOMETRY_HPP
