// G-code program model.
//
// G-code is the programming language of FDM printers (Section II-A).  We
// model the subset needed for motion-driven side-channel analysis: linear
// moves (G0/G1), homing (G28), coordinate resets (G92), and the thermal /
// fan M-codes that appear in slicer output.
#ifndef NSYNC_GCODE_PROGRAM_HPP
#define NSYNC_GCODE_PROGRAM_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace nsync::gcode {

/// Command kinds we interpret.  Everything else is preserved verbatim as
/// kOther so a parsed program can round-trip.
enum class CommandType {
  kRapidMove,      ///< G0
  kLinearMove,     ///< G1
  kDwell,          ///< G4 (P = milliseconds, S = seconds)
  kHome,           ///< G28
  kSetPosition,    ///< G92
  kSetHotendTemp,  ///< M104 (S = deg C, non-blocking)
  kWaitHotendTemp, ///< M109 (S = deg C, blocking)
  kSetBedTemp,     ///< M140
  kWaitBedTemp,    ///< M190
  kFanOn,          ///< M106 (S = 0..255)
  kFanOff,         ///< M107
  kComment,        ///< ; ... (layer markers live here)
  kOther,          ///< anything unrecognized
};

/// One G-code command with its optional word parameters.
struct Command {
  CommandType type = CommandType::kOther;
  std::optional<double> x;  ///< target X (mm)
  std::optional<double> y;  ///< target Y (mm)
  std::optional<double> z;  ///< target Z (mm)
  std::optional<double> e;  ///< target extruder position (mm of filament)
  std::optional<double> f;  ///< feedrate (mm/min, as in real G-code)
  std::optional<double> s;  ///< S parameter (temperature, fan PWM, seconds)
  std::optional<double> p;  ///< P parameter (milliseconds for G4)
  std::string text;         ///< original source text (or comment body)
  std::size_t line = 0;     ///< 1-based source line, 0 when synthesized

  [[nodiscard]] bool is_move() const {
    return type == CommandType::kRapidMove || type == CommandType::kLinearMove;
  }
  /// A move that extrudes material (E increases along the move).
  [[nodiscard]] bool has_extrusion() const { return is_move() && e.has_value(); }
};

/// Aggregate statistics of a program, used by tests and by the attack
/// mutators to find sensible injection sites.
struct ProgramStats {
  std::size_t commands = 0;
  std::size_t moves = 0;
  std::size_t extruding_moves = 0;
  std::size_t layers = 0;        ///< distinct upward Z levels visited by moves
  double total_xy_travel = 0.0;  ///< mm of XY path length
  double total_extrusion = 0.0;  ///< mm of filament pushed
  double min_x = 0.0, max_x = 0.0;
  double min_y = 0.0, max_y = 0.0;
  double max_z = 0.0;
};

/// A G-code program: an ordered command list plus provenance metadata.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Command> commands)
      : commands_(std::move(commands)) {}

  [[nodiscard]] const std::vector<Command>& commands() const {
    return commands_;
  }
  [[nodiscard]] std::vector<Command>& commands() { return commands_; }
  [[nodiscard]] std::size_t size() const { return commands_.size(); }
  [[nodiscard]] bool empty() const { return commands_.empty(); }
  const Command& operator[](std::size_t i) const { return commands_[i]; }

  void push_back(Command c) { commands_.push_back(std::move(c)); }

  /// Free-form description ("gear d=60 h=7.5 layer=0.2 ...").
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Walks the program and accumulates ProgramStats.
  [[nodiscard]] ProgramStats stats() const;

  /// Indexes of commands that start each layer (comment markers ";LAYER:n"
  /// when present, otherwise inferred from upward Z changes on moves).
  [[nodiscard]] std::vector<std::size_t> layer_starts() const;

 private:
  std::vector<Command> commands_;
  std::string name_;
};

}  // namespace nsync::gcode

#endif  // NSYNC_GCODE_PROGRAM_HPP
