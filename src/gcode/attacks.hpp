// The five malicious-process generators of Table I.
//
// | Process    | Description                        | Source |
// |------------|------------------------------------|--------|
// | Void       | A void is inserted                 | [25]   |
// | InfillGrid | Infill pattern is changed to grid  | [4]    |
// | Speed0.95  | Printing speed is decreased by 5%  | [12]   |
// | Layer0.3   | Layer height is changed to 0.3 mm  | [12]   |
// | Scale0.95  | The object is shrunk by 5%         | [25]   |
//
// Void, Speed0.95 and Scale0.95 are direct G-code manipulations of the
// benign program.  InfillGrid and Layer0.3 change slicing parameters, so
// they are realized by re-slicing the same outline with a mutated config
// (exactly what an attacker editing the toolchain would produce).
#ifndef NSYNC_GCODE_ATTACKS_HPP
#define NSYNC_GCODE_ATTACKS_HPP

#include <string>
#include <vector>

#include "gcode/program.hpp"
#include "gcode/slicer.hpp"

namespace nsync::gcode {

enum class AttackType {
  kVoid,
  kInfillGrid,
  kSpeed095,
  kLayer03,
  kScale095,
};

/// All five attack types, in Table I order.
[[nodiscard]] const std::vector<AttackType>& all_attacks();

/// Table I process name ("Void", "InfillGrid", ...).
[[nodiscard]] std::string attack_name(AttackType type);

/// Inserts an internal void: extruding moves whose Z lies in
/// [z_lo_fraction, z_hi_fraction] of the object height and whose endpoint
/// falls within `radius_fraction` of the part's XY extent around its center
/// become travel moves (no material deposited).  Structural sabotage per
/// Sturm et al. [25].
[[nodiscard]] Program attack_void(const Program& benign,
                                  double z_lo_fraction = 0.25,
                                  double z_hi_fraction = 0.75,
                                  double radius_fraction = 0.35);

/// Scales every feedrate by `factor` (0.95 in the paper).
[[nodiscard]] Program attack_speed(const Program& benign,
                                   double factor = 0.95);

/// Scales X/Y/Z (and extrusion) by `factor` about the part's XY center
/// (0.95 in the paper).
[[nodiscard]] Program attack_scale(const Program& benign,
                                   double factor = 0.95);

/// Re-slices with the infill pattern switched to grid.
[[nodiscard]] Program attack_infill_grid(const Polygon& outline,
                                         SlicerConfig cfg);

/// Re-slices with the layer height changed (0.3 mm in the paper).
[[nodiscard]] Program attack_layer_height(const Polygon& outline,
                                          SlicerConfig cfg,
                                          double new_height = 0.3);

/// Dispatch: produces the malicious program for `type` given the benign
/// program plus the outline/config it was sliced from.
[[nodiscard]] Program apply_attack(AttackType type, const Program& benign,
                                   const Polygon& outline,
                                   const SlicerConfig& cfg);

// ---------------------------------------------------------------------
// Extended attacks (beyond Table I) — thermal/cooling sabotage in the
// style of dr0wned [6]: structural weakening through process parameters
// that leave the toolpath untouched.
// ---------------------------------------------------------------------

/// Scales every hotend temperature command (M104/M109) by `factor`
/// (default -10 %): under-extrusion and poor layer bonding without any
/// geometric change.
[[nodiscard]] Program attack_temperature(const Program& benign,
                                         double factor = 0.9);

/// Disables part cooling: M106 commands become M107 (fan off).  Warps
/// overhangs and small features; acoustically removes the fan's broadband
/// noise.
[[nodiscard]] Program attack_fan_off(const Program& benign);

}  // namespace nsync::gcode

#endif  // NSYNC_GCODE_ATTACKS_HPP
