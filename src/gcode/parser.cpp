#include "gcode/parser.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nsync::gcode {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void fail(std::size_t line_no, std::size_t column,
                       const std::string& what) {
  throw std::invalid_argument("gcode parse error at line " +
                              std::to_string(line_no) + ", column " +
                              std::to_string(column) + ": " + what);
}

double parse_number(std::string_view token, std::size_t line_no,
                    std::size_t column) {
  // Slicers routinely emit explicitly signed values ("X+1.5");
  // std::from_chars rejects a leading '+', so strip exactly one — but not
  // when another sign follows ("+-1" stays malformed).
  std::string_view digits = token;
  if (!digits.empty() && digits.front() == '+' && digits.size() > 1 &&
      digits[1] != '+' && digits[1] != '-') {
    digits.remove_prefix(1);
  }
  double value = 0.0;
  const auto* begin = digits.data();
  const auto* end = digits.data() + digits.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || digits.empty()) {
    fail(line_no, column, "bad number '" + std::string(token) + "'");
  }
  return value;
}

CommandType classify(char letter, int number) {
  if (letter == 'G') {
    switch (number) {
      case 0: return CommandType::kRapidMove;
      case 1: return CommandType::kLinearMove;
      case 4: return CommandType::kDwell;
      case 28: return CommandType::kHome;
      case 92: return CommandType::kSetPosition;
      default: return CommandType::kOther;
    }
  }
  if (letter == 'M') {
    switch (number) {
      case 104: return CommandType::kSetHotendTemp;
      case 109: return CommandType::kWaitHotendTemp;
      case 140: return CommandType::kSetBedTemp;
      case 190: return CommandType::kWaitBedTemp;
      case 106: return CommandType::kFanOn;
      case 107: return CommandType::kFanOff;
      default: return CommandType::kOther;
    }
  }
  return CommandType::kOther;
}

}  // namespace

Command parse_line(std::string_view line, std::size_t line_no) {
  Command cmd;
  cmd.line = line_no;

  // Separate the comment.
  std::string_view code = line;
  std::string_view comment;
  if (const auto semi = line.find(';'); semi != std::string_view::npos) {
    code = line.substr(0, semi);
    comment = trim(line.substr(semi + 1));
  }
  code = trim(code);

  if (code.empty()) {
    cmd.type = CommandType::kComment;
    cmd.text = std::string(comment);
    return cmd;
  }
  cmd.text = std::string(code);

  // Tokenize on whitespace into letter+number words.  Tokens are views
  // into `line`, so each one's 1-based column is recoverable by pointer
  // arithmetic for error reporting.
  std::size_t pos = 0;
  bool first = true;
  while (pos < code.size()) {
    while (pos < code.size() &&
           std::isspace(static_cast<unsigned char>(code[pos]))) {
      ++pos;
    }
    if (pos >= code.size()) break;
    const std::size_t tok_start = pos;
    while (pos < code.size() &&
           !std::isspace(static_cast<unsigned char>(code[pos]))) {
      ++pos;
    }
    const std::string_view token = code.substr(tok_start, pos - tok_start);
    const std::size_t column =
        static_cast<std::size_t>(token.data() - line.data()) + 1;

    const char letter = static_cast<char>(
        std::toupper(static_cast<unsigned char>(token.front())));
    const std::string_view rest = token.substr(1);
    if (first) {
      first = false;
      if (letter == 'G' || letter == 'M' || letter == 'T') {
        int number = 0;
        if (!rest.empty()) {
          number = static_cast<int>(parse_number(rest, line_no, column + 1));
        }
        cmd.type = classify(letter, number);
        continue;
      }
      // A line starting with a coordinate word is treated as an implicit G1.
      cmd.type = CommandType::kLinearMove;
    }
    if (rest.empty()) {
      if (letter == 'X' || letter == 'Y' || letter == 'Z') {
        continue;  // bare axis word (e.g. "G28 X") selects an axis to home
      }
      fail(line_no, column, "bare word '" + std::string(token) + "'");
    }
    const double value = parse_number(rest, line_no, column + 1);
    switch (letter) {
      case 'X': cmd.x = value; break;
      case 'Y': cmd.y = value; break;
      case 'Z': cmd.z = value; break;
      case 'E': cmd.e = value; break;
      case 'F': cmd.f = value; break;
      case 'S': cmd.s = value; break;
      case 'P': cmd.p = value; break;
      default: break;  // ignore other words (T tool index, etc.)
    }
  }
  return cmd;
}

Program parse_program(std::string_view source) {
  std::vector<Command> commands;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t end = source.find('\n', start);
    if (end == std::string_view::npos) end = source.size();
    ++line_no;
    std::string_view line = source.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!trim(line).empty()) {
      commands.push_back(parse_line(line, line_no));
    }
    if (end == source.size()) break;
    start = end + 1;
  }
  return Program(std::move(commands));
}

std::string to_gcode(const Command& c) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(5);
  auto words = [&os](const Command& cmd) {
    if (cmd.x) os << " X" << *cmd.x;
    if (cmd.y) os << " Y" << *cmd.y;
    if (cmd.z) os << " Z" << *cmd.z;
    if (cmd.e) os << " E" << *cmd.e;
    if (cmd.f) os << " F" << *cmd.f;
    if (cmd.s) os << " S" << *cmd.s;
    if (cmd.p) os << " P" << *cmd.p;
  };
  switch (c.type) {
    case CommandType::kRapidMove: os << "G0"; words(c); break;
    case CommandType::kLinearMove: os << "G1"; words(c); break;
    case CommandType::kDwell: os << "G4"; words(c); break;
    case CommandType::kHome: os << "G28"; break;
    case CommandType::kSetPosition: os << "G92"; words(c); break;
    case CommandType::kSetHotendTemp: os << "M104"; words(c); break;
    case CommandType::kWaitHotendTemp: os << "M109"; words(c); break;
    case CommandType::kSetBedTemp: os << "M140"; words(c); break;
    case CommandType::kWaitBedTemp: os << "M190"; words(c); break;
    case CommandType::kFanOn: os << "M106"; words(c); break;
    case CommandType::kFanOff: os << "M107"; break;
    case CommandType::kComment: os << ";" << c.text; break;
    case CommandType::kOther: os << c.text; break;
  }
  return os.str();
}

std::string to_gcode(const Program& p) {
  std::string out;
  for (const auto& c : p.commands()) {
    out += to_gcode(c);
    out += '\n';
  }
  return out;
}

}  // namespace nsync::gcode
