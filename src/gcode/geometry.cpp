#include "gcode/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nsync::gcode {

namespace {
constexpr double kPi = std::numbers::pi;
}

double Polygon::signed_area() const {
  if (vertices_.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto& p = vertices_[i];
    const auto& q = vertices_[(i + 1) % vertices_.size()];
    acc += p.x * q.y - q.x * p.y;
  }
  return 0.5 * acc;
}

double Polygon::area() const { return std::abs(signed_area()); }

double Polygon::perimeter() const {
  if (vertices_.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const auto& p = vertices_[i];
    const auto& q = vertices_[(i + 1) % vertices_.size()];
    acc += std::hypot(q.x - p.x, q.y - p.y);
  }
  return acc;
}

Point2 Polygon::centroid() const {
  Point2 c;
  if (vertices_.empty()) return c;
  for (const auto& v : vertices_) {
    c.x += v.x;
    c.y += v.y;
  }
  c.x /= static_cast<double>(vertices_.size());
  c.y /= static_cast<double>(vertices_.size());
  return c;
}

bool Polygon::contains(Point2 p) const {
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const auto& a = vertices_[i];
    const auto& b = vertices_[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double xint = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < xint) inside = !inside;
    }
  }
  return inside;
}

Polygon Polygon::scaled(double factor, Point2 center) const {
  std::vector<Point2> out(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    out[i].x = center.x + (vertices_[i].x - center.x) * factor;
    out[i].y = center.y + (vertices_[i].y - center.y) * factor;
  }
  return Polygon(std::move(out));
}

Polygon Polygon::translated(double dx, double dy) const {
  std::vector<Point2> out(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    out[i] = {vertices_[i].x + dx, vertices_[i].y + dy};
  }
  return Polygon(std::move(out));
}

Polygon Polygon::rotated(double radians, Point2 center) const {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  std::vector<Point2> out(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const double dx = vertices_[i].x - center.x;
    const double dy = vertices_[i].y - center.y;
    out[i] = {center.x + c * dx - s * dy, center.y + s * dx + c * dy};
  }
  return Polygon(std::move(out));
}

Polygon Polygon::inset(double distance) const {
  if (vertices_.size() < 3) return *this;
  const Point2 c = centroid();
  // Mean vertex distance from the centroid sets the scale factor.
  double mean_r = 0.0;
  for (const auto& v : vertices_) {
    mean_r += std::hypot(v.x - c.x, v.y - c.y);
  }
  mean_r /= static_cast<double>(vertices_.size());
  if (mean_r <= distance) return Polygon{};  // fully consumed
  return scaled((mean_r - distance) / mean_r, c);
}

std::pair<Point2, Point2> Polygon::bounding_box() const {
  if (vertices_.empty()) return {{0, 0}, {0, 0}};
  Point2 lo = vertices_.front();
  Point2 hi = vertices_.front();
  for (const auto& v : vertices_) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
  }
  return {lo, hi};
}

std::vector<double> scanline_intersections(const Polygon& poly, double y) {
  std::vector<double> xs;
  const auto& v = poly.vertices();
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto& a = v[i];
    const auto& b = v[(i + 1) % n];
    // Half-open rule avoids double counting at shared vertices.
    if ((a.y <= y && b.y > y) || (b.y <= y && a.y > y)) {
      xs.push_back(a.x + (b.x - a.x) * (y - a.y) / (b.y - a.y));
    }
  }
  std::sort(xs.begin(), xs.end());
  return xs;
}

std::vector<Segment2> fill_lines(const Polygon& poly, double spacing,
                                 double angle_rad) {
  if (spacing <= 0.0) {
    throw std::invalid_argument("fill_lines: spacing must be positive");
  }
  if (poly.size() < 3) return {};
  const Point2 center = poly.centroid();
  // Rotate the polygon so the fill direction becomes horizontal, fill with
  // horizontal scanlines, and rotate the segments back.
  const Polygon rot = poly.rotated(-angle_rad, center);
  const auto [lo, hi] = rot.bounding_box();
  std::vector<Segment2> out;
  bool reverse = false;
  // Offset the first scanline by half a spacing so lines are not glued to
  // the boundary.
  for (double y = lo.y + spacing * 0.5; y < hi.y; y += spacing) {
    const auto xs = scanline_intersections(rot, y);
    std::vector<Segment2> row;
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      if (xs[i + 1] - xs[i] < 1e-9) continue;
      row.push_back({{xs[i], y}, {xs[i + 1], y}});
    }
    if (reverse) {
      std::reverse(row.begin(), row.end());
      for (auto& seg : row) std::swap(seg.a, seg.b);
    }
    reverse = !reverse;
    out.insert(out.end(), row.begin(), row.end());
  }
  // Rotate back.
  const double c = std::cos(angle_rad);
  const double s = std::sin(angle_rad);
  auto unrotate = [&](Point2 p) {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    return Point2{center.x + c * dx - s * dy, center.y + s * dx + c * dy};
  };
  for (auto& seg : out) {
    seg.a = unrotate(seg.a);
    seg.b = unrotate(seg.b);
  }
  return out;
}

Polygon gear_outline(std::size_t teeth, double root_radius, double tip_radius,
                     double tip_fraction, std::size_t arc_points) {
  if (teeth < 3 || root_radius <= 0.0 || tip_radius <= root_radius) {
    throw std::invalid_argument("gear_outline: invalid gear parameters");
  }
  if (tip_fraction <= 0.0 || tip_fraction >= 0.9) {
    throw std::invalid_argument("gear_outline: tip_fraction out of range");
  }
  std::vector<Point2> v;
  const double pitch = 2.0 * kPi / static_cast<double>(teeth);
  const double tip_half = pitch * tip_fraction * 0.5;
  const double root_half = pitch * (1.0 - tip_fraction) * 0.5;
  auto arc = [&](double r, double a0, double a1) {
    for (std::size_t i = 0; i < arc_points; ++i) {
      const double t = static_cast<double>(i) /
                       static_cast<double>(arc_points > 1 ? arc_points - 1 : 1);
      const double a = a0 + (a1 - a0) * t;
      v.push_back({r * std::cos(a), r * std::sin(a)});
    }
  };
  for (std::size_t k = 0; k < teeth; ++k) {
    const double center = pitch * static_cast<double>(k);
    // Tip land then root land; the straight flanks emerge between them.
    arc(tip_radius, center - tip_half, center + tip_half);
    arc(root_radius, center + tip_half + 1e-3,
        center + tip_half + 2.0 * root_half - 1e-3);
  }
  return Polygon(std::move(v));
}

Polygon circle_outline(double radius, std::size_t points) {
  if (radius <= 0.0 || points < 3) {
    throw std::invalid_argument("circle_outline: invalid parameters");
  }
  std::vector<Point2> v(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double a = 2.0 * kPi * static_cast<double>(i) /
                     static_cast<double>(points);
    v[i] = {radius * std::cos(a), radius * std::sin(a)};
  }
  return Polygon(std::move(v));
}

Polygon rect_outline(double width, double height) {
  if (width <= 0.0 || height <= 0.0) {
    throw std::invalid_argument("rect_outline: invalid parameters");
  }
  const double w = width / 2.0, h = height / 2.0;
  return Polygon({{-w, -h}, {w, -h}, {w, h}, {-w, h}});
}

}  // namespace nsync::gcode
