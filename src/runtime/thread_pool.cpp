#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <latch>
#include <memory>
#include <utility>

namespace nsync::runtime {

namespace {

// Set while a thread is executing inside a pool's worker_loop; used to run
// nested parallel_for calls inline instead of deadlocking on the queue.
thread_local const ThreadPool* current_pool_ = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
    : workers_(std::max<std::size_t>(1, workers)) {
  if (workers_ <= 1) return;
  threads_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  current_pool_ = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const { return current_pool_ == this; }

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline paths: single worker, a single iteration, or a nested call
  // issued from one of our own workers (enqueuing would risk deadlock).
  if (threads_.empty() || n == 1 || on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    std::size_t end;
    const std::function<void(std::size_t)>* body;
  };
  Shared shared;
  shared.next.store(begin, std::memory_order_relaxed);
  shared.end = end;
  shared.body = &body;

  auto drain = [&shared] {
    for (;;) {
      if (shared.failed.load(std::memory_order_relaxed)) return;
      const std::size_t i =
          shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shared.end) return;
      try {
        (*shared.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.error_mu);
        if (!shared.error) shared.error = std::current_exception();
        shared.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t helpers = std::min(workers_, n - 1);
  std::latch done(static_cast<std::ptrdiff_t>(helpers));
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([&drain, &done] {
      drain();
      done.count_down();
    });
  }
  drain();  // the calling thread participates
  done.wait();
  if (shared.error) std::rethrow_exception(shared.error);
}

std::size_t default_worker_count() {
  if (const char* env = std::getenv("NSYNC_THREADS")) {
    char* parse_end = nullptr;
    const unsigned long long v = std::strtoull(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && v >= 1) {
      return static_cast<std::size_t>(std::min(v, 256ULL));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

std::mutex global_mu_;
std::unique_ptr<ThreadPool> global_pool_;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_mu_);
  if (!global_pool_) {
    global_pool_ = std::make_unique<ThreadPool>(default_worker_count());
  }
  return *global_pool_;
}

void set_worker_count(std::size_t workers) {
  const std::size_t n = workers == 0 ? default_worker_count() : workers;
  std::lock_guard<std::mutex> lock(global_mu_);
  if (global_pool_ && global_pool_->workers() == n) return;
  global_pool_.reset();  // join the old pool before replacing it
  global_pool_ = std::make_unique<ThreadPool>(n);
}

std::size_t worker_count() { return global_pool().workers(); }

}  // namespace nsync::runtime
