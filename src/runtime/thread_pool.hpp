// Parallel execution runtime for the evaluation pipeline.
//
// A fixed-size thread pool (no work stealing — a shared queue with an
// atomic iteration counter is plenty for the coarse-grained tasks this
// codebase runs) plus `parallel_for` / `parallel_transform` helpers.
//
// Design rules the rest of the codebase relies on:
//  * Determinism: helpers only decide *which thread* runs iteration i,
//    never *what* iteration i computes.  Callers write results into
//    per-index slots, so outputs are bitwise identical at any worker
//    count, including 1.
//  * Exception propagation: the first exception thrown by a body is
//    rethrown on the calling thread after all claimed iterations finish;
//    remaining unclaimed iterations are abandoned.
//  * Nesting safety: a `parallel_for` issued from inside a pool worker
//    runs its body inline on that worker (no new tasks are enqueued), so
//    nested parallelism can never deadlock the pool.
//  * Worker count 1 (or a 0/1-iteration range) executes inline with no
//    synchronization at all.
//
// The global pool is sized from `NSYNC_THREADS` when set (clamped to
// [1, 256]), otherwise from std::thread::hardware_concurrency().
// `set_worker_count()` overrides both (0 restores the automatic sizing).
#ifndef NSYNC_RUNTIME_THREAD_POOL_HPP
#define NSYNC_RUNTIME_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nsync::runtime {

/// Fixed-size thread pool.  Tasks are plain `void()` callables consumed
/// FIFO by `workers()` threads.  A pool with `workers <= 1` spawns no
/// threads; `submit` then runs the task inline.
class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is treated as 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Enqueues a task.  Never blocks (unbounded queue).  Tasks must not
  /// throw — wrap bodies that can throw (parallel_for does this).
  void submit(std::function<void()> task);

  /// Runs body(i) for i in [begin, end) across the pool, blocking until
  /// every claimed iteration has finished.  The calling thread
  /// participates.  Rethrows the first exception a body threw.  Safe to
  /// call from inside a pool task (runs inline there).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// True when the current thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void worker_loop();

  std::size_t workers_ = 1;
  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Worker count the automatic sizing would pick: NSYNC_THREADS when set
/// and parseable (clamped to [1, 256]), otherwise hardware_concurrency()
/// (at least 1).
[[nodiscard]] std::size_t default_worker_count();

/// Overrides the global pool size; 0 restores automatic sizing.  Takes
/// effect immediately (the previous pool is drained and joined).  Not
/// meant to be called concurrently with parallel work — call it from
/// main() before the pipeline starts, as the bench binaries do.
void set_worker_count(std::size_t workers);

/// Current global pool size.
[[nodiscard]] std::size_t worker_count();

/// The process-wide pool used by the free-function helpers below.
[[nodiscard]] ThreadPool& global_pool();

/// parallel_for over the global pool.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body) {
  global_pool().parallel_for(begin, end, body);
}

/// Maps fn over [0, n) into a vector, in parallel, preserving index
/// order (out[i] = fn(i)).  The element type must be default- and
/// move-constructible.  A bool-returning fn yields std::vector<char>
/// (std::vector<bool> packs bits, so concurrent per-index writes would
/// race); char converts back to bool implicitly at the use site.
template <typename Fn>
[[nodiscard]] auto parallel_transform(std::size_t n, Fn&& fn) {
  using Result = decltype(fn(std::size_t{0}));
  using Element = std::conditional_t<std::is_same_v<Result, bool>, char,
                                     Result>;
  std::vector<Element> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace nsync::runtime

#endif  // NSYNC_RUNTIME_THREAD_POOL_HPP
