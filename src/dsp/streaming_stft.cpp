#include "dsp/streaming_stft.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/simd/simd.hpp"

namespace nsync::dsp {

using nsync::signal::Signal;
using nsync::signal::SignalView;

StreamingStft::StreamingStft(const StftConfig& config, double input_rate,
                             std::size_t input_channels)
    : config_(config),
      channels_(input_channels),
      n_win_(stft_window_samples(config, input_rate)),
      n_hop_(stft_hop_samples(config, input_rate)),
      bins_(n_win_ / 2 + 1),
      window_(cached_window(config.window, n_win_)),
      input_buffer_(input_channels, input_rate),
      output_(Signal::empty(input_channels * (n_win_ / 2 + 1),
                            1.0 / config.delta_t)),
      batched_(n_win_,
               input_channels == 0 ? 1 : input_channels),  // checked below
      winbuf_(n_win_ * input_channels),
      spec_re_(bins_ * input_channels),
      spec_im_(bins_ * input_channels),
      row_(input_channels * bins_) {
  if (input_channels == 0) {
    throw std::invalid_argument("StreamingStft: need at least one channel");
  }
}

std::size_t StreamingStft::push(const SignalView& frames) {
  if (frames.channels() != channels_) {
    throw std::invalid_argument("StreamingStft::push: channel mismatch");
  }
  input_buffer_.drop_before(next_start_);
  input_buffer_.append(frames);
  std::size_t emitted = 0;
  while (emit_next_column()) ++emitted;
  return emitted;
}

bool StreamingStft::emit_next_column() {
  if (next_start_ + n_win_ > input_buffer_.end()) return false;
  const auto win = input_buffer_.view(next_start_, next_start_ + n_win_);
  // All channels through one batched transform (channels as lanes): the
  // interleaved window block is windowed with a single row-broadcast
  // multiply and packs into the plan with contiguous row copies.  The
  // per-lane arithmetic is identical to rfft_magnitude per channel, so
  // columns stay byte-identical to the offline spectrogram().  Scratch
  // lives in the members — no allocation per column.
  nsync::dsp::simd::ops().mul_rows_broadcast_real(
      win.data(), n_win_, channels_, window_->data(), winbuf_.data());
  batched_.forward_interleaved(winbuf_.data(), spec_re_.data(),
                               spec_im_.data());
  for (std::size_t c = 0; c < channels_; ++c) {
    for (std::size_t k = 0; k < bins_; ++k) {
      const double m = std::abs(Complex(spec_re_[k * channels_ + c],
                                        spec_im_[k * channels_ + c]));
      row_[c * bins_ + k] = config_.log_magnitude ? std::log1p(m) : m;
    }
  }
  output_.append_frame(row_);
  next_start_ += n_hop_;
  return true;
}

}  // namespace nsync::dsp
