#include "dsp/streaming_stft.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace nsync::dsp {

using nsync::signal::Signal;
using nsync::signal::SignalView;

StreamingStft::StreamingStft(const StftConfig& config, double input_rate,
                             std::size_t input_channels)
    : config_(config),
      channels_(input_channels),
      n_win_(stft_window_samples(config, input_rate)),
      n_hop_(stft_hop_samples(config, input_rate)),
      bins_(n_win_ / 2 + 1),
      window_(cached_window(config.window, n_win_)),
      input_buffer_(input_channels, input_rate),
      output_(Signal::empty(input_channels * (n_win_ / 2 + 1),
                            1.0 / config.delta_t)) {
  if (input_channels == 0) {
    throw std::invalid_argument("StreamingStft: need at least one channel");
  }
}

std::size_t StreamingStft::push(const SignalView& frames) {
  if (frames.channels() != channels_) {
    throw std::invalid_argument("StreamingStft::push: channel mismatch");
  }
  input_buffer_.drop_before(next_start_);
  input_buffer_.append(frames);
  std::size_t emitted = 0;
  while (emit_next_column()) ++emitted;
  return emitted;
}

bool StreamingStft::emit_next_column() {
  if (next_start_ + n_win_ > input_buffer_.end()) return false;
  const auto win = input_buffer_.view(next_start_, next_start_ + n_win_);
  std::vector<double> row(channels_ * bins_);
  std::vector<double> buf(n_win_);
  for (std::size_t c = 0; c < channels_; ++c) {
    for (std::size_t i = 0; i < n_win_; ++i) {
      buf[i] = win(i, c) * (*window_)[i];
    }
    const auto mags = rfft_magnitude(buf);
    for (std::size_t k = 0; k < bins_; ++k) {
      row[c * bins_ + k] =
          config_.log_magnitude ? std::log1p(mags[k]) : mags[k];
    }
  }
  output_.append_frame(row);
  next_start_ += n_hop_;
  return true;
}

}  // namespace nsync::dsp
