// Fast Fourier Transform.
//
// Provides an iterative radix-2 complex FFT plus a Bluestein (chirp-Z)
// fallback so that any length is supported, and real-input transforms
// (rfft/irfft) that exploit conjugate symmetry via the half-size complex
// trick: a length-N real FFT runs as one length-N/2 complex FFT plus an
// O(N) untangling pass, roughly halving the work of the complex path.
// The N/2+1 non-negative-frequency bins feed the spectrogram pipeline
// (Table III of the paper) and the fast TDE cross-correlation.
//
// All entry points share a process-wide, thread-safe plan cache: radix-2
// twiddle factors and bit-reversal permutations are computed once per
// size, real-FFT untangling twiddles once per (power-of-two) size, and
// the Bluestein chirp plus the FFT of its convolution kernel once per
// (size, direction).  Every function here is safe to call concurrently
// from multiple threads, and the workspace entry points perform no heap
// allocation once their buffers have grown to steady-state size.
//
// The butterfly, pack/untangle, and bin-product inner loops run through
// the runtime-dispatched SIMD kernel table (dsp/simd/simd.hpp): AVX2 or
// NEON when the host supports it, with a scalar fallback that is always
// built.  All backends are bitwise-identical for these kernels (the
// vector lanes evaluate the exact scalar formulas in parallel), so
// results do not depend on the machine the binary lands on.  Batched
// many-channel transforms live in dsp/batched_fft.hpp.
#ifndef NSYNC_DSP_FFT_HPP
#define NSYNC_DSP_FFT_HPP

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace nsync::dsp {

using Complex = std::complex<double>;

/// Returns true when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT; `data.size()` must be a power of two.  Uses the
/// cached plan for that size (creating it on first use).
void fft_radix2(std::span<Complex> data, bool inverse = false);

/// Reference radix-2 FFT that recomputes its twiddle factors on every
/// call (the pre-cache implementation).  Kept for the cache-equivalence
/// tests and the BM_FftUncached micro-bench; prefer fft_radix2.
void fft_radix2_uncached(std::span<Complex> data, bool inverse = false);

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise).  Returns a new vector of the same length.
[[nodiscard]] std::vector<Complex> fft(std::span<const Complex> input);

/// Inverse DFT of arbitrary length (includes the 1/N normalization).
[[nodiscard]] std::vector<Complex> ifft(std::span<const Complex> input);

/// Forward DFT of a real sequence; returns bins 0 .. N/2 (inclusive),
/// i.e. floor(N/2)+1 complex values.  Even lengths use the half-size
/// complex trick (one N/2-point FFT + untangle); odd lengths fall back to
/// the complex transform.
[[nodiscard]] std::vector<Complex> rfft(std::span<const double> input);

/// Inverse of rfft: reconstructs the length-n real sequence from its
/// floor(n/2)+1 non-negative-frequency bins (which must describe a
/// conjugate-symmetric spectrum, i.e. come from a real signal).  Includes
/// the 1/n normalization.
[[nodiscard]] std::vector<double> irfft(std::span<const Complex> bins,
                                        std::size_t n);

/// Magnitudes of rfft(input).
[[nodiscard]] std::vector<double> rfft_magnitude(std::span<const double> input);

/// Reusable scratch for the zero-allocation real-FFT correlation path.
/// Buffers grow to the padded transform size on first use and are reused
/// afterwards; a default-constructed workspace is valid for any input.
struct CorrelationWorkspace {
  std::vector<double> x_pad;    ///< zero-padded x (and irfft output)
  std::vector<double> y_pad;    ///< zero-padded, time-reversed y
  std::vector<Complex> spec_x;   ///< rfft(x_pad), then the bin product
  std::vector<Complex> spec_y;   ///< rfft(y_pad)
  std::vector<double> half_re;   ///< half-size staging plane (real)
  std::vector<double> half_im;   ///< half-size staging plane (imag)
};

/// Linear cross-correlation of x with y via FFT zero-padding:
///   out[k] = sum_n x[n + k] * y[n],  k = 0 .. x.size() - y.size()
/// Requires x.size() >= y.size().  This is the unnormalized numerator used
/// by the fast sliding-correlation TDE path.  Runs on the real-FFT
/// kernels (two rfft + one irfft at half the complex transform size).
[[nodiscard]] std::vector<double> cross_correlate_valid(
    std::span<const double> x, std::span<const double> y);

/// Same as cross_correlate_valid, writing into `out` (which must have
/// exactly x.size() - y.size() + 1 elements) and using `ws` for all
/// scratch.  Performs no heap allocation once `ws` has reached
/// steady-state size for the padded transform length.
void cross_correlate_valid_into(std::span<const double> x,
                                std::span<const double> y,
                                std::span<double> out,
                                CorrelationWorkspace& ws);

/// Pre-rfft reference implementation using two full-size complex FFTs.
/// Kept for the rfft equivalence tests and the bench_ablation_tde_speed
/// ablation; prefer cross_correlate_valid.
[[nodiscard]] std::vector<double> cross_correlate_valid_complex(
    std::span<const double> x, std::span<const double> y);

/// Counters for the process-wide FFT plan cache (all sizes since start
/// or the last fft_plan_cache_clear()).
struct FftCacheStats {
  std::size_t radix2_plans = 0;     ///< distinct radix-2 sizes planned
  std::size_t rfft_plans = 0;       ///< distinct real-FFT sizes planned
  std::size_t bluestein_plans = 0;  ///< distinct (size, direction) pairs
  std::size_t hits = 0;             ///< lookups served from the cache
  std::size_t misses = 0;           ///< lookups that had to build a plan
};

[[nodiscard]] FftCacheStats fft_plan_cache_stats();

/// Drops every cached plan and resets the counters (for tests).
void fft_plan_cache_clear();

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_FFT_HPP
