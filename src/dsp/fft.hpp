// Fast Fourier Transform.
//
// Provides an iterative radix-2 complex FFT plus a Bluestein (chirp-Z)
// fallback so that any length is supported, and a real-input convenience
// wrapper returning the N/2+1 non-negative-frequency bins used by the
// spectrogram pipeline (Table III of the paper).
//
// All entry points share a process-wide, thread-safe plan cache: radix-2
// twiddle factors and bit-reversal permutations are computed once per
// size, and the Bluestein chirp plus the FFT of its convolution kernel
// are computed once per (size, direction).  Every function here is safe
// to call concurrently from multiple threads.
#ifndef NSYNC_DSP_FFT_HPP
#define NSYNC_DSP_FFT_HPP

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace nsync::dsp {

using Complex = std::complex<double>;

/// Returns true when n is a power of two (n >= 1).
[[nodiscard]] bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT; `data.size()` must be a power of two.  Uses the
/// cached plan for that size (creating it on first use).
void fft_radix2(std::span<Complex> data, bool inverse = false);

/// Reference radix-2 FFT that recomputes its twiddle factors on every
/// call (the pre-cache implementation).  Kept for the cache-equivalence
/// tests and the BM_FftUncached micro-bench; prefer fft_radix2.
void fft_radix2_uncached(std::span<Complex> data, bool inverse = false);

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise).  Returns a new vector of the same length.
[[nodiscard]] std::vector<Complex> fft(std::span<const Complex> input);

/// Inverse DFT of arbitrary length (includes the 1/N normalization).
[[nodiscard]] std::vector<Complex> ifft(std::span<const Complex> input);

/// Forward DFT of a real sequence; returns bins 0 .. N/2 (inclusive),
/// i.e. floor(N/2)+1 complex values.
[[nodiscard]] std::vector<Complex> rfft(std::span<const double> input);

/// Magnitudes of rfft(input).
[[nodiscard]] std::vector<double> rfft_magnitude(std::span<const double> input);

/// Linear cross-correlation of x with y via FFT zero-padding:
///   out[k] = sum_n x[n + k] * y[n],  k = 0 .. x.size() - y.size()
/// Requires x.size() >= y.size().  This is the unnormalized numerator used
/// by the fast sliding-correlation TDE path.
[[nodiscard]] std::vector<double> cross_correlate_valid(
    std::span<const double> x, std::span<const double> y);

/// Counters for the process-wide FFT plan cache (all sizes since start
/// or the last fft_plan_cache_clear()).
struct FftCacheStats {
  std::size_t radix2_plans = 0;     ///< distinct radix-2 sizes planned
  std::size_t bluestein_plans = 0;  ///< distinct (size, direction) pairs
  std::size_t hits = 0;             ///< lookups served from the cache
  std::size_t misses = 0;           ///< lookups that had to build a plan
};

[[nodiscard]] FftCacheStats fft_plan_cache_stats();

/// Drops every cached plan and resets the counters (for tests).
void fft_plan_cache_clear();

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_FFT_HPP
