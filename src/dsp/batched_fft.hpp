// Batched real FFT: all channels through one plan.
//
// A BatchedRfftPlan transforms `lanes` equal-length real signals at once
// by storing them lane-interleaved — element k of lane l lives at
// [k * lanes + l] — so every butterfly, chirp multiply, and untangle step
// is a contiguous vector operation across lanes instead of a strided
// walk.  The per-lane arithmetic is the exact operation sequence of the
// single-signal rfft()/irfft() paths in fft.cpp (same cached twiddle and
// Bluestein plans, same formulas), so batched results are bitwise equal,
// lane for lane, to running rfft() on each channel separately — under
// every SIMD backend.
//
// This is the throughput workhorse for the fleet pipeline: multi-channel
// spectrogram columns (stft.cpp / streaming_stft.cpp) and the
// multi-channel TDE cross-correlation (core/tde.cpp) push all channels
// through one plan rather than looping transforms per channel.
//
// Forward transforms support every length (power-of-two half-trick, even
// Bluestein, odd Bluestein); the inverse is implemented for power-of-two
// lengths only — the one shape the correlation path needs (padded sizes
// are always powers of two).  All scratch is allocated in the
// constructor; forward()/inverse() perform no heap allocation.
#ifndef NSYNC_DSP_BATCHED_FFT_HPP
#define NSYNC_DSP_BATCHED_FFT_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "dsp/fft.hpp"

namespace nsync::dsp {

namespace detail {
struct Radix2Plan;
struct BluesteinPlan;
}  // namespace detail

class BatchedRfftPlan {
 public:
  /// Plan for `lanes` real signals of length n (n >= 1, lanes >= 1).
  BatchedRfftPlan(std::size_t n, std::size_t lanes);
  ~BatchedRfftPlan();

  BatchedRfftPlan(BatchedRfftPlan&&) noexcept;
  BatchedRfftPlan& operator=(BatchedRfftPlan&&) noexcept;

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  /// Number of spectrum rows per lane: floor(n/2) + 1.
  [[nodiscard]] std::size_t bins() const { return n_ / 2 + 1; }
  /// True when inverse() is available (power-of-two n).
  [[nodiscard]] bool supports_inverse() const;

  /// Forward transform of all lanes.  Lane l reads n doubles starting at
  /// x + l * in_stride (in_stride >= n).  Writes the lane-interleaved
  /// split spectrum: bin k of lane l at spec_re/spec_im[k * lanes + l],
  /// bins() rows, so each plane needs bins() * lanes doubles.
  void forward(const double* x, std::size_t in_stride, double* spec_re,
               double* spec_im);

  /// Same transform, reading lane-interleaved input: sample k of lane l
  /// at x[k * lanes + l] (the layout of an interleaved multichannel
  /// signal frame block), n rows.  This is the zero-shuffle entry point —
  /// packing reduces to contiguous row copies.
  void forward_interleaved(const double* x, double* spec_re,
                           double* spec_im);

  /// Inverse transform (power-of-two n only; throws std::logic_error
  /// otherwise).  Reads a lane-interleaved split spectrum as produced by
  /// forward() and writes lane l's n real samples at
  /// out + l * out_stride.  Includes the 1/n normalization.
  void inverse(const double* spec_re, const double* spec_im, double* out,
               std::size_t out_stride);

  /// Inverse writing lane-interleaved output: sample k of lane l at
  /// out[k * lanes + l].
  void inverse_interleaved(const double* spec_re, const double* spec_im,
                           double* out);

 private:
  enum class Mode { kOne, kPow2, kEvenBluestein, kOddBluestein };

  void pack_strided(const double* x, std::size_t in_stride);
  void pack_interleaved(const double* x);
  void forward_core(double* spec_re, double* spec_im);
  void inverse_core(const double* spec_re, const double* spec_im);
  void run_bluestein(std::size_t data_rows,
                     const detail::BluesteinPlan& bplan,
                     const detail::Radix2Plan& conv_plan);
  void untangle_even(double* spec_re, double* spec_im);

  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  Mode mode_ = Mode::kOne;
  std::size_t h_ = 0;          ///< half length (even n) or n (odd n)
  std::size_t work_rows_ = 0;  ///< rows in the work planes (h or conv m)
  std::shared_ptr<const detail::Radix2Plan> half_plan_;  ///< pow2 half
  std::shared_ptr<const detail::Radix2Plan> conv_plan_;  ///< Bluestein m
  std::shared_ptr<const detail::BluesteinPlan> bluestein_;
  std::vector<double> tw_re_;  ///< untangle twiddles w_n^k, k < n/2
  std::vector<double> tw_im_;
  std::vector<double> work_re_;  ///< lane-interleaved scratch planes
  std::vector<double> work_im_;
};

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_BATCHED_FFT_HPP
