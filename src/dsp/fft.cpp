#include "dsp/fft.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>

namespace nsync::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

// ---------------------------------------------------------------------------
// Plan cache.
//
// Radix-2 plans hold the bit-reversal permutation and the forward twiddle
// table w_n^k = exp(-2*pi*i*k/n), k < n/2; stage `len` reads the table at
// stride n/len, which is both faster and more accurate than the repeated
// w *= wlen recurrence of the uncached path.  Bluestein plans hold the
// chirp and the FFT of the convolution kernel per (n, direction).
// Plans are immutable once built, published via shared_ptr, and looked up
// under a shared_mutex, so any number of threads can transform
// concurrently.
// ---------------------------------------------------------------------------

struct Radix2Plan {
  std::vector<std::size_t> bitrev;  ///< bitrev[i] = bit-reversed i
  std::vector<Complex> twiddle;     ///< forward w_n^k, k < n/2
};

struct BluesteinPlan {
  std::size_t m = 0;            ///< power-of-two convolution length
  std::vector<Complex> chirp;   ///< w[k] = exp(sign*i*pi*k^2/n)
  std::vector<Complex> kernel;  ///< fft of the padded conj-chirp sequence
};

std::shared_ptr<const Radix2Plan> build_radix2_plan(std::size_t n) {
  auto plan = std::make_shared<Radix2Plan>();
  plan->bitrev.resize(n);
  plan->bitrev[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan->bitrev[i] = j;
  }
  plan->twiddle.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n);
    plan->twiddle[k] = Complex(std::cos(ang), std::sin(ang));
  }
  return plan;
}

void run_radix2_plan(std::span<Complex> data, const Radix2Plan& plan,
                     bool inverse) {
  const std::size_t n = data.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex w = plan.twiddle[k * stride];
        if (inverse) w = std::conj(w);
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

// Real-FFT plan for an even power-of-two size n: the radix-2 plan for the
// half-size complex transform plus the untangling twiddles
// w^k = exp(-2*pi*i*k/n), k < n/2 (the same values the size-n radix-2
// table holds, cached separately so the real path never builds the
// full-size bit-reversal permutation).
struct RfftPlan {
  std::shared_ptr<const Radix2Plan> half;  ///< plan for size n/2
  std::vector<Complex> twiddle;            ///< w_n^k, k < n/2
};

class PlanCache {
 public:
  std::shared_ptr<const Radix2Plan> radix2(std::size_t n) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = radix2_.find(n);
      if (it != radix2_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto plan = build_radix2_plan(n);  // built outside any lock
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto [it, inserted] = radix2_.emplace(n, std::move(plan));
    (void)inserted;  // a racing builder may have won; use its plan
    return it->second;
  }

  std::shared_ptr<const BluesteinPlan> bluestein(std::size_t n,
                                                 bool inverse) {
    const std::size_t key = (n << 1) | (inverse ? 1 : 0);
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = bluestein_.find(key);
      if (it != bluestein_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto plan = build_bluestein_plan(n, inverse);
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto [it, inserted] = bluestein_.emplace(key, std::move(plan));
    (void)inserted;
    return it->second;
  }

  std::shared_ptr<const RfftPlan> rfft(std::size_t n) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = rfft_.find(n);
      if (it != rfft_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto plan = std::make_shared<RfftPlan>();
    plan->half = radix2(n / 2);
    plan->twiddle.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      plan->twiddle[k] = Complex(std::cos(ang), std::sin(ang));
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto [it, inserted] = rfft_.emplace(n, std::move(plan));
    (void)inserted;  // a racing builder may have won; use its plan
    return it->second;
  }

  [[nodiscard]] FftCacheStats stats() {
    FftCacheStats s;
    std::shared_lock<std::shared_mutex> lock(mu_);
    s.radix2_plans = radix2_.size();
    s.rfft_plans = rfft_.size();
    s.bluestein_plans = bluestein_.size();
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    return s;
  }

  void clear() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    radix2_.clear();
    rfft_.clear();
    bluestein_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const BluesteinPlan> build_bluestein_plan(std::size_t n,
                                                            bool inverse) {
    const double sign = inverse ? 1.0 : -1.0;
    auto plan = std::make_shared<BluesteinPlan>();
    plan->chirp.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      // k^2 mod 2n keeps the argument bounded for large k.
      const auto k2 = static_cast<double>((k * k) % (2 * n));
      const double ang = sign * kPi * k2 / static_cast<double>(n);
      plan->chirp[k] = Complex(std::cos(ang), std::sin(ang));
    }
    plan->m = next_power_of_two(2 * n - 1);
    std::vector<Complex> b(plan->m, Complex(0.0, 0.0));
    b[0] = std::conj(plan->chirp[0]);
    for (std::size_t k = 1; k < n; ++k) {
      b[k] = b[plan->m - k] = std::conj(plan->chirp[k]);
    }
    run_radix2_plan(b, *radix2(plan->m), /*inverse=*/false);
    plan->kernel = std::move(b);
    return plan;
  }

  std::shared_mutex mu_;
  std::unordered_map<std::size_t, std::shared_ptr<const Radix2Plan>> radix2_;
  std::unordered_map<std::size_t, std::shared_ptr<const RfftPlan>> rfft_;
  std::unordered_map<std::size_t, std::shared_ptr<const BluesteinPlan>>
      bluestein_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

// Bluestein's algorithm: expresses a length-N DFT as a convolution, which
// is evaluated with a power-of-two FFT.  Handles any N.  The chirp and the
// kernel FFT come from the plan cache; only the data-dependent convolution
// runs per call, in a per-thread scratch buffer.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const auto plan = plan_cache().bluestein(n, inverse);
  const auto radix2 = plan_cache().radix2(plan->m);
  thread_local std::vector<Complex> scratch;
  scratch.assign(plan->m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    scratch[k] = input[k] * plan->chirp[k];
  }
  run_radix2_plan(scratch, *radix2, /*inverse=*/false);
  for (std::size_t k = 0; k < plan->m; ++k) scratch[k] *= plan->kernel[k];
  run_radix2_plan(scratch, *radix2, /*inverse=*/true);  // includes 1/m
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = scratch[k] * plan->chirp[k];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Half-size complex trick for real transforms.
//
// Forward, n = 2h:  pack z[k] = x[2k] + i*x[2k+1] and take the h-point
// DFT Z.  With E/O the DFTs of the even/odd samples,
//   E[k] = (Z[k] + conj(Z[(h-k) mod h])) / 2
//   O[k] = (Z[k] - conj(Z[(h-k) mod h])) / (2i)
//   X[k] = E[k] + w^k * O[k],  w = exp(-2*pi*i/n),  k = 0 .. h.
// Inverse: the algebra runs backwards,
//   E[k] = (X[k] + conj(X[h-k])) / 2
//   O[k] = conj(w^k) * (X[k] - conj(X[h-k])) / 2
//   Z[k] = E[k] + i*O[k],  z = IDFT_h(Z),  x[2k] = Re z, x[2k+1] = Im z.
// Both passes are O(n) around one half-size complex FFT.
// ---------------------------------------------------------------------------

// x.size() must equal the (power-of-two) plan size n; writes n/2+1 bins.
void rfft_pow2_into(std::span<const double> x, std::span<Complex> out,
                    std::span<Complex> half, const RfftPlan& plan) {
  const std::size_t h = x.size() / 2;
  for (std::size_t k = 0; k < h; ++k) {
    half[k] = Complex(x[2 * k], x[2 * k + 1]);
  }
  if (h > 1) run_radix2_plan(half.first(h), *plan.half, /*inverse=*/false);
  out[0] = Complex(half[0].real() + half[0].imag(), 0.0);
  out[h] = Complex(half[0].real() - half[0].imag(), 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const Complex zk = half[k];
    const Complex zc = std::conj(half[h - k]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    out[k] = even + plan.twiddle[k] * odd;
  }
}

// bins.size() must be n/2+1 for the (power-of-two) plan size n = out.size().
void irfft_pow2_into(std::span<const Complex> bins, std::span<double> out,
                     std::span<Complex> half, const RfftPlan& plan) {
  const std::size_t h = out.size() / 2;
  for (std::size_t k = 0; k < h; ++k) {
    const Complex xk = bins[k];
    const Complex xc = std::conj(bins[h - k]);
    const Complex even = 0.5 * (xk + xc);
    const Complex odd = std::conj(plan.twiddle[k]) * (0.5 * (xk - xc));
    half[k] = even + Complex(0.0, 1.0) * odd;
  }
  if (h > 1) run_radix2_plan(half.first(h), *plan.half, /*inverse=*/true);
  for (std::size_t k = 0; k < h; ++k) {
    out[2 * k] = half[k].real();
    out[2 * k + 1] = half[k].imag();
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  if (n == 1) return;
  run_radix2_plan(data, *plan_cache().radix2(n), inverse);
}

void fft_radix2_uncached(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument(
        "fft_radix2_uncached: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> fft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data, /*inverse=*/true);
    return data;
  }
  auto out = bluestein(input, /*inverse=*/true);
  for (auto& x : out) x /= static_cast<double>(out.size());
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n / 2 + 1);
  if (n == 0) {
    out[0] = Complex(0.0, 0.0);
    return out;
  }
  if (n % 2 == 0 && is_power_of_two(n)) {
    const auto plan = plan_cache().rfft(n);
    std::vector<Complex> half(std::max<std::size_t>(n / 2, 1));
    rfft_pow2_into(input, out, half, *plan);
    return out;
  }
  if (n % 2 == 0) {
    // Half-size trick with a Bluestein (or radix-2) half transform.
    const std::size_t h = n / 2;
    std::vector<Complex> packed(h);
    for (std::size_t k = 0; k < h; ++k) {
      packed[k] = Complex(input[2 * k], input[2 * k + 1]);
    }
    const auto z = fft(packed);
    out[0] = Complex(z[0].real() + z[0].imag(), 0.0);
    out[h] = Complex(z[0].real() - z[0].imag(), 0.0);
    for (std::size_t k = 1; k < h; ++k) {
      const Complex zc = std::conj(z[h - k]);
      const Complex even = 0.5 * (z[k] + zc);
      const Complex odd = Complex(0.0, -0.5) * (z[k] - zc);
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      out[k] = even + Complex(std::cos(ang), std::sin(ang)) * odd;
    }
    return out;
  }
  // Odd length: no pairing is possible; use the complex transform.
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(input[i], 0.0);
  auto full = fft(data);
  full.resize(n / 2 + 1);
  return full;
}

std::vector<double> irfft(std::span<const Complex> bins, std::size_t n) {
  if (n == 0) return {};
  if (bins.size() != n / 2 + 1) {
    throw std::invalid_argument("irfft: need floor(n/2)+1 bins");
  }
  std::vector<double> out(n);
  if (n % 2 == 0 && is_power_of_two(n)) {
    const auto plan = plan_cache().rfft(n);
    std::vector<Complex> half(std::max<std::size_t>(n / 2, 1));
    irfft_pow2_into(bins, out, half, *plan);
    return out;
  }
  if (n % 2 == 0) {
    const std::size_t h = n / 2;
    std::vector<Complex> z(h);
    for (std::size_t k = 0; k < h; ++k) {
      const Complex xc = std::conj(bins[h - k]);
      const Complex even = 0.5 * (bins[k] + xc);
      const double ang = 2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      const Complex odd =
          Complex(std::cos(ang), std::sin(ang)) * (0.5 * (bins[k] - xc));
      z[k] = even + Complex(0.0, 1.0) * odd;
    }
    const auto back = ifft(z);
    for (std::size_t k = 0; k < h; ++k) {
      out[2 * k] = back[k].real();
      out[2 * k + 1] = back[k].imag();
    }
    return out;
  }
  // Odd length: rebuild the full conjugate-symmetric spectrum.
  std::vector<Complex> full(n);
  for (std::size_t k = 0; k < bins.size(); ++k) full[k] = bins[k];
  for (std::size_t k = 1; k < bins.size(); ++k) {
    full[n - k] = std::conj(bins[k]);
  }
  const auto back = ifft(full);
  for (std::size_t i = 0; i < n; ++i) out[i] = back[i].real();
  return out;
}

std::vector<double> rfft_magnitude(std::span<const double> input) {
  const auto bins = rfft(input);
  std::vector<double> out(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) out[i] = std::abs(bins[i]);
  return out;
}

void cross_correlate_valid_into(std::span<const double> x,
                                std::span<const double> y,
                                std::span<double> out,
                                CorrelationWorkspace& ws) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid: need x.size() >= y.size() >= 1");
  }
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  const std::size_t n_out = nx - ny + 1;
  if (out.size() != n_out) {
    throw std::invalid_argument(
        "cross_correlate_valid_into: out.size() must be "
        "x.size() - y.size() + 1");
  }
  const std::size_t m = next_power_of_two(nx + ny);
  const std::size_t h = m / 2;
  const auto plan = plan_cache().rfft(m);
  ws.x_pad.assign(m, 0.0);
  ws.y_pad.assign(m, 0.0);
  ws.spec_x.resize(h + 1);
  ws.spec_y.resize(h + 1);
  ws.half.resize(std::max<std::size_t>(h, 1));
  for (std::size_t i = 0; i < nx; ++i) ws.x_pad[i] = x[i];
  // Time-reverse y so the convolution computes correlation.
  for (std::size_t i = 0; i < ny; ++i) ws.y_pad[i] = y[ny - 1 - i];
  rfft_pow2_into(ws.x_pad, ws.spec_x, ws.half, *plan);
  rfft_pow2_into(ws.y_pad, ws.spec_y, ws.half, *plan);
  for (std::size_t k = 0; k <= h; ++k) ws.spec_x[k] *= ws.spec_y[k];
  irfft_pow2_into(ws.spec_x, ws.x_pad, ws.half, *plan);
  for (std::size_t k = 0; k < n_out; ++k) {
    out[k] = ws.x_pad[k + ny - 1];
  }
}

std::vector<double> cross_correlate_valid(std::span<const double> x,
                                          std::span<const double> y) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid: need x.size() >= y.size() >= 1");
  }
  // Per-thread scratch: this runs once per TDE window, so the padded
  // buffers are reused across millions of calls instead of reallocated.
  thread_local CorrelationWorkspace ws;
  std::vector<double> out(x.size() - y.size() + 1);
  cross_correlate_valid_into(x, y, out, ws);
  return out;
}

std::vector<double> cross_correlate_valid_complex(std::span<const double> x,
                                                  std::span<const double> y) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid_complex: need x.size() >= y.size() >= 1");
  }
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  const std::size_t n_out = nx - ny + 1;
  const std::size_t m = next_power_of_two(nx + ny);
  std::vector<Complex> fx(m, Complex(0.0, 0.0));
  std::vector<Complex> fy(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < nx; ++i) fx[i] = Complex(x[i], 0.0);
  for (std::size_t i = 0; i < ny; ++i) fy[i] = Complex(y[ny - 1 - i], 0.0);
  fft_radix2(fx);
  fft_radix2(fy);
  for (std::size_t i = 0; i < m; ++i) fx[i] *= fy[i];
  fft_radix2(fx, /*inverse=*/true);
  std::vector<double> out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    out[k] = fx[k + ny - 1].real();
  }
  return out;
}

FftCacheStats fft_plan_cache_stats() { return plan_cache().stats(); }

void fft_plan_cache_clear() { plan_cache().clear(); }

}  // namespace nsync::dsp
