#include "dsp/fft.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numbers>
#include <shared_mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "dsp/fft_internal.hpp"
#include "dsp/simd/simd.hpp"

namespace nsync::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

namespace simd = nsync::dsp::simd;

using detail::BluesteinPlan;
using detail::Radix2Plan;
using detail::RfftPlan;

// ---------------------------------------------------------------------------
// Plan cache.
//
// Radix-2 plans hold the bit-reversal permutation and per-stage split
// twiddle tables copied out of the full forward table
// w_n^k = exp(-2*pi*i*k/n) (see fft_internal.hpp for why they are copied
// rather than recomputed).  Bluestein plans hold the chirp and the FFT of
// the convolution kernel per (n, direction), split.  Plans are immutable
// once built, published via shared_ptr, and looked up under a
// shared_mutex, so any number of threads can transform concurrently.
// The butterfly/untangle/bin-product inner loops all run through the
// runtime-dispatched SIMD kernel table (dsp/simd/simd.hpp); every scalar
// formula below is preserved bit for bit by the vector backends.
// ---------------------------------------------------------------------------

std::shared_ptr<const Radix2Plan> build_radix2_plan(std::size_t n) {
  auto plan = std::make_shared<Radix2Plan>();
  plan->n = n;
  plan->bitrev.resize(n);
  plan->bitrev[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    plan->bitrev[i] = j;
  }
  std::vector<Complex> full(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) /
                       static_cast<double>(n);
    full[k] = Complex(std::cos(ang), std::sin(ang));
  }
  if (n >= 2) {
    plan->stage_re.resize(n - 1);
    plan->stage_im.resize(n - 1);
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const std::size_t stride = n / len;
      const std::size_t off = len / 2 - 1;
      for (std::size_t k = 0; k < len / 2; ++k) {
        plan->stage_re[off + k] = full[k * stride].real();
        plan->stage_im[off + k] = full[k * stride].imag();
      }
    }
  }
  return plan;
}

class PlanCache {
 public:
  std::shared_ptr<const Radix2Plan> radix2(std::size_t n) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = radix2_.find(n);
      if (it != radix2_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto plan = build_radix2_plan(n);  // built outside any lock
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto [it, inserted] = radix2_.emplace(n, std::move(plan));
    (void)inserted;  // a racing builder may have won; use its plan
    return it->second;
  }

  std::shared_ptr<const BluesteinPlan> bluestein(std::size_t n,
                                                 bool inverse) {
    const std::size_t key = (n << 1) | (inverse ? 1 : 0);
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = bluestein_.find(key);
      if (it != bluestein_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto plan = build_bluestein_plan(n, inverse);
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto [it, inserted] = bluestein_.emplace(key, std::move(plan));
    (void)inserted;
    return it->second;
  }

  std::shared_ptr<const RfftPlan> rfft(std::size_t n) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = rfft_.find(n);
      if (it != rfft_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto plan = std::make_shared<RfftPlan>();
    plan->n = n;
    plan->half = radix2(n / 2);
    plan->tw_re.resize(n / 2);
    plan->tw_im.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      plan->tw_re[k] = std::cos(ang);
      plan->tw_im[k] = std::sin(ang);
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto [it, inserted] = rfft_.emplace(n, std::move(plan));
    (void)inserted;  // a racing builder may have won; use its plan
    return it->second;
  }

  [[nodiscard]] FftCacheStats stats() {
    FftCacheStats s;
    std::shared_lock<std::shared_mutex> lock(mu_);
    s.radix2_plans = radix2_.size();
    s.rfft_plans = rfft_.size();
    s.bluestein_plans = bluestein_.size();
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    return s;
  }

  void clear() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    radix2_.clear();
    rfft_.clear();
    bluestein_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const BluesteinPlan> build_bluestein_plan(std::size_t n,
                                                            bool inverse) {
    const double sign = inverse ? 1.0 : -1.0;
    auto plan = std::make_shared<BluesteinPlan>();
    plan->n = n;
    plan->chirp_re.resize(n);
    plan->chirp_im.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      // k^2 mod 2n keeps the argument bounded for large k.
      const auto k2 = static_cast<double>((k * k) % (2 * n));
      const double ang = sign * kPi * k2 / static_cast<double>(n);
      plan->chirp_re[k] = std::cos(ang);
      plan->chirp_im[k] = std::sin(ang);
    }
    plan->m = next_power_of_two(2 * n - 1);
    plan->kernel_re.assign(plan->m, 0.0);
    plan->kernel_im.assign(plan->m, 0.0);
    plan->kernel_re[0] = plan->chirp_re[0];
    plan->kernel_im[0] = -plan->chirp_im[0];
    for (std::size_t k = 1; k < n; ++k) {
      plan->kernel_re[k] = plan->kernel_re[plan->m - k] = plan->chirp_re[k];
      plan->kernel_im[k] = plan->kernel_im[plan->m - k] = -plan->chirp_im[k];
    }
    detail::run_radix2_split(plan->kernel_re.data(), plan->kernel_im.data(),
                             *radix2(plan->m), /*inverse=*/false);
    return plan;
  }

  std::shared_mutex mu_;
  std::unordered_map<std::size_t, std::shared_ptr<const Radix2Plan>> radix2_;
  std::unordered_map<std::size_t, std::shared_ptr<const RfftPlan>> rfft_;
  std::unordered_map<std::size_t, std::shared_ptr<const BluesteinPlan>>
      bluestein_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

// Bluestein's algorithm: expresses a length-N DFT as a convolution, which
// is evaluated with a power-of-two FFT.  Handles any N.  The chirp and the
// kernel FFT come from the plan cache; only the data-dependent convolution
// runs per call, in per-thread split scratch planes.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const auto plan = plan_cache().bluestein(n, inverse);
  const auto radix2 = plan_cache().radix2(plan->m);
  const auto& k = simd::ops();
  thread_local std::vector<double> sre;
  thread_local std::vector<double> sim;
  sre.assign(plan->m, 0.0);
  sim.assign(plan->m, 0.0);
  k.deinterleave(reinterpret_cast<const double*>(input.data()), n, sre.data(),
                 sim.data());
  k.cmul_split_inplace(sre.data(), sim.data(), plan->chirp_re.data(),
                       plan->chirp_im.data(), n);
  detail::run_radix2_split(sre.data(), sim.data(), *radix2,
                           /*inverse=*/false);
  k.cmul_split_inplace(sre.data(), sim.data(), plan->kernel_re.data(),
                       plan->kernel_im.data(), plan->m);
  detail::run_radix2_split(sre.data(), sim.data(), *radix2,
                           /*inverse=*/true);  // includes 1/m
  k.cmul_split_inplace(sre.data(), sim.data(), plan->chirp_re.data(),
                       plan->chirp_im.data(), n);
  std::vector<Complex> out(n);
  k.interleave(sre.data(), sim.data(), n,
               reinterpret_cast<double*>(out.data()));
  return out;
}

}  // namespace

namespace detail {

std::shared_ptr<const Radix2Plan> get_radix2_plan(std::size_t n) {
  return plan_cache().radix2(n);
}

std::shared_ptr<const RfftPlan> get_rfft_plan(std::size_t n) {
  return plan_cache().rfft(n);
}

std::shared_ptr<const BluesteinPlan> get_bluestein_plan(std::size_t n,
                                                        bool inverse) {
  return plan_cache().bluestein(n, inverse);
}

void run_radix2_split(double* re, double* im, const Radix2Plan& plan,
                      bool inverse) {
  const std::size_t n = plan.n;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  const auto& k = simd::ops();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    k.radix2_pass(re, im, n, len, plan.stage_twr(len), plan.stage_twi(len),
                  inverse);
  }
  if (inverse) k.divide2(re, im, n, static_cast<double>(n));
}

void run_radix2_split_batch(double* re, double* im, std::size_t lanes,
                            const Radix2Plan& plan, bool inverse) {
  const std::size_t n = plan.n;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = plan.bitrev[i];
    if (i < j) {
      std::swap_ranges(re + i * lanes, re + (i + 1) * lanes, re + j * lanes);
      std::swap_ranges(im + i * lanes, im + (i + 1) * lanes, im + j * lanes);
    }
  }
  const auto& k = simd::ops();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    k.radix2_pass_batch(re, im, n, lanes, len, plan.stage_twr(len),
                        plan.stage_twi(len), inverse);
  }
  if (inverse) k.divide2(re, im, n * lanes, static_cast<double>(n));
}

// ---------------------------------------------------------------------------
// Half-size complex trick for real transforms.
//
// Forward, n = 2h:  pack z[k] = x[2k] + i*x[2k+1] and take the h-point
// DFT Z.  With E/O the DFTs of the even/odd samples,
//   E[k] = (Z[k] + conj(Z[(h-k) mod h])) / 2
//   O[k] = (Z[k] - conj(Z[(h-k) mod h])) / (2i)
//   X[k] = E[k] + w^k * O[k],  w = exp(-2*pi*i/n),  k = 0 .. h.
// Inverse: the algebra runs backwards,
//   E[k] = (X[k] + conj(X[h-k])) / 2
//   O[k] = conj(w^k) * (X[k] - conj(X[h-k])) / 2
//   Z[k] = E[k] + i*O[k],  z = IDFT_h(Z),  x[2k] = Re z, x[2k+1] = Im z.
// Both passes are O(n) around one half-size complex FFT.  The pack and
// the k = 1 .. h-1 untangle run through the dispatched SIMD kernels.
// ---------------------------------------------------------------------------

// x.size() must equal the (power-of-two) plan size n; writes n/2+1 bins.
void rfft_pow2_split(std::span<const double> x, std::span<Complex> out,
                     double* half_re, double* half_im, const RfftPlan& plan) {
  const std::size_t h = x.size() / 2;
  const auto& k = simd::ops();
  k.deinterleave(x.data(), h, half_re, half_im);
  if (h > 1) run_radix2_split(half_re, half_im, *plan.half, /*inverse=*/false);
  out[0] = Complex(half_re[0] + half_im[0], 0.0);
  out[h] = Complex(half_re[0] - half_im[0], 0.0);
  k.rfft_untangle(half_re, half_im, plan.tw_re.data(), plan.tw_im.data(), h,
                  out.data());
}

// bins.size() must be n/2+1 for the (power-of-two) plan size n = out.size().
void irfft_pow2_split(std::span<const Complex> bins, std::span<double> out,
                      double* half_re, double* half_im, const RfftPlan& plan) {
  const std::size_t h = out.size() / 2;
  const auto& k = simd::ops();
  k.irfft_untangle(bins.data(), plan.tw_re.data(), plan.tw_im.data(), h,
                   half_re, half_im);
  if (h > 1) run_radix2_split(half_re, half_im, *plan.half, /*inverse=*/true);
  k.interleave(half_re, half_im, h, out.data());
}

}  // namespace detail

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  if (n == 1) return;
  // Split the interleaved std::complex buffer into per-thread planes, run
  // the split-plane core, and reinterleave.  The copies are exact, so the
  // public API is bit-compatible with the historical in-place transform.
  const auto plan = plan_cache().radix2(n);
  const auto& k = simd::ops();
  thread_local std::vector<double> re;
  thread_local std::vector<double> im;
  if (re.size() < n) {
    re.resize(n);
    im.resize(n);
  }
  k.deinterleave(reinterpret_cast<const double*>(data.data()), n, re.data(),
                 im.data());
  detail::run_radix2_split(re.data(), im.data(), *plan, inverse);
  k.interleave(re.data(), im.data(), n,
               reinterpret_cast<double*>(data.data()));
}

void fft_radix2_uncached(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument(
        "fft_radix2_uncached: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> fft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data, /*inverse=*/true);
    return data;
  }
  auto out = bluestein(input, /*inverse=*/true);
  for (auto& x : out) x /= static_cast<double>(out.size());
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n / 2 + 1);
  if (n == 0) {
    out[0] = Complex(0.0, 0.0);
    return out;
  }
  if (n % 2 == 0 && is_power_of_two(n)) {
    const auto plan = plan_cache().rfft(n);
    thread_local std::vector<double> half_re;
    thread_local std::vector<double> half_im;
    half_re.resize(std::max<std::size_t>(n / 2, 1));
    half_im.resize(std::max<std::size_t>(n / 2, 1));
    detail::rfft_pow2_split(input, out, half_re.data(), half_im.data(),
                            *plan);
    return out;
  }
  if (n % 2 == 0) {
    // Half-size trick with a Bluestein (or radix-2) half transform.
    const std::size_t h = n / 2;
    std::vector<Complex> packed(h);
    for (std::size_t k = 0; k < h; ++k) {
      packed[k] = Complex(input[2 * k], input[2 * k + 1]);
    }
    const auto z = fft(packed);
    out[0] = Complex(z[0].real() + z[0].imag(), 0.0);
    out[h] = Complex(z[0].real() - z[0].imag(), 0.0);
    for (std::size_t k = 1; k < h; ++k) {
      const Complex zc = std::conj(z[h - k]);
      const Complex even = 0.5 * (z[k] + zc);
      const Complex odd = Complex(0.0, -0.5) * (z[k] - zc);
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      out[k] = even + Complex(std::cos(ang), std::sin(ang)) * odd;
    }
    return out;
  }
  // Odd length: no pairing is possible; use the complex transform.
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(input[i], 0.0);
  auto full = fft(data);
  full.resize(n / 2 + 1);
  return full;
}

std::vector<double> irfft(std::span<const Complex> bins, std::size_t n) {
  if (n == 0) return {};
  if (bins.size() != n / 2 + 1) {
    throw std::invalid_argument("irfft: need floor(n/2)+1 bins");
  }
  std::vector<double> out(n);
  if (n % 2 == 0 && is_power_of_two(n)) {
    const auto plan = plan_cache().rfft(n);
    thread_local std::vector<double> half_re;
    thread_local std::vector<double> half_im;
    half_re.resize(std::max<std::size_t>(n / 2, 1));
    half_im.resize(std::max<std::size_t>(n / 2, 1));
    detail::irfft_pow2_split(bins, out, half_re.data(), half_im.data(),
                             *plan);
    return out;
  }
  if (n % 2 == 0) {
    const std::size_t h = n / 2;
    std::vector<Complex> z(h);
    for (std::size_t k = 0; k < h; ++k) {
      const Complex xc = std::conj(bins[h - k]);
      const Complex even = 0.5 * (bins[k] + xc);
      const double ang = 2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      const Complex odd =
          Complex(std::cos(ang), std::sin(ang)) * (0.5 * (bins[k] - xc));
      z[k] = even + Complex(0.0, 1.0) * odd;
    }
    const auto back = ifft(z);
    for (std::size_t k = 0; k < h; ++k) {
      out[2 * k] = back[k].real();
      out[2 * k + 1] = back[k].imag();
    }
    return out;
  }
  // Odd length: rebuild the full conjugate-symmetric spectrum.
  std::vector<Complex> full(n);
  for (std::size_t k = 0; k < bins.size(); ++k) full[k] = bins[k];
  for (std::size_t k = 1; k < bins.size(); ++k) {
    full[n - k] = std::conj(bins[k]);
  }
  const auto back = ifft(full);
  for (std::size_t i = 0; i < n; ++i) out[i] = back[i].real();
  return out;
}

std::vector<double> rfft_magnitude(std::span<const double> input) {
  const auto bins = rfft(input);
  std::vector<double> out(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) out[i] = std::abs(bins[i]);
  return out;
}

void cross_correlate_valid_into(std::span<const double> x,
                                std::span<const double> y,
                                std::span<double> out,
                                CorrelationWorkspace& ws) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid: need x.size() >= y.size() >= 1");
  }
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  const std::size_t n_out = nx - ny + 1;
  if (out.size() != n_out) {
    throw std::invalid_argument(
        "cross_correlate_valid_into: out.size() must be "
        "x.size() - y.size() + 1");
  }
  const std::size_t m = next_power_of_two(nx + ny);
  const std::size_t h = m / 2;
  const auto plan = plan_cache().rfft(m);
  ws.x_pad.resize(m);
  ws.y_pad.resize(m);
  ws.spec_x.resize(h + 1);
  ws.spec_y.resize(h + 1);
  ws.half_re.resize(std::max<std::size_t>(h, 1));
  ws.half_im.resize(std::max<std::size_t>(h, 1));
  // Touch each pad element exactly once: copy the data region, zero only
  // the padding tail (assign() would memset the whole buffer and then
  // rewrite the front, costing an extra pass over 2*m doubles per call).
  std::copy(x.begin(), x.end(), ws.x_pad.begin());
  std::fill(ws.x_pad.begin() + static_cast<std::ptrdiff_t>(nx), ws.x_pad.end(),
            0.0);
  // Time-reverse y so the convolution computes correlation.
  for (std::size_t i = 0; i < ny; ++i) ws.y_pad[i] = y[ny - 1 - i];
  std::fill(ws.y_pad.begin() + static_cast<std::ptrdiff_t>(ny), ws.y_pad.end(),
            0.0);
  detail::rfft_pow2_split(ws.x_pad, ws.spec_x, ws.half_re.data(),
                          ws.half_im.data(), *plan);
  detail::rfft_pow2_split(ws.y_pad, ws.spec_y, ws.half_re.data(),
                          ws.half_im.data(), *plan);
  simd::ops().cmul_inplace(ws.spec_x.data(), ws.spec_y.data(), h + 1);
  detail::irfft_pow2_split(ws.spec_x, ws.x_pad, ws.half_re.data(),
                           ws.half_im.data(), *plan);
  for (std::size_t k = 0; k < n_out; ++k) {
    out[k] = ws.x_pad[k + ny - 1];
  }
}

std::vector<double> cross_correlate_valid(std::span<const double> x,
                                          std::span<const double> y) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid: need x.size() >= y.size() >= 1");
  }
  // Per-thread scratch: this runs once per TDE window, so the padded
  // buffers are reused across millions of calls instead of reallocated.
  thread_local CorrelationWorkspace ws;
  std::vector<double> out(x.size() - y.size() + 1);
  cross_correlate_valid_into(x, y, out, ws);
  return out;
}

std::vector<double> cross_correlate_valid_complex(std::span<const double> x,
                                                  std::span<const double> y) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid_complex: need x.size() >= y.size() >= 1");
  }
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  const std::size_t n_out = nx - ny + 1;
  const std::size_t m = next_power_of_two(nx + ny);
  std::vector<Complex> fx(m, Complex(0.0, 0.0));
  std::vector<Complex> fy(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < nx; ++i) fx[i] = Complex(x[i], 0.0);
  for (std::size_t i = 0; i < ny; ++i) fy[i] = Complex(y[ny - 1 - i], 0.0);
  fft_radix2(fx);
  fft_radix2(fy);
  for (std::size_t i = 0; i < m; ++i) fx[i] *= fy[i];
  fft_radix2(fx, /*inverse=*/true);
  std::vector<double> out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    out[k] = fx[k + ny - 1].real();
  }
  return out;
}

FftCacheStats fft_plan_cache_stats() { return plan_cache().stats(); }

void fft_plan_cache_clear() { plan_cache().clear(); }

}  // namespace nsync::dsp
