#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nsync::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

// Bluestein's algorithm: expresses a length-N DFT as a convolution, which is
// evaluated with a power-of-two FFT.  Handles any N.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp: w[k] = exp(sign * i * pi * k^2 / n).  Use k^2 mod 2n to keep the
  // argument bounded for large k.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto k2 = static_cast<double>((k * k) % (2 * n));
    const double ang = sign * kPi * k2 / static_cast<double>(n);
    chirp[k] = Complex(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    a[k] = input[k] * chirp[k];
  }
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }
  fft_radix2(a);
  fft_radix2(b);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, /*inverse=*/true);  // includes the 1/m normalization
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = a[k] * chirp[k];
  }
  return out;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> fft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data);
    return data;
  }
  return bluestein(input, /*inverse=*/false);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  std::vector<Complex> data(input.begin(), input.end());
  if (data.empty()) return data;
  if (is_power_of_two(data.size())) {
    fft_radix2(data, /*inverse=*/true);
    return data;
  }
  auto out = bluestein(input, /*inverse=*/true);
  for (auto& x : out) x /= static_cast<double>(out.size());
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  std::vector<Complex> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    data[i] = Complex(input[i], 0.0);
  }
  auto full = fft(data);
  full.resize(input.size() / 2 + 1);
  return full;
}

std::vector<double> rfft_magnitude(std::span<const double> input) {
  const auto bins = rfft(input);
  std::vector<double> out(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) out[i] = std::abs(bins[i]);
  return out;
}

std::vector<double> cross_correlate_valid(std::span<const double> x,
                                          std::span<const double> y) {
  if (y.empty() || x.size() < y.size()) {
    throw std::invalid_argument(
        "cross_correlate_valid: need x.size() >= y.size() >= 1");
  }
  const std::size_t nx = x.size();
  const std::size_t ny = y.size();
  const std::size_t n_out = nx - ny + 1;
  const std::size_t m = next_power_of_two(nx + ny);
  std::vector<Complex> fx(m, Complex(0.0, 0.0));
  std::vector<Complex> fy(m, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < nx; ++i) fx[i] = Complex(x[i], 0.0);
  // Time-reverse y so the convolution computes correlation.
  for (std::size_t i = 0; i < ny; ++i) fy[i] = Complex(y[ny - 1 - i], 0.0);
  fft_radix2(fx);
  fft_radix2(fy);
  for (std::size_t i = 0; i < m; ++i) fx[i] *= fy[i];
  fft_radix2(fx, /*inverse=*/true);
  std::vector<double> out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    out[k] = fx[k + ny - 1].real();
  }
  return out;
}

}  // namespace nsync::dsp
