#include "dsp/batched_fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dsp/fft_internal.hpp"
#include "dsp/simd/simd.hpp"

namespace nsync::dsp {

namespace {
constexpr double kPi = std::numbers::pi;
namespace simd = nsync::dsp::simd;
}  // namespace

BatchedRfftPlan::BatchedRfftPlan(std::size_t n, std::size_t lanes)
    : n_(n), lanes_(lanes) {
  if (n == 0 || lanes == 0) {
    throw std::invalid_argument("BatchedRfftPlan: need n >= 1, lanes >= 1");
  }
  if (n == 1) {
    mode_ = Mode::kOne;
    return;
  }
  if (n % 2 == 0) {
    h_ = n / 2;
    tw_re_.resize(h_);
    tw_im_.resize(h_);
    // Same expression as the single-signal untangle twiddles (both the
    // cached RfftPlan table and the inline even-length formula): bit
    // parity with rfft() depends on reusing it verbatim.
    for (std::size_t k = 0; k < h_; ++k) {
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      tw_re_[k] = std::cos(ang);
      tw_im_[k] = std::sin(ang);
    }
    if (is_power_of_two(n)) {
      mode_ = Mode::kPow2;
      half_plan_ = detail::get_radix2_plan(h_);
      work_rows_ = h_;
    } else {
      // Even non-power-of-two: n = 2 * odd, so the half transform is
      // never a power of two — always Bluestein.
      mode_ = Mode::kEvenBluestein;
      bluestein_ = detail::get_bluestein_plan(h_, /*inverse=*/false);
      conv_plan_ = detail::get_radix2_plan(bluestein_->m);
      work_rows_ = bluestein_->m;
    }
  } else {
    mode_ = Mode::kOddBluestein;
    h_ = n;
    bluestein_ = detail::get_bluestein_plan(n, /*inverse=*/false);
    conv_plan_ = detail::get_radix2_plan(bluestein_->m);
    work_rows_ = bluestein_->m;
  }
  work_re_.resize(work_rows_ * lanes_);
  work_im_.resize(work_rows_ * lanes_);
}

BatchedRfftPlan::~BatchedRfftPlan() = default;
BatchedRfftPlan::BatchedRfftPlan(BatchedRfftPlan&&) noexcept = default;
BatchedRfftPlan& BatchedRfftPlan::operator=(BatchedRfftPlan&&) noexcept =
    default;

bool BatchedRfftPlan::supports_inverse() const {
  return mode_ == Mode::kPow2 || mode_ == Mode::kOne;
}

// Packs channel-major input (lane l at x + l * in_stride) into the split
// work planes: the half-size complex trick's z_k = x_{2k} + i * x_{2k+1}
// for even n, a zero-imaginary copy for odd n.  Bluestein modes zero the
// conversion padding first.
void BatchedRfftPlan::pack_strided(const double* x, std::size_t in_stride) {
  if (mode_ != Mode::kPow2) {
    std::fill(work_re_.begin(), work_re_.end(), 0.0);
    std::fill(work_im_.begin(), work_im_.end(), 0.0);
  }
  if (mode_ == Mode::kOddBluestein) {
    for (std::size_t k = 0; k < n_; ++k) {
      double* wr = work_re_.data() + k * lanes_;
      for (std::size_t l = 0; l < lanes_; ++l) wr[l] = x[l * in_stride + k];
    }
    return;
  }
  for (std::size_t k = 0; k < h_; ++k) {
    double* wr = work_re_.data() + k * lanes_;
    double* wi = work_im_.data() + k * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      wr[l] = x[l * in_stride + 2 * k];
      wi[l] = x[l * in_stride + 2 * k + 1];
    }
  }
}

// Same, for lane-interleaved input (sample k of lane l at
// x[k * lanes + l]): packing is contiguous row copies, no shuffling.
void BatchedRfftPlan::pack_interleaved(const double* x) {
  if (mode_ != Mode::kPow2) {
    std::fill(work_re_.begin(), work_re_.end(), 0.0);
    std::fill(work_im_.begin(), work_im_.end(), 0.0);
  }
  if (mode_ == Mode::kOddBluestein) {
    std::copy_n(x, n_ * lanes_, work_re_.data());
    return;
  }
  for (std::size_t k = 0; k < h_; ++k) {
    std::copy_n(x + 2 * k * lanes_, lanes_, work_re_.data() + k * lanes_);
    std::copy_n(x + (2 * k + 1) * lanes_, lanes_,
                work_im_.data() + k * lanes_);
  }
}

// Batched Bluestein convolution over the work planes: the first
// `data_rows` rows hold the input (remaining conv rows must be zero).
// Mirrors the scalar bluestein() in fft.cpp step for step: chirp
// multiply, forward conv FFT, kernel multiply, inverse conv FFT
// (includes 1/m), chirp multiply.  Each lane sees the identical
// operation sequence, so lanes match the scalar path bitwise.
void BatchedRfftPlan::run_bluestein(std::size_t data_rows,
                                    const detail::BluesteinPlan& bplan,
                                    const detail::Radix2Plan& conv_plan) {
  const auto& k = simd::ops();
  k.cmul_rows_broadcast(work_re_.data(), work_im_.data(), data_rows, lanes_,
                        bplan.chirp_re.data(), bplan.chirp_im.data());
  detail::run_radix2_split_batch(work_re_.data(), work_im_.data(), lanes_,
                                 conv_plan, /*inverse=*/false);
  k.cmul_rows_broadcast(work_re_.data(), work_im_.data(), bplan.m, lanes_,
                        bplan.kernel_re.data(), bplan.kernel_im.data());
  detail::run_radix2_split_batch(work_re_.data(), work_im_.data(), lanes_,
                                 conv_plan, /*inverse=*/true);
  k.cmul_rows_broadcast(work_re_.data(), work_im_.data(), data_rows, lanes_,
                        bplan.chirp_re.data(), bplan.chirp_im.data());
}

// DC/Nyquist rows plus the k = 1 .. h-1 untangle, reading the half-size
// transform out of the work planes.
void BatchedRfftPlan::untangle_even(double* spec_re, double* spec_im) {
  for (std::size_t l = 0; l < lanes_; ++l) {
    const double wr0 = work_re_[l];
    const double wi0 = work_im_[l];
    spec_re[l] = wr0 + wi0;
    spec_im[l] = 0.0;
    spec_re[h_ * lanes_ + l] = wr0 - wi0;
    spec_im[h_ * lanes_ + l] = 0.0;
  }
  simd::ops().rfft_untangle_batch(work_re_.data(), work_im_.data(),
                                  tw_re_.data(), tw_im_.data(), h_, lanes_,
                                  spec_re, spec_im);
}

// Transform over the packed work planes into the spectrum planes.
void BatchedRfftPlan::forward_core(double* spec_re, double* spec_im) {
  switch (mode_) {
    case Mode::kOne:
      return;  // handled by the callers
    case Mode::kPow2:
      if (h_ > 1) {
        detail::run_radix2_split_batch(work_re_.data(), work_im_.data(),
                                       lanes_, *half_plan_,
                                       /*inverse=*/false);
      }
      untangle_even(spec_re, spec_im);
      return;
    case Mode::kEvenBluestein:
      run_bluestein(h_, *bluestein_, *conv_plan_);
      untangle_even(spec_re, spec_im);
      return;
    case Mode::kOddBluestein:
      run_bluestein(n_, *bluestein_, *conv_plan_);
      std::copy_n(work_re_.data(), bins() * lanes_, spec_re);
      std::copy_n(work_im_.data(), bins() * lanes_, spec_im);
      return;
  }
}

void BatchedRfftPlan::forward(const double* x, std::size_t in_stride,
                              double* spec_re, double* spec_im) {
  if (mode_ == Mode::kOne) {
    for (std::size_t l = 0; l < lanes_; ++l) {
      spec_re[l] = x[l * in_stride];
      spec_im[l] = 0.0;
    }
    return;
  }
  pack_strided(x, in_stride);
  forward_core(spec_re, spec_im);
}

void BatchedRfftPlan::forward_interleaved(const double* x, double* spec_re,
                                          double* spec_im) {
  if (mode_ == Mode::kOne) {
    std::copy_n(x, lanes_, spec_re);
    std::fill_n(spec_im, lanes_, 0.0);
    return;
  }
  pack_interleaved(x);
  forward_core(spec_re, spec_im);
}

// Untangle + half-size inverse transform into the work planes.
void BatchedRfftPlan::inverse_core(const double* spec_re,
                                   const double* spec_im) {
  simd::ops().irfft_untangle_batch(spec_re, spec_im, tw_re_.data(),
                                   tw_im_.data(), h_, lanes_, work_re_.data(),
                                   work_im_.data());
  if (h_ > 1) {
    detail::run_radix2_split_batch(work_re_.data(), work_im_.data(), lanes_,
                                   *half_plan_, /*inverse=*/true);
  }
}

void BatchedRfftPlan::inverse(const double* spec_re, const double* spec_im,
                              double* out, std::size_t out_stride) {
  if (!supports_inverse()) {
    throw std::logic_error(
        "BatchedRfftPlan::inverse: only power-of-two lengths");
  }
  if (mode_ == Mode::kOne) {
    for (std::size_t l = 0; l < lanes_; ++l) out[l * out_stride] = spec_re[l];
    return;
  }
  inverse_core(spec_re, spec_im);
  for (std::size_t k = 0; k < h_; ++k) {
    const double* wr = work_re_.data() + k * lanes_;
    const double* wi = work_im_.data() + k * lanes_;
    for (std::size_t l = 0; l < lanes_; ++l) {
      out[l * out_stride + 2 * k] = wr[l];
      out[l * out_stride + 2 * k + 1] = wi[l];
    }
  }
}

void BatchedRfftPlan::inverse_interleaved(const double* spec_re,
                                          const double* spec_im,
                                          double* out) {
  if (!supports_inverse()) {
    throw std::logic_error(
        "BatchedRfftPlan::inverse_interleaved: only power-of-two lengths");
  }
  if (mode_ == Mode::kOne) {
    std::copy_n(spec_re, lanes_, out);
    return;
  }
  inverse_core(spec_re, spec_im);
  for (std::size_t k = 0; k < h_; ++k) {
    std::copy_n(work_re_.data() + k * lanes_, lanes_, out + 2 * k * lanes_);
    std::copy_n(work_im_.data() + k * lanes_, lanes_,
                out + (2 * k + 1) * lanes_);
  }
}

}  // namespace nsync::dsp
