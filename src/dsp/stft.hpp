// Short-Time Fourier Transform and spectrogram generation.
//
// Table III of the paper derives a spectrogram from each side-channel
// signal; the spectrogram is treated as a new multichannel signal whose
// sampling rate is 1/dt and whose channel count is (bins x input channels).
#ifndef NSYNC_DSP_STFT_HPP
#define NSYNC_DSP_STFT_HPP

#include <cstddef>

#include "dsp/windows.hpp"
#include "signal/signal.hpp"

namespace nsync::dsp {

/// Configuration of the STFT, mirroring Table III.
struct StftConfig {
  /// Spectral resolution in Hz; the analysis window spans 1/delta_f seconds.
  double delta_f = 20.0;
  /// Temporal resolution in seconds; the window advances delta_t per column.
  double delta_t = 1.0 / 80.0;
  /// Analysis window shape ("BH" in the paper is Blackman-Harris).
  WindowType window = WindowType::kBlackmanHarris;
  /// When true, magnitudes are mapped through log1p, which compresses the
  /// dynamic range (off by default; the paper stores 16-bit magnitudes).
  bool log_magnitude = false;
};

/// Number of frequency bins the STFT produces per input channel for a
/// signal sampled at `fs`:  floor(round(fs / delta_f) / 2) + 1.
[[nodiscard]] std::size_t stft_bins(const StftConfig& cfg, double fs);

/// Window length in samples: round(fs / delta_f).
[[nodiscard]] std::size_t stft_window_samples(const StftConfig& cfg, double fs);

/// Hop length in samples: round(fs * delta_t), at least 1.
[[nodiscard]] std::size_t stft_hop_samples(const StftConfig& cfg, double fs);

/// Computes the magnitude spectrogram of a multichannel signal.
///
/// The output signal has sample rate 1/delta_t and
/// `stft_bins(...) * s.channels()` channels laid out bin-major per input
/// channel: output channel (c * bins + k) holds bin k of input channel c.
/// Throws std::invalid_argument when the signal is shorter than one window.
[[nodiscard]] nsync::signal::Signal spectrogram(
    const nsync::signal::SignalView& s, const StftConfig& cfg);

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_STFT_HPP
