// Backend resolution for the SIMD kernel table.
//
// One Ops table per compiled-in backend; the active one is chosen once on
// first use (best ISA the host supports, overridable with the NSYNC_SIMD
// environment variable) and held in an atomic pointer so tests and
// ablations can flip backends at runtime without a data race.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "dsp/simd/kernels.hpp"

namespace nsync::dsp::simd {
namespace {

// Field order must match struct Ops exactly.
#define NSYNC_SIMD_OPS_ENTRIES(ns)                                      \
  ns::radix2_pass, ns::radix2_pass_batch, ns::divide2, ns::cmul_inplace, \
      ns::cmul_split_inplace, ns::cmul_rows_broadcast, ns::rfft_untangle, \
      ns::irfft_untangle, ns::rfft_untangle_batch, ns::irfft_untangle_batch, \
      ns::deinterleave, ns::interleave, ns::subtract_scalar, ns::mul_arrays, \
      ns::mul_rows_broadcast_real, ns::add_arrays, ns::scale,           \
      ns::normalize_windows, ns::normalize_windows_strided,             \
      ns::clamp_weight_argmax, ns::channel_sums, ns::center_rows,       \
      ns::center_rows_reversed_energy, ns::prefix_sums_rows, ns::sum,   \
      ns::centered_energy, ns::subtract_scalar_energy,                  \
      ns::pearson_accumulate, ns::prefix_sums

const Ops kScalarOps{Isa::kScalar, "scalar", NSYNC_SIMD_OPS_ENTRIES(scalar)};
#if defined(NSYNC_SIMD_HAVE_AVX2)
const Ops kAvx2Ops{Isa::kAvx2, "avx2", NSYNC_SIMD_OPS_ENTRIES(avx2)};
#endif
#if defined(NSYNC_SIMD_HAVE_NEON)
const Ops kNeonOps{Isa::kNeon, "neon", NSYNC_SIMD_OPS_ENTRIES(neon)};
#endif

#undef NSYNC_SIMD_OPS_ENTRIES

const Ops* table_for(Isa isa) {
  switch (isa) {
#if defined(NSYNC_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      return &kAvx2Ops;
#endif
#if defined(NSYNC_SIMD_HAVE_NEON)
    case Isa::kNeon:
      return &kNeonOps;
#endif
    default:
      return &kScalarOps;
  }
}

Isa parse_isa_name(const char* s) {
  if (std::strcmp(s, "avx2") == 0) return Isa::kAvx2;
  if (std::strcmp(s, "neon") == 0) return Isa::kNeon;
  return Isa::kScalar;
}

Isa initial_isa() {
  Isa isa = best_supported_isa();
  if (const char* env = std::getenv("NSYNC_SIMD")) {
    const Isa wanted = parse_isa_name(env);
    if (backend_available(wanted)) isa = wanted;
  }
  return isa;
}

std::atomic<const Ops*>& active_slot() {
  static std::atomic<const Ops*> slot{table_for(initial_isa())};
  return slot;
}

}  // namespace

const Ops& ops() { return *active_slot().load(std::memory_order_acquire); }

Isa active_isa() { return ops().isa; }

const char* isa_name(Isa isa) { return table_for(isa)->name; }

Isa best_supported_isa() {
#if defined(NSYNC_SIMD_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if defined(NSYNC_SIMD_HAVE_NEON)
  // NEON is baseline on aarch64; the backend is only compiled in when the
  // target guarantees it.
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

bool backend_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(NSYNC_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2");
#endif
#if defined(NSYNC_SIMD_HAVE_NEON)
    case Isa::kNeon:
      return true;
#endif
    default:
      return false;
  }
}

bool set_backend(Isa isa) {
  if (!backend_available(isa)) return false;
  active_slot().store(table_for(isa), std::memory_order_release);
  return true;
}

bool built_with_simd() {
#if defined(NSYNC_SIMD_HAVE_AVX2) || defined(NSYNC_SIMD_HAVE_NEON)
  return true;
#else
  return false;
#endif
}

}  // namespace nsync::dsp::simd
