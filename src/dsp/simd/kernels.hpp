// Internal: per-backend kernel declarations for the dispatch table.
//
// Every backend exposes the same free-function set inside its own
// namespace; dispatch.cpp wires them into simd::Ops tables.  The scalar
// backend is the reference — its bodies are literal transcriptions of the
// loops that used to live inline in fft.cpp / xcorr.cpp / stats.cpp /
// tde.cpp, so the scalar backend is bitwise identical to the pre-dispatch
// implementation.  Vector backends must match it per the contract in
// simd.hpp (bitwise for lane-parallel kernels, bounded-ULP for
// reassociating reductions).
//
// The signature list is kept in one macro so the three backends cannot
// drift apart.
#ifndef NSYNC_DSP_SIMD_KERNELS_HPP
#define NSYNC_DSP_SIMD_KERNELS_HPP

#include "dsp/simd/simd.hpp"

// clang-format off
#define NSYNC_SIMD_DECLARE_KERNELS                                           \
  void radix2_pass(double* re, double* im, std::size_t n, std::size_t len,   \
                   const double* twr, const double* twi, bool inverse);      \
  void radix2_pass_batch(double* re, double* im, std::size_t n,              \
                         std::size_t lanes, std::size_t len,                 \
                         const double* twr, const double* twi,               \
                         bool inverse);                                      \
  void divide2(double* re, double* im, std::size_t n, double d);             \
  void cmul_inplace(Complex* a, const Complex* b, std::size_t n);            \
  void cmul_split_inplace(double* ar, double* ai, const double* br,          \
                          const double* bi, std::size_t n);                  \
  void cmul_rows_broadcast(double* re, double* im, std::size_t rows,         \
                           std::size_t lanes, const double* wr,              \
                           const double* wi);                                \
  void rfft_untangle(const double* hre, const double* him,                   \
                     const double* twr, const double* twi, std::size_t h,    \
                     Complex* out);                                          \
  void irfft_untangle(const Complex* bins, const double* twr,                \
                      const double* twi, std::size_t h, double* out_re,      \
                      double* out_im);                                       \
  void rfft_untangle_batch(const double* hre, const double* him,             \
                           const double* twr, const double* twi,             \
                           std::size_t h, std::size_t lanes,                 \
                           double* out_re, double* out_im);                  \
  void irfft_untangle_batch(const double* br, const double* bi,              \
                            const double* twr, const double* twi,            \
                            std::size_t h, std::size_t lanes,                \
                            double* out_re, double* out_im);                 \
  void deinterleave(const double* xy, std::size_t n, double* re,             \
                    double* im);                                             \
  void interleave(const double* re, const double* im, std::size_t n,         \
                  double* xy);                                               \
  void subtract_scalar(const double* src, double mu, double* dst,            \
                       std::size_t n);                                       \
  void mul_arrays(const double* a, const double* b, double* dst,             \
                  std::size_t n);                                            \
  void mul_rows_broadcast_real(const double* src, std::size_t rows,          \
                               std::size_t lanes, const double* w,           \
                               double* dst);                                 \
  void add_arrays(double* dst, const double* src, std::size_t n);            \
  void scale(double* x, double s, std::size_t n);                            \
  void normalize_windows(const double* ps, const double* ps2,                \
                         std::size_t ny, double y_norm, const double* num,   \
                         double* out, std::size_t n_out);                    \
  void normalize_windows_strided(const double* ps, const double* ps2,        \
                                 std::size_t stride, std::size_t ny,         \
                                 double y_norm, const double* num,           \
                                 double* out, std::size_t n_out);            \
  std::size_t clamp_weight_argmax(const double* scores, const double* w,     \
                                  std::size_t n);                            \
  void channel_sums(const double* data, std::size_t frames,                  \
                    std::size_t channels, double* sums);                     \
  void center_rows(const double* src, std::size_t frames,                    \
                   std::size_t channels, const double* mu, double* dst);     \
  void center_rows_reversed_energy(const double* src, std::size_t frames,    \
                                   std::size_t channels, const double* mu,   \
                                   double* dst, double* energy);             \
  void prefix_sums_rows(const double* x, double* ps, double* ps2,            \
                        std::size_t frames, std::size_t channels);           \
  double sum(const double* x, std::size_t n);                                \
  double centered_energy(const double* x, double mu, std::size_t n);         \
  double subtract_scalar_energy(const double* src, double mu, double* dst,   \
                                std::size_t n);                              \
  void pearson_accumulate(const double* u, const double* v, double mu,       \
                          double mv, std::size_t n, double* num,             \
                          double* du2, double* dv2);                         \
  void prefix_sums(const double* x, double* ps, double* ps2, std::size_t n);
// clang-format on

namespace nsync::dsp::simd {

namespace scalar {
NSYNC_SIMD_DECLARE_KERNELS
}  // namespace scalar

#if defined(NSYNC_SIMD_HAVE_AVX2)
namespace avx2 {
NSYNC_SIMD_DECLARE_KERNELS
}  // namespace avx2
#endif

#if defined(NSYNC_SIMD_HAVE_NEON)
namespace neon {
NSYNC_SIMD_DECLARE_KERNELS
}  // namespace neon
#endif

}  // namespace nsync::dsp::simd

#undef NSYNC_SIMD_DECLARE_KERNELS

#endif  // NSYNC_DSP_SIMD_KERNELS_HPP
