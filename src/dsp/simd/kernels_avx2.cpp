// AVX2 backend.
//
// This translation unit is compiled with `-mavx2 -ffp-contract=off` and
// deliberately WITHOUT `-mfma`: the equivalence contract in simd.hpp
// promises that lane-parallel kernels are bitwise identical to the scalar
// backend, and a fused multiply-add would change the rounding of every
// `a*b - c*d` complex product.  Each vector body below performs exactly
// the scalar backend's operation sequence per lane — including the
// "useless" multiplies by 0.0 and the full multiply by the k = 0 twiddle
// (1.0, -0.0) — so the only kernels that can diverge are the explicitly
// ULP-bounded reductions at the bottom of the file (partial accumulators
// / in-register scans reassociate; see simd.hpp).
//
// NaN/signed-zero gotchas encoded here (do not "fix" the operand order):
//  * `_mm256_max_pd(a, b)` returns b when either input is NaN, while
//    `std::max(x, y)` returns x.  Hence `std::max(scores[j], 0.0)` maps
//    to `_mm256_max_pd(zero, s)` (s second) and `std::max(1.0, s2)` maps
//    to `_mm256_max_pd(s2, ones)` (ones second).
//  * Unary negation is `xor` with -0.0 (bit-exact, matches scalar `-x`).
//  * Masked-out lanes may divide by zero / sqrt a negative; the results
//    are discarded by the mask and float divide-by-zero is well-defined
//    IEEE behavior (and not part of -fsanitize=undefined).
#include "dsp/simd/kernels.hpp"

#if defined(NSYNC_SIMD_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>
#include <limits>

namespace nsync::dsp::simd::avx2 {
namespace {

inline __m256d negate(__m256d v) {
  return _mm256_xor_pd(v, _mm256_set1_pd(-0.0));
}

inline __m256d neg_if(__m256d v, bool cond) { return cond ? negate(v) : v; }

/// [v3 v2 v1 v0] from [v0 v1 v2 v3].
inline __m256d reverse(__m256d v) { return _mm256_permute4x64_pd(v, 0x1B); }

/// lo=[e0 o0 e1 o1], hi=[e2 o2 e3 o3] -> even=[e0..e3], odd=[o0..o3].
inline void split_pairs(__m256d lo, __m256d hi, __m256d& even, __m256d& odd) {
  const __m256d t0 = _mm256_permute2f128_pd(lo, hi, 0x20);
  const __m256d t1 = _mm256_permute2f128_pd(lo, hi, 0x31);
  even = _mm256_unpacklo_pd(t0, t1);
  odd = _mm256_unpackhi_pd(t0, t1);
}

/// Inverse of split_pairs.
inline void join_pairs(__m256d even, __m256d odd, __m256d& lo, __m256d& hi) {
  const __m256d t0 = _mm256_unpacklo_pd(even, odd);
  const __m256d t1 = _mm256_unpackhi_pd(even, odd);
  lo = _mm256_permute2f128_pd(t0, t1, 0x20);
  hi = _mm256_permute2f128_pd(t0, t1, 0x31);
}

/// In-register inclusive scan [v0, v0+v1, v0+v1+v2, v0+v1+v2+v3]
/// (reassociates — only used by the ULP-bounded prefix_sums).
inline __m256d inclusive_scan(__m256d v) {
  __m256d t = _mm256_permute4x64_pd(v, 0x90);        // [v0 v0 v1 v2]
  t = _mm256_blend_pd(t, _mm256_setzero_pd(), 0x1);  // [ 0 v0 v1 v2]
  v = _mm256_add_pd(v, t);
  const __m256d u = _mm256_permute2f128_pd(v, v, 0x08);  // [0 0 s0 s1]
  return _mm256_add_pd(v, u);
}

}  // namespace

void radix2_pass(double* re, double* im, std::size_t n, std::size_t len,
                 const double* twr, const double* twi, bool inverse) {
  if (n < 8) {  // n = 2 or 4: too small to fill a register productively
    scalar::radix2_pass(re, im, n, len, twr, twi, inverse);
    return;
  }
  const std::size_t half = len / 2;
  if (len == 2) {
    // Blocks are adjacent (u, v) pairs; deinterleave 4 blocks at a time.
    const __m256d wr = _mm256_set1_pd(twr[0]);
    const __m256d wi = _mm256_set1_pd(inverse ? -twi[0] : twi[0]);
    for (std::size_t i = 0; i < n; i += 8) {
      __m256d ur, vr, ui, vi, lo, hi;
      split_pairs(_mm256_loadu_pd(re + i), _mm256_loadu_pd(re + i + 4), ur,
                  vr);
      split_pairs(_mm256_loadu_pd(im + i), _mm256_loadu_pd(im + i + 4), ui,
                  vi);
      const __m256d tr =
          _mm256_sub_pd(_mm256_mul_pd(vr, wr), _mm256_mul_pd(vi, wi));
      const __m256d ti =
          _mm256_add_pd(_mm256_mul_pd(vr, wi), _mm256_mul_pd(vi, wr));
      join_pairs(_mm256_add_pd(ur, tr), _mm256_sub_pd(ur, tr), lo, hi);
      _mm256_storeu_pd(re + i, lo);
      _mm256_storeu_pd(re + i + 4, hi);
      join_pairs(_mm256_add_pd(ui, ti), _mm256_sub_pd(ui, ti), lo, hi);
      _mm256_storeu_pd(im + i, lo);
      _mm256_storeu_pd(im + i + 4, hi);
    }
    return;
  }
  if (len == 4) {
    // Block layout [u0 u1 v0 v1]; two blocks per iteration, the twiddle
    // pair broadcast across both 128-bit halves.
    const __m256d wr =
        _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(twr));
    const __m256d wi = neg_if(
        _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(twi)), inverse);
    for (std::size_t i = 0; i < n; i += 8) {
      const __m256d a0r = _mm256_loadu_pd(re + i);
      const __m256d a1r = _mm256_loadu_pd(re + i + 4);
      const __m256d a0i = _mm256_loadu_pd(im + i);
      const __m256d a1i = _mm256_loadu_pd(im + i + 4);
      const __m256d ur = _mm256_permute2f128_pd(a0r, a1r, 0x20);
      const __m256d vr = _mm256_permute2f128_pd(a0r, a1r, 0x31);
      const __m256d ui = _mm256_permute2f128_pd(a0i, a1i, 0x20);
      const __m256d vi = _mm256_permute2f128_pd(a0i, a1i, 0x31);
      const __m256d tr =
          _mm256_sub_pd(_mm256_mul_pd(vr, wr), _mm256_mul_pd(vi, wi));
      const __m256d ti =
          _mm256_add_pd(_mm256_mul_pd(vr, wi), _mm256_mul_pd(vi, wr));
      const __m256d nur = _mm256_add_pd(ur, tr);
      const __m256d nvr = _mm256_sub_pd(ur, tr);
      const __m256d nui = _mm256_add_pd(ui, ti);
      const __m256d nvi = _mm256_sub_pd(ui, ti);
      _mm256_storeu_pd(re + i, _mm256_permute2f128_pd(nur, nvr, 0x20));
      _mm256_storeu_pd(re + i + 4, _mm256_permute2f128_pd(nur, nvr, 0x31));
      _mm256_storeu_pd(im + i, _mm256_permute2f128_pd(nui, nvi, 0x20));
      _mm256_storeu_pd(im + i + 4, _mm256_permute2f128_pd(nui, nvi, 0x31));
    }
    return;
  }
  // len >= 8: half is a multiple of 4, plain 4-wide k loop, no tail.
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; k += 4) {
      const __m256d wr = _mm256_loadu_pd(twr + k);
      const __m256d wi = neg_if(_mm256_loadu_pd(twi + k), inverse);
      double* rea = re + i + k;
      double* ima = im + i + k;
      double* reb = rea + half;
      double* imb = ima + half;
      const __m256d vr = _mm256_loadu_pd(reb);
      const __m256d vi = _mm256_loadu_pd(imb);
      const __m256d tr =
          _mm256_sub_pd(_mm256_mul_pd(vr, wr), _mm256_mul_pd(vi, wi));
      const __m256d ti =
          _mm256_add_pd(_mm256_mul_pd(vr, wi), _mm256_mul_pd(vi, wr));
      const __m256d ur = _mm256_loadu_pd(rea);
      const __m256d ui = _mm256_loadu_pd(ima);
      _mm256_storeu_pd(rea, _mm256_add_pd(ur, tr));
      _mm256_storeu_pd(ima, _mm256_add_pd(ui, ti));
      _mm256_storeu_pd(reb, _mm256_sub_pd(ur, tr));
      _mm256_storeu_pd(imb, _mm256_sub_pd(ui, ti));
    }
  }
}

void radix2_pass_batch(double* re, double* im, std::size_t n,
                       std::size_t lanes, std::size_t len, const double* twr,
                       const double* twi, bool inverse) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const double wr_s = twr[k];
      const double wi_s = inverse ? -twi[k] : twi[k];
      const __m256d wr = _mm256_set1_pd(wr_s);
      const __m256d wi = _mm256_set1_pd(wi_s);
      double* ure = re + (i + k) * lanes;
      double* uim = im + (i + k) * lanes;
      double* vre = re + (i + k + half) * lanes;
      double* vim = im + (i + k + half) * lanes;
      std::size_t l = 0;
      for (; l + 4 <= lanes; l += 4) {
        const __m256d vr = _mm256_loadu_pd(vre + l);
        const __m256d vi = _mm256_loadu_pd(vim + l);
        const __m256d tr =
            _mm256_sub_pd(_mm256_mul_pd(vr, wr), _mm256_mul_pd(vi, wi));
        const __m256d ti =
            _mm256_add_pd(_mm256_mul_pd(vr, wi), _mm256_mul_pd(vi, wr));
        const __m256d ur = _mm256_loadu_pd(ure + l);
        const __m256d ui = _mm256_loadu_pd(uim + l);
        _mm256_storeu_pd(ure + l, _mm256_add_pd(ur, tr));
        _mm256_storeu_pd(uim + l, _mm256_add_pd(ui, ti));
        _mm256_storeu_pd(vre + l, _mm256_sub_pd(ur, tr));
        _mm256_storeu_pd(vim + l, _mm256_sub_pd(ui, ti));
      }
      // 2-wide step: with channel counts like 6 the scalar tail would
      // otherwise cost as much as the vector body.
      for (; l + 2 <= lanes; l += 2) {
        const __m128d wr2 = _mm256_castpd256_pd128(wr);
        const __m128d wi2 = _mm256_castpd256_pd128(wi);
        const __m128d vr = _mm_loadu_pd(vre + l);
        const __m128d vi = _mm_loadu_pd(vim + l);
        const __m128d tr =
            _mm_sub_pd(_mm_mul_pd(vr, wr2), _mm_mul_pd(vi, wi2));
        const __m128d ti =
            _mm_add_pd(_mm_mul_pd(vr, wi2), _mm_mul_pd(vi, wr2));
        const __m128d ur = _mm_loadu_pd(ure + l);
        const __m128d ui = _mm_loadu_pd(uim + l);
        _mm_storeu_pd(ure + l, _mm_add_pd(ur, tr));
        _mm_storeu_pd(uim + l, _mm_add_pd(ui, ti));
        _mm_storeu_pd(vre + l, _mm_sub_pd(ur, tr));
        _mm_storeu_pd(vim + l, _mm_sub_pd(ui, ti));
      }
      for (; l < lanes; ++l) {
        const double vr = vre[l];
        const double vi = vim[l];
        const double tr = vr * wr_s - vi * wi_s;
        const double ti = vr * wi_s + vi * wr_s;
        const double ur = ure[l];
        const double ui = uim[l];
        ure[l] = ur + tr;
        uim[l] = ui + ti;
        vre[l] = ur - tr;
        vim[l] = ui - ti;
      }
    }
  }
}

void divide2(double* re, double* im, std::size_t n, double d) {
  const __m256d dv = _mm256_set1_pd(d);
  for (double* p : {re, im}) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      _mm256_storeu_pd(p + i, _mm256_div_pd(_mm256_loadu_pd(p + i), dv));
    }
    for (; i < n; ++i) p[i] /= d;
  }
}

void cmul_inplace(Complex* a, const Complex* b, std::size_t n) {
  // Two complexes per register.  addsub computes
  // [ar*br - ai*bi, ai*br + ar*bi]; the imaginary part is the scalar
  // formula with the addends swapped, and IEEE addition is commutative,
  // so this is still bitwise.
  double* ap = reinterpret_cast<double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ap + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bp + 2 * i);
    const __m256d br = _mm256_movedup_pd(bv);
    const __m256d bi = _mm256_permute_pd(bv, 0xF);
    const __m256d as = _mm256_permute_pd(av, 0x5);
    _mm256_storeu_pd(ap + 2 * i, _mm256_addsub_pd(_mm256_mul_pd(av, br),
                                                  _mm256_mul_pd(as, bi)));
  }
  for (; i < n; ++i) {
    const double ar = a[i].real();
    const double ai = a[i].imag();
    const double br_s = b[i].real();
    const double bi_s = b[i].imag();
    a[i] = Complex(ar * br_s - ai * bi_s, ar * bi_s + ai * br_s);
  }
}

void cmul_split_inplace(double* ar, double* ai, const double* br,
                        const double* bi, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xr = _mm256_loadu_pd(ar + i);
    const __m256d xi = _mm256_loadu_pd(ai + i);
    const __m256d yr = _mm256_loadu_pd(br + i);
    const __m256d yi = _mm256_loadu_pd(bi + i);
    _mm256_storeu_pd(
        ar + i, _mm256_sub_pd(_mm256_mul_pd(xr, yr), _mm256_mul_pd(xi, yi)));
    _mm256_storeu_pd(
        ai + i, _mm256_add_pd(_mm256_mul_pd(xr, yi), _mm256_mul_pd(xi, yr)));
  }
  for (; i < n; ++i) {
    const double xr = ar[i];
    const double xi = ai[i];
    ar[i] = xr * br[i] - xi * bi[i];
    ai[i] = xr * bi[i] + xi * br[i];
  }
}

void cmul_rows_broadcast(double* re, double* im, std::size_t rows,
                         std::size_t lanes, const double* wr,
                         const double* wi) {
  for (std::size_t k = 0; k < rows; ++k) {
    const double cr_s = wr[k];
    const double ci_s = wi[k];
    const __m256d cr = _mm256_set1_pd(cr_s);
    const __m256d ci = _mm256_set1_pd(ci_s);
    double* rre = re + k * lanes;
    double* rim = im + k * lanes;
    std::size_t l = 0;
    for (; l + 4 <= lanes; l += 4) {
      const __m256d xr = _mm256_loadu_pd(rre + l);
      const __m256d xi = _mm256_loadu_pd(rim + l);
      _mm256_storeu_pd(
          rre + l, _mm256_sub_pd(_mm256_mul_pd(xr, cr), _mm256_mul_pd(xi, ci)));
      _mm256_storeu_pd(
          rim + l, _mm256_add_pd(_mm256_mul_pd(xr, ci), _mm256_mul_pd(xi, cr)));
    }
    for (; l + 2 <= lanes; l += 2) {
      const __m128d cr2 = _mm256_castpd256_pd128(cr);
      const __m128d ci2 = _mm256_castpd256_pd128(ci);
      const __m128d xr = _mm_loadu_pd(rre + l);
      const __m128d xi = _mm_loadu_pd(rim + l);
      _mm_storeu_pd(rre + l,
                    _mm_sub_pd(_mm_mul_pd(xr, cr2), _mm_mul_pd(xi, ci2)));
      _mm_storeu_pd(rim + l,
                    _mm_add_pd(_mm_mul_pd(xr, ci2), _mm_mul_pd(xi, cr2)));
    }
    for (; l < lanes; ++l) {
      const double xr = rre[l];
      const double xi = rim[l];
      rre[l] = xr * cr_s - xi * ci_s;
      rim[l] = xr * ci_s + xi * cr_s;
    }
  }
}

void rfft_untangle(const double* hre, const double* him, const double* twr,
                   const double* twi, std::size_t h, Complex* out) {
  const __m256d halfc = _mm256_set1_pd(0.5);
  const __m256d neghalf = _mm256_set1_pd(-0.5);
  const __m256d zero = _mm256_setzero_pd();
  double* outp = reinterpret_cast<double*>(out);
  std::size_t k = 1;
  for (; k + 4 <= h; k += 4) {
    const __m256d zr = _mm256_loadu_pd(hre + k);
    const __m256d zi = _mm256_loadu_pd(him + k);
    const __m256d cr = reverse(_mm256_loadu_pd(hre + (h - k - 3)));
    const __m256d ci = reverse(_mm256_loadu_pd(him + (h - k - 3)));
    const __m256d er = _mm256_mul_pd(halfc, _mm256_add_pd(zr, cr));
    const __m256d ei = _mm256_mul_pd(halfc, _mm256_sub_pd(zi, ci));
    const __m256d dr = _mm256_sub_pd(zr, cr);
    const __m256d di = _mm256_add_pd(zi, ci);
    // odd = (0,-0.5) * d, written exactly as the scalar formula
    // 0.0*dr - (-0.5)*di / 0.0*di + (-0.5)*dr.
    const __m256d odd_r =
        _mm256_sub_pd(_mm256_mul_pd(zero, dr), _mm256_mul_pd(neghalf, di));
    const __m256d odd_i =
        _mm256_add_pd(_mm256_mul_pd(zero, di), _mm256_mul_pd(neghalf, dr));
    const __m256d wr = _mm256_loadu_pd(twr + k);
    const __m256d wi = _mm256_loadu_pd(twi + k);
    const __m256d o_re = _mm256_add_pd(
        er, _mm256_sub_pd(_mm256_mul_pd(wr, odd_r), _mm256_mul_pd(wi, odd_i)));
    const __m256d o_im = _mm256_add_pd(
        ei, _mm256_add_pd(_mm256_mul_pd(wr, odd_i), _mm256_mul_pd(wi, odd_r)));
    __m256d lo, hi;
    join_pairs(o_re, o_im, lo, hi);
    _mm256_storeu_pd(outp + 2 * k, lo);
    _mm256_storeu_pd(outp + 2 * k + 4, hi);
  }
  for (; k < h; ++k) {
    const double sr = hre[k] + hre[h - k];
    const double si = him[k] - him[h - k];
    const double er = 0.5 * sr;
    const double ei = 0.5 * si;
    const double dr = hre[k] - hre[h - k];
    const double di = him[k] + him[h - k];
    const double odd_r = 0.0 * dr - (-0.5) * di;
    const double odd_i = 0.0 * di + (-0.5) * dr;
    out[k] = Complex(er + (twr[k] * odd_r - twi[k] * odd_i),
                     ei + (twr[k] * odd_i + twi[k] * odd_r));
  }
}

void irfft_untangle(const Complex* bins, const double* twr, const double* twi,
                    std::size_t h, double* out_re, double* out_im) {
  const __m256d halfc = _mm256_set1_pd(0.5);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const double* bp = reinterpret_cast<const double*>(bins);
  std::size_t k = 0;
  for (; k + 4 <= h; k += 4) {
    __m256d xr, xi, fr, fi;
    split_pairs(_mm256_loadu_pd(bp + 2 * k), _mm256_loadu_pd(bp + 2 * k + 4),
                xr, xi);
    split_pairs(_mm256_loadu_pd(bp + 2 * (h - k - 3)),
                _mm256_loadu_pd(bp + 2 * (h - k - 3) + 4), fr, fi);
    const __m256d cr = reverse(fr);
    const __m256d ci = reverse(fi);
    const __m256d er = _mm256_mul_pd(halfc, _mm256_add_pd(xr, cr));
    const __m256d ei = _mm256_mul_pd(halfc, _mm256_sub_pd(xi, ci));
    const __m256d ir = _mm256_mul_pd(halfc, _mm256_sub_pd(xr, cr));
    const __m256d ii = _mm256_mul_pd(halfc, _mm256_add_pd(xi, ci));
    const __m256d wr = _mm256_loadu_pd(twr + k);
    const __m256d nti = negate(_mm256_loadu_pd(twi + k));
    const __m256d odd_r =
        _mm256_sub_pd(_mm256_mul_pd(wr, ir), _mm256_mul_pd(nti, ii));
    const __m256d odd_i =
        _mm256_add_pd(_mm256_mul_pd(wr, ii), _mm256_mul_pd(nti, ir));
    // half = even + (0,1) * odd, kept as the literal scalar formula.
    _mm256_storeu_pd(
        out_re + k,
        _mm256_add_pd(er, _mm256_sub_pd(_mm256_mul_pd(zero, odd_r),
                                        _mm256_mul_pd(one, odd_i))));
    _mm256_storeu_pd(
        out_im + k,
        _mm256_add_pd(ei, _mm256_add_pd(_mm256_mul_pd(zero, odd_i),
                                        _mm256_mul_pd(one, odd_r))));
  }
  for (; k < h; ++k) {
    const double er = 0.5 * (bins[k].real() + bins[h - k].real());
    const double ei = 0.5 * (bins[k].imag() - bins[h - k].imag());
    const double ir = 0.5 * (bins[k].real() - bins[h - k].real());
    const double ii = 0.5 * (bins[k].imag() + bins[h - k].imag());
    const double nti = -twi[k];
    const double odd_r = twr[k] * ir - nti * ii;
    const double odd_i = twr[k] * ii + nti * ir;
    out_re[k] = er + (0.0 * odd_r - 1.0 * odd_i);
    out_im[k] = ei + (0.0 * odd_i + 1.0 * odd_r);
  }
}

void rfft_untangle_batch(const double* hre, const double* him,
                         const double* twr, const double* twi, std::size_t h,
                         std::size_t lanes, double* out_re, double* out_im) {
  const __m256d halfc = _mm256_set1_pd(0.5);
  const __m256d neghalf = _mm256_set1_pd(-0.5);
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t k = 1; k < h; ++k) {
    const double* zr = hre + k * lanes;
    const double* zi = him + k * lanes;
    const double* cr = hre + (h - k) * lanes;
    const double* ci = him + (h - k) * lanes;
    double* orow = out_re + k * lanes;
    double* irow = out_im + k * lanes;
    const __m256d wr = _mm256_set1_pd(twr[k]);
    const __m256d wi = _mm256_set1_pd(twi[k]);
    std::size_t l = 0;
    for (; l + 4 <= lanes; l += 4) {
      const __m256d zrv = _mm256_loadu_pd(zr + l);
      const __m256d ziv = _mm256_loadu_pd(zi + l);
      const __m256d crv = _mm256_loadu_pd(cr + l);
      const __m256d civ = _mm256_loadu_pd(ci + l);
      const __m256d er = _mm256_mul_pd(halfc, _mm256_add_pd(zrv, crv));
      const __m256d ei = _mm256_mul_pd(halfc, _mm256_sub_pd(ziv, civ));
      const __m256d dr = _mm256_sub_pd(zrv, crv);
      const __m256d di = _mm256_add_pd(ziv, civ);
      const __m256d odd_r =
          _mm256_sub_pd(_mm256_mul_pd(zero, dr), _mm256_mul_pd(neghalf, di));
      const __m256d odd_i =
          _mm256_add_pd(_mm256_mul_pd(zero, di), _mm256_mul_pd(neghalf, dr));
      _mm256_storeu_pd(
          orow + l,
          _mm256_add_pd(er, _mm256_sub_pd(_mm256_mul_pd(wr, odd_r),
                                          _mm256_mul_pd(wi, odd_i))));
      _mm256_storeu_pd(
          irow + l,
          _mm256_add_pd(ei, _mm256_add_pd(_mm256_mul_pd(wr, odd_i),
                                          _mm256_mul_pd(wi, odd_r))));
    }
    for (; l + 2 <= lanes; l += 2) {
      const __m128d half2 = _mm256_castpd256_pd128(halfc);
      const __m128d nhalf2 = _mm256_castpd256_pd128(neghalf);
      const __m128d zero2 = _mm256_castpd256_pd128(zero);
      const __m128d wr2 = _mm256_castpd256_pd128(wr);
      const __m128d wi2 = _mm256_castpd256_pd128(wi);
      const __m128d zrv = _mm_loadu_pd(zr + l);
      const __m128d ziv = _mm_loadu_pd(zi + l);
      const __m128d crv = _mm_loadu_pd(cr + l);
      const __m128d civ = _mm_loadu_pd(ci + l);
      const __m128d er = _mm_mul_pd(half2, _mm_add_pd(zrv, crv));
      const __m128d ei = _mm_mul_pd(half2, _mm_sub_pd(ziv, civ));
      const __m128d dr = _mm_sub_pd(zrv, crv);
      const __m128d di = _mm_add_pd(ziv, civ);
      const __m128d odd_r =
          _mm_sub_pd(_mm_mul_pd(zero2, dr), _mm_mul_pd(nhalf2, di));
      const __m128d odd_i =
          _mm_add_pd(_mm_mul_pd(zero2, di), _mm_mul_pd(nhalf2, dr));
      _mm_storeu_pd(orow + l,
                    _mm_add_pd(er, _mm_sub_pd(_mm_mul_pd(wr2, odd_r),
                                              _mm_mul_pd(wi2, odd_i))));
      _mm_storeu_pd(irow + l,
                    _mm_add_pd(ei, _mm_add_pd(_mm_mul_pd(wr2, odd_i),
                                              _mm_mul_pd(wi2, odd_r))));
    }
    for (; l < lanes; ++l) {
      const double sr = zr[l] + cr[l];
      const double si = zi[l] - ci[l];
      const double er = 0.5 * sr;
      const double ei = 0.5 * si;
      const double dr = zr[l] - cr[l];
      const double di = zi[l] + ci[l];
      const double odd_r = 0.0 * dr - (-0.5) * di;
      const double odd_i = 0.0 * di + (-0.5) * dr;
      orow[l] = er + (twr[k] * odd_r - twi[k] * odd_i);
      irow[l] = ei + (twr[k] * odd_i + twi[k] * odd_r);
    }
  }
}

void irfft_untangle_batch(const double* br, const double* bi,
                          const double* twr, const double* twi, std::size_t h,
                          std::size_t lanes, double* out_re, double* out_im) {
  const __m256d halfc = _mm256_set1_pd(0.5);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::size_t k = 0; k < h; ++k) {
    const double* xr = br + k * lanes;
    const double* xi = bi + k * lanes;
    const double* cr = br + (h - k) * lanes;
    const double* ci = bi + (h - k) * lanes;
    double* orow = out_re + k * lanes;
    double* irow = out_im + k * lanes;
    const double nti_s = -twi[k];
    const __m256d wr = _mm256_set1_pd(twr[k]);
    const __m256d nti = _mm256_set1_pd(nti_s);
    std::size_t l = 0;
    for (; l + 4 <= lanes; l += 4) {
      const __m256d xrv = _mm256_loadu_pd(xr + l);
      const __m256d xiv = _mm256_loadu_pd(xi + l);
      const __m256d crv = _mm256_loadu_pd(cr + l);
      const __m256d civ = _mm256_loadu_pd(ci + l);
      const __m256d er = _mm256_mul_pd(halfc, _mm256_add_pd(xrv, crv));
      const __m256d ei = _mm256_mul_pd(halfc, _mm256_sub_pd(xiv, civ));
      const __m256d ir = _mm256_mul_pd(halfc, _mm256_sub_pd(xrv, crv));
      const __m256d ii = _mm256_mul_pd(halfc, _mm256_add_pd(xiv, civ));
      const __m256d odd_r =
          _mm256_sub_pd(_mm256_mul_pd(wr, ir), _mm256_mul_pd(nti, ii));
      const __m256d odd_i =
          _mm256_add_pd(_mm256_mul_pd(wr, ii), _mm256_mul_pd(nti, ir));
      _mm256_storeu_pd(
          orow + l,
          _mm256_add_pd(er, _mm256_sub_pd(_mm256_mul_pd(zero, odd_r),
                                          _mm256_mul_pd(one, odd_i))));
      _mm256_storeu_pd(
          irow + l,
          _mm256_add_pd(ei, _mm256_add_pd(_mm256_mul_pd(zero, odd_i),
                                          _mm256_mul_pd(one, odd_r))));
    }
    for (; l + 2 <= lanes; l += 2) {
      const __m128d half2 = _mm256_castpd256_pd128(halfc);
      const __m128d zero2 = _mm256_castpd256_pd128(zero);
      const __m128d one2 = _mm256_castpd256_pd128(one);
      const __m128d wr2 = _mm256_castpd256_pd128(wr);
      const __m128d nti2 = _mm256_castpd256_pd128(nti);
      const __m128d xrv = _mm_loadu_pd(xr + l);
      const __m128d xiv = _mm_loadu_pd(xi + l);
      const __m128d crv = _mm_loadu_pd(cr + l);
      const __m128d civ = _mm_loadu_pd(ci + l);
      const __m128d er = _mm_mul_pd(half2, _mm_add_pd(xrv, crv));
      const __m128d ei = _mm_mul_pd(half2, _mm_sub_pd(xiv, civ));
      const __m128d ir = _mm_mul_pd(half2, _mm_sub_pd(xrv, crv));
      const __m128d ii = _mm_mul_pd(half2, _mm_add_pd(xiv, civ));
      const __m128d odd_r =
          _mm_sub_pd(_mm_mul_pd(wr2, ir), _mm_mul_pd(nti2, ii));
      const __m128d odd_i =
          _mm_add_pd(_mm_mul_pd(wr2, ii), _mm_mul_pd(nti2, ir));
      _mm_storeu_pd(orow + l,
                    _mm_add_pd(er, _mm_sub_pd(_mm_mul_pd(zero2, odd_r),
                                              _mm_mul_pd(one2, odd_i))));
      _mm_storeu_pd(irow + l,
                    _mm_add_pd(ei, _mm_add_pd(_mm_mul_pd(zero2, odd_i),
                                              _mm_mul_pd(one2, odd_r))));
    }
    for (; l < lanes; ++l) {
      const double er = 0.5 * (xr[l] + cr[l]);
      const double ei = 0.5 * (xi[l] - ci[l]);
      const double ir = 0.5 * (xr[l] - cr[l]);
      const double ii = 0.5 * (xi[l] + ci[l]);
      const double odd_r = twr[k] * ir - nti_s * ii;
      const double odd_i = twr[k] * ii + nti_s * ir;
      orow[l] = er + (0.0 * odd_r - 1.0 * odd_i);
      irow[l] = ei + (0.0 * odd_i + 1.0 * odd_r);
    }
  }
}

void deinterleave(const double* xy, std::size_t n, double* re, double* im) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m256d even, odd;
    split_pairs(_mm256_loadu_pd(xy + 2 * k), _mm256_loadu_pd(xy + 2 * k + 4),
                even, odd);
    _mm256_storeu_pd(re + k, even);
    _mm256_storeu_pd(im + k, odd);
  }
  for (; k < n; ++k) {
    re[k] = xy[2 * k];
    im[k] = xy[2 * k + 1];
  }
}

void interleave(const double* re, const double* im, std::size_t n,
                double* xy) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m256d lo, hi;
    join_pairs(_mm256_loadu_pd(re + k), _mm256_loadu_pd(im + k), lo, hi);
    _mm256_storeu_pd(xy + 2 * k, lo);
    _mm256_storeu_pd(xy + 2 * k + 4, hi);
  }
  for (; k < n; ++k) {
    xy[2 * k] = re[k];
    xy[2 * k + 1] = im[k];
  }
}

void subtract_scalar(const double* src, double mu, double* dst,
                     std::size_t n) {
  const __m256d mv = _mm256_set1_pd(mu);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(src + i), mv));
  }
  for (; i < n; ++i) dst[i] = src[i] - mu;
}

void mul_arrays(const double* a, const double* b, double* dst,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        dst + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}

void mul_rows_broadcast_real(const double* src, std::size_t rows,
                             std::size_t lanes, const double* w, double* dst) {
  for (std::size_t k = 0; k < rows; ++k) {
    const double c_s = w[k];
    const __m256d c = _mm256_set1_pd(c_s);
    const double* s = src + k * lanes;
    double* d = dst + k * lanes;
    std::size_t l = 0;
    for (; l + 4 <= lanes; l += 4) {
      _mm256_storeu_pd(d + l, _mm256_mul_pd(_mm256_loadu_pd(s + l), c));
    }
    for (; l + 2 <= lanes; l += 2) {
      _mm_storeu_pd(d + l, _mm_mul_pd(_mm_loadu_pd(s + l),
                                      _mm256_castpd256_pd128(c)));
    }
    for (; l < lanes; ++l) d[l] = s[l] * c_s;
  }
}

void add_arrays(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void scale(double* x, double s, std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

void normalize_windows(const double* ps, const double* ps2, std::size_t ny,
                       double y_norm, const double* num, double* out,
                       std::size_t n_out) {
  const double ny_d = static_cast<double>(ny);
  const __m256d nyv = _mm256_set1_pd(ny_d);
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d eps = _mm256_set1_pd(1e-12);
  const __m256d ynv = _mm256_set1_pd(y_norm);
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  const __m256d signmask = _mm256_set1_pd(-0.0);
  std::size_t n = 0;
  for (; n + 4 <= n_out; n += 4) {
    const __m256d s1 = _mm256_sub_pd(_mm256_loadu_pd(ps + n + ny),
                                     _mm256_loadu_pd(ps + n));
    const __m256d s2 = _mm256_sub_pd(_mm256_loadu_pd(ps2 + n + ny),
                                     _mm256_loadu_pd(ps2 + n));
    const __m256d var =
        _mm256_sub_pd(s2, _mm256_div_pd(_mm256_mul_pd(s1, s1), nyv));
    // degenerate_variance(var, s2): `ones` second so a NaN s2 resolves to
    // 1.0 exactly like std::max(1.0, s2); the ordered-quiet GT compare is
    // false on NaN var, matching the scalar !(var > thresh).
    const __m256d live = _mm256_cmp_pd(
        var, _mm256_mul_pd(eps, _mm256_max_pd(s2, ones)), _CMP_GT_OQ);
    // Dead lanes sqrt a negative / divide junk; their results are masked
    // to +0.0 below, matching the scalar `out[n] = 0.0` branch.
    const __m256d r = _mm256_div_pd(_mm256_loadu_pd(num + n),
                                    _mm256_mul_pd(_mm256_sqrt_pd(var), ynv));
    const __m256d finite =
        _mm256_cmp_pd(_mm256_andnot_pd(signmask, r), inf, _CMP_LT_OQ);
    _mm256_storeu_pd(out + n,
                     _mm256_and_pd(r, _mm256_and_pd(live, finite)));
  }
  for (; n < n_out; ++n) {
    const double s1 = ps[n + ny] - ps[n];
    const double s2 = ps2[n + ny] - ps2[n];
    const double var = s2 - s1 * s1 / ny_d;
    if (degenerate_variance(var, s2)) {
      out[n] = 0.0;
    } else {
      const double r = num[n] / (std::sqrt(var) * y_norm);
      out[n] = std::isfinite(r) ? r : 0.0;
    }
  }
}

void normalize_windows_strided(const double* ps, const double* ps2,
                               std::size_t stride, std::size_t ny,
                               double y_norm, const double* num, double* out,
                               std::size_t n_out) {
  // The strided epilogue reads one value per channel-interleaved row;
  // contiguous vector loads don't apply and gathers don't pay for
  // themselves at the strides the batched TDE uses (stride == channel
  // count, a handful).  The batched win is in the FFT; keep this loop
  // scalar and trivially bitwise.
  scalar::normalize_windows_strided(ps, ps2, stride, ny, y_norm, num, out,
                                    n_out);
}

std::size_t clamp_weight_argmax(const double* scores, const double* w,
                                std::size_t n) {
  if (n < 8) return scalar::clamp_weight_argmax(scores, w, n);
  const __m256d zero = _mm256_setzero_pd();
  __m256d best = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  __m256d best_idx = zero;
  __m256d idx = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d four = _mm256_set1_pd(4.0);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    // std::max(scores[j], 0.0) returns scores[j] on -0.0 (and on NaN);
    // maxpd returns its second operand in both cases, so scores go second.
    const __m256d s = _mm256_max_pd(zero, _mm256_loadu_pd(scores + j));
    const __m256d biased = _mm256_mul_pd(s, _mm256_loadu_pd(w + j));
    const __m256d gt = _mm256_cmp_pd(biased, best, _CMP_GT_OQ);
    best = _mm256_blendv_pd(best, biased, gt);
    best_idx = _mm256_blendv_pd(best_idx, idx, gt);
    idx = _mm256_add_pd(idx, four);
  }
  // Each lane kept the FIRST index reaching its lane-max (strict GT), so
  // value-then-lowest-index selection reproduces the scalar first-wins
  // ordering globally.  `==` treats -0.0 and +0.0 as the tie they are
  // under the scalar strict-> comparison.
  double vals[4];
  double idxs[4];
  _mm256_storeu_pd(vals, best);
  _mm256_storeu_pd(idxs, best_idx);
  double best_score = vals[0];
  std::size_t best_j = static_cast<std::size_t>(idxs[0]);
  for (int l = 1; l < 4; ++l) {
    const auto cand = static_cast<std::size_t>(idxs[l]);
    if (vals[l] > best_score || (vals[l] == best_score && cand < best_j)) {
      best_score = vals[l];
      best_j = cand;
    }
  }
  for (; j < n; ++j) {
    const double s = std::max(scores[j], 0.0);
    const double biased = s * w[j];
    if (biased > best_score) {
      best_j = j;
      best_score = biased;
    }
  }
  return best_j;
}

void channel_sums(const double* data, std::size_t frames,
                  std::size_t channels, double* sums) {
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t nf = 0; nf < frames; ++nf) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(data + nf * channels + c));
    }
    _mm256_storeu_pd(sums + c, acc);
  }
  if (c + 2 <= channels) {  // SSE pair for the 2-channel fleet case
    __m128d acc = _mm_setzero_pd();
    for (std::size_t nf = 0; nf < frames; ++nf) {
      acc = _mm_add_pd(acc, _mm_loadu_pd(data + nf * channels + c));
    }
    _mm_storeu_pd(sums + c, acc);
    c += 2;
  }
  for (; c < channels; ++c) {
    double acc = 0.0;
    for (std::size_t nf = 0; nf < frames; ++nf) acc += data[nf * channels + c];
    sums[c] = acc;
  }
}

void center_rows(const double* src, std::size_t frames, std::size_t channels,
                 const double* mu, double* dst) {
  if (channels == 1) {
    subtract_scalar(src, mu[0], dst, frames);
    return;
  }
  if (channels == 2) {
    // Flatten: two frames per 256-bit op against the broadcast mu pair.
    const __m256d m2 = _mm256_broadcast_pd(reinterpret_cast<const __m128d*>(mu));
    const std::size_t total = frames * 2;
    std::size_t i = 0;
    for (; i + 4 <= total; i += 4) {
      _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(src + i), m2));
    }
    for (; i + 2 <= total; i += 2) {
      _mm_storeu_pd(dst + i, _mm_sub_pd(_mm_loadu_pd(src + i),
                                        _mm_loadu_pd(mu)));
    }
    return;
  }
  for (std::size_t nf = 0; nf < frames; ++nf) {
    const double* s = src + nf * channels;
    double* d = dst + nf * channels;
    std::size_t c = 0;
    for (; c + 4 <= channels; c += 4) {
      _mm256_storeu_pd(d + c, _mm256_sub_pd(_mm256_loadu_pd(s + c),
                                            _mm256_loadu_pd(mu + c)));
    }
    for (; c < channels; ++c) d[c] = s[c] - mu[c];
  }
}

void center_rows_reversed_energy(const double* src, std::size_t frames,
                                 std::size_t channels, const double* mu,
                                 double* dst, double* energy) {
  // Channel-chunked so each channel's energy accumulates sequentially in
  // ascending frame order — bitwise equal to the scalar loop.  An SSE
  // pair covers the 2-channel fleet case without reassociating.
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    const __m256d m = _mm256_loadu_pd(mu + c);
    __m256d acc = _mm256_loadu_pd(energy + c);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const __m256d d =
          _mm256_sub_pd(_mm256_loadu_pd(src + nf * channels + c), m);
      _mm256_storeu_pd(dst + (frames - 1 - nf) * channels + c, d);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(energy + c, acc);
  }
  if (c + 2 <= channels) {
    const __m128d m = _mm_loadu_pd(mu + c);
    __m128d acc = _mm_loadu_pd(energy + c);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const __m128d d = _mm_sub_pd(_mm_loadu_pd(src + nf * channels + c), m);
      _mm_storeu_pd(dst + (frames - 1 - nf) * channels + c, d);
      acc = _mm_add_pd(acc, _mm_mul_pd(d, d));
    }
    _mm_storeu_pd(energy + c, acc);
    c += 2;
  }
  for (; c < channels; ++c) {
    const double m = mu[c];
    double acc = energy[c];
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const double x = src[nf * channels + c] - m;
      dst[(frames - 1 - nf) * channels + c] = x;
      acc += x * x;
    }
    energy[c] = acc;
  }
}

void prefix_sums_rows(const double* x, double* ps, double* ps2,
                      std::size_t frames, std::size_t channels) {
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    __m256d run = _mm256_setzero_pd();
    __m256d run2 = _mm256_setzero_pd();
    _mm256_storeu_pd(ps + c, run);
    _mm256_storeu_pd(ps2 + c, run2);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const __m256d v = _mm256_loadu_pd(x + nf * channels + c);
      run = _mm256_add_pd(run, v);
      run2 = _mm256_add_pd(run2, _mm256_mul_pd(v, v));
      _mm256_storeu_pd(ps + (nf + 1) * channels + c, run);
      _mm256_storeu_pd(ps2 + (nf + 1) * channels + c, run2);
    }
  }
  if (c + 2 <= channels) {
    __m128d run = _mm_setzero_pd();
    __m128d run2 = _mm_setzero_pd();
    _mm_storeu_pd(ps + c, run);
    _mm_storeu_pd(ps2 + c, run2);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const __m128d v = _mm_loadu_pd(x + nf * channels + c);
      run = _mm_add_pd(run, v);
      run2 = _mm_add_pd(run2, _mm_mul_pd(v, v));
      _mm_storeu_pd(ps + (nf + 1) * channels + c, run);
      _mm_storeu_pd(ps2 + (nf + 1) * channels + c, run2);
    }
    c += 2;
  }
  for (; c < channels; ++c) {
    double run = 0.0;
    double run2 = 0.0;
    ps[c] = 0.0;
    ps2[c] = 0.0;
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const double v = x[nf * channels + c];
      run += v;
      run2 += v * v;
      ps[(nf + 1) * channels + c] = run;
      ps2[(nf + 1) * channels + c] = run2;
    }
  }
}

// --- ULP-bounded reductions (4 partial accumulators / vector scan) -------

namespace {
inline double hsum(__m256d v) {
  double p[4];
  _mm256_storeu_pd(p, v);
  return ((p[0] + p[1]) + p[2]) + p[3];
}
}  // namespace

double sum(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double total = hsum(acc);
  for (; i < n; ++i) total += x[i];
  return total;
}

double centered_energy(const double* x, double mu, std::size_t n) {
  const __m256d mv = _mm256_set1_pd(mu);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), mv);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = hsum(acc);
  for (; i < n; ++i) {
    const double d = x[i] - mu;
    total += d * d;
  }
  return total;
}

double subtract_scalar_energy(const double* src, double mu, double* dst,
                              std::size_t n) {
  const __m256d mv = _mm256_set1_pd(mu);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(src + i), mv);
    _mm256_storeu_pd(dst + i, d);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = hsum(acc);
  for (; i < n; ++i) {
    dst[i] = src[i] - mu;
    total += dst[i] * dst[i];
  }
  return total;
}

void pearson_accumulate(const double* u, const double* v, double mu,
                        double mv, std::size_t n, double* num, double* du2,
                        double* dv2) {
  const __m256d muv = _mm256_set1_pd(mu);
  const __m256d mvv = _mm256_set1_pd(mv);
  __m256d acc_n = _mm256_setzero_pd();
  __m256d acc_u = _mm256_setzero_pd();
  __m256d acc_v = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d du = _mm256_sub_pd(_mm256_loadu_pd(u + i), muv);
    const __m256d dv = _mm256_sub_pd(_mm256_loadu_pd(v + i), mvv);
    acc_n = _mm256_add_pd(acc_n, _mm256_mul_pd(du, dv));
    acc_u = _mm256_add_pd(acc_u, _mm256_mul_pd(du, du));
    acc_v = _mm256_add_pd(acc_v, _mm256_mul_pd(dv, dv));
  }
  double a = hsum(acc_n);
  double b = hsum(acc_u);
  double c = hsum(acc_v);
  for (; i < n; ++i) {
    const double du = u[i] - mu;
    const double dv = v[i] - mv;
    a += du * dv;
    b += du * du;
    c += dv * dv;
  }
  *num += a;
  *du2 += b;
  *dv2 += c;
}

void prefix_sums(const double* x, double* ps, double* ps2, std::size_t n) {
  ps[0] = 0.0;
  ps2[0] = 0.0;
  __m256d run = _mm256_setzero_pd();
  __m256d run2 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d out = _mm256_add_pd(run, inclusive_scan(v));
    _mm256_storeu_pd(ps + i + 1, out);
    run = _mm256_permute4x64_pd(out, 0xFF);
    const __m256d out2 =
        _mm256_add_pd(run2, inclusive_scan(_mm256_mul_pd(v, v)));
    _mm256_storeu_pd(ps2 + i + 1, out2);
    run2 = _mm256_permute4x64_pd(out2, 0xFF);
  }
  for (; i < n; ++i) {
    ps[i + 1] = ps[i] + x[i];
    ps2[i + 1] = ps2[i] + x[i] * x[i];
  }
}

}  // namespace nsync::dsp::simd::avx2

#endif  // NSYNC_SIMD_HAVE_AVX2
