// NEON (aarch64) backend: 2-wide float64x2_t versions of every kernel.
//
// aarch64 NEON has no FMA-by-default hazard at the intrinsics level —
// vmulq/vaddq/vsubq map to unfused instructions — so the lane-parallel
// kernels here are bitwise identical to the scalar backend by the same
// argument as the AVX2 file: identical per-lane operation sequence, no
// reassociation.  vld2q/vst2q give free (de)interleaves for the complex
// AoS layouts; vextq_f64(v, v, 1) is the 2-lane reverse.
//
// The reductions at the bottom reassociate (2 partial accumulators /
// in-register scan) and are covered by the ULP bound in simd.hpp.
#include "dsp/simd/kernels.hpp"

#if defined(NSYNC_SIMD_HAVE_NEON)

#include <arm_neon.h>

#include <cmath>

namespace nsync::dsp::simd::neon {
namespace {

inline float64x2_t rev(float64x2_t v) { return vextq_f64(v, v, 1); }

/// [v0, v0+v1] (reassociating scan step for prefix_sums only).
inline float64x2_t inclusive_scan(float64x2_t v) {
  return vaddq_f64(v, vextq_f64(vdupq_n_f64(0.0), v, 1));
}

}  // namespace

void radix2_pass(double* re, double* im, std::size_t n, std::size_t len,
                 const double* twr, const double* twi, bool inverse) {
  const std::size_t half = len / 2;
  if (len == 2) {
    if (n < 4) {
      scalar::radix2_pass(re, im, n, len, twr, twi, inverse);
      return;
    }
    // vld2q deinterleaves two (u, v) blocks per iteration.
    const float64x2_t wr = vdupq_n_f64(twr[0]);
    const float64x2_t wi = vdupq_n_f64(inverse ? -twi[0] : twi[0]);
    for (std::size_t i = 0; i < n; i += 4) {
      float64x2x2_t r = vld2q_f64(re + i);  // val[0]=u_re, val[1]=v_re
      float64x2x2_t m = vld2q_f64(im + i);
      const float64x2_t tr =
          vsubq_f64(vmulq_f64(r.val[1], wr), vmulq_f64(m.val[1], wi));
      const float64x2_t ti =
          vaddq_f64(vmulq_f64(r.val[1], wi), vmulq_f64(m.val[1], wr));
      const float64x2_t ur = r.val[0];
      const float64x2_t ui = m.val[0];
      r.val[0] = vaddq_f64(ur, tr);
      r.val[1] = vsubq_f64(ur, tr);
      m.val[0] = vaddq_f64(ui, ti);
      m.val[1] = vsubq_f64(ui, ti);
      vst2q_f64(re + i, r);
      vst2q_f64(im + i, m);
    }
    return;
  }
  // len >= 4: half is a multiple of 2, plain 2-wide k loop, no tail.
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; k += 2) {
      float64x2_t wr = vld1q_f64(twr + k);
      float64x2_t wi = vld1q_f64(twi + k);
      if (inverse) wi = vnegq_f64(wi);
      double* rea = re + i + k;
      double* ima = im + i + k;
      double* reb = rea + half;
      double* imb = ima + half;
      const float64x2_t vr = vld1q_f64(reb);
      const float64x2_t vi = vld1q_f64(imb);
      const float64x2_t tr = vsubq_f64(vmulq_f64(vr, wr), vmulq_f64(vi, wi));
      const float64x2_t ti = vaddq_f64(vmulq_f64(vr, wi), vmulq_f64(vi, wr));
      const float64x2_t ur = vld1q_f64(rea);
      const float64x2_t ui = vld1q_f64(ima);
      vst1q_f64(rea, vaddq_f64(ur, tr));
      vst1q_f64(ima, vaddq_f64(ui, ti));
      vst1q_f64(reb, vsubq_f64(ur, tr));
      vst1q_f64(imb, vsubq_f64(ui, ti));
    }
  }
}

void radix2_pass_batch(double* re, double* im, std::size_t n,
                       std::size_t lanes, std::size_t len, const double* twr,
                       const double* twi, bool inverse) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const double wr_s = twr[k];
      const double wi_s = inverse ? -twi[k] : twi[k];
      const float64x2_t wr = vdupq_n_f64(wr_s);
      const float64x2_t wi = vdupq_n_f64(wi_s);
      double* ure = re + (i + k) * lanes;
      double* uim = im + (i + k) * lanes;
      double* vre = re + (i + k + half) * lanes;
      double* vim = im + (i + k + half) * lanes;
      std::size_t l = 0;
      for (; l + 2 <= lanes; l += 2) {
        const float64x2_t vr = vld1q_f64(vre + l);
        const float64x2_t vi = vld1q_f64(vim + l);
        const float64x2_t tr =
            vsubq_f64(vmulq_f64(vr, wr), vmulq_f64(vi, wi));
        const float64x2_t ti =
            vaddq_f64(vmulq_f64(vr, wi), vmulq_f64(vi, wr));
        const float64x2_t ur = vld1q_f64(ure + l);
        const float64x2_t ui = vld1q_f64(uim + l);
        vst1q_f64(ure + l, vaddq_f64(ur, tr));
        vst1q_f64(uim + l, vaddq_f64(ui, ti));
        vst1q_f64(vre + l, vsubq_f64(ur, tr));
        vst1q_f64(vim + l, vsubq_f64(ui, ti));
      }
      for (; l < lanes; ++l) {
        const double vr = vre[l];
        const double vi = vim[l];
        const double tr = vr * wr_s - vi * wi_s;
        const double ti = vr * wi_s + vi * wr_s;
        const double ur = ure[l];
        const double ui = uim[l];
        ure[l] = ur + tr;
        uim[l] = ui + ti;
        vre[l] = ur - tr;
        vim[l] = ui - ti;
      }
    }
  }
}

void divide2(double* re, double* im, std::size_t n, double d) {
  const float64x2_t dv = vdupq_n_f64(d);
  for (double* p : {re, im}) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      vst1q_f64(p + i, vdivq_f64(vld1q_f64(p + i), dv));
    }
    for (; i < n; ++i) p[i] /= d;
  }
}

void cmul_inplace(Complex* a, const Complex* b, std::size_t n) {
  double* ap = reinterpret_cast<double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2x2_t av = vld2q_f64(ap + 2 * i);  // val[0]=re, val[1]=im
    const float64x2x2_t bv = vld2q_f64(bp + 2 * i);
    float64x2x2_t out;
    out.val[0] = vsubq_f64(vmulq_f64(av.val[0], bv.val[0]),
                           vmulq_f64(av.val[1], bv.val[1]));
    out.val[1] = vaddq_f64(vmulq_f64(av.val[0], bv.val[1]),
                           vmulq_f64(av.val[1], bv.val[0]));
    vst2q_f64(ap + 2 * i, out);
  }
  for (; i < n; ++i) {
    const double ar = a[i].real();
    const double ai = a[i].imag();
    const double br = b[i].real();
    const double bi = b[i].imag();
    a[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void cmul_split_inplace(double* ar, double* ai, const double* br,
                        const double* bi, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xr = vld1q_f64(ar + i);
    const float64x2_t xi = vld1q_f64(ai + i);
    const float64x2_t yr = vld1q_f64(br + i);
    const float64x2_t yi = vld1q_f64(bi + i);
    vst1q_f64(ar + i, vsubq_f64(vmulq_f64(xr, yr), vmulq_f64(xi, yi)));
    vst1q_f64(ai + i, vaddq_f64(vmulq_f64(xr, yi), vmulq_f64(xi, yr)));
  }
  for (; i < n; ++i) {
    const double xr = ar[i];
    const double xi = ai[i];
    ar[i] = xr * br[i] - xi * bi[i];
    ai[i] = xr * bi[i] + xi * br[i];
  }
}

void cmul_rows_broadcast(double* re, double* im, std::size_t rows,
                         std::size_t lanes, const double* wr,
                         const double* wi) {
  for (std::size_t k = 0; k < rows; ++k) {
    const double cr_s = wr[k];
    const double ci_s = wi[k];
    const float64x2_t cr = vdupq_n_f64(cr_s);
    const float64x2_t ci = vdupq_n_f64(ci_s);
    double* rre = re + k * lanes;
    double* rim = im + k * lanes;
    std::size_t l = 0;
    for (; l + 2 <= lanes; l += 2) {
      const float64x2_t xr = vld1q_f64(rre + l);
      const float64x2_t xi = vld1q_f64(rim + l);
      vst1q_f64(rre + l, vsubq_f64(vmulq_f64(xr, cr), vmulq_f64(xi, ci)));
      vst1q_f64(rim + l, vaddq_f64(vmulq_f64(xr, ci), vmulq_f64(xi, cr)));
    }
    for (; l < lanes; ++l) {
      const double xr = rre[l];
      const double xi = rim[l];
      rre[l] = xr * cr_s - xi * ci_s;
      rim[l] = xr * ci_s + xi * cr_s;
    }
  }
}

void rfft_untangle(const double* hre, const double* him, const double* twr,
                   const double* twi, std::size_t h, Complex* out) {
  const float64x2_t halfc = vdupq_n_f64(0.5);
  const float64x2_t neghalf = vdupq_n_f64(-0.5);
  const float64x2_t zero = vdupq_n_f64(0.0);
  double* outp = reinterpret_cast<double*>(out);
  std::size_t k = 1;
  for (; k + 2 <= h; k += 2) {
    const float64x2_t zr = vld1q_f64(hre + k);
    const float64x2_t zi = vld1q_f64(him + k);
    const float64x2_t cr = rev(vld1q_f64(hre + (h - k - 1)));
    const float64x2_t ci = rev(vld1q_f64(him + (h - k - 1)));
    const float64x2_t er = vmulq_f64(halfc, vaddq_f64(zr, cr));
    const float64x2_t ei = vmulq_f64(halfc, vsubq_f64(zi, ci));
    const float64x2_t dr = vsubq_f64(zr, cr);
    const float64x2_t di = vaddq_f64(zi, ci);
    const float64x2_t odd_r =
        vsubq_f64(vmulq_f64(zero, dr), vmulq_f64(neghalf, di));
    const float64x2_t odd_i =
        vaddq_f64(vmulq_f64(zero, di), vmulq_f64(neghalf, dr));
    const float64x2_t wr = vld1q_f64(twr + k);
    const float64x2_t wi = vld1q_f64(twi + k);
    float64x2x2_t o;
    o.val[0] = vaddq_f64(
        er, vsubq_f64(vmulq_f64(wr, odd_r), vmulq_f64(wi, odd_i)));
    o.val[1] = vaddq_f64(
        ei, vaddq_f64(vmulq_f64(wr, odd_i), vmulq_f64(wi, odd_r)));
    vst2q_f64(outp + 2 * k, o);
  }
  for (; k < h; ++k) {
    const double sr = hre[k] + hre[h - k];
    const double si = him[k] - him[h - k];
    const double er = 0.5 * sr;
    const double ei = 0.5 * si;
    const double dr = hre[k] - hre[h - k];
    const double di = him[k] + him[h - k];
    const double odd_r = 0.0 * dr - (-0.5) * di;
    const double odd_i = 0.0 * di + (-0.5) * dr;
    out[k] = Complex(er + (twr[k] * odd_r - twi[k] * odd_i),
                     ei + (twr[k] * odd_i + twi[k] * odd_r));
  }
}

void irfft_untangle(const Complex* bins, const double* twr, const double* twi,
                    std::size_t h, double* out_re, double* out_im) {
  const float64x2_t halfc = vdupq_n_f64(0.5);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  const double* bp = reinterpret_cast<const double*>(bins);
  std::size_t k = 0;
  for (; k + 2 <= h && h >= 2; k += 2) {
    const float64x2x2_t fwd = vld2q_f64(bp + 2 * k);
    const float64x2x2_t bwd = vld2q_f64(bp + 2 * (h - k - 1));
    const float64x2_t xr = fwd.val[0];
    const float64x2_t xi = fwd.val[1];
    const float64x2_t cr = rev(bwd.val[0]);
    const float64x2_t ci = rev(bwd.val[1]);
    const float64x2_t er = vmulq_f64(halfc, vaddq_f64(xr, cr));
    const float64x2_t ei = vmulq_f64(halfc, vsubq_f64(xi, ci));
    const float64x2_t ir = vmulq_f64(halfc, vsubq_f64(xr, cr));
    const float64x2_t ii = vmulq_f64(halfc, vaddq_f64(xi, ci));
    const float64x2_t wr = vld1q_f64(twr + k);
    const float64x2_t nti = vnegq_f64(vld1q_f64(twi + k));
    const float64x2_t odd_r =
        vsubq_f64(vmulq_f64(wr, ir), vmulq_f64(nti, ii));
    const float64x2_t odd_i =
        vaddq_f64(vmulq_f64(wr, ii), vmulq_f64(nti, ir));
    vst1q_f64(out_re + k,
              vaddq_f64(er, vsubq_f64(vmulq_f64(zero, odd_r),
                                      vmulq_f64(one, odd_i))));
    vst1q_f64(out_im + k,
              vaddq_f64(ei, vaddq_f64(vmulq_f64(zero, odd_i),
                                      vmulq_f64(one, odd_r))));
  }
  for (; k < h; ++k) {
    const double er = 0.5 * (bins[k].real() + bins[h - k].real());
    const double ei = 0.5 * (bins[k].imag() - bins[h - k].imag());
    const double ir = 0.5 * (bins[k].real() - bins[h - k].real());
    const double ii = 0.5 * (bins[k].imag() + bins[h - k].imag());
    const double nti = -twi[k];
    const double odd_r = twr[k] * ir - nti * ii;
    const double odd_i = twr[k] * ii + nti * ir;
    out_re[k] = er + (0.0 * odd_r - 1.0 * odd_i);
    out_im[k] = ei + (0.0 * odd_i + 1.0 * odd_r);
  }
}

void rfft_untangle_batch(const double* hre, const double* him,
                         const double* twr, const double* twi, std::size_t h,
                         std::size_t lanes, double* out_re, double* out_im) {
  const float64x2_t halfc = vdupq_n_f64(0.5);
  const float64x2_t neghalf = vdupq_n_f64(-0.5);
  const float64x2_t zero = vdupq_n_f64(0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const double* zr = hre + k * lanes;
    const double* zi = him + k * lanes;
    const double* cr = hre + (h - k) * lanes;
    const double* ci = him + (h - k) * lanes;
    double* orow = out_re + k * lanes;
    double* irow = out_im + k * lanes;
    const float64x2_t wr = vdupq_n_f64(twr[k]);
    const float64x2_t wi = vdupq_n_f64(twi[k]);
    std::size_t l = 0;
    for (; l + 2 <= lanes; l += 2) {
      const float64x2_t zrv = vld1q_f64(zr + l);
      const float64x2_t ziv = vld1q_f64(zi + l);
      const float64x2_t crv = vld1q_f64(cr + l);
      const float64x2_t civ = vld1q_f64(ci + l);
      const float64x2_t er = vmulq_f64(halfc, vaddq_f64(zrv, crv));
      const float64x2_t ei = vmulq_f64(halfc, vsubq_f64(ziv, civ));
      const float64x2_t dr = vsubq_f64(zrv, crv);
      const float64x2_t di = vaddq_f64(ziv, civ);
      const float64x2_t odd_r =
          vsubq_f64(vmulq_f64(zero, dr), vmulq_f64(neghalf, di));
      const float64x2_t odd_i =
          vaddq_f64(vmulq_f64(zero, di), vmulq_f64(neghalf, dr));
      vst1q_f64(orow + l,
                vaddq_f64(er, vsubq_f64(vmulq_f64(wr, odd_r),
                                        vmulq_f64(wi, odd_i))));
      vst1q_f64(irow + l,
                vaddq_f64(ei, vaddq_f64(vmulq_f64(wr, odd_i),
                                        vmulq_f64(wi, odd_r))));
    }
    for (; l < lanes; ++l) {
      const double sr = zr[l] + cr[l];
      const double si = zi[l] - ci[l];
      const double er = 0.5 * sr;
      const double ei = 0.5 * si;
      const double dr = zr[l] - cr[l];
      const double di = zi[l] + ci[l];
      const double odd_r = 0.0 * dr - (-0.5) * di;
      const double odd_i = 0.0 * di + (-0.5) * dr;
      orow[l] = er + (twr[k] * odd_r - twi[k] * odd_i);
      irow[l] = ei + (twr[k] * odd_i + twi[k] * odd_r);
    }
  }
}

void irfft_untangle_batch(const double* br, const double* bi,
                          const double* twr, const double* twi, std::size_t h,
                          std::size_t lanes, double* out_re, double* out_im) {
  const float64x2_t halfc = vdupq_n_f64(0.5);
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t one = vdupq_n_f64(1.0);
  for (std::size_t k = 0; k < h; ++k) {
    const double* xr = br + k * lanes;
    const double* xi = bi + k * lanes;
    const double* cr = br + (h - k) * lanes;
    const double* ci = bi + (h - k) * lanes;
    double* orow = out_re + k * lanes;
    double* irow = out_im + k * lanes;
    const double nti_s = -twi[k];
    const float64x2_t wr = vdupq_n_f64(twr[k]);
    const float64x2_t nti = vdupq_n_f64(nti_s);
    std::size_t l = 0;
    for (; l + 2 <= lanes; l += 2) {
      const float64x2_t xrv = vld1q_f64(xr + l);
      const float64x2_t xiv = vld1q_f64(xi + l);
      const float64x2_t crv = vld1q_f64(cr + l);
      const float64x2_t civ = vld1q_f64(ci + l);
      const float64x2_t er = vmulq_f64(halfc, vaddq_f64(xrv, crv));
      const float64x2_t ei = vmulq_f64(halfc, vsubq_f64(xiv, civ));
      const float64x2_t ir = vmulq_f64(halfc, vsubq_f64(xrv, crv));
      const float64x2_t ii = vmulq_f64(halfc, vaddq_f64(xiv, civ));
      const float64x2_t odd_r =
          vsubq_f64(vmulq_f64(wr, ir), vmulq_f64(nti, ii));
      const float64x2_t odd_i =
          vaddq_f64(vmulq_f64(wr, ii), vmulq_f64(nti, ir));
      vst1q_f64(orow + l,
                vaddq_f64(er, vsubq_f64(vmulq_f64(zero, odd_r),
                                        vmulq_f64(one, odd_i))));
      vst1q_f64(irow + l,
                vaddq_f64(ei, vaddq_f64(vmulq_f64(zero, odd_i),
                                        vmulq_f64(one, odd_r))));
    }
    for (; l < lanes; ++l) {
      const double er = 0.5 * (xr[l] + cr[l]);
      const double ei = 0.5 * (xi[l] - ci[l]);
      const double ir = 0.5 * (xr[l] - cr[l]);
      const double ii = 0.5 * (xi[l] + ci[l]);
      const double odd_r = twr[k] * ir - nti_s * ii;
      const double odd_i = twr[k] * ii + nti_s * ir;
      orow[l] = er + (0.0 * odd_r - 1.0 * odd_i);
      irow[l] = ei + (0.0 * odd_i + 1.0 * odd_r);
    }
  }
}

void deinterleave(const double* xy, std::size_t n, double* re, double* im) {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    const float64x2x2_t v = vld2q_f64(xy + 2 * k);
    vst1q_f64(re + k, v.val[0]);
    vst1q_f64(im + k, v.val[1]);
  }
  for (; k < n; ++k) {
    re[k] = xy[2 * k];
    im[k] = xy[2 * k + 1];
  }
}

void interleave(const double* re, const double* im, std::size_t n,
                double* xy) {
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    float64x2x2_t v;
    v.val[0] = vld1q_f64(re + k);
    v.val[1] = vld1q_f64(im + k);
    vst2q_f64(xy + 2 * k, v);
  }
  for (; k < n; ++k) {
    xy[2 * k] = re[k];
    xy[2 * k + 1] = im[k];
  }
}

void subtract_scalar(const double* src, double mu, double* dst,
                     std::size_t n) {
  const float64x2_t mv = vdupq_n_f64(mu);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vsubq_f64(vld1q_f64(src + i), mv));
  }
  for (; i < n; ++i) dst[i] = src[i] - mu;
}

void mul_arrays(const double* a, const double* b, double* dst,
                std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}

void mul_rows_broadcast_real(const double* src, std::size_t rows,
                             std::size_t lanes, const double* w, double* dst) {
  for (std::size_t k = 0; k < rows; ++k) {
    const double c_s = w[k];
    const float64x2_t c = vdupq_n_f64(c_s);
    const double* s = src + k * lanes;
    double* d = dst + k * lanes;
    std::size_t l = 0;
    for (; l + 2 <= lanes; l += 2) {
      vst1q_f64(d + l, vmulq_f64(vld1q_f64(s + l), c));
    }
    for (; l < lanes; ++l) d[l] = s[l] * c_s;
  }
}

void add_arrays(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void scale(double* x, double s, std::size_t n) {
  const float64x2_t sv = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

void normalize_windows(const double* ps, const double* ps2, std::size_t ny,
                       double y_norm, const double* num, double* out,
                       std::size_t n_out) {
  // NaN routing: vmaxq propagates NaN where std::max(1.0, s2) returns
  // 1.0, but a NaN s2 forces a NaN var anyway and the vcgtq compare is
  // false on NaN, so both formulations land in the degenerate branch.
  const double ny_d = static_cast<double>(ny);
  const float64x2_t nyv = vdupq_n_f64(ny_d);
  const float64x2_t ones = vdupq_n_f64(1.0);
  const float64x2_t eps = vdupq_n_f64(1e-12);
  const float64x2_t ynv = vdupq_n_f64(y_norm);
  const float64x2_t inf = vdupq_n_f64(HUGE_VAL);
  std::size_t n = 0;
  for (; n + 2 <= n_out; n += 2) {
    const float64x2_t s1 =
        vsubq_f64(vld1q_f64(ps + n + ny), vld1q_f64(ps + n));
    const float64x2_t s2 =
        vsubq_f64(vld1q_f64(ps2 + n + ny), vld1q_f64(ps2 + n));
    const float64x2_t var =
        vsubq_f64(s2, vdivq_f64(vmulq_f64(s1, s1), nyv));
    const uint64x2_t live =
        vcgtq_f64(var, vmulq_f64(eps, vmaxq_f64(s2, ones)));
    const float64x2_t r =
        vdivq_f64(vld1q_f64(num + n), vmulq_f64(vsqrtq_f64(var), ynv));
    const uint64x2_t finite = vcltq_f64(vabsq_f64(r), inf);
    const uint64x2_t keep = vandq_u64(live, finite);
    vst1q_f64(out + n,
              vreinterpretq_f64_u64(
                  vandq_u64(vreinterpretq_u64_f64(r), keep)));
  }
  for (; n < n_out; ++n) {
    const double s1 = ps[n + ny] - ps[n];
    const double s2 = ps2[n + ny] - ps2[n];
    const double var = s2 - s1 * s1 / ny_d;
    if (degenerate_variance(var, s2)) {
      out[n] = 0.0;
    } else {
      const double r = num[n] / (std::sqrt(var) * y_norm);
      out[n] = std::isfinite(r) ? r : 0.0;
    }
  }
}

void normalize_windows_strided(const double* ps, const double* ps2,
                               std::size_t stride, std::size_t ny,
                               double y_norm, const double* num, double* out,
                               std::size_t n_out) {
  scalar::normalize_windows_strided(ps, ps2, stride, ny, y_norm, num, out,
                                    n_out);
}

std::size_t clamp_weight_argmax(const double* scores, const double* w,
                                std::size_t n) {
  // Scores and weights are finite here (normalization guard upstream),
  // and the comparisons below treat +/-0 as equal exactly like the scalar
  // strict-> loop, so the returned index is identical.
  if (n < 4) return scalar::clamp_weight_argmax(scores, w, n);
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t best = vdupq_n_f64(-HUGE_VAL);
  float64x2_t best_idx = zero;
  float64x2_t idx = {0.0, 1.0};
  const float64x2_t two = vdupq_n_f64(2.0);
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const float64x2_t s = vmaxq_f64(zero, vld1q_f64(scores + j));
    const float64x2_t biased = vmulq_f64(s, vld1q_f64(w + j));
    const uint64x2_t gt = vcgtq_f64(biased, best);
    best = vbslq_f64(gt, biased, best);
    best_idx = vbslq_f64(gt, idx, best_idx);
    idx = vaddq_f64(idx, two);
  }
  double vals[2];
  double idxs[2];
  vst1q_f64(vals, best);
  vst1q_f64(idxs, best_idx);
  double best_score = vals[0];
  std::size_t best_j = static_cast<std::size_t>(idxs[0]);
  const auto cand = static_cast<std::size_t>(idxs[1]);
  if (vals[1] > best_score || (vals[1] == best_score && cand < best_j)) {
    best_score = vals[1];
    best_j = cand;
  }
  for (; j < n; ++j) {
    const double s = std::max(scores[j], 0.0);
    const double biased = s * w[j];
    if (biased > best_score) {
      best_j = j;
      best_score = biased;
    }
  }
  return best_j;
}

void channel_sums(const double* data, std::size_t frames,
                  std::size_t channels, double* sums) {
  std::size_t c = 0;
  for (; c + 2 <= channels; c += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      acc = vaddq_f64(acc, vld1q_f64(data + nf * channels + c));
    }
    vst1q_f64(sums + c, acc);
  }
  for (; c < channels; ++c) {
    double acc = 0.0;
    for (std::size_t nf = 0; nf < frames; ++nf) acc += data[nf * channels + c];
    sums[c] = acc;
  }
}

void center_rows(const double* src, std::size_t frames, std::size_t channels,
                 const double* mu, double* dst) {
  if (channels == 1) {
    subtract_scalar(src, mu[0], dst, frames);
    return;
  }
  if (channels == 2) {
    const float64x2_t m = vld1q_f64(mu);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      vst1q_f64(dst + nf * 2, vsubq_f64(vld1q_f64(src + nf * 2), m));
    }
    return;
  }
  for (std::size_t nf = 0; nf < frames; ++nf) {
    const double* s = src + nf * channels;
    double* d = dst + nf * channels;
    std::size_t c = 0;
    for (; c + 2 <= channels; c += 2) {
      vst1q_f64(d + c, vsubq_f64(vld1q_f64(s + c), vld1q_f64(mu + c)));
    }
    for (; c < channels; ++c) d[c] = s[c] - mu[c];
  }
}

void center_rows_reversed_energy(const double* src, std::size_t frames,
                                 std::size_t channels, const double* mu,
                                 double* dst, double* energy) {
  std::size_t c = 0;
  for (; c + 2 <= channels; c += 2) {
    const float64x2_t m = vld1q_f64(mu + c);
    float64x2_t acc = vld1q_f64(energy + c);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const float64x2_t d =
          vsubq_f64(vld1q_f64(src + nf * channels + c), m);
      vst1q_f64(dst + (frames - 1 - nf) * channels + c, d);
      acc = vaddq_f64(acc, vmulq_f64(d, d));
    }
    vst1q_f64(energy + c, acc);
  }
  for (; c < channels; ++c) {
    const double m = mu[c];
    double acc = energy[c];
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const double x = src[nf * channels + c] - m;
      dst[(frames - 1 - nf) * channels + c] = x;
      acc += x * x;
    }
    energy[c] = acc;
  }
}

void prefix_sums_rows(const double* x, double* ps, double* ps2,
                      std::size_t frames, std::size_t channels) {
  std::size_t c = 0;
  for (; c + 2 <= channels; c += 2) {
    float64x2_t run = vdupq_n_f64(0.0);
    float64x2_t run2 = vdupq_n_f64(0.0);
    vst1q_f64(ps + c, run);
    vst1q_f64(ps2 + c, run2);
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const float64x2_t v = vld1q_f64(x + nf * channels + c);
      run = vaddq_f64(run, v);
      run2 = vaddq_f64(run2, vmulq_f64(v, v));
      vst1q_f64(ps + (nf + 1) * channels + c, run);
      vst1q_f64(ps2 + (nf + 1) * channels + c, run2);
    }
  }
  for (; c < channels; ++c) {
    double run = 0.0;
    double run2 = 0.0;
    ps[c] = 0.0;
    ps2[c] = 0.0;
    for (std::size_t nf = 0; nf < frames; ++nf) {
      const double v = x[nf * channels + c];
      run += v;
      run2 += v * v;
      ps[(nf + 1) * channels + c] = run;
      ps2[(nf + 1) * channels + c] = run2;
    }
  }
}

// --- ULP-bounded reductions ---------------------------------------------

namespace {
inline double hsum(float64x2_t v) {
  return vgetq_lane_f64(v, 0) + vgetq_lane_f64(v, 1);
}
}  // namespace

double sum(const double* x, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vaddq_f64(acc, vld1q_f64(x + i));
  }
  double total = hsum(acc);
  for (; i < n; ++i) total += x[i];
  return total;
}

double centered_energy(const double* x, double mu, std::size_t n) {
  const float64x2_t mv = vdupq_n_f64(mu);
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(x + i), mv);
    acc = vaddq_f64(acc, vmulq_f64(d, d));
  }
  double total = hsum(acc);
  for (; i < n; ++i) {
    const double d = x[i] - mu;
    total += d * d;
  }
  return total;
}

double subtract_scalar_energy(const double* src, double mu, double* dst,
                              std::size_t n) {
  const float64x2_t mv = vdupq_n_f64(mu);
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vsubq_f64(vld1q_f64(src + i), mv);
    vst1q_f64(dst + i, d);
    acc = vaddq_f64(acc, vmulq_f64(d, d));
  }
  double total = hsum(acc);
  for (; i < n; ++i) {
    dst[i] = src[i] - mu;
    total += dst[i] * dst[i];
  }
  return total;
}

void pearson_accumulate(const double* u, const double* v, double mu,
                        double mv, std::size_t n, double* num, double* du2,
                        double* dv2) {
  const float64x2_t muv = vdupq_n_f64(mu);
  const float64x2_t mvv = vdupq_n_f64(mv);
  float64x2_t acc_n = vdupq_n_f64(0.0);
  float64x2_t acc_u = vdupq_n_f64(0.0);
  float64x2_t acc_v = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t du = vsubq_f64(vld1q_f64(u + i), muv);
    const float64x2_t dv = vsubq_f64(vld1q_f64(v + i), mvv);
    acc_n = vaddq_f64(acc_n, vmulq_f64(du, dv));
    acc_u = vaddq_f64(acc_u, vmulq_f64(du, du));
    acc_v = vaddq_f64(acc_v, vmulq_f64(dv, dv));
  }
  double a = hsum(acc_n);
  double b = hsum(acc_u);
  double c = hsum(acc_v);
  for (; i < n; ++i) {
    const double du = u[i] - mu;
    const double dv = v[i] - mv;
    a += du * dv;
    b += du * du;
    c += dv * dv;
  }
  *num += a;
  *du2 += b;
  *dv2 += c;
}

void prefix_sums(const double* x, double* ps, double* ps2, std::size_t n) {
  ps[0] = 0.0;
  ps2[0] = 0.0;
  float64x2_t run = vdupq_n_f64(0.0);
  float64x2_t run2 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(x + i);
    const float64x2_t out = vaddq_f64(run, inclusive_scan(v));
    vst1q_f64(ps + i + 1, out);
    run = vdupq_laneq_f64(out, 1);
    const float64x2_t out2 =
        vaddq_f64(run2, inclusive_scan(vmulq_f64(v, v)));
    vst1q_f64(ps2 + i + 1, out2);
    run2 = vdupq_laneq_f64(out2, 1);
  }
  for (; i < n; ++i) {
    ps[i + 1] = ps[i] + x[i];
    ps2[i + 1] = ps2[i] + x[i] * x[i];
  }
}

}  // namespace nsync::dsp::simd::neon

#endif  // NSYNC_SIMD_HAVE_NEON
