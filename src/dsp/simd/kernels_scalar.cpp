// Scalar reference backend.
//
// These bodies are literal transcriptions of the loops that previously
// lived inline in dsp/fft.cpp, dsp/xcorr.cpp, signal/stats.cpp and
// core/tde.cpp.  Complex arithmetic is written out per component exactly
// as libstdc++'s std::complex<double> operators evaluate it for finite
// operands (naive product formula, component-wise scalar ops), so routing
// the old call sites through this backend changes no bits.  Every other
// backend is validated against these functions.
//
// Do not "simplify" the arithmetic here: expressions like the full
// multiply by the k = 0 twiddle (1.0, -0.0) or `0.0 * dr - (-0.5) * di`
// are load-bearing — they reproduce the exact rounding and signed-zero
// behavior of the original std::complex formulas.
#include <cmath>

#include "dsp/simd/kernels.hpp"

namespace nsync::dsp::simd::scalar {

void radix2_pass(double* re, double* im, std::size_t n, std::size_t len,
                 const double* twr, const double* twi, bool inverse) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const double wr = twr[k];
      const double wi = inverse ? -twi[k] : twi[k];
      const double vr = re[i + k + half];
      const double vi = im[i + k + half];
      const double tr = vr * wr - vi * wi;
      const double ti = vr * wi + vi * wr;
      const double ur = re[i + k];
      const double ui = im[i + k];
      re[i + k] = ur + tr;
      im[i + k] = ui + ti;
      re[i + k + half] = ur - tr;
      im[i + k + half] = ui - ti;
    }
  }
}

void radix2_pass_batch(double* re, double* im, std::size_t n,
                       std::size_t lanes, std::size_t len, const double* twr,
                       const double* twi, bool inverse) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const double wr = twr[k];
      const double wi = inverse ? -twi[k] : twi[k];
      double* ure = re + (i + k) * lanes;
      double* uim = im + (i + k) * lanes;
      double* vre = re + (i + k + half) * lanes;
      double* vim = im + (i + k + half) * lanes;
      for (std::size_t l = 0; l < lanes; ++l) {
        const double vr = vre[l];
        const double vi = vim[l];
        const double tr = vr * wr - vi * wi;
        const double ti = vr * wi + vi * wr;
        const double ur = ure[l];
        const double ui = uim[l];
        ure[l] = ur + tr;
        uim[l] = ui + ti;
        vre[l] = ur - tr;
        vim[l] = ui - ti;
      }
    }
  }
}

void divide2(double* re, double* im, std::size_t n, double d) {
  for (std::size_t i = 0; i < n; ++i) re[i] /= d;
  for (std::size_t i = 0; i < n; ++i) im[i] /= d;
}

void cmul_inplace(Complex* a, const Complex* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = a[i].real();
    const double ai = a[i].imag();
    const double br = b[i].real();
    const double bi = b[i].imag();
    a[i] = Complex(ar * br - ai * bi, ar * bi + ai * br);
  }
}

void cmul_split_inplace(double* ar, double* ai, const double* br,
                        const double* bi, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = ar[i];
    const double xi = ai[i];
    ar[i] = xr * br[i] - xi * bi[i];
    ai[i] = xr * bi[i] + xi * br[i];
  }
}

void cmul_rows_broadcast(double* re, double* im, std::size_t rows,
                         std::size_t lanes, const double* wr,
                         const double* wi) {
  for (std::size_t k = 0; k < rows; ++k) {
    const double cr = wr[k];
    const double ci = wi[k];
    double* rre = re + k * lanes;
    double* rim = im + k * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double xr = rre[l];
      const double xi = rim[l];
      rre[l] = xr * cr - xi * ci;
      rim[l] = xr * ci + xi * cr;
    }
  }
}

void rfft_untangle(const double* hre, const double* him, const double* twr,
                   const double* twi, std::size_t h, Complex* out) {
  for (std::size_t k = 1; k < h; ++k) {
    // even = 0.5 * (z_k + conj(z_{h-k}))
    const double sr = hre[k] + hre[h - k];
    const double si = him[k] - him[h - k];
    const double er = 0.5 * sr;
    const double ei = 0.5 * si;
    // odd = (0, -0.5) * (z_k - conj(z_{h-k}))
    const double dr = hre[k] - hre[h - k];
    const double di = him[k] + him[h - k];
    const double odd_r = 0.0 * dr - (-0.5) * di;
    const double odd_i = 0.0 * di + (-0.5) * dr;
    // out = even + tw_k * odd
    out[k] = Complex(er + (twr[k] * odd_r - twi[k] * odd_i),
                     ei + (twr[k] * odd_i + twi[k] * odd_r));
  }
}

void irfft_untangle(const Complex* bins, const double* twr, const double* twi,
                    std::size_t h, double* out_re, double* out_im) {
  for (std::size_t k = 0; k < h; ++k) {
    // even = 0.5 * (x_k + conj(x_{h-k}))
    const double er = 0.5 * (bins[k].real() + bins[h - k].real());
    const double ei = 0.5 * (bins[k].imag() - bins[h - k].imag());
    // odd = conj(tw_k) * (0.5 * (x_k - conj(x_{h-k})))
    const double ir = 0.5 * (bins[k].real() - bins[h - k].real());
    const double ii = 0.5 * (bins[k].imag() + bins[h - k].imag());
    const double nti = -twi[k];
    const double odd_r = twr[k] * ir - nti * ii;
    const double odd_i = twr[k] * ii + nti * ir;
    // half = even + (0, 1) * odd
    out_re[k] = er + (0.0 * odd_r - 1.0 * odd_i);
    out_im[k] = ei + (0.0 * odd_i + 1.0 * odd_r);
  }
}

void rfft_untangle_batch(const double* hre, const double* him,
                         const double* twr, const double* twi, std::size_t h,
                         std::size_t lanes, double* out_re, double* out_im) {
  for (std::size_t k = 1; k < h; ++k) {
    const double* zr = hre + k * lanes;
    const double* zi = him + k * lanes;
    const double* cr = hre + (h - k) * lanes;
    const double* ci = him + (h - k) * lanes;
    double* orow = out_re + k * lanes;
    double* irow = out_im + k * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const double sr = zr[l] + cr[l];
      const double si = zi[l] - ci[l];
      const double er = 0.5 * sr;
      const double ei = 0.5 * si;
      const double dr = zr[l] - cr[l];
      const double di = zi[l] + ci[l];
      const double odd_r = 0.0 * dr - (-0.5) * di;
      const double odd_i = 0.0 * di + (-0.5) * dr;
      orow[l] = er + (twr[k] * odd_r - twi[k] * odd_i);
      irow[l] = ei + (twr[k] * odd_i + twi[k] * odd_r);
    }
  }
}

void irfft_untangle_batch(const double* br, const double* bi,
                          const double* twr, const double* twi, std::size_t h,
                          std::size_t lanes, double* out_re, double* out_im) {
  for (std::size_t k = 0; k < h; ++k) {
    const double* xr = br + k * lanes;
    const double* xi = bi + k * lanes;
    const double* cr = br + (h - k) * lanes;
    const double* ci = bi + (h - k) * lanes;
    double* orow = out_re + k * lanes;
    double* irow = out_im + k * lanes;
    const double nti = -twi[k];
    for (std::size_t l = 0; l < lanes; ++l) {
      const double er = 0.5 * (xr[l] + cr[l]);
      const double ei = 0.5 * (xi[l] - ci[l]);
      const double ir = 0.5 * (xr[l] - cr[l]);
      const double ii = 0.5 * (xi[l] + ci[l]);
      const double odd_r = twr[k] * ir - nti * ii;
      const double odd_i = twr[k] * ii + nti * ir;
      orow[l] = er + (0.0 * odd_r - 1.0 * odd_i);
      irow[l] = ei + (0.0 * odd_i + 1.0 * odd_r);
    }
  }
}

void deinterleave(const double* xy, std::size_t n, double* re, double* im) {
  for (std::size_t k = 0; k < n; ++k) {
    re[k] = xy[2 * k];
    im[k] = xy[2 * k + 1];
  }
}

void interleave(const double* re, const double* im, std::size_t n,
                double* xy) {
  for (std::size_t k = 0; k < n; ++k) {
    xy[2 * k] = re[k];
    xy[2 * k + 1] = im[k];
  }
}

void subtract_scalar(const double* src, double mu, double* dst,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] - mu;
}

void mul_arrays(const double* a, const double* b, double* dst,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}

void mul_rows_broadcast_real(const double* src, std::size_t rows,
                             std::size_t lanes, const double* w, double* dst) {
  for (std::size_t k = 0; k < rows; ++k) {
    const double c = w[k];
    const double* s = src + k * lanes;
    double* d = dst + k * lanes;
    for (std::size_t l = 0; l < lanes; ++l) d[l] = s[l] * c;
  }
}

void add_arrays(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void scale(double* x, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void normalize_windows(const double* ps, const double* ps2, std::size_t ny,
                       double y_norm, const double* num, double* out,
                       std::size_t n_out) {
  const double ny_d = static_cast<double>(ny);
  for (std::size_t n = 0; n < n_out; ++n) {
    const double s1 = ps[n + ny] - ps[n];
    const double s2 = ps2[n + ny] - ps2[n];
    const double var = s2 - s1 * s1 / ny_d;
    if (degenerate_variance(var, s2)) {
      out[n] = 0.0;  // flat (or non-finite) window
    } else {
      const double r = num[n] / (std::sqrt(var) * y_norm);
      out[n] = std::isfinite(r) ? r : 0.0;
    }
  }
}

void normalize_windows_strided(const double* ps, const double* ps2,
                               std::size_t stride, std::size_t ny,
                               double y_norm, const double* num, double* out,
                               std::size_t n_out) {
  const double ny_d = static_cast<double>(ny);
  for (std::size_t n = 0; n < n_out; ++n) {
    const double s1 = ps[(n + ny) * stride] - ps[n * stride];
    const double s2 = ps2[(n + ny) * stride] - ps2[n * stride];
    const double var = s2 - s1 * s1 / ny_d;
    if (degenerate_variance(var, s2)) {
      out[n] = 0.0;
    } else {
      const double r = num[n * stride] / (std::sqrt(var) * y_norm);
      out[n] = std::isfinite(r) ? r : 0.0;
    }
  }
}

std::size_t clamp_weight_argmax(const double* scores, const double* w,
                                std::size_t n) {
  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double s = std::max(scores[j], 0.0);
    const double biased = s * w[j];
    if (j == 0 || biased > best_score) {
      best = j;
      best_score = biased;
    }
  }
  return best;
}

void channel_sums(const double* data, std::size_t frames,
                  std::size_t channels, double* sums) {
  for (std::size_t c = 0; c < channels; ++c) sums[c] = 0.0;
  for (std::size_t nf = 0; nf < frames; ++nf) {
    const double* row = data + nf * channels;
    for (std::size_t c = 0; c < channels; ++c) sums[c] += row[c];
  }
}

void center_rows(const double* src, std::size_t frames, std::size_t channels,
                 const double* mu, double* dst) {
  for (std::size_t nf = 0; nf < frames; ++nf) {
    const double* s = src + nf * channels;
    double* d = dst + nf * channels;
    for (std::size_t c = 0; c < channels; ++c) d[c] = s[c] - mu[c];
  }
}

void center_rows_reversed_energy(const double* src, std::size_t frames,
                                 std::size_t channels, const double* mu,
                                 double* dst, double* energy) {
  for (std::size_t nf = 0; nf < frames; ++nf) {
    const double* s = src + nf * channels;
    double* d = dst + (frames - 1 - nf) * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      const double x = s[c] - mu[c];
      d[c] = x;
      energy[c] += x * x;
    }
  }
}

void prefix_sums_rows(const double* x, double* ps, double* ps2,
                      std::size_t frames, std::size_t channels) {
  for (std::size_t c = 0; c < channels; ++c) {
    ps[c] = 0.0;
    ps2[c] = 0.0;
  }
  for (std::size_t nf = 0; nf < frames; ++nf) {
    const double* row = x + nf * channels;
    const double* p = ps + nf * channels;
    const double* p2 = ps2 + nf * channels;
    double* q = ps + (nf + 1) * channels;
    double* q2 = ps2 + (nf + 1) * channels;
    for (std::size_t c = 0; c < channels; ++c) {
      q[c] = p[c] + row[c];
      q2[c] = p2[c] + row[c] * row[c];
    }
  }
}

double sum(const double* x, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

double centered_energy(const double* x, double mu, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - mu;
    acc += d * d;
  }
  return acc;
}

double subtract_scalar_energy(const double* src, double mu, double* dst,
                              std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = src[i] - mu;
    acc += dst[i] * dst[i];
  }
  return acc;
}

void pearson_accumulate(const double* u, const double* v, double mu,
                        double mv, std::size_t n, double* num, double* du2,
                        double* dv2) {
  double a = 0.0, b = 0.0, c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double du = u[i] - mu;
    const double dv = v[i] - mv;
    a += du * dv;
    b += du * du;
    c += dv * dv;
  }
  *num += a;
  *du2 += b;
  *dv2 += c;
}

void prefix_sums(const double* x, double* ps, double* ps2, std::size_t n) {
  ps[0] = 0.0;
  ps2[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ps[i + 1] = ps[i] + x[i];
    ps2[i + 1] = ps2[i] + x[i] * x[i];
  }
}

}  // namespace nsync::dsp::simd::scalar
