// Runtime CPU-dispatched SIMD kernels for the DSP hot loops.
//
// Every arithmetic-dense inner loop of the rfft → cross-correlation →
// sliding-Pearson → TDEB chain is routed through a table of function
// pointers (`Ops`) resolved once at startup: an AVX2 backend on x86-64,
// a NEON backend on aarch64, and a portable scalar backend that is always
// built and is the reference implementation for both.
//
// Equivalence contract (pinned by tests/test_simd_equivalence.cpp, see
// DESIGN.md "SIMD dispatch layer" for the per-kernel table):
//
//  * "bitwise" kernels are lane-parallel only — each output element is
//    computed with exactly the scalar backend's operation sequence, no
//    FMA contraction and no reassociation — so vector and scalar
//    backends produce bit-identical results.  This covers the radix-2
//    butterfly passes, the rfft/irfft untangling epilogues, complex bin
//    products, centered copies, window normalization, the batched
//    row-parallel kernels and the TDEB clamp+bias+argmax epilogue.
//  * "ULP-bounded" kernels reassociate a reduction (vector partial
//    accumulators, vectorized prefix scan).  Their divergence from the
//    scalar backend is bounded by standard summation-error analysis:
//    |simd - scalar| <= 2 * n * eps * sum(|terms|).  This covers sum,
//    centered energy and the 1-D prefix-sum scan.
//
// Backend selection: the best compiled-in backend the host supports,
// overridable with the NSYNC_SIMD environment variable
// ("scalar"/"avx2"/"neon"; ignored when unavailable) or at runtime with
// set_backend() (tests, ablations).  All selection state is atomic; the
// kernels themselves are stateless and thread-safe.
#ifndef NSYNC_DSP_SIMD_SIMD_HPP
#define NSYNC_DSP_SIMD_SIMD_HPP

#include <algorithm>
#include <complex>
#include <cstddef>

namespace nsync::dsp::simd {

/// Shared degenerate-window guard used by every normalization path
/// (sliding-Pearson window variance, stats::pearson denominators): a
/// window whose centered energy `var` does not rise above rounding noise
/// relative to its raw energy `sumsq` cannot support correlation and
/// scores 0.  Written as !(var > eps) so a NaN from non-finite input
/// routes into the degenerate branch instead of slipping past a
/// `var <= eps` comparison.  The vector backends of normalize_windows
/// implement exactly this predicate lane-wise (max_pd operand order
/// matches std::max's NaN semantics), so the guard cannot drift between
/// the scalar and SIMD paths again.
[[nodiscard]] inline bool degenerate_variance(double var, double sumsq) {
  return !(var > 1e-12 * std::max(1.0, sumsq));
}

using Complex = std::complex<double>;

enum class Isa { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Kernel table for one backend.  All pointers are always valid.
struct Ops {
  Isa isa;
  const char* name;

  // --- bitwise kernels (lane-parallel, no reassociation) ---------------

  /// One radix-2 DIT butterfly stage of span `len` over split re/im data
  /// of n complex elements (n % len == 0).  `twr`/`twi` hold the stage's
  /// len/2 twiddles contiguously; `inverse` conjugates them.
  void (*radix2_pass)(double* re, double* im, std::size_t n, std::size_t len,
                      const double* twr, const double* twi, bool inverse);

  /// Batched variant: element (k, lane) of each of `lanes` independent
  /// transforms lives at [k * lanes + lane].  Lanes never interact.
  void (*radix2_pass_batch)(double* re, double* im, std::size_t n,
                            std::size_t lanes, std::size_t len,
                            const double* twr, const double* twi,
                            bool inverse);

  /// x[i] /= d for both planes (the inverse-FFT 1/n normalization;
  /// division, not multiplication by the reciprocal, to match the scalar
  /// path bit for bit).
  void (*divide2)(double* re, double* im, std::size_t n, double d);

  /// a[i] *= b[i], interleaved std::complex layout (spectrum bin product).
  void (*cmul_inplace)(Complex* a, const Complex* b, std::size_t n);

  /// Split-layout bin product: (ar,ai)[i] *= (br,bi)[i].
  void (*cmul_split_inplace)(double* ar, double* ai, const double* br,
                             const double* bi, std::size_t n);

  /// Row k (of `lanes` elements) of split data *= (wr[k], wi[k]), for
  /// k < rows (Bluestein chirp/kernel multiplies).
  void (*cmul_rows_broadcast)(double* re, double* im, std::size_t rows,
                              std::size_t lanes, const double* wr,
                              const double* wi);

  /// Real-FFT untangling epilogue, bins k = 1 .. h-1 (caller handles the
  /// purely real k = 0 and k = h bins):
  ///   out[k] = 0.5*(z_k + conj(z_{h-k})) + tw_k * (0,-0.5)*(z_k - conj(z_{h-k}))
  void (*rfft_untangle)(const double* hre, const double* him,
                        const double* twr, const double* twi, std::size_t h,
                        Complex* out);

  /// Inverse epilogue, natural order k = 0 .. h-1 (bins has h+1 entries):
  ///   half[k] = 0.5*(x_k + conj(x_{h-k})) + i * conj(tw_k)*(0.5*(x_k - conj(x_{h-k})))
  void (*irfft_untangle)(const Complex* bins, const double* twr,
                         const double* twi, std::size_t h, double* out_re,
                         double* out_im);

  /// Batched rfft untangle over lane-interleaved rows, k = 1 .. h-1.
  void (*rfft_untangle_batch)(const double* hre, const double* him,
                              const double* twr, const double* twi,
                              std::size_t h, std::size_t lanes,
                              double* out_re, double* out_im);

  /// Batched irfft untangle over lane-interleaved rows, k = 0 .. h-1
  /// (bin rows br/bi have h+1 rows).
  void (*irfft_untangle_batch)(const double* br, const double* bi,
                               const double* twr, const double* twi,
                               std::size_t h, std::size_t lanes,
                               double* out_re, double* out_im);

  /// re[k] = xy[2k], im[k] = xy[2k+1] (complex AoS -> split, and the
  /// even/odd packing of the real-FFT half-size trick).
  void (*deinterleave)(const double* xy, std::size_t n, double* re,
                       double* im);

  /// xy[2k] = re[k], xy[2k+1] = im[k] (split -> complex AoS / unpack).
  void (*interleave)(const double* re, const double* im, std::size_t n,
                     double* xy);

  /// dst[i] = src[i] - mu (centered copy).
  void (*subtract_scalar)(const double* src, double mu, double* dst,
                          std::size_t n);

  /// dst[i] = a[i] * b[i] (window-coefficient multiply).
  void (*mul_arrays)(const double* a, const double* b, double* dst,
                     std::size_t n);

  /// Row k (of `lanes` elements) of dst = row k of src * w[k], k < rows
  /// (the STFT window multiply applied to all channels/columns at once).
  void (*mul_rows_broadcast_real)(const double* src, std::size_t rows,
                                  std::size_t lanes, const double* w,
                                  double* dst);

  /// dst[i] += src[i] (per-channel score accumulation).
  void (*add_arrays)(double* dst, const double* src, std::size_t n);

  /// x[i] *= s.
  void (*scale)(double* x, double s, std::size_t n);

  /// Sliding-Pearson normalization epilogue over contiguous prefix sums:
  /// for each window n, var from (ps, ps2), degenerate guard, then
  /// out[n] = num[n] / (sqrt(var) * y_norm) with non-finite results
  /// zeroed (exact scalar comparison semantics; NaN routes degenerate).
  void (*normalize_windows)(const double* ps, const double* ps2,
                            std::size_t ny, double y_norm, const double* num,
                            double* out, std::size_t n_out);

  /// Strided variant for the batched (channel-interleaved) TDE path: the
  /// window-n inputs live at ps[n*stride], num[n*stride]; out is
  /// contiguous.  Pointers are pre-offset to the channel.
  void (*normalize_windows_strided)(const double* ps, const double* ps2,
                                    std::size_t stride, std::size_t ny,
                                    double y_norm, const double* num,
                                    double* out, std::size_t n_out);

  /// Fused TDEB epilogue: argmax_j of max(scores[j], 0) * w[j], strict
  /// greater-than so the first occurrence of the maximum wins (identical
  /// to the scalar reference loop).  Requires finite scores (guaranteed
  /// by the normalization guard upstream) and n >= 1.
  std::size_t (*clamp_weight_argmax)(const double* scores, const double* w,
                                     std::size_t n);

  /// Per-channel sums of row-major frames*channels data, accumulated in
  /// ascending frame order per channel (bitwise equal to a sequential
  /// per-channel sum).
  void (*channel_sums)(const double* data, std::size_t frames,
                       std::size_t channels, double* sums);

  /// dst row k = src row k - mu (per channel), rows in ascending order.
  void (*center_rows)(const double* src, std::size_t frames,
                      std::size_t channels, const double* mu, double* dst);

  /// dst row (frames-1-k) = src row k - mu, and energy[c] += d*d in
  /// ascending-k order per channel (bitwise equal to the sequential
  /// center + energy loop of the unbatched path).  energy must be
  /// zero-initialized by the caller.
  void (*center_rows_reversed_energy)(const double* src, std::size_t frames,
                                      std::size_t channels, const double* mu,
                                      double* dst, double* energy);

  /// Row-parallel prefix sums: ps row 0 = 0, ps row k+1 = ps row k +
  /// x row k (and ps2 with squares).  Sequential in k per channel, so
  /// bitwise equal to the scalar per-channel prefix sums.
  void (*prefix_sums_rows)(const double* x, double* ps, double* ps2,
                           std::size_t frames, std::size_t channels);

  // --- ULP-bounded kernels (reassociating reductions) ------------------

  /// sum(x[0..n)).  Vector backends use 4 partial accumulators.
  double (*sum)(const double* x, std::size_t n);

  /// sum((x[i]-mu)^2).
  double (*centered_energy)(const double* x, double mu, std::size_t n);

  /// dst[i] = src[i] - mu; returns sum(dst[i]^2).
  double (*subtract_scalar_energy)(const double* src, double mu, double* dst,
                                   std::size_t n);

  /// Pearson accumulators: *num += sum(du*dv), *du2 += sum(du^2),
  /// *dv2 += sum(dv^2) with du = u[i]-mu, dv = v[i]-mv.
  void (*pearson_accumulate)(const double* u, const double* v, double mu,
                             double mv, std::size_t n, double* num,
                             double* du2, double* dv2);

  /// 1-D prefix sums ps[0] = 0, ps[i+1] = ps[i] + x[i] (and squares).
  /// Vector backends use an in-register inclusive scan (reassociates).
  void (*prefix_sums)(const double* x, double* ps, double* ps2,
                      std::size_t n);
};

/// The active backend's kernel table.
const Ops& ops();

/// ISA of the active backend.
Isa active_isa();

/// Human-readable name ("scalar", "avx2", "neon").
const char* isa_name(Isa isa);

/// Best backend compiled into this binary that the host can execute —
/// what startup resolution picks unless NSYNC_SIMD overrides it.
Isa best_supported_isa();

/// True when `isa`'s kernels are compiled in and the host supports them.
bool backend_available(Isa isa);

/// Switches the active backend; returns false (no change) when the
/// requested backend is unavailable.  Atomic, but callers doing
/// A/B comparisons should not run transforms concurrently with a switch.
bool set_backend(Isa isa);

/// True when any vector backend was compiled in (NSYNC_ENABLE_SIMD=ON
/// and the toolchain/arch supports one).
bool built_with_simd();

}  // namespace nsync::dsp::simd

#endif  // NSYNC_DSP_SIMD_SIMD_HPP
