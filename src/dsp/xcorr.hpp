// Sliding normalized correlation ("the sliding method", Section V-B).
//
// Three implementations with identical output are provided: a direct
// O(Nx * Ny) evaluation, an rfft + prefix-sum path (the default inside
// TDE), and a pre-rfft complex-FFT reference.  The naive and complex
// variants serve as references for testing and as ablation targets
// (bench_ablation_tde_speed).  The *_into entry points write into
// caller-owned buffers and perform no heap allocation once their
// workspace has reached steady-state size.
//
// The fft path's centering, prefix-sum, and window-normalization passes
// run through the runtime-dispatched SIMD kernels (dsp/simd/simd.hpp).
// Under a vector backend the prefix sums and energy reductions
// reassociate, so scores can differ from the scalar backend by a few
// ULPs (see DESIGN.md, "SIMD dispatch"); the degenerate-window guard is
// relative (1e-12) and unaffected by that noise.
#ifndef NSYNC_DSP_XCORR_HPP
#define NSYNC_DSP_XCORR_HPP

#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace nsync::dsp {

/// Reusable scratch for sliding_pearson_fft_into: centered copies of both
/// inputs, the FFT numerator, the prefix sums, and the real-FFT staging
/// buffers.  A default-constructed workspace is valid for any input.
struct SlidingPearsonWorkspace {
  std::vector<double> yc;   ///< centered template
  std::vector<double> xc;   ///< centered long signal
  std::vector<double> num;  ///< FFT cross-correlation numerator
  std::vector<double> ps;   ///< prefix sums of xc
  std::vector<double> ps2;  ///< prefix sums of xc^2
  CorrelationWorkspace corr;
};

/// s[n] = pearson(x[n : n+Ny], y) for n = 0 .. Nx-Ny  (Eq. 1 with Eq. 3).
/// Direct evaluation.  Requires x.size() >= y.size() >= 2.
[[nodiscard]] std::vector<double> sliding_pearson_naive(
    std::span<const double> x, std::span<const double> y);

/// Same output as sliding_pearson_naive, computed with one real-FFT
/// cross-correlation for the numerator and prefix sums for the windowed
/// means/norms.  Degenerate windows (zero variance, non-finite samples)
/// score 0, matching stats::pearson; note that a single NaN in `x`
/// contaminates the FFT numerator, so on non-finite input this path
/// zeroes *every* affected window while the naive path only zeroes the
/// windows that overlap the NaN — upstream consumers (DwmSynchronizer)
/// mask such windows out before scoring.
[[nodiscard]] std::vector<double> sliding_pearson_fft(
    std::span<const double> x, std::span<const double> y);

/// Same as sliding_pearson_fft, writing into `out` (which must have
/// exactly x.size() - y.size() + 1 elements) using `ws` for all scratch.
/// Zero heap allocations at steady state; bitwise identical to the
/// allocating wrapper.
void sliding_pearson_fft_into(std::span<const double> x,
                              std::span<const double> y,
                              std::span<double> out,
                              SlidingPearsonWorkspace& ws);

/// Allocation-free variant of sliding_pearson_naive writing into `out`
/// (same size contract as sliding_pearson_fft_into).
void sliding_pearson_naive_into(std::span<const double> x,
                                std::span<const double> y,
                                std::span<double> out);

/// Pre-rfft reference: the numerator comes from the full-size complex-FFT
/// cross-correlation.  Kept for the rfft equivalence tests and the
/// bench_ablation_tde_speed ablation.
[[nodiscard]] std::vector<double> sliding_pearson_fft_complex(
    std::span<const double> x, std::span<const double> y);

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_XCORR_HPP
