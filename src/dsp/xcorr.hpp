// Sliding normalized correlation ("the sliding method", Section V-B).
//
// Both a direct O(Nx * Ny) implementation and an FFT + prefix-sum
// implementation with identical output are provided; the latter is the
// default inside TDE and the former serves as a reference for testing and
// as an ablation target (bench_ablation_tde_speed).
#ifndef NSYNC_DSP_XCORR_HPP
#define NSYNC_DSP_XCORR_HPP

#include <span>
#include <vector>

namespace nsync::dsp {

/// s[n] = pearson(x[n : n+Ny], y) for n = 0 .. Nx-Ny  (Eq. 1 with Eq. 3).
/// Direct evaluation.  Requires x.size() >= y.size() >= 2.
[[nodiscard]] std::vector<double> sliding_pearson_naive(
    std::span<const double> x, std::span<const double> y);

/// Same output as sliding_pearson_naive, computed with one FFT
/// cross-correlation for the numerator and prefix sums for the windowed
/// means/norms.  Zero-variance windows score 0.
[[nodiscard]] std::vector<double> sliding_pearson_fft(
    std::span<const double> x, std::span<const double> y);

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_XCORR_HPP
