#include "dsp/stft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace nsync::dsp {

using nsync::signal::Signal;
using nsync::signal::SignalView;

std::size_t stft_window_samples(const StftConfig& cfg, double fs) {
  if (cfg.delta_f <= 0.0 || fs <= 0.0) {
    throw std::invalid_argument("stft: delta_f and fs must be positive");
  }
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(fs / cfg.delta_f)));
}

std::size_t stft_hop_samples(const StftConfig& cfg, double fs) {
  if (cfg.delta_t <= 0.0 || fs <= 0.0) {
    throw std::invalid_argument("stft: delta_t and fs must be positive");
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fs * cfg.delta_t)));
}

std::size_t stft_bins(const StftConfig& cfg, double fs) {
  return stft_window_samples(cfg, fs) / 2 + 1;
}

Signal spectrogram(const SignalView& s, const StftConfig& cfg) {
  const std::size_t n_win = stft_window_samples(cfg, s.sample_rate());
  const std::size_t n_hop = stft_hop_samples(cfg, s.sample_rate());
  const std::size_t bins = n_win / 2 + 1;
  if (s.frames() < n_win) {
    throw std::invalid_argument(
        "spectrogram: signal shorter than one analysis window");
  }
  const std::size_t columns = (s.frames() - n_win) / n_hop + 1;
  const auto window_ptr = cached_window(cfg.window, n_win);
  const auto& window = *window_ptr;

  Signal out(columns, bins * s.channels(), 1.0 / cfg.delta_t);
  std::vector<double> buf(n_win);
  for (std::size_t c = 0; c < s.channels(); ++c) {
    for (std::size_t col = 0; col < columns; ++col) {
      const std::size_t start = col * n_hop;
      for (std::size_t i = 0; i < n_win; ++i) {
        buf[i] = s(start + i, c) * window[i];
      }
      const auto mags = rfft_magnitude(buf);
      for (std::size_t k = 0; k < bins; ++k) {
        const double m = cfg.log_magnitude ? std::log1p(mags[k]) : mags[k];
        out(col, c * bins + k) = m;
      }
    }
  }
  return out;
}

}  // namespace nsync::dsp
