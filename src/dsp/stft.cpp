#include "dsp/stft.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "dsp/batched_fft.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd/simd.hpp"

namespace nsync::dsp {

using nsync::signal::Signal;
using nsync::signal::SignalView;

std::size_t stft_window_samples(const StftConfig& cfg, double fs) {
  if (cfg.delta_f <= 0.0 || fs <= 0.0) {
    throw std::invalid_argument("stft: delta_f and fs must be positive");
  }
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(fs / cfg.delta_f)));
}

std::size_t stft_hop_samples(const StftConfig& cfg, double fs) {
  if (cfg.delta_t <= 0.0 || fs <= 0.0) {
    throw std::invalid_argument("stft: delta_t and fs must be positive");
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fs * cfg.delta_t)));
}

std::size_t stft_bins(const StftConfig& cfg, double fs) {
  return stft_window_samples(cfg, fs) / 2 + 1;
}

Signal spectrogram(const SignalView& s, const StftConfig& cfg) {
  const std::size_t n_win = stft_window_samples(cfg, s.sample_rate());
  const std::size_t n_hop = stft_hop_samples(cfg, s.sample_rate());
  const std::size_t bins = n_win / 2 + 1;
  if (s.frames() < n_win) {
    throw std::invalid_argument(
        "spectrogram: signal shorter than one analysis window");
  }
  const std::size_t columns = (s.frames() - n_win) / n_hop + 1;
  const auto window_ptr = cached_window(cfg.window, n_win);
  const auto& window = *window_ptr;

  Signal out(columns, bins * s.channels(), 1.0 / cfg.delta_t);
  // Every transform below is a BatchedRfftPlan pass, which is bitwise
  // equal per lane to rfft_magnitude on the same samples (same cached
  // plans, same per-lane operation sequence), so the output matches the
  // historical per-channel/per-column loop exactly.
  if (s.channels() > 1) {
    // Multichannel: one batched transform per column, all channels as
    // lanes.  The interleaved frame block is already lane-interleaved,
    // so windowing is a single row-broadcast multiply and the transform
    // packs with plain row copies.
    const std::size_t C = s.channels();
    BatchedRfftPlan plan(n_win, C);
    std::vector<double> winbuf(n_win * C);
    std::vector<double> spec_re(bins * C);
    std::vector<double> spec_im(bins * C);
    for (std::size_t col = 0; col < columns; ++col) {
      nsync::dsp::simd::ops().mul_rows_broadcast_real(
          s.data() + col * n_hop * C, n_win, C, window.data(), winbuf.data());
      plan.forward_interleaved(winbuf.data(), spec_re.data(), spec_im.data());
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t k = 0; k < bins; ++k) {
          const double m =
              std::abs(Complex(spec_re[k * C + c], spec_im[k * C + c]));
          out(col, c * bins + k) = cfg.log_magnitude ? std::log1p(m) : m;
        }
      }
    }
    return out;
  }
  // Single channel: batch hop-shifted columns as lanes instead (groups
  // of up to 8 plus a remainder group), gathering the windowed samples
  // into the lane-interleaved layout.
  const double* data = s.data();
  std::size_t group = std::min<std::size_t>(8, columns);
  auto plan = std::make_unique<BatchedRfftPlan>(n_win, group);
  std::vector<double> winbuf(n_win * group);
  std::vector<double> spec_re(bins * group);
  std::vector<double> spec_im(bins * group);
  for (std::size_t col = 0; col < columns; col += group) {
    if (columns - col < group) {
      group = columns - col;  // remainder group gets its own plan
      plan = std::make_unique<BatchedRfftPlan>(n_win, group);
    }
    for (std::size_t i = 0; i < n_win; ++i) {
      double* row = winbuf.data() + i * group;
      for (std::size_t j = 0; j < group; ++j) {
        row[j] = data[(col + j) * n_hop + i] * window[i];
      }
    }
    plan->forward_interleaved(winbuf.data(), spec_re.data(), spec_im.data());
    for (std::size_t j = 0; j < group; ++j) {
      for (std::size_t k = 0; k < bins; ++k) {
        const double m = std::abs(
            Complex(spec_re[k * group + j], spec_im[k * group + j]));
        out(col + j, k) = cfg.log_magnitude ? std::log1p(m) : m;
      }
    }
  }
  return out;
}

}  // namespace nsync::dsp
