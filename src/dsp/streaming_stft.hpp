// Streaming STFT: incremental spectrogram computation for real-time use.
//
// The offline dsp::spectrogram() needs the whole signal; a live IDS gets
// samples chunk by chunk from the DAQ.  StreamingStft buffers raw frames
// and emits finished spectrogram columns as soon as their analysis window
// is complete, producing byte-identical output to the offline pipeline —
// which lets RealtimeMonitor run on spectrograms in real time.
#ifndef NSYNC_DSP_STREAMING_STFT_HPP
#define NSYNC_DSP_STREAMING_STFT_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "dsp/batched_fft.hpp"
#include "dsp/stft.hpp"
#include "signal/ring_buffer.hpp"
#include "signal/signal.hpp"

namespace nsync::dsp {

class StreamingStft {
 public:
  /// `input_rate` is the raw signal's sampling rate; `input_channels` its
  /// channel count.  Throws for configs that resolve to degenerate
  /// windows.
  StreamingStft(const StftConfig& config, double input_rate,
                std::size_t input_channels);

  /// Appends raw frames; computes and internally appends every spectrogram
  /// column that became complete.  Returns the number of new columns.
  std::size_t push(const nsync::signal::SignalView& frames);

  /// All columns emitted so far, as a spectrogram signal (same layout as
  /// dsp::spectrogram: output channel c * bins + k = bin k of channel c).
  [[nodiscard]] const nsync::signal::Signal& spectrogram() const {
    return output_;
  }

  [[nodiscard]] std::size_t columns() const { return output_.frames(); }
  [[nodiscard]] std::size_t bins() const { return bins_; }
  [[nodiscard]] std::size_t window_samples() const { return n_win_; }
  [[nodiscard]] std::size_t hop_samples() const { return n_hop_; }

 private:
  bool emit_next_column();

  StftConfig config_;
  std::size_t channels_;
  std::size_t n_win_;
  std::size_t n_hop_;
  std::size_t bins_;
  std::shared_ptr<const std::vector<double>> window_;
  // Raw frames before next_start_ belong to already-emitted columns and
  // are dropped, so buffering stays O(n_win + chunk) over a long stream.
  nsync::signal::FrameRingBuffer input_buffer_;
  nsync::signal::Signal output_;
  std::size_t next_start_ = 0;  // raw index of the next column's window
  // One batched transform per column (channels as lanes) with all
  // scratch owned here, so a steady-state column emit allocates nothing.
  BatchedRfftPlan batched_;
  std::vector<double> winbuf_;   ///< windowed frames, lane-interleaved
  std::vector<double> spec_re_;  ///< split spectrum planes
  std::vector<double> spec_im_;
  std::vector<double> row_;      ///< assembled output column
};

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_STREAMING_STFT_HPP
