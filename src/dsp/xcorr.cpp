#include "dsp/xcorr.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "dsp/simd/simd.hpp"
#include "signal/stats.hpp"

namespace nsync::dsp {

namespace {

namespace simd = nsync::dsp::simd;

void check_sizes(std::span<const double> x, std::span<const double> y,
                 const char* who) {
  if (y.size() < 2 || x.size() < y.size()) {
    throw std::invalid_argument(std::string(who) +
                                ": need x.size() >= y.size() >= 2");
  }
}

// Reference-path epilogue: given the raw correlation numerator over the
// centered signals, normalize each window by its standard deviation
// (from prefix sums) and the template norm.  The production path uses
// the dispatched simd::ops().normalize_windows kernel, whose scalar body
// is this exact loop (shared guard: simd::degenerate_variance).
//
// Degenerate windows score 0, matching the stats::pearson convention: a
// flat window (var <= 0 up to rounding) has an undefined correlation, and
// a window containing NaN/Inf would otherwise slip past a `var <= eps`
// comparison (NaN compares false) and emit a non-finite score that
// poisons every downstream TDEB/DWM result.  The guard is therefore
// written as !(var > eps), which routes NaN into the degenerate branch,
// and the quotient is checked once more because a non-finite input
// contaminates the whole FFT numerator.
template <typename NumAt>
void normalize_windows_ref(std::span<const double> ps,
                           std::span<const double> ps2, std::size_t ny,
                           double y_norm, NumAt num_at,
                           std::span<double> out) {
  const double ny_d = static_cast<double>(ny);
  for (std::size_t n = 0; n < out.size(); ++n) {
    const double s1 = ps[n + ny] - ps[n];
    const double s2 = ps2[n + ny] - ps2[n];
    const double var = s2 - s1 * s1 / ny_d;
    if (simd::degenerate_variance(var, s2)) {
      out[n] = 0.0;  // flat (or non-finite) window
    } else {
      const double r = num_at(n) / (std::sqrt(var) * y_norm);
      out[n] = std::isfinite(r) ? r : 0.0;
    }
  }
}

}  // namespace

std::vector<double> sliding_pearson_naive(std::span<const double> x,
                                          std::span<const double> y) {
  check_sizes(x, y, "sliding_pearson_naive");
  std::vector<double> out(x.size() - y.size() + 1);
  sliding_pearson_naive_into(x, y, out);
  return out;
}

void sliding_pearson_naive_into(std::span<const double> x,
                                std::span<const double> y,
                                std::span<double> out) {
  check_sizes(x, y, "sliding_pearson_naive_into");
  const std::size_t n_out = x.size() - y.size() + 1;
  if (out.size() != n_out) {
    throw std::invalid_argument(
        "sliding_pearson_naive_into: out.size() must be "
        "x.size() - y.size() + 1");
  }
  for (std::size_t n = 0; n < n_out; ++n) {
    out[n] = nsync::signal::pearson(x.subspan(n, y.size()), y);
  }
}

std::vector<double> sliding_pearson_fft(std::span<const double> x,
                                        std::span<const double> y) {
  check_sizes(x, y, "sliding_pearson_fft");
  // Per-thread workspace so the allocating wrapper still reuses scratch
  // across calls (and stays bitwise identical to the _into path).
  thread_local SlidingPearsonWorkspace ws;
  std::vector<double> out(x.size() - y.size() + 1);
  sliding_pearson_fft_into(x, y, out, ws);
  return out;
}

void sliding_pearson_fft_into(std::span<const double> x,
                              std::span<const double> y,
                              std::span<double> out,
                              SlidingPearsonWorkspace& ws) {
  check_sizes(x, y, "sliding_pearson_fft_into");
  const std::size_t ny = y.size();
  const std::size_t n_out = x.size() - ny + 1;
  if (out.size() != n_out) {
    throw std::invalid_argument(
        "sliding_pearson_fft_into: out.size() must be "
        "x.size() - y.size() + 1");
  }

  const auto& k = simd::ops();

  // Center y; after centering, sum((x_w - mu_w) .* yc) == sum(x_w .* yc)
  // because sum(yc) == 0, so no windowed-mean correction is needed in the
  // numerator.  Centering and the template energy run fused through the
  // dispatched kernel.
  const double mu_y = nsync::signal::mean(y);
  ws.yc.resize(ny);
  const double y_energy =
      k.subtract_scalar_energy(y.data(), mu_y, ws.yc.data(), ny);
  const double y_norm = std::sqrt(y_energy);

  // !(y_norm > 0) catches both the constant template and a template
  // containing non-finite samples (y_energy = NaN): score 0 everywhere.
  if (!(y_norm > 0.0) || !std::isfinite(y_norm)) {
    for (auto& v : out) v = 0.0;
    return;
  }

  // Center x globally as well: Pearson is offset-invariant, and removing
  // the DC keeps the FFT numerator and the prefix-sum variance free of
  // catastrophic cancellation when the data rides on a large offset.
  const double mu_x = nsync::signal::mean(x);
  ws.xc.resize(x.size());
  k.subtract_scalar(x.data(), mu_x, ws.xc.data(), x.size());

  ws.num.resize(n_out);
  cross_correlate_valid_into(ws.xc, ws.yc, ws.num, ws.corr);

  // Prefix sums for windowed sum and sum of squares of centered x.
  ws.ps.resize(ws.xc.size() + 1);
  ws.ps2.resize(ws.xc.size() + 1);
  k.prefix_sums(ws.xc.data(), ws.ps.data(), ws.ps2.data(), ws.xc.size());
  k.normalize_windows(ws.ps.data(), ws.ps2.data(), ny, y_norm, ws.num.data(),
                      out.data(), n_out);
}

std::vector<double> sliding_pearson_fft_complex(std::span<const double> x,
                                                std::span<const double> y) {
  check_sizes(x, y, "sliding_pearson_fft_complex");
  const std::size_t ny = y.size();
  const std::size_t n_out = x.size() - ny + 1;

  const double mu_y = nsync::signal::mean(y);
  std::vector<double> yc(ny);
  double y_energy = 0.0;
  for (std::size_t i = 0; i < ny; ++i) {
    yc[i] = y[i] - mu_y;
    y_energy += yc[i] * yc[i];
  }
  const double y_norm = std::sqrt(y_energy);

  std::vector<double> out(n_out, 0.0);
  // Same degenerate-template convention as the rfft path: constant or
  // non-finite template scores 0 everywhere.
  if (!(y_norm > 0.0) || !std::isfinite(y_norm)) return out;

  const double mu_x = nsync::signal::mean(x);
  std::vector<double> xc(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = x[i] - mu_x;

  const auto num = cross_correlate_valid_complex(xc, yc);

  std::vector<double> ps(xc.size() + 1, 0.0);
  std::vector<double> ps2(xc.size() + 1, 0.0);
  for (std::size_t i = 0; i < xc.size(); ++i) {
    ps[i + 1] = ps[i] + xc[i];
    ps2[i + 1] = ps2[i] + xc[i] * xc[i];
  }
  normalize_windows_ref(ps, ps2, ny, y_norm,
                        [&](std::size_t n) { return num[n]; }, out);
  return out;
}

}  // namespace nsync::dsp
