#include "dsp/xcorr.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "signal/stats.hpp"

namespace nsync::dsp {

namespace {

void check_sizes(std::span<const double> x, std::span<const double> y,
                 const char* who) {
  if (y.size() < 2 || x.size() < y.size()) {
    throw std::invalid_argument(std::string(who) +
                                ": need x.size() >= y.size() >= 2");
  }
}

}  // namespace

std::vector<double> sliding_pearson_naive(std::span<const double> x,
                                          std::span<const double> y) {
  check_sizes(x, y, "sliding_pearson_naive");
  const std::size_t n_out = x.size() - y.size() + 1;
  std::vector<double> out(n_out);
  for (std::size_t n = 0; n < n_out; ++n) {
    out[n] = nsync::signal::pearson(x.subspan(n, y.size()), y);
  }
  return out;
}

std::vector<double> sliding_pearson_fft(std::span<const double> x,
                                        std::span<const double> y) {
  check_sizes(x, y, "sliding_pearson_fft");
  const std::size_t ny = y.size();
  const std::size_t n_out = x.size() - ny + 1;
  const double ny_d = static_cast<double>(ny);

  // Center y; after centering, sum((x_w - mu_w) .* yc) == sum(x_w .* yc)
  // because sum(yc) == 0, so no windowed-mean correction is needed in the
  // numerator.
  const double mu_y = nsync::signal::mean(y);
  std::vector<double> yc(ny);
  double y_energy = 0.0;
  for (std::size_t i = 0; i < ny; ++i) {
    yc[i] = y[i] - mu_y;
    y_energy += yc[i] * yc[i];
  }
  const double y_norm = std::sqrt(y_energy);

  std::vector<double> out(n_out, 0.0);
  if (y_norm <= 0.0) return out;  // constant template: score 0 everywhere

  // Center x globally as well: Pearson is offset-invariant, and removing
  // the DC keeps the FFT numerator and the prefix-sum variance free of
  // catastrophic cancellation when the data rides on a large offset.
  const double mu_x = nsync::signal::mean(x);
  std::vector<double> xc(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) xc[i] = x[i] - mu_x;

  const auto num = cross_correlate_valid(xc, yc);

  // Prefix sums for windowed sum and sum of squares of centered x.
  std::vector<double> ps(xc.size() + 1, 0.0);
  std::vector<double> ps2(xc.size() + 1, 0.0);
  for (std::size_t i = 0; i < xc.size(); ++i) {
    ps[i + 1] = ps[i] + xc[i];
    ps2[i + 1] = ps2[i] + xc[i] * xc[i];
  }
  for (std::size_t n = 0; n < n_out; ++n) {
    const double s1 = ps[n + ny] - ps[n];
    const double s2 = ps2[n + ny] - ps2[n];
    const double var = s2 - s1 * s1 / ny_d;
    if (var <= 1e-12 * std::max(1.0, s2)) {
      out[n] = 0.0;  // flat window
    } else {
      out[n] = num[n] / (std::sqrt(var) * y_norm);
    }
  }
  return out;
}

}  // namespace nsync::dsp
