// Principal Component Analysis over signal channels.
//
// Belikovetsky's IDS (Section VIII-C) compresses a spectrogram down to its
// three strongest principal components before comparing signals, so we need
// a PCA that treats channels as features and frames as observations.
//
// Two symmetric eigensolvers are provided: a cyclic Jacobi solver (exact,
// good for small matrices and for testing) and an orthogonal-iteration
// top-k solver (used by Pca::fit, fast for the 100-400 channel spectrogram
// covariance matrices).
#ifndef NSYNC_DSP_PCA_HPP
#define NSYNC_DSP_PCA_HPP

#include <cstddef>
#include <vector>

#include "signal/signal.hpp"

namespace nsync::dsp {

/// Dense row-major square/rectangular matrix helper.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Result of a symmetric eigendecomposition: eigenvalues sorted descending
/// and the matching eigenvectors as matrix columns.
struct EigenResult {
  std::vector<double> values;
  Matrix vectors;  ///< vectors(i, j) = component i of eigenvector j
};

/// Full eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Throws std::invalid_argument for non-square input.
[[nodiscard]] EigenResult jacobi_eigen_symmetric(const Matrix& a,
                                                 std::size_t max_sweeps = 64,
                                                 double tol = 1e-12);

/// Top-k eigenpairs of a symmetric positive semi-definite matrix via
/// orthogonal (subspace) iteration.
[[nodiscard]] EigenResult top_k_eigen_symmetric(const Matrix& a,
                                                std::size_t k,
                                                std::size_t max_iters = 300,
                                                double tol = 1e-10);

/// PCA model: mean vector plus the top-k principal directions of the
/// channel covariance.
class Pca {
 public:
  /// Fits a k-component PCA on the channels of `s` (frames are
  /// observations).  Throws when k exceeds the channel count or the signal
  /// has fewer than two frames.
  static Pca fit(const nsync::signal::SignalView& s, std::size_t k);

  /// Projects `s` onto the principal directions, producing a k-channel
  /// signal at the same sampling rate.  Channel count must match fit data.
  [[nodiscard]] nsync::signal::Signal transform(
      const nsync::signal::SignalView& s) const;

  [[nodiscard]] std::size_t components() const { return components_.rows(); }
  [[nodiscard]] std::size_t input_channels() const { return mean_.size(); }
  [[nodiscard]] const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  /// components()(i, c): weight of input channel c in component i.
  [[nodiscard]] const Matrix& component_matrix() const { return components_; }

 private:
  std::vector<double> mean_;
  Matrix components_;  // k x channels
  std::vector<double> explained_variance_;
};

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_PCA_HPP
