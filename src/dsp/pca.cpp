#include "dsp/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "signal/stats.hpp"

namespace nsync::dsp {

using nsync::signal::Signal;
using nsync::signal::SignalView;

namespace {

void sort_descending(EigenResult& r) {
  const std::size_t n = r.values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return r.values[a] > r.values[b];
  });
  std::vector<double> values(n);
  Matrix vectors(r.vectors.rows(), n);
  for (std::size_t j = 0; j < n; ++j) {
    values[j] = r.values[order[j]];
    for (std::size_t i = 0; i < r.vectors.rows(); ++i) {
      vectors(i, j) = r.vectors(i, order[j]);
    }
  }
  r.values = std::move(values);
  r.vectors = std::move(vectors);
}

Matrix covariance_matrix(const SignalView& s, std::vector<double>& mean_out) {
  const std::size_t c = s.channels();
  const std::size_t n = s.frames();
  mean_out = nsync::signal::channel_means(s);
  Matrix cov(c, c);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < c; ++i) {
      const double di = s(t, i) - mean_out[i];
      for (std::size_t j = i; j < c; ++j) {
        cov(i, j) += di * (s(t, j) - mean_out[j]);
      }
    }
  }
  const double denom = static_cast<double>(n > 1 ? n - 1 : 1);
  for (std::size_t i = 0; i < c; ++i) {
    for (std::size_t j = i; j < c; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

}  // namespace

EigenResult jacobi_eigen_symmetric(const Matrix& a, std::size_t max_sweeps,
                                   double tol) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("jacobi_eigen_symmetric: matrix not square");
  }
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += m(i, j) * m(i, j);
    }
    if (off < tol * tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(m(p, q)) < 1e-300) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * m(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  EigenResult out;
  out.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.values[i] = m(i, i);
  out.vectors = std::move(v);
  sort_descending(out);
  return out;
}

EigenResult top_k_eigen_symmetric(const Matrix& a, std::size_t k,
                                  std::size_t max_iters, double tol) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("top_k_eigen_symmetric: matrix not square");
  }
  const std::size_t n = a.rows();
  if (k == 0 || k > n) {
    throw std::invalid_argument("top_k_eigen_symmetric: bad k");
  }
  // Deterministic pseudo-random start basis.
  Matrix q(n, k);
  std::uint64_t state = 0x853c49e6748fea9bULL;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      q(i, j) = static_cast<double>((state >> 11) & 0xFFFFF) / 1048576.0 - 0.5;
    }
  }

  auto gram_schmidt = [&](Matrix& b) {
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (std::size_t i = 0; i < n; ++i) dot += b(i, j) * b(i, prev);
        for (std::size_t i = 0; i < n; ++i) b(i, j) -= dot * b(i, prev);
      }
      double norm = 0.0;
      for (std::size_t i = 0; i < n; ++i) norm += b(i, j) * b(i, j);
      norm = std::sqrt(norm);
      if (norm < 1e-14) {
        // Degenerate direction: reset to a unit vector.
        for (std::size_t i = 0; i < n; ++i) b(i, j) = 0.0;
        b(j % n, j) = 1.0;
      } else {
        for (std::size_t i = 0; i < n; ++i) b(i, j) /= norm;
      }
    }
  };

  gram_schmidt(q);
  std::vector<double> prev_values(k, 0.0);
  std::vector<double> values(k, 0.0);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    Matrix z(n, k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        double acc = 0.0;
        for (std::size_t l = 0; l < n; ++l) acc += a(i, l) * q(l, j);
        z(i, j) = acc;
      }
    }
    // Rayleigh quotients before orthonormalization.
    for (std::size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += q(i, j) * z(i, j);
      values[j] = acc;
    }
    gram_schmidt(z);
    q = std::move(z);
    double delta = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      delta = std::max(delta, std::abs(values[j] - prev_values[j]));
    }
    prev_values = values;
    if (iter > 3 && delta < tol * (1.0 + std::abs(values[0]))) break;
  }
  EigenResult out;
  out.values = values;
  out.vectors = std::move(q);
  sort_descending(out);
  return out;
}

Pca Pca::fit(const SignalView& s, std::size_t k) {
  if (s.frames() < 2) {
    throw std::invalid_argument("Pca::fit: need at least two frames");
  }
  if (k == 0 || k > s.channels()) {
    throw std::invalid_argument("Pca::fit: component count out of range");
  }
  Pca model;
  const Matrix cov = covariance_matrix(s, model.mean_);
  const EigenResult eig =
      (s.channels() <= 16) ? jacobi_eigen_symmetric(cov)
                           : top_k_eigen_symmetric(cov, k);
  model.components_ = Matrix(k, s.channels());
  model.explained_variance_.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    model.explained_variance_[j] = std::max(0.0, eig.values[j]);
    for (std::size_t c = 0; c < s.channels(); ++c) {
      model.components_(j, c) = eig.vectors(c, j);
    }
  }
  return model;
}

Signal Pca::transform(const SignalView& s) const {
  if (s.channels() != mean_.size()) {
    throw std::invalid_argument("Pca::transform: channel count mismatch");
  }
  const std::size_t k = components_.rows();
  Signal out(s.frames(), k, s.sample_rate());
  for (std::size_t t = 0; t < s.frames(); ++t) {
    for (std::size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < mean_.size(); ++c) {
        acc += components_(j, c) * (s(t, c) - mean_[c]);
      }
      out(t, j) = acc;
    }
  }
  return out;
}

}  // namespace nsync::dsp
