// Window functions for STFT (Table III uses Blackman-Harris and Boxcar)
// and the Gaussian bias window of TDEB (Fig. 5).
#ifndef NSYNC_DSP_WINDOWS_HPP
#define NSYNC_DSP_WINDOWS_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace nsync::dsp {

/// Window families supported by the spectrogram pipeline.
enum class WindowType {
  kBoxcar,          ///< rectangular (all ones)
  kHann,            ///< raised cosine
  kBlackmanHarris,  ///< 4-term Blackman-Harris (paper's "BH")
  kGaussian,        ///< Gaussian; sigma defaults to N/6
};

/// Parses "boxcar" / "hann" / "blackmanharris" / "gaussian" (case
/// insensitive); throws std::invalid_argument otherwise.
[[nodiscard]] WindowType parse_window_type(const std::string& name);

/// Human-readable name of a window type.
[[nodiscard]] std::string window_type_name(WindowType type);

/// Returns an N-point window of the requested type.
[[nodiscard]] std::vector<double> make_window(WindowType type, std::size_t n);

/// Cached variant of make_window: coefficients for a given (type, n) are
/// computed once per process and shared.  Thread-safe; the returned
/// vector is immutable.  The STFT uses this so repeated spectrograms of
/// same-rate signals stop recomputing their window on every call.
[[nodiscard]] std::shared_ptr<const std::vector<double>> cached_window(
    WindowType type, std::size_t n);

/// N-point Gaussian window centered at (n-1)/2 with the given standard
/// deviation in samples.  This is the TDEB bias window: multiplying the
/// similarity array by it raises scores near the center (Fig. 5).
[[nodiscard]] std::vector<double> gaussian_window(std::size_t n, double sigma);

}  // namespace nsync::dsp

#endif  // NSYNC_DSP_WINDOWS_HPP
