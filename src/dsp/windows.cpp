#include "dsp/windows.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace nsync::dsp {

namespace {
constexpr double kPi = std::numbers::pi;
}

WindowType parse_window_type(const std::string& name) {
  std::string s;
  s.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      s.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (s == "boxcar" || s == "rect" || s == "rectangular") {
    return WindowType::kBoxcar;
  }
  if (s == "hann" || s == "hanning") return WindowType::kHann;
  if (s == "blackmanharris" || s == "bh") return WindowType::kBlackmanHarris;
  if (s == "gaussian" || s == "gauss") return WindowType::kGaussian;
  throw std::invalid_argument("parse_window_type: unknown window '" + name +
                              "'");
}

std::string window_type_name(WindowType type) {
  switch (type) {
    case WindowType::kBoxcar:
      return "boxcar";
    case WindowType::kHann:
      return "hann";
    case WindowType::kBlackmanHarris:
      return "blackmanharris";
    case WindowType::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

std::vector<double> make_window(WindowType type, std::size_t n) {
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double denom = static_cast<double>(n - 1);
  switch (type) {
    case WindowType::kBoxcar:
      break;
    case WindowType::kHann:
      for (std::size_t i = 0; i < n; ++i) {
        w[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) / denom);
      }
      break;
    case WindowType::kBlackmanHarris: {
      constexpr double a0 = 0.35875, a1 = 0.48829, a2 = 0.14128, a3 = 0.01168;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = 2.0 * kPi * static_cast<double>(i) / denom;
        w[i] = a0 - a1 * std::cos(x) + a2 * std::cos(2.0 * x) -
               a3 * std::cos(3.0 * x);
      }
      break;
    }
    case WindowType::kGaussian:
      return gaussian_window(n, static_cast<double>(n) / 6.0);
  }
  return w;
}

std::shared_ptr<const std::vector<double>> cached_window(WindowType type,
                                                         std::size_t n) {
  using Key = std::pair<WindowType, std::size_t>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const std::vector<double>>> cache;
  const Key key{type, n};
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  auto w = std::make_shared<const std::vector<double>>(make_window(type, n));
  std::lock_guard<std::mutex> lock(mu);
  return cache.emplace(key, std::move(w)).first->second;
}

std::vector<double> gaussian_window(std::size_t n, double sigma) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("gaussian_window: sigma must be positive");
  }
  std::vector<double> w(n, 1.0);
  if (n <= 1) return w;
  const double center = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (static_cast<double>(i) - center) / sigma;
    w[i] = std::exp(-0.5 * d * d);
  }
  return w;
}

}  // namespace nsync::dsp
