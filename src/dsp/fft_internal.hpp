// Internal FFT plan structures and split-plane runners.
//
// Shared between fft.cpp (the public scalar entry points) and
// batched_fft.cpp (BatchedRfftPlan) so both read the same cached plans.
// Plans store twiddles in split re/im arrays — the layout the SIMD
// kernels consume — with the per-stage tables COPIED from the full
// w_n^k = exp(-2*pi*i*k/n) table rather than recomputed per stage:
// cos(-2*pi*k/len) can differ in the last bit from the full-table entry
// at k*stride because the two argument reductions round differently, and
// the bitwise contract against the pre-split implementation hinges on
// reading the exact same twiddle bits.
//
// Not part of the installed public API; include only from src/dsp.
#ifndef NSYNC_DSP_FFT_INTERNAL_HPP
#define NSYNC_DSP_FFT_INTERNAL_HPP

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace nsync::dsp::detail {

/// Radix-2 DIT plan: bit-reversal permutation plus the concatenated
/// per-stage twiddle tables.  Stage `len` has len/2 entries starting at
/// offset len/2 - 1 (total n - 1 entries), copied from the full forward
/// table at stride n/len.
struct Radix2Plan {
  std::size_t n = 0;
  std::vector<std::size_t> bitrev;
  std::vector<double> stage_re;
  std::vector<double> stage_im;

  [[nodiscard]] const double* stage_twr(std::size_t len) const {
    return stage_re.data() + (len / 2 - 1);
  }
  [[nodiscard]] const double* stage_twi(std::size_t len) const {
    return stage_im.data() + (len / 2 - 1);
  }
};

/// Real-FFT plan for an even power-of-two size n: the half-size complex
/// plan plus the untangling twiddles w_n^k, k < n/2, in split layout.
struct RfftPlan {
  std::size_t n = 0;
  std::shared_ptr<const Radix2Plan> half;
  std::vector<double> tw_re;
  std::vector<double> tw_im;
};

/// Bluestein plan (chirp + FFT of the convolution kernel) in split layout.
struct BluesteinPlan {
  std::size_t n = 0;
  std::size_t m = 0;  ///< power-of-two convolution length
  std::vector<double> chirp_re;
  std::vector<double> chirp_im;
  std::vector<double> kernel_re;
  std::vector<double> kernel_im;
};

/// Cached plan lookups (thread-safe, build-once).
std::shared_ptr<const Radix2Plan> get_radix2_plan(std::size_t n);
std::shared_ptr<const RfftPlan> get_rfft_plan(std::size_t n);
std::shared_ptr<const BluesteinPlan> get_bluestein_plan(std::size_t n,
                                                        bool inverse);

/// In-place radix-2 FFT over split planes of plan.n complex elements
/// (bit-reversal, butterfly stages through the SIMD dispatch table, and
/// the 1/n scaling when inverse).  Bitwise identical to the historical
/// interleaved std::complex implementation.
void run_radix2_split(double* re, double* im, const Radix2Plan& plan,
                      bool inverse);

/// Batched variant over lane-interleaved rows: element k of lane l lives
/// at [k * lanes + l].  Lanes are fully independent, and each lane's
/// arithmetic is identical to run_radix2_split's.
void run_radix2_split_batch(double* re, double* im, std::size_t lanes,
                            const Radix2Plan& plan, bool inverse);

/// Forward real FFT for the (power-of-two) plan size n = x.size():
/// half-size pack, complex transform in the split half planes (each
/// plan.n/2 doubles), and the untangling epilogue into n/2+1 bins.
void rfft_pow2_split(std::span<const double> x, std::span<Complex> out,
                     double* half_re, double* half_im, const RfftPlan& plan);

/// Inverse counterpart: n/2+1 bins -> length-n real signal (includes the
/// 1/n normalization via the half transform's 1/(n/2) and the 0.5s).
void irfft_pow2_split(std::span<const Complex> bins, std::span<double> out,
                      double* half_re, double* half_im, const RfftPlan& plan);

}  // namespace nsync::dsp::detail

#endif  // NSYNC_DSP_FFT_INTERNAL_HPP
