#include "eval/drift.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/nsync.hpp"
#include "engine/monitor_engine.hpp"
#include "sensors/fault_injector.hpp"
#include "signal/rng.hpp"
#include "signal/signal.hpp"

namespace nsync::eval {

namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

/// Pseudo side-channel reference: low-pass-filtered noise standing in for
/// a toolpath-driven sensor trace (same shape the fleet examples use).
Signal make_reference(std::size_t frames, std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, 1, 100.0);
  double lp = 0.0;
  for (std::size_t n = 0; n < frames; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    s(n, 0) = lp;
  }
  return s;
}

/// Benign print: the reference under a small mean-reverting servo timing
/// error (AR(1) offset) plus measurement noise.  The amplitude error is
/// deliberately noise-dominated: white noise concentrates tightly per
/// window, so the benign v_dist envelope is stable print to print and
/// the experiment's contrast comes from the injected drift, not from a
/// heavy-tailed generator.
Signal benign_observation(const Signal& b, std::uint64_t seed) {
  Rng rng(seed);
  Signal a = Signal::empty(b.channels(), b.sample_rate());
  double offset = 0.0;
  std::vector<double> row(b.channels());
  for (std::size_t n = 0; n + 1 < b.frames(); ++n) {
    offset = 0.995 * offset + rng.normal(0.0, 0.005);
    const double src = std::clamp(static_cast<double>(n) + offset, 0.0,
                                  static_cast<double>(b.frames() - 1));
    const auto i0 = static_cast<std::size_t>(src);
    const double frac = src - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, b.frames() - 1);
    for (std::size_t c = 0; c < b.channels(); ++c) {
      row[c] = (1.0 - frac) * b(i0, c) + frac * b(i1, c) +
               rng.normal(0.0, 0.05);
    }
    a.append_frame(row);
  }
  return a;
}

/// Tampered print: benign stream with the middle third replaced by an
/// unrelated toolpath.
Signal malicious_observation(const Signal& b, std::uint64_t seed) {
  Signal a = benign_observation(b, seed);
  Rng rng(seed + 5000);
  const std::size_t lo = a.frames() / 3;
  const std::size_t hi = 2 * a.frames() / 3;
  double lp = 0.0;
  for (std::size_t n = lo; n < hi; ++n) {
    lp += 0.35 * (rng.normal() - lp);
    for (std::size_t c = 0; c < a.channels(); ++c) a(n, c) = lp;
  }
  return a;
}

void tally(DriftArmSummary& s, bool attack, bool flagged) {
  if (attack) {
    ++s.attack_prints;
    if (flagged) ++s.detected;
  } else {
    ++s.benign_prints;
    if (flagged) ++s.false_alarms;
  }
}

}  // namespace

void DriftScenarioConfig::validate() const {
  if (prints == 0) {
    throw std::invalid_argument("drift: prints must be >= 1");
  }
  if (attack_every == 1) {
    throw std::invalid_argument(
        "drift: attack_every must be 0 (all benign) or >= 2 (the adaptive "
        "arm needs benign prints to fold)");
  }
  if (frames < 256) {
    throw std::invalid_argument("drift: frames must be >= 256");
  }
  if (train_prints == 0) {
    throw std::invalid_argument("drift: train_prints must be >= 1");
  }
  if (r <= 0.0) {
    throw std::invalid_argument("drift: r must be > 0");
  }
  policy.validate();
  sensors::FaultConfig fc;
  fc.gain_drift_per_frame = gain_drift_per_frame;
  fc.offset_drift_per_frame = offset_drift_per_frame;
  fc.validate();
}

DriftScenarioResult run_drift_scenario(const DriftScenarioConfig& cfg) {
  cfg.validate();

  const Signal reference = make_reference(cfg.frames, cfg.seed);

  core::NsyncConfig ncfg;
  ncfg.sync = core::SyncMethod::kDwm;
  ncfg.dwm.n_win = 64;
  ncfg.dwm.n_hop = 32;
  ncfg.dwm.n_ext = 24;
  ncfg.dwm.n_sigma = 12.0;
  // Correlation distance is invariant to exactly the gain/offset drift
  // under study; Euclidean makes amplitude drift visible to v_dist.
  ncfg.metric = core::DistanceMetric::kEuclidean;
  ncfg.r = cfg.r;

  // Factory calibration: fit on undrifted benign prints.
  core::NsyncIds ids(reference, ncfg);
  std::vector<Signal> train;
  train.reserve(cfg.train_prints);
  for (std::size_t s = 0; s < cfg.train_prints; ++s) {
    train.push_back(benign_observation(reference, cfg.seed + 100 + s));
  }
  ids.fit(train);
  const core::Thresholds factory = ids.thresholds();

  // Adaptive arm: one engine, in-memory registry, one device.
  engine::MonitorEngineOptions eopts;
  eopts.baseline.adaptive = true;
  eopts.baseline.policy = cfg.policy;
  engine::MonitorEngine engine(eopts);
  const std::string model = "drift-rig";
  const std::string channel = "ch0";

  // One persistent injector: drift accumulates across prints, exactly as
  // a real sensor chain ages across jobs.  The arms share each corrupted
  // stream so they always judge identical bytes.
  sensors::FaultConfig fault;
  fault.gain_drift_per_frame = cfg.gain_drift_per_frame;
  fault.offset_drift_per_frame = cfg.offset_drift_per_frame;
  sensors::FaultInjector injector(fault, cfg.seed + 9);

  DriftScenarioResult result;
  result.prints.reserve(cfg.prints);
  const std::size_t late_from = cfg.prints / 2;

  for (std::size_t p = 0; p < cfg.prints; ++p) {
    const bool attack =
        cfg.attack_every > 0 && (p % cfg.attack_every) == cfg.attack_every - 1;
    const Signal obs =
        attack ? malicious_observation(reference, cfg.seed + 1000 + p)
               : benign_observation(reference, cfg.seed + 1000 + p);
    const Signal corrupted = injector.apply(obs.view());

    DriftPrintRecord rec;
    rec.print = p;
    rec.attack = attack;
    rec.drift_gain = injector.drift_gain();
    rec.drift_offset = injector.drift_offset();

    // Fixed arm: the factory calibration, forever.
    core::RealtimeMonitor fixed(reference, ncfg, factory);
    fixed.push(corrupted.view());
    rec.fixed_intrusion = fixed.intrusion();

    // Adaptive arm: a fresh session per print on the same device key;
    // admission resolves the current baseline, eviction folds the print.
    engine::SessionSpec spec;
    spec.name = "print-" + std::to_string(p);
    spec.model = model;
    spec.policy = cfg.fusion;
    spec.channels.push_back({channel, reference, ncfg, factory});
    const std::size_t id = engine.add_session(std::move(spec));
    engine.feed(id, channel, corrupted.view());
    engine.poll_session(id);
    const engine::SessionSnapshot snap = engine.snapshot(id);
    rec.adaptive_intrusion = snap.intrusion;
    rec.adaptive_thresholds = snap.channels.at(0).thresholds;
    engine.evict_session(id);

    tally(result.fixed, attack, rec.fixed_intrusion);
    tally(result.adaptive, attack, rec.adaptive_intrusion);
    if (p >= late_from) {
      tally(result.fixed_late, attack, rec.fixed_intrusion);
      tally(result.adaptive_late, attack, rec.adaptive_intrusion);
    }
    result.prints.push_back(std::move(rec));
  }

  const engine::DeviceBaseline device =
      engine.baseline_registry()->baseline(model, channel);
  result.baseline_prints = device.prints;
  result.baseline_frozen = device.frozen;
  return result;
}

}  // namespace nsync::eval
