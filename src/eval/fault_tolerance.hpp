// Extension evaluation (beyond the paper): fault tolerance of the fused
// NSYNC/DWM detector under sensor faults.
//
// The paper's evaluation assumes clean sensing; a production IDS does
// not get that luxury.  Two experiments quantify graceful degradation:
//
//  * run_fault_sweep — every test signal of every channel is corrupted by
//    the seeded FaultInjector at increasing fault rates (dropout plus
//    stuck-at and NaN bursts at proportional rates); the sweep records the
//    fused and per-channel confusions, the fraction of windows the
//    pipeline masked out, and whether any non-finite value ever reached a
//    feature array (it must not).
//
//  * run_offline_channel_scenario — one channel flatlines mid-print (a
//    sensor goes dark).  The health state machine must classify it
//    offline, the fusion vote must drop it, and the surviving channels
//    must keep detecting the attack classes.
#ifndef NSYNC_EVAL_FAULT_TOLERANCE_HPP
#define NSYNC_EVAL_FAULT_TOLERANCE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/fusion.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"
#include "eval/setup.hpp"
#include "sensors/fault_injector.hpp"
#include "sensors/side_channel.hpp"

namespace nsync::eval {

/// The sweep's fault regime at sample-fraction `rate`: dropouts consume
/// about `rate` of all samples, stuck-at intervals half that, NaN bursts
/// a quarter (start probabilities are scaled by the mean interval length
/// so `rate` reads as "fraction of samples affected", not "interval
/// starts per sample").
[[nodiscard]] sensors::FaultConfig fault_config_for_rate(double rate);

/// Per-channel outcome of one sweep point.
struct ChannelFaultStats {
  Confusion confusion;              ///< this channel's verdicts alone
  std::size_t invalid_windows = 0;  ///< windows masked out by the pipeline
  std::size_t total_windows = 0;
  std::size_t degraded_runs = 0;  ///< runs ending in health = degraded
  std::size_t offline_runs = 0;   ///< runs ending in health = offline
};

struct FaultSweepPoint {
  double rate = 0.0;
  Confusion fused;  ///< health-aware fused verdicts
  std::map<std::string, ChannelFaultStats> per_channel;
  /// Per-test-run fused anomaly scores with matching ground-truth flags,
  /// in dataset order — raw material for a post-hoc threshold sweep
  /// (TPR-at-matched-FPR comparisons across fusion policies).
  std::vector<double> fused_scores;
  std::vector<std::uint8_t> malicious;
  /// True if any NaN/Inf reached a feature array anywhere — the
  /// degradation chain failed if so.
  bool non_finite_feature = false;
};

struct FaultSweepResult {
  std::vector<FaultSweepPoint> points;
};

/// Fits one fused NSYNC/DWM detector (one member per entry of `data`,
/// trained on the clean training runs) and evaluates the corrupted test
/// set at each rate.  Deterministic for a given (data, rates, seed).
[[nodiscard]] FaultSweepResult run_fault_sweep(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, std::span<const double> rates, std::uint64_t seed,
    core::FusionRule rule = core::FusionRule::kAny, double r = 0.3,
    const core::HealthPolicy& health = {});

/// Policy arm: same sweep, but fusing with an arbitrary FusionPolicy
/// (fitted on the clean training runs by FusionIds::fit, so a
/// WeightedPolicy learns its reliability weights here).  The rule
/// overload above is equivalent to passing a VotingPolicy.
[[nodiscard]] FaultSweepResult run_fault_sweep(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, std::span<const double> rates, std::uint64_t seed,
    std::shared_ptr<core::FusionPolicy> policy, double r = 0.3,
    const core::HealthPolicy& health = {});

/// Outcome of the sensor-goes-dark scenario.
struct OfflineScenarioResult {
  std::string dark_channel;
  std::size_t runs = 0;
  std::size_t dark_offline_runs = 0;  ///< runs where it ended offline
  Confusion fused;                    ///< fused verdicts with it dark
  /// label -> {detected runs, total runs} for each test label.
  std::map<std::string, std::pair<std::size_t, std::size_t>> by_label;
};

/// Flatlines `dark` from `dark_from_fraction` of its frames onward in
/// every test run and evaluates the fused detector on the remaining
/// channels.  `health` should be sized so the flat tail spans well over
/// `offline_consecutive` windows at the channel's hop size.
[[nodiscard]] OfflineScenarioResult run_offline_channel_scenario(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, sensors::SideChannel dark,
    double dark_from_fraction = 0.25,
    core::FusionRule rule = core::FusionRule::kAny, double r = 0.3,
    const core::HealthPolicy& health = {});

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_FAULT_TOLERANCE_HPP
