// Evaluation metrics: FPR / TPR / accuracy as defined in Section VIII-F
// (accuracy = [(1 - FPR) + TPR] / 2 when benign and malicious test sets are
// balanced; we track the full confusion matrix and compute accuracy
// exactly).
#ifndef NSYNC_EVAL_METRICS_HPP
#define NSYNC_EVAL_METRICS_HPP

#include <cstddef>
#include <string>

namespace nsync::eval {

class Confusion {
 public:
  /// Records one test outcome.
  void add(bool predicted_malicious, bool actually_malicious) {
    if (actually_malicious) {
      predicted_malicious ? ++tp_ : ++fn_;
    } else {
      predicted_malicious ? ++fp_ : ++tn_;
    }
  }

  void merge(const Confusion& other) {
    tp_ += other.tp_;
    fp_ += other.fp_;
    tn_ += other.tn_;
    fn_ += other.fn_;
  }

  [[nodiscard]] std::size_t tp() const { return tp_; }
  [[nodiscard]] std::size_t fp() const { return fp_; }
  [[nodiscard]] std::size_t tn() const { return tn_; }
  [[nodiscard]] std::size_t fn() const { return fn_; }
  [[nodiscard]] std::size_t total() const { return tp_ + fp_ + tn_ + fn_; }

  /// False positive rate: FP / (FP + TN); 0 when no benign cases seen.
  [[nodiscard]] double fpr() const {
    const std::size_t n = fp_ + tn_;
    return n > 0 ? static_cast<double>(fp_) / static_cast<double>(n) : 0.0;
  }
  /// True positive rate: TP / (TP + FN); 0 when no malicious cases seen.
  [[nodiscard]] double tpr() const {
    const std::size_t n = tp_ + fn_;
    return n > 0 ? static_cast<double>(tp_) / static_cast<double>(n) : 0.0;
  }
  /// Fraction of correctly classified processes.
  [[nodiscard]] double accuracy() const {
    const std::size_t n = total();
    return n > 0 ? static_cast<double>(tp_ + tn_) / static_cast<double>(n)
                 : 0.0;
  }
  /// The paper's balanced accuracy [(1 - FPR) + TPR] / 2.
  [[nodiscard]] double balanced_accuracy() const {
    return ((1.0 - fpr()) + tpr()) / 2.0;
  }

  /// "FPR / TPR" formatted like the paper's tables.
  [[nodiscard]] std::string fpr_tpr() const;

 private:
  std::size_t tp_ = 0, fp_ = 0, tn_ = 0, fn_ = 0;
};

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_METRICS_HPP
