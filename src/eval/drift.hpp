// Extension experiment: fixed vs drift-adaptive OCC thresholds under
// slow sensor drift.
//
// The paper calibrates thresholds once (Section VII-C) and assumes the
// sensing chain stays put; footnote 2 concedes the side-channel gains are
// "susceptible to changes" from mounting, temperature and aging.  This
// scenario makes that concession measurable: a fleet of sequential prints
// is streamed through a persistent FaultInjector whose deterministic
// gain/offset drift accumulates print over print, and the same corrupted
// streams are scored by two arms —
//
//   * fixed: a fresh RealtimeMonitor per print, armed with the factory
//     calibration forever (the paper's deployment model);
//   * adaptive: a MonitorEngine running the per-device baseline registry,
//     one session per print keyed to the same device, so each benign
//     print's feature maxima fold into the baseline and the *next* print
//     is admitted with drift-adapted thresholds.
//
// Every k-th print is tampered (an unrelated toolpath mid-print), so the
// run also checks that adaptation never buys its false-positive immunity
// by going blind: attacks must alarm in both arms, and attacked prints
// must freeze (not feed) the baseline.  The distance metric is Euclidean
// on purpose — correlation distance is gain/offset-invariant, which would
// hide exactly the drift this experiment studies.
#ifndef NSYNC_EVAL_DRIFT_HPP
#define NSYNC_EVAL_DRIFT_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/discriminator.hpp"
#include "core/fusion.hpp"
#include "engine/baseline_registry.hpp"

namespace nsync::eval {

/// Knobs for one drift scenario run.
struct DriftScenarioConfig {
  /// Sequential prints streamed through the drifting sensor chain.
  std::size_t prints = 24;
  /// Every k-th print (k-1, 2k-1, ...) is tampered; 0 = all benign.
  std::size_t attack_every = 6;
  /// Frames per print (one reference of this length is shared).
  std::size_t frames = 4096;
  /// Benign prints used to learn the factory calibration (undrifted).
  std::size_t train_prints = 4;
  /// OCC margin for the factory calibration (Eq. 28's r).
  double r = 0.3;
  /// Forwarded to FaultConfig: cumulative multiplicative gain per input
  /// frame (aging amplifier) and additive offset per input frame
  /// (temperature).  Both 0 = control run, the arms must agree.
  double gain_drift_per_frame = 0.0;
  double offset_drift_per_frame = 0.0;
  /// Baseline-registry adaptation knobs for the adaptive arm.
  engine::AdaptationPolicy policy;
  /// Fusion policy for the adaptive arm's sessions (null = default
  /// VotingPolicy(kAny)).  The scenario is single-channel, so any sane
  /// policy must agree with the fixed arm in the control run.
  std::shared_ptr<const core::FusionPolicy> fusion;
  std::uint64_t seed = 7;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

/// Outcome of one print in both arms.
struct DriftPrintRecord {
  std::size_t print = 0;
  bool attack = false;
  /// Injector drift state when this print *ended* (factory = 1.0 / 0.0).
  double drift_gain = 1.0;
  double drift_offset = 0.0;
  bool fixed_intrusion = false;
  bool adaptive_intrusion = false;
  /// Thresholds the adaptive arm was armed with for this print.
  core::Thresholds adaptive_thresholds;
};

/// Confusion counts for one arm over a span of prints.
struct DriftArmSummary {
  std::size_t benign_prints = 0;
  std::size_t attack_prints = 0;
  std::size_t false_alarms = 0;  ///< benign prints flagged
  std::size_t detected = 0;      ///< attack prints flagged

  [[nodiscard]] double fpr() const {
    return benign_prints == 0
               ? 0.0
               : static_cast<double>(false_alarms) /
                     static_cast<double>(benign_prints);
  }
  [[nodiscard]] double tpr() const {
    return attack_prints == 0
               ? 1.0
               : static_cast<double>(detected) /
                     static_cast<double>(attack_prints);
  }
};

struct DriftScenarioResult {
  std::vector<DriftPrintRecord> prints;
  /// Whole run.
  DriftArmSummary fixed;
  DriftArmSummary adaptive;
  /// Second half only — where the accumulated drift has fully developed
  /// and the two deployment models diverge.
  DriftArmSummary fixed_late;
  DriftArmSummary adaptive_late;
  /// Registry state after the last print (the adaptive arm's device).
  std::uint64_t baseline_prints = 0;  ///< eligible folds accepted
  std::uint64_t baseline_frozen = 0;  ///< ineligible folds rejected
};

/// Runs the scenario.  Deterministic for a given config.
[[nodiscard]] DriftScenarioResult run_drift_scenario(
    const DriftScenarioConfig& cfg);

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_DRIFT_HPP
