#include "eval/setup.hpp"

#include <algorithm>
#include <stdexcept>

namespace nsync::eval {

std::string printer_name(PrinterKind p) {
  switch (p) {
    case PrinterKind::kUm3: return "UM3";
    case PrinterKind::kRm3: return "RM3";
  }
  return "???";
}

std::string transform_name(Transform t) {
  switch (t) {
    case Transform::kRaw: return "Raw";
    case Transform::kSpectrogram: return "Spectro.";
  }
  return "???";
}

EvalScale EvalScale::quick() { return EvalScale{}; }

EvalScale EvalScale::tiny() {
  EvalScale s;
  s.gear_diameter = 12.0;
  s.object_height = 0.6;  // 3 layers
  s.train_count = 4;
  s.benign_test_count = 4;
  s.malicious_per_attack = 1;
  s.master_rate = 1000.0;
  return s;
}

EvalScale EvalScale::paper() {
  EvalScale s;
  s.gear_diameter = 60.0;
  s.object_height = 7.5;
  s.train_count = 50;
  s.benign_test_count = 100;
  s.malicious_per_attack = 20;
  return s;
}

PrinterSetup make_printer_setup(PrinterKind kind, const EvalScale& scale) {
  PrinterSetup setup;
  setup.kind = kind;
  setup.machine = kind == PrinterKind::kUm3 ? printer::ultimaker3()
                                            : printer::rostock_max_v3();
  gcode::SlicerConfig cfg;
  cfg.object_height = scale.object_height;
  cfg.layer_height = 0.2;  // the paper's default setting
  if (kind == PrinterKind::kRm3) {
    // Delta printers print at the bed center; also MatterSlice profiles run
    // slightly hotter/faster.
    cfg.bed_center_x = 0.0;
    cfg.bed_center_y = 0.0;
    cfg.perimeter_speed = 40.0;
    cfg.infill_speed = 55.0;
  }
  setup.slicer = cfg;
  const double tip_r = scale.gear_diameter / 2.0;
  setup.outline = gcode::gear_outline(14, tip_r * 0.82, tip_r);
  setup.benign_program = gcode::slice(setup.outline, cfg);

  sensors::RigConfig rig;
  rig.acc_rate = eval_channel_rate(sensors::SideChannel::kAcc);
  rig.tmp_rate = eval_channel_rate(sensors::SideChannel::kTmp);
  rig.mag_rate = eval_channel_rate(sensors::SideChannel::kMag);
  rig.aud_rate = eval_channel_rate(sensors::SideChannel::kAud);
  rig.ept_rate = eval_channel_rate(sensors::SideChannel::kEpt);
  rig.pwr_rate = eval_channel_rate(sensors::SideChannel::kPwr);
  setup.rig = rig;
  return setup;
}

double eval_channel_rate(sensors::SideChannel ch) {
  using sensors::SideChannel;
  switch (ch) {
    case SideChannel::kAcc: return 400.0;   // paper: 4000
    case SideChannel::kTmp: return 400.0;   // paper: 4000
    case SideChannel::kMag: return 100.0;   // paper: 100 (kept)
    case SideChannel::kAud: return 4000.0;  // paper: 48000
    case SideChannel::kEpt: return 4000.0;  // paper: 96000
    case SideChannel::kPwr: return 1200.0;  // paper: 12000
  }
  return 0.0;
}

DwmSeconds table4_dwm(PrinterKind p) {
  if (p == PrinterKind::kUm3) {
    return {4.0, 2.0, 2.0, 1.0, 0.1};
  }
  return {1.0, 0.5, 0.1, 0.05, 0.1};
}

core::DwmParams dwm_params_for(PrinterKind p, double sample_rate) {
  const DwmSeconds s = table4_dwm(p);
  core::DwmParams params;
  params.n_win = std::max<std::size_t>(
      4, static_cast<std::size_t>(std::llround(s.t_win * sample_rate)));
  params.n_hop = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(s.t_hop * sample_rate)));
  params.n_hop = std::min(params.n_hop, params.n_win);
  params.n_ext = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(s.t_ext * sample_rate)));
  params.n_sigma = std::max(1.0, s.t_sigma * sample_rate);
  params.eta = s.eta;
  params.validate();
  return params;
}

dsp::StftConfig table3_stft(sensors::SideChannel ch) {
  using sensors::SideChannel;
  dsp::StftConfig cfg;
  cfg.window = dsp::WindowType::kBlackmanHarris;
  switch (ch) {
    case SideChannel::kAcc:
    case SideChannel::kTmp:
      cfg.delta_f = 20.0;
      cfg.delta_t = 1.0 / 80.0;
      break;
    case SideChannel::kMag:
      cfg.delta_f = 5.0;
      cfg.delta_t = 1.0 / 20.0;
      break;
    case SideChannel::kAud:
    case SideChannel::kEpt:
      cfg.delta_f = 120.0;
      cfg.delta_t = 1.0 / 240.0;
      break;
    case SideChannel::kPwr:
      cfg.delta_f = 60.0;
      cfg.delta_t = 1.0 / 120.0;
      cfg.window = dsp::WindowType::kBoxcar;
      break;
  }
  return cfg;
}

}  // namespace nsync::eval
