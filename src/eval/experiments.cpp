#include "eval/experiments.hpp"

#include <chrono>

#include "baselines/bayens.hpp"
#include "baselines/belikovetsky.hpp"
#include "baselines/gao.hpp"
#include "baselines/gatlin.hpp"
#include "baselines/moore.hpp"
#include "runtime/thread_pool.hpp"

namespace nsync::eval {

namespace {
// Prevents the optimizer from discarding timed work.
volatile std::size_t benchmark_sink_ = 0;
}  // namespace

using core::NsyncConfig;
using core::NsyncIds;
using core::SyncMethod;

NsyncResult run_nsync(const ChannelData& data, PrinterKind printer,
                      SyncMethod method, double r, std::size_t dtw_radius) {
  NsyncConfig cfg;
  cfg.sync = method;
  cfg.r = r;
  cfg.dtw_radius = dtw_radius;
  cfg.metric = core::DistanceMetric::kCorrelation;
  if (method == SyncMethod::kDwm) {
    cfg.dwm = dwm_params_for(printer, data.sample_rate);
  }
  NsyncIds ids(data.reference.signal, cfg);

  // analyze() is const and safe to call concurrently (see NsyncIds docs);
  // per-process analyses land in index order, so the learned thresholds
  // and the verdict tally below are identical at any worker count.
  const std::vector<core::Analysis> analyses = runtime::parallel_transform(
      data.train.size(),
      [&](std::size_t i) { return ids.analyze(data.train[i].signal); });
  ids.fit_from_analyses(analyses);

  const std::vector<core::Detection> detections = runtime::parallel_transform(
      data.test.size(), [&](std::size_t i) {
        return ids.detect(ids.analyze(data.test[i].sig.signal));
      });
  NsyncResult out;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    const core::Detection& d = detections[i];
    const bool malicious = data.test[i].malicious;
    out.overall.add(d.intrusion, malicious);
    out.c_disp.add(d.by_c_disp, malicious);
    out.h_dist.add(d.by_h_dist, malicious);
    out.v_dist.add(d.by_v_dist, malicious);
  }
  return out;
}

Confusion run_moore(const ChannelData& data) {
  baselines::MooreIds ids(data.reference.signal, baselines::MooreConfig{});
  std::vector<nsync::signal::Signal> train;
  train.reserve(data.train.size());
  for (const auto& s : data.train) train.push_back(s.signal);
  ids.fit(train);
  const auto verdicts = runtime::parallel_transform(
      data.test.size(),
      [&](std::size_t i) { return ids.detect(data.test[i].sig.signal); });
  Confusion c;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    c.add(verdicts[i], data.test[i].malicious);
  }
  return c;
}

Confusion run_gao(const ChannelData& data) {
  baselines::GaoIds ids(data.reference, baselines::GaoConfig{});
  ids.fit(data.train);
  const auto verdicts = runtime::parallel_transform(
      data.test.size(),
      [&](std::size_t i) { return ids.detect(data.test[i].sig); });
  Confusion c;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    c.add(verdicts[i], data.test[i].malicious);
  }
  return c;
}

BayensResult run_bayens(const ChannelData& data, double window_seconds) {
  baselines::BayensConfig cfg;
  cfg.window_seconds = window_seconds;
  baselines::BayensIds ids(data.reference.signal, cfg);
  std::vector<nsync::signal::Signal> train;
  train.reserve(data.train.size());
  for (const auto& s : data.train) train.push_back(s.signal);
  ids.fit(train);
  const auto detections = runtime::parallel_transform(
      data.test.size(),
      [&](std::size_t i) { return ids.detect(data.test[i].sig.signal); });
  BayensResult out;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    const auto& d = detections[i];
    const bool malicious = data.test[i].malicious;
    out.overall.add(d.intrusion, malicious);
    out.sequence.add(d.by_sequence, malicious);
    out.threshold.add(d.by_threshold, malicious);
  }
  return out;
}

GatlinResult run_gatlin(const ChannelData& data) {
  baselines::GatlinIds ids(data.reference, baselines::GatlinConfig{});
  ids.fit(data.train);
  const auto detections = runtime::parallel_transform(
      data.test.size(),
      [&](std::size_t i) { return ids.detect(data.test[i].sig); });
  GatlinResult out;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    const auto& d = detections[i];
    const bool malicious = data.test[i].malicious;
    out.overall.add(d.intrusion, malicious);
    out.time.add(d.by_time, malicious);
    out.match.add(d.by_match, malicious);
  }
  return out;
}

Confusion run_belikovetsky(const ChannelData& data,
                           double average_seconds) {
  baselines::BelikovetskyConfig cfg;
  cfg.average_seconds = average_seconds;
  baselines::BelikovetskyIds ids(data.reference.signal, cfg);
  const auto verdicts = runtime::parallel_transform(
      data.test.size(),
      [&](std::size_t i) { return ids.detect(data.test[i].sig.signal); });
  Confusion c;
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    c.add(verdicts[i], data.test[i].malicious);
  }
  return c;
}

SyncSpeed measure_sync_speed(const ChannelData& data, PrinterKind printer,
                             std::size_t dtw_radius) {
  SyncSpeed out;
  if (data.test.empty()) return out;
  const auto& observed = data.test.front().sig.signal;
  const auto& reference = data.reference.signal;
  const double signal_seconds = observed.duration();
  if (signal_seconds <= 0.0) return out;

  using Clock = std::chrono::steady_clock;
  {
    const auto params = dwm_params_for(printer, data.sample_rate);
    const auto t0 = Clock::now();
    const auto r = core::DwmSynchronizer::align(observed, reference, params);
    const auto t1 = Clock::now();
    (void)r;
    out.dwm_seconds_per_signal_second =
        std::chrono::duration<double>(t1 - t0).count() / signal_seconds;
  }
  {
    const auto t0 = Clock::now();
    const auto r = core::fast_dtw(observed, reference, dtw_radius,
                                  core::DistanceMetric::kCorrelation);
    const auto t1 = Clock::now();
    (void)r;
    out.dtw_offline_seconds_per_signal_second =
        std::chrono::duration<double>(t1 - t0).count() / signal_seconds;
  }
  {
    // Streaming DTW: re-synchronize the grown prefix each time one DWM hop
    // of new samples arrives, as a real-time deployment must.
    const auto params = dwm_params_for(printer, data.sample_rate);
    const auto t0 = Clock::now();
    for (std::size_t end = params.n_win; end <= observed.frames();
         end += params.n_hop) {
      const auto prefix = nsync::signal::SignalView(observed).slice(0, end);
      const std::size_t ref_end =
          std::min(reference.frames(), end + params.n_ext);
      const auto ref_prefix =
          nsync::signal::SignalView(reference).slice(0, ref_end);
      const auto r = core::fast_dtw(prefix, ref_prefix, dtw_radius,
                                    core::DistanceMetric::kCorrelation);
      benchmark_sink_ = benchmark_sink_ + r.path.size();
    }
    const auto t1 = Clock::now();
    out.dtw_seconds_per_signal_second =
        std::chrono::duration<double>(t1 - t0).count() / signal_seconds;
  }
  return out;
}

const std::vector<sensors::SideChannel>& retained_channels() {
  static const std::vector<sensors::SideChannel> kRetained = {
      sensors::SideChannel::kAcc, sensors::SideChannel::kMag,
      sensors::SideChannel::kAud, sensors::SideChannel::kEpt};
  return kRetained;
}

const std::vector<sensors::SideChannel>& table_channels() {
  return retained_channels();
}

bool is_retained(sensors::SideChannel ch, Transform t) {
  if (ch == sensors::SideChannel::kTmp || ch == sensors::SideChannel::kPwr) {
    return false;
  }
  if (ch == sensors::SideChannel::kEpt && t == Transform::kRaw) {
    return false;  // Section VIII-B drops the raw EPT signal
  }
  return true;
}

}  // namespace nsync::eval
