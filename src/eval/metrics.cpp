#include "eval/metrics.hpp"

#include <cstdio>

namespace nsync::eval {

std::string Confusion::fpr_tpr() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f/%.2f", fpr(), tpr());
  return buf;
}

}  // namespace nsync::eval
