// Minimal fixed-width ASCII table printer used by the experiment binaries
// to render the paper's tables.
#ifndef NSYNC_EVAL_TABLE_HPP
#define NSYNC_EVAL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace nsync::eval {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders with column auto-sizing and a header rule.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
[[nodiscard]] std::string fmt(double value, int digits = 2);

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_TABLE_HPP
