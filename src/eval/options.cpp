#include "eval/options.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "runtime/thread_pool.hpp"

namespace nsync::eval {

namespace {

std::uint64_t parse_u64(std::string_view flag, const char* value) {
  if (value == nullptr) {
    throw std::invalid_argument(std::string(flag) + ": missing value");
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  // strtoull silently wraps a leading '-' to a huge value; reject it.
  if (value[0] == '-' || end == value || *end != '\0') {
    throw std::invalid_argument(std::string(flag) + ": bad number '" +
                                value + "'");
  }
  return v;
}

}  // namespace

CliOptions CliOptions::parse(int argc, const char* const* argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--paper-scale") {
      opt.scale = EvalScale::paper();
    } else if (arg == "--tiny") {
      opt.scale = EvalScale::tiny();
    } else if (arg == "--seed") {
      opt.scale.seed = parse_u64(arg, next());
    } else if (arg == "--train") {
      opt.scale.train_count = parse_u64(arg, next());
    } else if (arg == "--benign") {
      opt.scale.benign_test_count = parse_u64(arg, next());
    } else if (arg == "--attacks") {
      opt.scale.malicious_per_attack = parse_u64(arg, next());
    } else if (arg == "--threads") {
      opt.threads = parse_u64(arg, next());
    } else if (arg == "--printer") {
      const char* v = next();
      if (v == nullptr) {
        throw std::invalid_argument("--printer: missing value");
      }
      const std::string_view p = v;
      if (p == "UM3" || p == "um3") {
        opt.printers = {PrinterKind::kUm3};
      } else if (p == "RM3" || p == "rm3") {
        opt.printers = {PrinterKind::kRm3};
      } else if (p == "both") {
        opt.printers = {PrinterKind::kUm3, PrinterKind::kRm3};
      } else {
        throw std::invalid_argument("--printer: expected UM3, RM3 or both");
      }
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else {
      throw std::invalid_argument("unknown flag '" + std::string(arg) +
                                  "' (try --help)");
    }
  }
  return opt;
}

void CliOptions::configure_runtime() const {
  nsync::runtime::set_worker_count(threads);
}

std::string CliOptions::usage(const std::string& program) {
  return "usage: " + program +
         " [--paper-scale | --tiny] [--seed N] [--train N] [--benign N]\n"
         "       [--attacks N] [--printer UM3|RM3|both] [--threads N]\n"
         "       [--verbose]\n"
         "\n"
         "Regenerates one of the paper's tables/figures on the synthetic\n"
         "printer testbed.  Defaults use a reduced dataset that finishes in\n"
         "minutes; --paper-scale restores Table I repetition counts.\n"
         "--threads N sizes the parallel runtime pool (0 = automatic: the\n"
         "NSYNC_THREADS environment variable when set, else all cores).\n";
}

}  // namespace nsync::eval
