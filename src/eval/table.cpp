#include "eval/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace nsync::eval {

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << '\n';
  };
  line(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) line(r);
}

std::string fmt(double value, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace nsync::eval
