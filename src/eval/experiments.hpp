// Experiment runners: one function per IDS evaluation, shared by the bench
// binaries that regenerate the paper's tables and figures.
#ifndef NSYNC_EVAL_EXPERIMENTS_HPP
#define NSYNC_EVAL_EXPERIMENTS_HPP

#include <map>
#include <string>
#include <vector>

#include "core/nsync.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"
#include "eval/setup.hpp"

namespace nsync::eval {

/// NSYNC result: the overall confusion plus each sub-module used alone
/// (the "Individual Sub-Module Results" columns of Tables VIII/IX).
struct NsyncResult {
  Confusion overall;
  Confusion c_disp;
  Confusion h_dist;
  Confusion v_dist;
};

/// Runs NSYNC with the given synchronizer over one (channel, transform)
/// slice: fit on train, evaluate on test.  `r` is the OCC margin
/// (the paper uses 0.3 for NSYNC).
[[nodiscard]] NsyncResult run_nsync(const ChannelData& data,
                                    PrinterKind printer,
                                    core::SyncMethod method, double r = 0.3,
                                    std::size_t dtw_radius = 1);

/// Moore's IDS (Table V).
[[nodiscard]] Confusion run_moore(const ChannelData& data);

/// Gao's IDS (Table V).
[[nodiscard]] Confusion run_gao(const ChannelData& data);

/// Bayens' IDS (Table VI): overall plus per-sub-module confusions.
struct BayensResult {
  Confusion overall;
  Confusion sequence;
  Confusion threshold;
};
[[nodiscard]] BayensResult run_bayens(const ChannelData& data,
                                      double window_seconds);

/// Gatlin's IDS (Table VII): overall plus per-sub-module confusions.
struct GatlinResult {
  Confusion overall;
  Confusion time;
  Confusion match;
};
[[nodiscard]] GatlinResult run_gatlin(const ChannelData& data);

/// Belikovetsky's IDS (Section VIII-C text result).  `average_seconds`
/// scales the original 5 s moving-average window to the synthetic print
/// length (pass 5.0 at paper scale).
[[nodiscard]] Confusion run_belikovetsky(const ChannelData& data,
                                         double average_seconds = 5.0);

/// Wall-clock cost of synchronizing one second of signal with each method
/// (Fig. 11's "time ratio").
///
/// DWM is causal: streaming the signal through it costs the same as one
/// offline pass, so the streaming figure IS the offline figure.  DTW is
/// not causal — a real-time IDS must re-run it on the grown prefix every
/// time a hop of new data arrives (online DTW is cited as immature in
/// Section VI-A), which is what `dtw_seconds_per_signal_second` measures.
/// `dtw_offline_seconds_per_signal_second` is the cost of a single
/// after-the-fact pass, reported for transparency.
struct SyncSpeed {
  double dwm_seconds_per_signal_second = 0.0;
  double dtw_seconds_per_signal_second = 0.0;
  double dtw_offline_seconds_per_signal_second = 0.0;
};
[[nodiscard]] SyncSpeed measure_sync_speed(const ChannelData& data,
                                           PrinterKind printer,
                                           std::size_t dtw_radius = 1);

/// The side channels the evaluation keeps after Fig. 10 (Section VIII-B
/// drops TMP and PWR entirely and the raw transform of EPT).
[[nodiscard]] const std::vector<sensors::SideChannel>& retained_channels();

/// The channel rows of Tables V/VII/VIII/IX: ACC, MAG, AUD, EPT (EPT's raw
/// transform is shown greyed in the paper but still evaluated).
[[nodiscard]] const std::vector<sensors::SideChannel>& table_channels();

/// True when (ch, transform) is evaluated in Tables V-IX (excludes raw
/// EPT).
[[nodiscard]] bool is_retained(sensors::SideChannel ch, Transform t);

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_EXPERIMENTS_HPP
