#include "eval/dataset.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

#include "dsp/stft.hpp"
#include "printer/simulator.hpp"
#include "runtime/thread_pool.hpp"
#include "sensors/rig.hpp"

namespace nsync::eval {

using nsync::signal::Rng;
using nsync::signal::Signal;

namespace {

struct ProcessSpec {
  std::string label;
  bool malicious = false;
  const gcode::Program* program = nullptr;
  std::uint64_t seed = 0;
};

ProcessSignals simulate_process(const ProcessSpec& spec,
                                const PrinterSetup& setup,
                                const EvalScale& scale,
                                const std::vector<sensors::SideChannel>& chs) {
  printer::ExecutorConfig exec;
  exec.sample_rate = scale.master_rate;
  printer::MotionTrace trace =
      printer::simulate_print(*spec.program, setup.machine, exec, spec.seed);
  // Start every signal "at the beginning of the printing process" (first
  // deposition layer) with a small residual alignment error, as the paper
  // assumes approximate-but-imperfect initial alignment.
  {
    Rng align_rng(spec.seed ^ 0x0A11C4E7);
    const double pre_roll =
        0.25 + std::abs(align_rng.normal(
                   0.0, setup.machine.time_noise.start_offset_std));
    trace = printer::trim_to_first_layer(trace, pre_roll);
  }

  ProcessSignals out;
  out.label = spec.label;
  out.malicious = spec.malicious;
  for (const auto& ev : trace.layer_events) {
    out.layer_times.push_back(ev.time);
  }
  const sensors::SensorRig rig(setup.machine, setup.rig);
  Rng rng(spec.seed ^ 0xABCDEF0123456789ULL);
  for (sensors::SideChannel ch : chs) {
    Rng child = rng.fork();
    out.raw.emplace(ch, rig.render(ch, trace, child));
  }
  return out;
}

}  // namespace

Dataset::Dataset(PrinterKind kind, const EvalScale& scale,
                 std::vector<sensors::SideChannel> channels,
                 ProgressFn progress)
    : kind_(kind),
      scale_(scale),
      setup_(make_printer_setup(kind, scale)),
      channels_(std::move(channels)) {
  if (channels_.empty()) {
    throw std::invalid_argument("Dataset: no side channels requested");
  }

  // Build the program roster: the benign program plus one program per
  // attack (Table I).
  std::vector<gcode::Program> attack_programs;
  attack_programs.reserve(gcode::all_attacks().size());
  for (gcode::AttackType a : gcode::all_attacks()) {
    attack_programs.push_back(gcode::apply_attack(
        a, setup_.benign_program, setup_.outline, setup_.slicer));
  }

  std::vector<ProcessSpec> specs;
  std::uint64_t seq = 0;
  auto add = [&](const std::string& label, bool malicious,
                 const gcode::Program* prog) {
    // Golden-ratio hashing decorrelates consecutive process seeds.
    const std::uint64_t seed =
        scale_.seed * 0x9E3779B97F4A7C15ULL + (++seq) * 0xD1B54A32D192ED03ULL;
    specs.push_back({label, malicious, prog, seed});
  };

  add("Reference", false, &setup_.benign_program);
  for (std::size_t i = 0; i < scale_.train_count; ++i) {
    add("Benign", false, &setup_.benign_program);
  }
  for (std::size_t i = 0; i < scale_.benign_test_count; ++i) {
    add("Benign", false, &setup_.benign_program);
  }
  for (std::size_t a = 0; a < attack_programs.size(); ++a) {
    const std::string name = gcode::attack_name(gcode::all_attacks()[a]);
    for (std::size_t i = 0; i < scale_.malicious_per_attack; ++i) {
      add(name, true, &attack_programs[a]);
    }
  }

  // Processes are embarrassingly parallel: every spec carries its own
  // decorrelated seed, so results[i] depends only on specs[i] and the
  // roster is bitwise identical at any worker count.  Progress is
  // reported under a mutex with a monotone completion counter (see the
  // ProgressFn contract in dataset.hpp).
  std::vector<ProcessSignals> results(specs.size());
  std::mutex progress_mu;
  std::size_t done = 0;
  runtime::parallel_for(0, specs.size(), [&](std::size_t i) {
    ProcessSignals p = simulate_process(specs[i], setup_, scale_, channels_);
    std::lock_guard<std::mutex> lock(progress_mu);
    results[i] = std::move(p);
    if (progress) progress(++done, specs.size());
  });

  reference_ = std::move(results[0]);
  train_.reserve(scale_.train_count);
  test_.reserve(results.size() - 1 - scale_.train_count);
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (i <= scale_.train_count) {
      train_.push_back(std::move(results[i]));
    } else {
      test_.push_back(std::move(results[i]));
    }
  }
}

LayeredSignal Dataset::layered(const ProcessSignals& p,
                               sensors::SideChannel ch,
                               Transform transform) const {
  const auto it = p.raw.find(ch);
  if (it == p.raw.end()) {
    throw std::invalid_argument("Dataset::layered: channel not rendered");
  }
  LayeredSignal out;
  out.layer_times = p.layer_times;
  if (transform == Transform::kRaw) {
    out.signal = it->second;
  } else {
    out.signal = dsp::spectrogram(it->second, table3_stft(ch));
  }
  return out;
}

ChannelData Dataset::channel_data(sensors::SideChannel ch,
                                  Transform transform) const {
  ChannelData data;
  data.reference = layered(reference_, ch, transform);
  data.sample_rate = data.reference.signal.sample_rate();
  // Spectrogram transforms dominate here; each process converts
  // independently, so fan the train/test rosters out across the pool.
  data.train = runtime::parallel_transform(
      train_.size(),
      [&](std::size_t i) { return layered(train_[i], ch, transform); });
  data.test = runtime::parallel_transform(test_.size(), [&](std::size_t i) {
    return TestSignal{layered(test_[i], ch, transform), test_[i].label,
                      test_[i].malicious};
  });
  return data;
}

}  // namespace nsync::eval
