// Shared command-line options for the experiment binaries.
#ifndef NSYNC_EVAL_OPTIONS_HPP
#define NSYNC_EVAL_OPTIONS_HPP

#include <string>
#include <vector>

#include "eval/setup.hpp"

namespace nsync::eval {

struct CliOptions {
  EvalScale scale = EvalScale::quick();
  std::vector<PrinterKind> printers = {PrinterKind::kUm3, PrinterKind::kRm3};
  /// Worker threads for the runtime pool; 0 = automatic (the
  /// NSYNC_THREADS environment variable when set, otherwise the
  /// hardware concurrency).
  std::size_t threads = 0;
  bool verbose = false;
  bool help = false;

  /// Parses common flags:
  ///   --paper-scale      Table I repetition counts (slow)
  ///   --tiny             minimal dataset (CI smoke)
  ///   --seed N           master dataset seed
  ///   --train N          benign training runs
  ///   --benign N         benign test runs
  ///   --attacks N        runs per attack type
  ///   --printer UM3|RM3  restrict to one printer
  ///   --threads N        runtime pool workers (0 = auto)
  ///   --verbose          progress output
  ///   --help             usage
  /// Throws std::invalid_argument on malformed flags.
  [[nodiscard]] static CliOptions parse(int argc, const char* const* argv);

  /// Applies `threads` to the global runtime pool
  /// (runtime::set_worker_count).  Every bench binary calls this right
  /// after parse(), before any dataset or experiment work starts.
  void configure_runtime() const;

  /// Usage text for --help.
  [[nodiscard]] static std::string usage(const std::string& program);
};

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_OPTIONS_HPP
