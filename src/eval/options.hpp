// Shared command-line options for the experiment binaries.
#ifndef NSYNC_EVAL_OPTIONS_HPP
#define NSYNC_EVAL_OPTIONS_HPP

#include <string>
#include <vector>

#include "eval/setup.hpp"

namespace nsync::eval {

struct CliOptions {
  EvalScale scale = EvalScale::quick();
  std::vector<PrinterKind> printers = {PrinterKind::kUm3, PrinterKind::kRm3};
  bool verbose = false;
  bool help = false;

  /// Parses common flags:
  ///   --paper-scale      Table I repetition counts (slow)
  ///   --tiny             minimal dataset (CI smoke)
  ///   --seed N           master dataset seed
  ///   --train N          benign training runs
  ///   --benign N         benign test runs
  ///   --attacks N        runs per attack type
  ///   --printer UM3|RM3  restrict to one printer
  ///   --verbose          progress output
  ///   --help             usage
  /// Throws std::invalid_argument on malformed flags.
  [[nodiscard]] static CliOptions parse(int argc, const char* const* argv);

  /// Usage text for --help.
  [[nodiscard]] static std::string usage(const std::string& program);
};

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_OPTIONS_HPP
