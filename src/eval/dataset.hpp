// Synthetic dataset generation following Table I: one reference process,
// `train_count` benign training processes, `benign_test_count` benign test
// processes and `malicious_per_attack` runs of each of the five attacks —
// all simulated with independent time-noise realizations on the selected
// printer, with every requested side channel rendered from the same
// per-process motion trace (as a physical rig would).
#ifndef NSYNC_EVAL_DATASET_HPP
#define NSYNC_EVAL_DATASET_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baselines/gao.hpp"
#include "eval/setup.hpp"
#include "sensors/side_channel.hpp"
#include "signal/signal.hpp"

namespace nsync::eval {

using baselines::LayeredSignal;

/// One simulated printing process: every requested side channel rendered
/// from the same motion trace, plus the layer ground truth.
struct ProcessSignals {
  std::string label;  ///< "Benign" or a Table I attack name
  bool malicious = false;
  std::map<sensors::SideChannel, nsync::signal::Signal> raw;
  std::vector<double> layer_times;  ///< seconds of each layer start
};

/// A labelled test case for one (channel, transform) slice of the dataset.
struct TestSignal {
  LayeredSignal sig;
  std::string label;
  bool malicious = false;
};

/// Per-(channel, transform) view of the dataset, ready for an IDS.
struct ChannelData {
  LayeredSignal reference;
  std::vector<LayeredSignal> train;
  std::vector<TestSignal> test;
  double sample_rate = 0.0;
};

/// Fully materialized dataset for one printer.
class Dataset {
 public:
  /// Progress callback contract: construction simulates processes on the
  /// global runtime pool (runtime::parallel_for), and the callback is
  /// invoked once per completed process from whichever worker finished
  /// it.  Invocations are serialized under an internal mutex and `done`
  /// is strictly monotone (1, 2, ..., total), so the callback itself
  /// needs no locking — but it must not re-enter the Dataset under
  /// construction and should stay cheap, as it briefly holds up other
  /// workers' completion reports.
  using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

  /// Simulates the whole Table I roster on `kind`.  `channels` limits the
  /// side channels rendered (fewer channels = less memory/time).
  /// Processes are simulated concurrently on the global runtime pool;
  /// each process owns a decorrelated per-spec seed, so the resulting
  /// signals are bitwise identical at any worker count (including 1).
  Dataset(PrinterKind kind, const EvalScale& scale,
          std::vector<sensors::SideChannel> channels,
          ProgressFn progress = nullptr);

  [[nodiscard]] PrinterKind printer() const { return kind_; }
  [[nodiscard]] const EvalScale& scale() const { return scale_; }
  [[nodiscard]] const PrinterSetup& setup() const { return setup_; }
  [[nodiscard]] const ProcessSignals& reference() const { return reference_; }
  [[nodiscard]] const std::vector<ProcessSignals>& train() const {
    return train_;
  }
  [[nodiscard]] const std::vector<ProcessSignals>& test() const {
    return test_;
  }
  [[nodiscard]] const std::vector<sensors::SideChannel>& channels() const {
    return channels_;
  }

  /// Extracts the (channel, transform) slice used by the IDS evaluations.
  /// Spectrograms are computed on the fly with the Table III settings.
  [[nodiscard]] ChannelData channel_data(sensors::SideChannel ch,
                                         Transform transform) const;

  /// Converts one stored process into a LayeredSignal for (ch, transform).
  [[nodiscard]] LayeredSignal layered(const ProcessSignals& p,
                                      sensors::SideChannel ch,
                                      Transform transform) const;

 private:
  PrinterKind kind_;
  EvalScale scale_;
  PrinterSetup setup_;
  std::vector<sensors::SideChannel> channels_;
  ProcessSignals reference_;
  std::vector<ProcessSignals> train_;
  std::vector<ProcessSignals> test_;
};

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_DATASET_HPP
