#include "eval/fault_tolerance.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace nsync::eval {

namespace {

using nsync::signal::Signal;

/// One evaluated test run: the fused verdict plus per-channel window
/// statistics, keyed by channel name in member order.
struct RunOutcome {
  core::FusionDetection detection;
  std::map<std::string, std::pair<std::size_t, std::size_t>> windows;
  bool non_finite = false;
};

bool features_finite(const core::DetectionFeatures& f) {
  auto all_finite = [](const std::vector<double>& v) {
    for (double x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  return all_finite(f.c_disp) && all_finite(f.h_dist_f) &&
         all_finite(f.v_dist_f);
}

std::size_t count_invalid(const std::vector<std::uint8_t>& valid) {
  std::size_t n = 0;
  for (std::uint8_t v : valid) {
    if (v == 0) ++n;
  }
  return n;
}

/// Builds and fits the fused detector: one NSYNC/DWM member per channel,
/// trained on the clean training runs.  fit() also trains the fusion
/// policy (a WeightedPolicy learns its reliability weights here).
core::FusionIds build_fused(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, std::shared_ptr<core::FusionPolicy> policy, double r,
    const core::HealthPolicy& health) {
  if (data.empty()) {
    throw std::invalid_argument("fault_tolerance: no channels");
  }
  core::FusionIds fused(std::move(policy));
  const std::size_t n_train = data.begin()->second.train.size();
  for (const auto& [ch, cd] : data) {
    if (cd.train.size() != n_train) {
      throw std::invalid_argument(
          "fault_tolerance: channels disagree on training run count");
    }
    core::NsyncConfig cfg;
    cfg.sync = core::SyncMethod::kDwm;
    cfg.dwm = dwm_params_for(printer, cd.sample_rate);
    cfg.r = r;
    cfg.health = health;
    fused.add_channel(sensors::side_channel_name(ch), cd.reference.signal,
                      cfg);
  }
  std::vector<core::FusionIds::SignalMap> train(n_train);
  for (const auto& [ch, cd] : data) {
    for (std::size_t i = 0; i < n_train; ++i) {
      train[i][sensors::side_channel_name(ch)] = cd.train[i].signal;
    }
  }
  fused.fit(train);
  return fused;
}

std::size_t checked_test_count(
    const std::map<sensors::SideChannel, ChannelData>& data) {
  const std::size_t n = data.begin()->second.test.size();
  for (const auto& [ch, cd] : data) {
    if (cd.test.size() != n) {
      throw std::invalid_argument(
          "fault_tolerance: channels disagree on test run count");
    }
  }
  return n;
}

/// Decorrelated per-(point, run, channel) injector seed.
std::uint64_t fault_seed(std::uint64_t master, std::size_t point,
                         std::size_t run, std::size_t channel) {
  std::uint64_t x = master + 0x9e3779b97f4a7c15ULL * (point + 1);
  x ^= 0xbf58476d1ce4e5b9ULL * (run + 1);
  x ^= 0x94d049bb133111ebULL * (channel + 1);
  return x;
}

}  // namespace

sensors::FaultConfig fault_config_for_rate(double rate) {
  if (rate < 0.0) {
    throw std::invalid_argument("fault_config_for_rate: rate must be >= 0");
  }
  sensors::FaultConfig cfg;
  // Start probabilities are scaled by the mean interval length so `rate`
  // reads as the expected fraction of samples inside a fault interval.
  cfg.dropout_frames_mean = 8.0;
  cfg.dropout_rate = rate / cfg.dropout_frames_mean;
  cfg.stuck_frames_mean = 16.0;
  cfg.stuck_rate = (rate / 2.0) / cfg.stuck_frames_mean;
  cfg.nan_burst_frames_mean = 4.0;
  cfg.nan_burst_rate = (rate / 4.0) / cfg.nan_burst_frames_mean;
  cfg.validate();
  return cfg;
}

FaultSweepResult run_fault_sweep(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, std::span<const double> rates, std::uint64_t seed,
    core::FusionRule rule, double r, const core::HealthPolicy& health) {
  return run_fault_sweep(data, printer, rates, seed,
                         std::make_shared<core::VotingPolicy>(rule), r,
                         health);
}

FaultSweepResult run_fault_sweep(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, std::span<const double> rates, std::uint64_t seed,
    std::shared_ptr<core::FusionPolicy> policy, double r,
    const core::HealthPolicy& health) {
  const core::FusionIds fused =
      build_fused(data, printer, std::move(policy), r, health);
  const std::size_t n_test = checked_test_count(data);
  const auto& labels = data.begin()->second.test;

  FaultSweepResult result;
  for (std::size_t p = 0; p < rates.size(); ++p) {
    const sensors::FaultConfig cfg = fault_config_for_rate(rates[p]);
    const auto outcomes =
        runtime::parallel_transform(n_test, [&](std::size_t i) {
          RunOutcome o;
          std::map<std::string, core::Analysis> analyses;
          std::size_t ch_idx = 0;
          for (const auto& [ch, cd] : data) {
            const std::string name = sensors::side_channel_name(ch);
            sensors::FaultInjector inj(cfg, fault_seed(seed, p, i, ch_idx));
            const Signal faulted = inj.apply(cd.test[i].sig.signal);
            core::Analysis an = fused.member(name).analyze(faulted);
            if (!features_finite(an.features)) o.non_finite = true;
            o.windows[name] = {count_invalid(an.valid), an.valid.size()};
            analyses.emplace(name, std::move(an));
            ++ch_idx;
          }
          o.detection = fused.detect_analyses(analyses);
          return o;
        });

    FaultSweepPoint pt;
    pt.rate = rates[p];
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const RunOutcome& o = outcomes[i];
      const bool malicious = labels[i].malicious;
      pt.fused.add(o.detection.intrusion, malicious);
      pt.fused_scores.push_back(o.detection.fused_score);
      pt.malicious.push_back(malicious ? 1 : 0);
      pt.non_finite_feature = pt.non_finite_feature || o.non_finite;
      for (const auto& [name, d] : o.detection.per_channel) {
        pt.per_channel[name].confusion.add(d.intrusion, malicious);
      }
      for (const auto& [name, h] : o.detection.health) {
        if (h == core::ChannelHealth::kDegraded) {
          ++pt.per_channel[name].degraded_runs;
        } else if (h == core::ChannelHealth::kOffline) {
          ++pt.per_channel[name].offline_runs;
        }
      }
      for (const auto& [name, w] : o.windows) {
        pt.per_channel[name].invalid_windows += w.first;
        pt.per_channel[name].total_windows += w.second;
      }
    }
    result.points.push_back(std::move(pt));
  }
  return result;
}

OfflineScenarioResult run_offline_channel_scenario(
    const std::map<sensors::SideChannel, ChannelData>& data,
    PrinterKind printer, sensors::SideChannel dark, double dark_from_fraction,
    core::FusionRule rule, double r, const core::HealthPolicy& health) {
  if (dark_from_fraction < 0.0 || dark_from_fraction > 1.0) {
    throw std::invalid_argument(
        "run_offline_channel_scenario: dark_from_fraction must be in [0, 1]");
  }
  if (!data.contains(dark)) {
    throw std::invalid_argument(
        "run_offline_channel_scenario: dark channel not in data");
  }
  const core::FusionIds fused = build_fused(
      data, printer, std::make_shared<core::VotingPolicy>(rule), r, health);
  const std::size_t n_test = checked_test_count(data);
  const auto& labels = data.begin()->second.test;
  const std::string dark_name = sensors::side_channel_name(dark);

  struct DarkOutcome {
    core::FusionDetection detection;
    core::ChannelHealth dark_health = core::ChannelHealth::kHealthy;
  };
  const auto outcomes =
      runtime::parallel_transform(n_test, [&](std::size_t i) {
        DarkOutcome o;
        std::map<std::string, core::Analysis> analyses;
        for (const auto& [ch, cd] : data) {
          const std::string name = sensors::side_channel_name(ch);
          const auto& sig = cd.test[i].sig.signal;
          core::Analysis an;
          if (ch == dark) {
            const std::size_t from = static_cast<std::size_t>(
                static_cast<double>(sig.frames()) * dark_from_fraction);
            const Signal flat = sensors::flatline_from(sig, from);
            an = fused.member(name).analyze(flat);
          } else {
            an = fused.member(name).analyze(sig);
          }
          analyses.emplace(name, std::move(an));
        }
        o.detection = fused.detect_analyses(analyses);
        for (const auto& [name, h] : o.detection.health) {
          if (name == dark_name) o.dark_health = h;
        }
        return o;
      });

  OfflineScenarioResult out;
  out.dark_channel = dark_name;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const DarkOutcome& o = outcomes[i];
    ++out.runs;
    if (o.dark_health == core::ChannelHealth::kOffline) {
      ++out.dark_offline_runs;
    }
    out.fused.add(o.detection.intrusion, labels[i].malicious);
    auto& [detected, total] = out.by_label[labels[i].label];
    if (o.detection.intrusion) ++detected;
    ++total;
  }
  return out;
}

}  // namespace nsync::eval
