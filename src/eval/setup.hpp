// Experiment setup: the two printers of Section VIII-A with their slicing
// profiles, Table IV DWM parameters, Table III spectrogram settings, and
// the scaled sensor rates used by the synthetic evaluation.
#ifndef NSYNC_EVAL_SETUP_HPP
#define NSYNC_EVAL_SETUP_HPP

#include <cstdint>
#include <string>

#include "core/dwm.hpp"
#include "dsp/stft.hpp"
#include "gcode/attacks.hpp"
#include "gcode/slicer.hpp"
#include "printer/machine.hpp"
#include "sensors/rig.hpp"

namespace nsync::eval {

enum class PrinterKind { kUm3, kRm3 };

[[nodiscard]] std::string printer_name(PrinterKind p);

/// Raw signal or Table III spectrogram.
enum class Transform { kRaw, kSpectrogram };

[[nodiscard]] std::string transform_name(Transform t);

/// Scale of the synthetic evaluation.  The paper prints a 60 mm x 7.5 mm
/// gear 151+100 times per printer over weeks of machine time; the defaults
/// here shrink the object and the repetition counts so the full suite runs
/// in minutes, while `paper()` restores Table I counts.
struct EvalScale {
  double gear_diameter = 18.0;       ///< mm (paper: 60)
  double object_height = 1.2;        ///< mm (paper: 7.5)
  std::size_t train_count = 10;      ///< benign runs for OCC (paper: 50)
  std::size_t benign_test_count = 20;   ///< (paper: 100)
  std::size_t malicious_per_attack = 4; ///< (paper: 20)
  std::uint64_t seed = 42;           ///< master seed for the whole dataset
  double master_rate = 1500.0;       ///< executor trace rate (Hz)

  [[nodiscard]] static EvalScale quick();  ///< the defaults above
  [[nodiscard]] static EvalScale tiny();   ///< for unit/integration tests
  [[nodiscard]] static EvalScale paper();  ///< Table I repetition counts
};

/// Everything needed to simulate one printer's processes.
struct PrinterSetup {
  PrinterKind kind = PrinterKind::kUm3;
  printer::MachineConfig machine;
  gcode::SlicerConfig slicer;
  gcode::Polygon outline;
  gcode::Program benign_program;
  sensors::RigConfig rig;
};

/// Builds the printer setup (machine + sliced benign program + sensor rig)
/// for `kind` at the given scale.
[[nodiscard]] PrinterSetup make_printer_setup(PrinterKind kind,
                                              const EvalScale& scale);

/// Scaled sensor sampling rate used by the evaluation for each channel
/// (paper rates in side_channel_paper_rate; see DESIGN.md for the scaling
/// rationale).
[[nodiscard]] double eval_channel_rate(sensors::SideChannel ch);

/// Table IV DWM parameters (in seconds) for each printer.
struct DwmSeconds {
  double t_win = 0.0;
  double t_hop = 0.0;
  double t_ext = 0.0;
  double t_sigma = 0.0;
  double eta = 0.0;
};

[[nodiscard]] DwmSeconds table4_dwm(PrinterKind p);

/// Table IV parameters converted to samples at `sample_rate`, with floors
/// applied so low-rate channels (e.g. MAG spectrograms) stay valid.
[[nodiscard]] core::DwmParams dwm_params_for(PrinterKind p,
                                             double sample_rate);

/// Table III spectrogram configuration for each side channel.
[[nodiscard]] dsp::StftConfig table3_stft(sensors::SideChannel ch);

}  // namespace nsync::eval

#endif  // NSYNC_EVAL_SETUP_HPP
