// Tests for the five prior-work IDS baselines on controlled synthetic
// signals (the full printer-level comparison lives in the bench binaries).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "baselines/bayens.hpp"
#include "baselines/belikovetsky.hpp"
#include "baselines/gao.hpp"
#include "baselines/gatlin.hpp"
#include "baselines/moore.hpp"
#include "signal/rng.hpp"

namespace nsync::baselines {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

Signal smooth_noise(std::size_t frames, std::size_t channels,
                    std::uint64_t seed, double fs = 100.0) {
  Rng rng(seed);
  Signal s(frames, channels, fs);
  std::vector<double> lp(channels, 0.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      lp[c] += 0.4 * (rng.normal() - lp[c]);
      s(n, c) = lp[c];
    }
  }
  return s;
}

Signal add_noise(const Signal& s, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  Signal out = s;
  for (std::size_t n = 0; n < out.frames(); ++n) {
    for (std::size_t c = 0; c < out.channels(); ++c) {
      out(n, c) += rng.normal(0.0, sigma);
    }
  }
  return out;
}

Signal shift(const Signal& s, std::size_t by) {
  Signal out(s.frames() - by, s.channels(), s.sample_rate());
  for (std::size_t n = 0; n < out.frames(); ++n) {
    for (std::size_t c = 0; c < s.channels(); ++c) {
      out(n, c) = s(n + by, c);
    }
  }
  return out;
}

// ---------------------------------------------------------------- Moore --

TEST(Moore, DetectsAmplitudeTamperOnAlignedSignals) {
  const Signal ref = smooth_noise(800, 2, 1);
  MooreIds ids(ref, MooreConfig{});
  std::vector<Signal> train;
  for (std::uint64_t s = 0; s < 5; ++s) {
    train.push_back(add_noise(ref, 0.02, 10 + s));
  }
  ids.fit(train);
  EXPECT_FALSE(ids.detect(add_noise(ref, 0.02, 99)));
  // Tamper: double the amplitude of a section.
  Signal bad = add_noise(ref, 0.02, 98);
  for (std::size_t n = 300; n < 500; ++n) {
    for (std::size_t c = 0; c < 2; ++c) bad(n, c) *= 3.0;
  }
  EXPECT_TRUE(ids.detect(bad));
}

TEST(Moore, TimeNoiseCausesFalseAlarm) {
  // The paper's core claim: an unsynchronized point-by-point comparison
  // false-alarms on a benign signal that merely shifted in time.
  const Signal ref = smooth_noise(800, 2, 2);
  MooreIds ids(ref, MooreConfig{});
  std::vector<Signal> train;
  for (std::uint64_t s = 0; s < 5; ++s) {
    train.push_back(add_noise(ref, 0.02, 20 + s));  // perfectly aligned
  }
  ids.fit(train);
  EXPECT_TRUE(ids.detect(shift(add_noise(ref, 0.02, 97), 25)));
}

TEST(Moore, Validation) {
  Signal empty;
  EXPECT_THROW(MooreIds(empty, MooreConfig{}), std::invalid_argument);
  const Signal ref = smooth_noise(100, 1, 3);
  MooreIds ids(ref, MooreConfig{});
  EXPECT_THROW(static_cast<void>(ids.detect(ref)),
               std::logic_error);  // before fit
  EXPECT_THROW(ids.fit({}), std::invalid_argument);
}

// ------------------------------------------------------------------ Gao --

LayeredSignal layered(Signal s, std::vector<double> times) {
  LayeredSignal out;
  out.signal = std::move(s);
  out.layer_times = std::move(times);
  return out;
}

TEST(Gao, LayerResyncForgivesPerLayerShifts) {
  // Build a reference of 4 "layers"; the observed signal delays each layer
  // start but keeps per-layer content identical.  Gao realigns per layer,
  // so distances stay near zero — unlike Moore on the same data.
  const Signal ref = smooth_noise(1000, 1, 4);
  std::vector<double> ref_layers = {0.0, 2.5, 5.0, 7.5};
  GaoIds gao(layered(ref, ref_layers), GaoConfig{});

  // Observed: per-layer content copied at delayed positions.
  Signal obs(1100, 1, 100.0);
  std::vector<double> obs_layers = {0.0, 2.8, 5.5, 8.2};
  for (std::size_t k = 0; k < 4; ++k) {
    const auto ro = static_cast<std::size_t>(ref_layers[k] * 100.0);
    const auto oo = static_cast<std::size_t>(obs_layers[k] * 100.0);
    for (std::size_t i = 0; i < 250 && ro + i < ref.frames() &&
                            oo + i < obs.frames(); ++i) {
      obs(oo + i, 0) = ref(ro + i, 0);
    }
  }
  std::vector<LayeredSignal> train = {layered(add_noise(ref, 0.02, 30),
                                              ref_layers)};
  gao.fit(train);
  EXPECT_FALSE(gao.detect(layered(add_noise(obs, 0.01, 31), obs_layers)));
}

TEST(Gao, StillComparesContentWithinLayers) {
  const Signal ref = smooth_noise(600, 1, 5);
  const std::vector<double> times = {0.0, 3.0};
  GaoIds gao(layered(ref, times), GaoConfig{});
  std::vector<LayeredSignal> train;
  for (std::uint64_t s = 0; s < 4; ++s) {
    train.push_back(layered(add_noise(ref, 0.02, 40 + s), times));
  }
  gao.fit(train);
  Signal bad = add_noise(ref, 0.02, 49);
  for (std::size_t n = 350; n < 500; ++n) bad(n, 0) += 3.0;
  EXPECT_TRUE(gao.detect(layered(bad, times)));
}

// --------------------------------------------------------------- Gatlin --

TEST(Gatlin, FingerprintsDiscriminateSpectralContent) {
  // Two layers with different dominant tones must produce different
  // fingerprints; identical layers must match.
  const double fs = 1000.0;
  Signal s(2000, 1, fs);
  for (std::size_t n = 0; n < 1000; ++n) {
    s(n, 0) = std::sin(2.0 * std::numbers::pi * 50.0 * n / fs);
  }
  for (std::size_t n = 1000; n < 2000; ++n) {
    s(n, 0) = std::sin(2.0 * std::numbers::pi * 210.0 * n / fs);
  }
  const auto prints = layer_fingerprints(layered(s, {0.0, 1.0}), 8);
  ASSERT_EQ(prints.size(), 2u);
  EXPECT_LT(fingerprint_match(prints[0], prints[1]), 0.7);
  EXPECT_DOUBLE_EQ(fingerprint_match(prints[0], prints[0]), 1.0);
}

TEST(Gatlin, TimingSubModuleCatchesLayerDrift) {
  const Signal ref = smooth_noise(1200, 1, 6);
  const std::vector<double> times = {0.0, 4.0, 8.0};
  GatlinIds ids(layered(ref, times), GatlinConfig{});
  std::vector<LayeredSignal> train;
  for (std::uint64_t s = 0; s < 4; ++s) {
    train.push_back(layered(add_noise(ref, 0.02, 60 + s), times));
  }
  ids.fit(train);
  // Same content, layer 2 starts 1.5 s late -> Time sub-module fires.
  const auto d =
      ids.detect(layered(add_noise(ref, 0.02, 70), {0.0, 4.0, 9.5}));
  EXPECT_TRUE(d.intrusion);
  EXPECT_TRUE(d.by_time);
}

TEST(Gatlin, DifferentLayerCountIsMalicious) {
  const Signal ref = smooth_noise(1200, 1, 7);
  GatlinIds ids(layered(ref, {0.0, 4.0, 8.0}), GatlinConfig{});
  std::vector<LayeredSignal> train = {layered(add_noise(ref, 0.02, 80),
                                              {0.0, 4.0, 8.0})};
  ids.fit(train);
  const auto d = ids.detect(layered(add_noise(ref, 0.02, 81), {0.0, 6.0}));
  EXPECT_TRUE(d.intrusion);
  EXPECT_TRUE(d.by_time);
}

// --------------------------------------------------------------- Bayens --

Signal tone_sequence(const std::vector<double>& freqs, double seconds_each,
                     double fs, std::uint64_t seed) {
  Rng rng(seed);
  const auto n_each = static_cast<std::size_t>(seconds_each * fs);
  Signal s(freqs.size() * n_each, 2, fs);
  std::size_t pos = 0;
  for (double f : freqs) {
    for (std::size_t i = 0; i < n_each; ++i, ++pos) {
      const double v =
          std::sin(2.0 * std::numbers::pi * f * static_cast<double>(pos) / fs);
      s(pos, 0) = v + rng.normal(0.0, 0.05);
      s(pos, 1) = 0.8 * v + rng.normal(0.0, 0.05);
    }
  }
  return s;
}

TEST(Bayens, MatchesWindowsInOrderWhenAligned) {
  const Signal ref =
      tone_sequence({60, 120, 180, 240, 300, 90, 150, 210}, 1.0, 1000.0, 1);
  BayensConfig cfg;
  cfg.window_seconds = 1.0;
  cfg.r = 0.5;  // widen the score floor: one training run is a small sample
  BayensIds ids(ref, cfg);
  const Signal obs =
      tone_sequence({60, 120, 180, 240, 300, 90, 150, 210}, 1.0, 1000.0, 2);
  const auto matches = ids.match_windows(obs);
  ASSERT_EQ(matches.size(), 8u);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].matched_index, i) << "window " << i;
  }
  std::vector<Signal> train;
  for (std::uint64_t s = 2; s < 6; ++s) {
    train.push_back(
        tone_sequence({60, 120, 180, 240, 300, 90, 150, 210}, 1.0, 1000.0, s));
  }
  ids.fit(train);
  EXPECT_FALSE(ids.detect(tone_sequence({60, 120, 180, 240, 300, 90, 150,
                                         210}, 1.0, 1000.0, 13)).intrusion);
}

TEST(Bayens, ReorderedContentViolatesSequence) {
  const Signal ref =
      tone_sequence({60, 120, 180, 240, 300, 90}, 1.0, 1000.0, 4);
  BayensConfig cfg;
  cfg.window_seconds = 1.0;
  BayensIds ids(ref, cfg);
  std::vector<Signal> train = {
      tone_sequence({60, 120, 180, 240, 300, 90}, 1.0, 1000.0, 5)};
  ids.fit(train);
  // Swap two segments: windows match out of order.
  const auto d = ids.detect(
      tone_sequence({60, 240, 180, 120, 300, 90}, 1.0, 1000.0, 6));
  EXPECT_TRUE(d.intrusion);
  EXPECT_TRUE(d.by_sequence);
}

TEST(Bayens, Validation) {
  const Signal ref = smooth_noise(100, 1, 8);
  BayensConfig cfg;
  cfg.window_seconds = 0.0;
  EXPECT_THROW(BayensIds(ref, cfg), std::invalid_argument);
  cfg.window_seconds = 100.0;  // longer than the signal
  EXPECT_THROW(BayensIds(ref, cfg), std::invalid_argument);
}

// --------------------------------------------------------- Belikovetsky --

TEST(Belikovetsky, PassesAlignedAndFlagsDissimilar) {
  // "Spectrogram-like" multichannel signal: 12 channels with structure.
  const Signal ref = smooth_noise(3000, 12, 9, 200.0);
  BelikovetskyConfig cfg;
  cfg.average_seconds = 1.0;
  cfg.consecutive_windows = 3;
  BelikovetskyIds ids(ref, cfg);
  EXPECT_FALSE(ids.detect(add_noise(ref, 0.02, 90)));
  // Unrelated signal: similarity collapses, alarm fires.
  EXPECT_TRUE(ids.detect(smooth_noise(3000, 12, 91, 200.0)));
}

TEST(Belikovetsky, SimilarityTraceIsBounded) {
  const Signal ref = smooth_noise(2000, 8, 10, 200.0);
  BelikovetskyConfig cfg;
  cfg.average_seconds = 0.5;
  BelikovetskyIds ids(ref, cfg);
  const auto sim = ids.similarity_trace(add_noise(ref, 0.05, 92));
  for (double v : sim) {
    EXPECT_GE(v, -1.0 - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
  EXPECT_EQ(ids.pca().components(), 3u);
}

TEST(Belikovetsky, Validation) {
  const Signal ref = smooth_noise(500, 8, 11, 200.0);
  BelikovetskyConfig cfg;
  cfg.consecutive_windows = 0;
  EXPECT_THROW(BelikovetskyIds(ref, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nsync::baselines
