// Unit and property tests for the 1-D filters used by the discriminator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "signal/filters.hpp"
#include "signal/rng.hpp"

namespace nsync::signal {
namespace {

TEST(MinFilter, KnownSequence) {
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
  const auto f = min_filter(v, 3);
  const std::vector<double> expected = {3.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0};
  ASSERT_EQ(f.size(), expected.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_DOUBLE_EQ(f[i], expected[i]) << "at " << i;
  }
}

TEST(MinFilter, WindowOneIsIdentity) {
  const std::vector<double> v = {5.0, 2.0, 8.0};
  const auto f = min_filter(v, 1);
  EXPECT_EQ(f, v);
}

TEST(MinFilter, SuppressesIsolatedSpike) {
  // The discriminator's use case (Eq. 21-22): an isolated spike shorter
  // than the window disappears from the filtered array.
  std::vector<double> v(20, 0.1);
  v[10] = 9.0;
  const auto f = min_filter(v, 3);
  for (double x : f) EXPECT_LE(x, 0.1 + 1e-12);
}

TEST(MinFilter, KeepsSustainedElevation) {
  std::vector<double> v(20, 0.1);
  for (std::size_t i = 10; i < 14; ++i) v[i] = 9.0;  // 4 >= window
  const auto f = min_filter(v, 3);
  EXPECT_DOUBLE_EQ(*std::max_element(f.begin(), f.end()), 9.0);
}

TEST(MinFilter, RejectsZeroWindow) {
  EXPECT_THROW(min_filter(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

TEST(MaxFilter, MirrorsMinFilter) {
  const std::vector<double> v = {1.0, 3.0, 2.0, 0.0};
  const auto f = max_filter(v, 2);
  const std::vector<double> expected = {1.0, 3.0, 3.0, 2.0};
  EXPECT_EQ(f, expected);
}

// Property: the deque implementation agrees with a brute-force window min.
class MinFilterProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MinFilterProperty, MatchesBruteForce) {
  const auto [window, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.uniform(-10.0, 10.0);
  const auto fast = min_filter(v, window);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::size_t lo = i + 1 >= window ? i + 1 - window : 0;
    double m = v[lo];
    for (std::size_t j = lo; j <= i; ++j) m = std::min(m, v[j]);
    EXPECT_DOUBLE_EQ(fast[i], m) << "window=" << window << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndSeeds, MinFilterProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 50, 200, 300),
                       ::testing::Values(11, 22)));

TEST(MovingAverage, TrailingWindowSemantics) {
  const std::vector<double> v = {2.0, 4.0, 6.0, 8.0};
  const auto f = moving_average(v, 2);
  EXPECT_DOUBLE_EQ(f[0], 2.0);  // shrunken leading window
  EXPECT_DOUBLE_EQ(f[1], 3.0);
  EXPECT_DOUBLE_EQ(f[2], 5.0);
  EXPECT_DOUBLE_EQ(f[3], 7.0);
}

TEST(MovingAverage, ConstantInputIsFixedPoint) {
  const std::vector<double> v(50, 3.25);
  const auto f = moving_average(v, 7);
  for (double x : f) EXPECT_NEAR(x, 3.25, 1e-12);
}

TEST(MedianFilter, RemovesImpulse) {
  std::vector<double> v(11, 1.0);
  v[5] = 100.0;
  const auto f = median_filter(v, 3);
  for (double x : f) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(MedianFilter, RequiresOddWindow) {
  EXPECT_THROW(median_filter(std::vector<double>{1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(Diff, InverseOfCumulativeSum) {
  const std::vector<double> v = {1.0, -2.0, 3.0, 0.5};
  const auto cs = cumulative_sum(v);
  const auto back = diff(cs, 0.0);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], 1e-12);
  }
}

TEST(CumulativeAbsDiff, MatchesEq17) {
  // c[i] = sum_{j<=i} |v[j] - v[j-1]|, v[-1] = 0 (Eq. 17).
  const std::vector<double> v = {2.0, 2.0, -1.0, 4.0};
  const auto c = cumulative_abs_diff(v, 0.0);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 5.0);
  EXPECT_DOUBLE_EQ(c[3], 10.0);
}

TEST(CumulativeAbsDiff, MonotoneNondecreasing) {
  Rng rng(5);
  std::vector<double> v(100);
  for (auto& x : v) x = rng.normal();
  const auto c = cumulative_abs_diff(v);
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i], c[i - 1]);
  }
}

TEST(OnePoleLowpass, StepResponseConverges) {
  std::vector<double> v(200, 1.0);
  const auto f = one_pole_lowpass(v, 0.1);
  EXPECT_NEAR(f.back(), 1.0, 1e-6);
  // Monotone rise.
  for (std::size_t i = 1; i < f.size(); ++i) {
    EXPECT_GE(f[i] + 1e-15, f[i - 1]);
  }
}

TEST(OnePoleLowpass, RejectsBadAlpha) {
  const std::vector<double> v = {1.0};
  EXPECT_THROW(one_pole_lowpass(v, 0.0), std::invalid_argument);
  EXPECT_THROW(one_pole_lowpass(v, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace nsync::signal
