// Tests for DTW / FastDTW and the warp-path post-processing (Eq. 5, 15).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dtw.hpp"
#include "signal/rng.hpp"

namespace nsync::core {
namespace {

using nsync::signal::Rng;
using nsync::signal::Signal;

Signal from_values(const std::vector<double>& v) {
  return Signal::from_samples(v, 100.0);
}

Signal smooth_noise(std::size_t frames, std::size_t channels,
                    std::uint64_t seed) {
  Rng rng(seed);
  Signal s(frames, channels, 100.0);
  std::vector<double> lp(channels, 0.0);
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      lp[c] += 0.4 * (rng.normal() - lp[c]);
      s(n, c) = lp[c];
    }
  }
  return s;
}

void check_path_validity(const WarpPath& path, std::size_t na,
                         std::size_t nb) {
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().i, 0u);
  EXPECT_EQ(path.front().j, 0u);
  EXPECT_EQ(path.back().i, na - 1);
  EXPECT_EQ(path.back().j, nb - 1);
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t di = path[k].i - path[k - 1].i;
    const std::size_t dj = path[k].j - path[k - 1].j;
    EXPECT_LE(di, 1u);
    EXPECT_LE(dj, 1u);
    EXPECT_TRUE(di + dj >= 1) << "path must advance";
  }
}

TEST(Dtw, IdenticalSequencesFollowDiagonal) {
  const Signal a = smooth_noise(32, 1, 1);
  const DtwResult r = dtw(a, a, DistanceMetric::kEuclidean);
  check_path_validity(r.path, 32, 32);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
  for (const auto& p : r.path) {
    EXPECT_EQ(p.i, p.j);
  }
}

TEST(Dtw, AlignsShiftedSequence) {
  // b is a delayed by two steps (with edge padding); the path must stay
  // near the j = i + 2 diagonal in the middle.
  const Signal a = from_values({0, 0, 1, 5, 9, 5, 1, 0, 0, 0, 0, 0});
  const Signal b = from_values({0, 0, 0, 0, 1, 5, 9, 5, 1, 0, 0, 0});
  const DtwResult r = dtw(a, b, DistanceMetric::kEuclidean);
  check_path_validity(r.path, a.frames(), b.frames());
  // The peak (a[4] = 9) must match the peak (b[6] = 9).
  bool peak_matched = false;
  for (const auto& p : r.path) {
    if (p.i == 4 && p.j == 6) peak_matched = true;
  }
  EXPECT_TRUE(peak_matched);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);  // perfect warp exists
}

TEST(Dtw, CostIsSymmetricForSymmetricMetric) {
  const Signal a = smooth_noise(20, 2, 2);
  const Signal b = smooth_noise(24, 2, 3);
  const DtwResult ab = dtw(a, b, DistanceMetric::kEuclidean);
  const DtwResult ba = dtw(b, a, DistanceMetric::kEuclidean);
  EXPECT_NEAR(ab.cost, ba.cost, 1e-9);
}

TEST(Dtw, RejectsBadInput) {
  Signal empty;
  const Signal a = smooth_noise(5, 1, 4);
  EXPECT_THROW(dtw(empty, a, DistanceMetric::kEuclidean),
               std::invalid_argument);
  const Signal c2 = smooth_noise(5, 2, 5);
  EXPECT_THROW(dtw(a, c2, DistanceMetric::kEuclidean), std::invalid_argument);
}

TEST(DtwWindowed, BandMustCoverEndpoints) {
  const Signal a = smooth_noise(8, 1, 6);
  const Signal b = smooth_noise(8, 1, 7);
  DtwWindow w(8, {1, 8});  // (0, 0) excluded
  EXPECT_THROW(dtw_windowed(a, b, DistanceMetric::kEuclidean, w),
               std::invalid_argument);
  DtwWindow bad_rows(5, {0, 8});
  EXPECT_THROW(dtw_windowed(a, b, DistanceMetric::kEuclidean, bad_rows),
               std::invalid_argument);
}

TEST(DtwWindowed, FullBandEqualsExactDtw) {
  const Signal a = smooth_noise(24, 2, 8);
  const Signal b = smooth_noise(30, 2, 9);
  const DtwWindow w(24, {0, 30});
  const DtwResult exact = dtw(a, b, DistanceMetric::kCorrelation);
  const DtwResult banded = dtw_windowed(a, b, DistanceMetric::kCorrelation, w);
  EXPECT_NEAR(exact.cost, banded.cost, 1e-9);
}

TEST(HalfResolution, AveragesPairs) {
  const Signal s = from_values({1.0, 3.0, 5.0, 7.0, 9.0});
  const Signal h = half_resolution(s);
  ASSERT_EQ(h.frames(), 3u);
  EXPECT_DOUBLE_EQ(h(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(h(2, 0), 9.0);  // odd tail repeats the last sample
  EXPECT_DOUBLE_EQ(h.sample_rate(), 50.0);
}

class FastDtwAccuracy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FastDtwAccuracy, CostWithinFactorOfExact) {
  const std::size_t radius = GetParam();
  const Signal a = smooth_noise(120, 2, 10);
  const Signal b = smooth_noise(132, 2, 11);
  const DtwResult exact = dtw(a, b, DistanceMetric::kEuclidean);
  const DtwResult fast = fast_dtw(a, b, radius, DistanceMetric::kEuclidean);
  check_path_validity(fast.path, a.frames(), b.frames());
  EXPECT_GE(fast.cost, exact.cost - 1e-9);  // exact is the lower bound
  EXPECT_LE(fast.cost, exact.cost * 1.35 + 1e-9)
      << "radius " << radius << " strayed too far from the optimum";
}

INSTANTIATE_TEST_SUITE_P(Radii, FastDtwAccuracy, ::testing::Values(1, 2, 4));

TEST(FastDtw, LargerRadiusNeverWorse) {
  const Signal a = smooth_noise(150, 1, 12);
  const Signal b = smooth_noise(160, 1, 13);
  const double c1 = fast_dtw(a, b, 1, DistanceMetric::kEuclidean).cost;
  const double c4 = fast_dtw(a, b, 4, DistanceMetric::kEuclidean).cost;
  EXPECT_LE(c4, c1 + 1e-9);
  EXPECT_THROW(fast_dtw(a, b, 0, DistanceMetric::kEuclidean),
               std::invalid_argument);
}

TEST(FastDtw, SmallInputsFallBackToExact) {
  const Signal a = smooth_noise(4, 1, 14);
  const Signal b = smooth_noise(4, 1, 15);
  const DtwResult fast = fast_dtw(a, b, 2, DistanceMetric::kEuclidean);
  const DtwResult exact = dtw(a, b, DistanceMetric::kEuclidean);
  EXPECT_NEAR(fast.cost, exact.cost, 1e-12);
}

TEST(HDispFromPath, AveragesMultipleMatches) {
  // Tuples (0,0), (1,1), (1,2), (1,3), (2,4): h_disp[1] = mean(0,1,2) = 1.
  const WarpPath path = {{0, 0}, {1, 1}, {1, 2}, {1, 3}, {2, 4}};
  const auto h = h_disp_from_path(path, 3);
  ASSERT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 2.0);
}

TEST(HDispFromPath, CarriesForwardSkippedIndexes) {
  const WarpPath path = {{0, 0}, {2, 3}};  // index 1 never matched
  const auto h = h_disp_from_path(path, 3);
  EXPECT_DOUBLE_EQ(h[1], 0.0);  // carried from index 0
  EXPECT_DOUBLE_EQ(h[2], 1.0);
}

TEST(VDistFromPath, AveragesDistances) {
  const Signal a = from_values({0.0, 10.0});
  const Signal b = from_values({0.0, 4.0, 8.0});
  const WarpPath path = {{0, 0}, {1, 1}, {1, 2}};
  const auto v = v_dist_from_path(a, b, path, DistanceMetric::kMae);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], (6.0 + 2.0) / 2.0);
}

}  // namespace
}  // namespace nsync::core
